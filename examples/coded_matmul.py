"""Coded matrix-matrix multiplication with verification.

The generalization the paper sketches in Sec. II/IV: polynomial codes
(Yu et al.) give straggler-resilient distributed matmul; AVCC's
decoupling adds Byzantine security at one extra worker per attacker by
verifying each product with a Freivalds probe against the master's
stored coded factors.

Computes C = A @ B (240x200 times 200x180) over 9 workers with p=2,
q=3 partitioning — each worker multiplies a (120x200)x(200x60) pair,
1/6 of the work — while worker 1 straggles and worker 4 lies.

Run:  python examples/coded_matmul.py
"""

import numpy as np

from repro.core import CodedMatmulAVCCMaster
from repro.ff import PrimeField, ff_matmul
from repro.runtime import (
    CostModel,
    Honest,
    RandomAttack,
    SimCluster,
    SimWorker,
    make_profiles,
)


def main():
    rng = np.random.default_rng(0)
    field = PrimeField()
    a = field.random((240, 200), rng)
    b = field.random((200, 180), rng)

    n, p, q = 9, 2, 3
    profiles = make_profiles(n, straggler_factors={1: 12.0})
    behaviors = {4: RandomAttack()}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    cluster = SimCluster(
        field,
        workers,
        cost_model=CostModel(worker_sec_per_mac=50e-9),
        rng=rng,
    )

    master = CodedMatmulAVCCMaster(cluster, p=p, q=q, s=1, m=1)
    setup_time = master.setup(a, b)
    print(f"encoded A into {n} row-combined shares (deg {p - 1}) and B into "
          f"{n} column-combined shares (deg {p * (q - 1)})")
    print(f"recovery threshold: p*q = {p * q} verified products; "
          f"worker budget N >= p*q + S + M = {p * q + 2}")
    print(f"setup (shipping factors): {setup_time:.3f}s simulated\n")

    out = master.multiply()
    np.testing.assert_array_equal(out.vector, ff_matmul(field, a, b))

    r = out.record
    print(f"round finished at {r.t_end:.4f}s simulated")
    print(f"  used workers:      {list(r.used_workers)}")
    print(f"  rejected (lying):  {list(r.rejected_workers)}")
    print(f"  verification time: {r.verify_time * 1e3:.3f} ms "
          f"(vs ~{2 * 120 * 200 * 60 * 50e-9 * 1e3:.1f} ms to recompute two products)")
    print(f"  decode time:       {r.decode_time * 1e3:.3f} ms")
    print("\nC = A @ B recovered bit-exactly from the 6 fastest verified "
          "products;\nthe straggler (worker 1) and the attacker (worker 4) "
          "cost nothing but their own redundancy.")


if __name__ == "__main__":
    main()
