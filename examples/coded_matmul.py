"""Coded matrix-matrix multiplication with verification, through the
session API.

The generalization the paper sketches in Sec. II/IV: polynomial codes
(Yu et al.) give straggler-resilient distributed matmul; AVCC's
decoupling adds Byzantine security at one extra worker per attacker by
verifying each product with a Freivalds probe against the master's
stored coded factors.

Computes C = A @ B (240x200 times 200x180) over 9 workers with p=2,
q=3 partitioning — each worker multiplies a (120x200)x(200x60) pair,
1/6 of the work — while worker 1 straggles and worker 4 lies. The
whole deployment is one ``SessionConfig``; ``submit_matmul`` ships the
coded factors and runs the verified round.

Run:  python examples/coded_matmul.py
"""

import numpy as np

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matmul


def main():
    rng = np.random.default_rng(0)
    field = PrimeField()
    a = field.random((240, 200), rng)
    b = field.random((200, 180), rng)

    n, p, q = 9, 2, 3
    specs = [WorkerSpec() for _ in range(n)]
    specs[1] = WorkerSpec(straggler_factor=12.0)
    specs[4] = WorkerSpec(behavior="random")
    cfg = SessionConfig(
        scheme=SchemeParams(n=n, k=p * q, s=1, m=1),
        master="avcc",
        backend="sim",
        seed=0,
        workers=tuple(specs),
        cost={"worker_sec_per_mac": 50e-9},
    )
    print(f"encoding A into {n} row-combined shares (deg {p - 1}) and B into "
          f"{n} column-combined shares (deg {p * (q - 1)})")
    print(f"recovery threshold: p*q = {p * q} verified products; "
          f"worker budget N >= p*q + S + M = {p * q + 2}\n")

    with Session.create(cfg) as sess:
        out = sess.submit_matmul(a, b, p=p, q=q)
        c = out.result()
        r = out.record

    np.testing.assert_array_equal(c, ff_matmul(field, a, b))

    print(f"round finished at {r.t_end:.4f}s simulated")
    print(f"  used workers:      {list(r.used_workers)}")
    print(f"  rejected (lying):  {list(r.rejected_workers)}")
    print(f"  verification time: {r.verify_time * 1e3:.3f} ms "
          f"(vs ~{2 * 120 * 200 * 60 * 50e-9 * 1e3:.1f} ms to recompute two products)")
    print(f"  decode time:       {r.decode_time * 1e3:.3f} ms")
    print("\nC = A @ B recovered bit-exactly from the 6 fastest verified "
          "products;\nthe straggler (worker 1) and the attacker (worker 4) "
          "cost nothing but their own redundancy.")


if __name__ == "__main__":
    main()
