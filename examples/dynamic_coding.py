"""Dynamic coding in action — the Fig. 5 scenario.

Starts a (N=12, K=9, S=2, M=1) deployment. At the first iteration the
cluster turns out to contain *three* heavy stragglers and one Byzantine
node — more than the code can hide. AVCC drops the attacker, computes
its adaptation margin A_t = N - M_t - S_t - K = -1 < 0 (Eq. 16) and
re-encodes to (11, 8), paying a one-time share-shipment cost. Static
VCC keeps the original code and waits for a straggler every iteration.

Run:  python examples/dynamic_coding.py
"""

from repro.experiments import ExperimentConfig, run_fig5


def main():
    cfg = ExperimentConfig(iterations=50)
    print("running the Fig. 5 scenario (3 stragglers + 1 Byzantine) ...\n")
    result = run_fig5(cfg)
    print(result.render())

    print("\nAVCC cumulative time per iteration (s):")
    marks = ""
    for i, (t, scheme) in enumerate(zip(result.avcc.times, result.avcc.schemes)):
        if i % 10 == 0 or result.avcc.reencode_times[i] > 0:
            tag = "  <- re-encode to %s" % (scheme,) if result.avcc.reencode_times[i] else ""
            print(f"  iter {i:2d}: {t:7.3f}{tag}")
    print("\nStatic VCC cumulative time per iteration (s):")
    for i, t in enumerate(result.static.times):
        if i % 10 == 0:
            print(f"  iter {i:2d}: {t:7.3f}")

    per_iter_static = result.static.total_time / result.static.iterations()
    per_iter_avcc = (result.avcc.total_time - result.reencode_cost) / result.avcc.iterations()
    payback = result.reencode_cost / (per_iter_static - per_iter_avcc)
    print(f"\nre-encode cost {result.reencode_cost:.2f}s pays back in "
          f"{payback:.1f} iterations; net saving {result.net_saving:.2f}s")


if __name__ == "__main__":
    main()
