"""Distributed linear regression — the coded masters as a generic
linear-computation service.

Trains gradient descent on squared loss with the same two-round
protocol (z = Xw, then g = X^T(z - y)) over AVCC, with one straggler
and one Byzantine worker injected, and compares against the uncoded
baseline. Then runs the *same unmodified master* on the thread-pool
backend: real concurrent workers, real wall-clock arrival order, real
early stopping — the Backend protocol makes the swap a one-liner.

Run:  python examples/linear_regression.py
"""

import time

import numpy as np

from repro.coding import SchemeParams
from repro.core import AVCCMaster, UncodedMaster
from repro.ff import PrimeField, ff_matvec
from repro.ml import (
    DistributedLinearRegressionTrainer,
    LinRegConfig,
    make_linreg_dataset,
)
from repro.runtime import (
    ConstantAttack,
    Honest,
    SimCluster,
    SimWorker,
    ThreadedCluster,
    make_profiles,
)


def make_cluster(behaviors=None, stragglers=None):
    n = 12
    profiles = make_profiles(n, stragglers or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    # compute-dominant cost constants so the straggler penalty is visible
    # at this small demo scale (see repro.experiments.common for the
    # calibration used by the paper reproductions)
    from repro.runtime import CostModel

    cm = CostModel(worker_sec_per_mac=2e-6, link_latency_s=1e-4)
    return SimCluster(
        PrimeField(), workers, cost_model=cm, rng=np.random.default_rng(4)
    )


def main():
    ds = make_linreg_dataset(m=480, d=40, rng=np.random.default_rng(7))
    cfg = LinRegConfig(iterations=30, learning_rate=0.01)
    faults = dict(
        behaviors={5: ConstantAttack(value=999)}, stragglers={0: 8.0}
    )

    print(f"dataset: {ds.name}; protocol: z = Xw, g = X^T(z - y)\n")

    # ---- AVCC under faults -------------------------------------------
    avcc = AVCCMaster(make_cluster(**faults), SchemeParams(n=12, k=8, s=2, m=1))
    avcc.setup(ds.x_train)
    t_avcc = DistributedLinearRegressionTrainer(avcc, ds, cfg)
    h_avcc = t_avcc.train()

    # ---- uncoded under the same faults --------------------------------
    unc = UncodedMaster(make_cluster(**faults), k=8)
    unc.setup(ds.x_train)
    t_unc = DistributedLinearRegressionTrainer(unc, ds, cfg)
    h_unc = t_unc.train()

    print(f"{'method':8s} {'train MSE':>10s} {'test MSE':>10s} {'sim time':>9s}")
    for name, t, h in (("avcc", t_avcc, h_avcc), ("uncoded", t_unc, h_unc)):
        print(f"{name:8s} {h.train_loss[-1]:10.4f} {-h.test_acc[-1]:10.4f} "
              f"{h.total_time:8.2f}s")
    print("\nAVCC rejected the attacker and dodged the straggler; uncoded "
          "absorbed both (higher loss, ~8x slower).\n")

    # ---- bonus: the same master on real threads ------------------------
    field = PrimeField()
    x_q = field.asarray(ds.x_train[:400])
    w_vec = field.random(ds.d, np.random.default_rng(0))
    profiles = make_profiles(12, {2: 5.0})
    workers = [SimWorker(i, profile=profiles[i], behavior=Honest()) for i in range(12)]
    with ThreadedCluster(field, workers, straggle_scale=0.1) as pool:
        master = AVCCMaster(pool, SchemeParams(n=12, k=8, s=3, m=1))
        master.setup(x_q)
        t0 = time.perf_counter()
        out = master.forward_round(w_vec)
        wall = time.perf_counter() - t0
    assert np.array_equal(out.vector, ff_matvec(field, x_q, w_vec))
    print(f"thread-pool backend: the same AVCC master used workers "
          f"{sorted(out.record.used_workers)}")
    print(f"decoded in {wall * 1e3:.0f} ms wall — the slowed worker 2 was "
          f"cancelled, not waited for; result bit-exact.")


if __name__ == "__main__":
    main()
