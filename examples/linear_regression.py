"""Distributed linear regression — the session API as a generic
linear-computation service.

Trains gradient descent on squared loss with the same two-round
protocol (z = Xw, then g = X^T(z - y)) over AVCC, with one straggler
and one Byzantine worker injected, and compares against the uncoded
baseline — both described by the *same* ``SessionConfig`` with only the
``master`` name changed. Then reruns a coded round on the thread-pool
backend: real concurrent workers, real wall-clock arrival order, real
early stopping — switching the ``backend`` string is the whole swap.

Run:  python examples/linear_regression.py
"""

import time

import numpy as np

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matvec
from repro.ml import (
    DistributedLinearRegressionTrainer,
    LinRegConfig,
    make_linreg_dataset,
)


def fault_specs(n=12):
    """One heavy straggler (worker 0) + one constant attacker (worker 5)."""
    specs = [WorkerSpec() for _ in range(n)]
    specs[0] = WorkerSpec(straggler_factor=8.0)
    specs[5] = WorkerSpec(behavior="constant", attack_value=999)
    return tuple(specs)


def main():
    ds = make_linreg_dataset(m=480, d=40, rng=np.random.default_rng(7))
    cfg = LinRegConfig(iterations=30, learning_rate=0.01)

    # compute-dominant cost constants so the straggler penalty is visible
    # at this small demo scale (see repro.experiments.common for the
    # calibration used by the paper reproductions)
    base = SessionConfig(
        scheme=SchemeParams(n=12, k=8, s=2, m=1),
        master="avcc",
        backend="sim",
        seed=4,
        workers=fault_specs(),
        cost={"worker_sec_per_mac": 2e-6, "link_latency_s": 1e-4},
    )

    print(f"dataset: {ds.name}; protocol: z = Xw, g = X^T(z - y)\n")

    histories = {}
    for method in ("avcc", "uncoded"):
        with Session.create(base.with_(master=method)) as sess:
            sess.load(ds.x_train)
            trainer = DistributedLinearRegressionTrainer(sess, ds, cfg)
            histories[method] = trainer.train()

    print(f"{'method':8s} {'train MSE':>10s} {'test MSE':>10s} {'sim time':>9s}")
    for name, h in histories.items():
        print(f"{name:8s} {h.train_loss[-1]:10.4f} {-h.test_acc[-1]:10.4f} "
              f"{h.total_time:8.2f}s")
    print("\nAVCC rejected the attacker and dodged the straggler; uncoded "
          "absorbed both (higher loss, ~8x slower).\n")

    # ---- bonus: the same service on real threads -----------------------
    field = PrimeField()
    x_q = field.asarray(ds.x_train[:400])
    w_vec = field.random(ds.d, np.random.default_rng(0))
    threaded = SessionConfig(
        scheme=SchemeParams(n=12, k=8, s=3, m=1),
        master="avcc",
        backend="threaded",
        workers=tuple(
            WorkerSpec(straggler_factor=5.0) if i == 2 else WorkerSpec()
            for i in range(12)
        ),
        backend_options={"straggle_scale": 0.1},
    )
    with Session.create(threaded) as sess:
        sess.load(x_q)
        t0 = time.perf_counter()
        handle = sess.submit_matvec(w_vec)
        z = handle.result()
        wall = time.perf_counter() - t0
    assert np.array_equal(z, ff_matvec(field, x_q, w_vec))
    print(f"thread-pool backend: the same avcc session used workers "
          f"{sorted(handle.record.used_workers)}")
    print(f"decoded in {wall * 1e3:.0f} ms wall — the slowed worker 2 was "
          f"cancelled, not waited for; result bit-exact.")


if __name__ == "__main__":
    main()
