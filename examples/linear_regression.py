"""Distributed linear regression — the coded masters as a generic
linear-computation service.

Trains gradient descent on squared loss with the same two-round
protocol (z = Xw, then g = X^T(z - y)) over AVCC, with one straggler
and one Byzantine worker injected, and compares against the uncoded
baseline. Also demonstrates the thread-pool backend: the same worker
computation running on real threads with real wall-clock arrival order.

Run:  python examples/linear_regression.py
"""

import numpy as np

from repro.coding import SchemeParams, partition_rows
from repro.core import AVCCMaster, UncodedMaster
from repro.ff import PrimeField, ff_matvec
from repro.ml import (
    DistributedLinearRegressionTrainer,
    LinRegConfig,
    make_linreg_dataset,
)
from repro.runtime import (
    ConstantAttack,
    Honest,
    SimCluster,
    SimWorker,
    make_profiles,
)
from repro.runtime.threaded import ThreadedCluster


def make_cluster(behaviors=None, stragglers=None):
    n = 12
    profiles = make_profiles(n, stragglers or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    # compute-dominant cost constants so the straggler penalty is visible
    # at this small demo scale (see repro.experiments.common for the
    # calibration used by the paper reproductions)
    from repro.runtime import CostModel

    cm = CostModel(worker_sec_per_mac=2e-6, link_latency_s=1e-4)
    return SimCluster(
        PrimeField(), workers, cost_model=cm, rng=np.random.default_rng(4)
    )


def main():
    ds = make_linreg_dataset(m=480, d=40, rng=np.random.default_rng(7))
    cfg = LinRegConfig(iterations=30, learning_rate=0.01)
    faults = dict(
        behaviors={5: ConstantAttack(value=999)}, stragglers={0: 8.0}
    )

    print(f"dataset: {ds.name}; protocol: z = Xw, g = X^T(z - y)\n")

    # ---- AVCC under faults -------------------------------------------
    avcc = AVCCMaster(make_cluster(**faults), SchemeParams(n=12, k=8, s=2, m=1))
    avcc.setup(ds.x_train)
    t_avcc = DistributedLinearRegressionTrainer(avcc, ds, cfg)
    h_avcc = t_avcc.train()

    # ---- uncoded under the same faults --------------------------------
    unc = UncodedMaster(make_cluster(**faults), k=8)
    unc.setup(ds.x_train)
    t_unc = DistributedLinearRegressionTrainer(unc, ds, cfg)
    h_unc = t_unc.train()

    print(f"{'method':8s} {'train MSE':>10s} {'test MSE':>10s} {'sim time':>9s}")
    for name, t, h in (("avcc", t_avcc, h_avcc), ("uncoded", t_unc, h_unc)):
        print(f"{name:8s} {h.train_loss[-1]:10.4f} {-h.test_acc[-1]:10.4f} "
              f"{h.total_time:8.2f}s")
    print("\nAVCC rejected the attacker and dodged the straggler; uncoded "
          "absorbed both (higher loss, ~8x slower).\n")

    # ---- bonus: the same computation on real threads -------------------
    field = PrimeField()
    x_q = field.asarray(ds.x_train[:400])
    blocks = partition_rows(x_q, 8)
    from repro.coding import LagrangeCode

    code = LagrangeCode(field, n=12, k=8)
    shares = code.encode(blocks)
    workers = [
        SimWorker(i, profile=make_profiles(12, {2: 5.0})[i], behavior=Honest())
        for i in range(12)
    ]
    for w_obj, s in zip(workers, shares):
        w_obj.store(share=s)
    w_vec = field.random(ds.d, np.random.default_rng(0))
    with ThreadedCluster(field, workers, straggle_scale=0.02) as pool:
        arrivals = pool.run_round(lambda p: ff_matvec(field, p["share"], w_vec))
    order = [a.worker_id for a in arrivals]
    print(f"thread-pool backend arrival order (worker 2 slowed): {order}")
    idx = np.array(order[:8])
    vals = np.stack([a.value for a in arrivals[:8]])
    decoded = code.decode(idx, vals).reshape(-1)
    assert np.array_equal(decoded, ff_matvec(field, x_q, w_vec))
    print("decoded from the 8 fastest real-thread results — bit-exact.")


if __name__ == "__main__":
    main()
