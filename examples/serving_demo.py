"""Serving demo: multi-tenant traffic through the coded-computing gateway.

Three gateway configurations replay the *same* bursty two-tenant trace
against the same simulated AVCC fleet (12 workers, one 5x straggler,
one Byzantine):

* serial    — every request is its own round (count policy, window 1);
* pipelined — same rounds, but 8 in flight through the session's
              round scheduler;
* batched   — deadline-aware micro-batching (hybrid policy): bursts
              coalesce into wide rounds, tight SLOs force early
              dispatch, a 20 ms linger caps tail latency.

Usage::

    python examples/serving_demo.py [--requests N] [--backend sim|tcp]

``--backend tcp`` serves the same trace over a *real* loopback socket
fleet (12 worker daemons speaking the binary wire protocol, spawned
automatically) — the gateway, session and masters are unchanged; only
the registry name differs, and latencies become wall-clock.

Every served request is verified (Freivalds) and decoded exactly —
the demo checks a few against direct field arithmetic at the end.
"""

import argparse

import numpy as np

from repro.api import Session
from repro.experiments.common import (
    SERVING_SCALE,
    ExperimentConfig,
    make_serving_workload,
    serving_config,
)
from repro.ff import DEFAULT_PRIME, PrimeField, ff_matvec
from repro.serve import Gateway, GatewayConfig, OpenLoopSource


def run_variant(
    name, cfg, requests, tenant_weights, *, policy, options, inflight=1, backend="sim"
):
    session_cfg = serving_config(cfg, max_inflight_rounds=inflight, backend=backend)
    with Session.create(session_cfg) as sess:
        x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
        sess.load(x)
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(
                batch_policy=policy,
                policy_options=options,
                tenant_weights=tenant_weights,
            ),
        )
        report = gateway.run()
    print(f"  {name:<10} {report.summary()}")
    return x, gateway, report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=160)
    parser.add_argument(
        "--backend",
        choices=("sim", "tcp"),
        default="sim",
        help="execution substrate (tcp = real loopback socket fleet)",
    )
    args = parser.parse_args()

    cfg = ExperimentConfig()
    field = PrimeField(DEFAULT_PRIME)
    # one deterministic trace (requests are frozen), replayed by all
    generator, requests = make_serving_workload(
        field, SERVING_SCALE, n_requests=args.requests
    )
    weights = generator.tenant_weights

    print(
        f"mixed Poisson+burst trace: {len(requests)} requests, "
        f"tenants {sorted(weights)}, backend {args.backend}"
    )
    print("ServeReport per gateway variant:")
    _, _, serial = run_variant(
        "serial", cfg, requests, weights,
        policy="count", options={"window": 1}, backend=args.backend,
    )
    run_variant(
        "pipelined", cfg, requests, weights,
        policy="count", options={"window": 1}, inflight=8, backend=args.backend,
    )
    x, gateway, batched = run_variant(
        "batched", cfg, requests, weights,
        policy="hybrid", options={"window": 16, "safety": 2.0, "linger": 0.02},
        backend=args.backend,
    )

    print(
        f"\np99 latency: serial {serial.p99 * 1e3:.1f} ms -> "
        f"batched {batched.p99 * 1e3:.1f} ms "
        f"({serial.p99 / batched.p99:.2f}x better)"
    )
    print(
        f"SLO attainment: serial {serial.slo_attainment:.1%} -> "
        f"batched {batched.slo_attainment:.1%}"
    )
    print(f"fairness (Jain, weighted): {batched.fairness_index():.3f}")
    print(
        "per-tenant served:",
        {t: int(r["served"]) for t, r in batched.tenant_summary().items()},
    )

    # spot-check correctness: batching never changes a byte
    checked = 0
    for req in requests:
        if checked == 5:
            break
        if req.family != "matvec" or req.request_id not in gateway.results:
            continue
        expected = ff_matvec(field, x.T.copy() if req.transpose else x, req.operand)
        assert gateway.results[req.request_id].tobytes() == expected.tobytes()
        checked += 1
    print(f"verified {checked} spot-checked results bit-exact against direct arithmetic")


if __name__ == "__main__":
    main()
