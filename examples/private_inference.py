"""T-privacy demo: training with colluding workers (Sec. IV-B).

Deploys AVCC with T = 1 privacy padding on a 13-worker cluster
(Eq. 2: N >= K + T - 1 + S + M + 1 = 13 for K=9, S=1, M=1, T=1):

* shows that a colluding worker's coded share is statistically
  indistinguishable between two completely different datasets
  (information-theoretic masking by the random Lagrange padding W);
* trains the same logistic model with and without privacy padding and
  shows the learned weights are identical — privacy is free in terms
  of accuracy, it only costs extra workers.

Run:  python examples/private_inference.py
"""

import numpy as np

from repro.api import Session, SessionConfig
from repro.coding import LagrangeCode, SchemeParams
from repro.ff import PrimeField
from repro.ml import DistributedLogisticTrainer, LogisticConfig, make_gisette_like


def share_histogram_distance(field, code, data_a, data_b, worker, n_samples, rng):
    """L1 distance between the empirical share distributions a single
    colluding worker observes for two different datasets."""
    q = field.q
    counts = np.zeros((2, q), dtype=np.int64)
    for j, data in enumerate((data_a, data_b)):
        for _ in range(n_samples):
            share = code.encode(data, rng)
            counts[j, int(share[worker, 0])] += 1
    p = counts / n_samples
    return 0.5 * np.abs(p[0] - p[1]).sum()


def main():
    rng = np.random.default_rng(1)

    # ---- statistical masking on a small field for visibility ---------
    small = PrimeField(97)
    code = LagrangeCode(small, n=5, k=2, t=1)
    data_a = small.asarray([[3], [14]])
    data_b = small.asarray([[92], [55]])
    dist = share_histogram_distance(small, code, data_a, data_b, worker=0,
                                    n_samples=4000, rng=rng)
    print("T=1 masking (F_97, 4000 encodings each):")
    print(f"  share-distribution distance between two datasets: {dist:.3f} "
          f"(0 = perfectly indistinguishable)")
    code_no_priv = LagrangeCode(small, n=5, k=2, t=0)
    a0 = int(code_no_priv.encode(data_a)[3, 0])
    b0 = int(code_no_priv.encode(data_b)[3, 0])
    print(f"  without padding the shares differ deterministically: "
          f"{a0} vs {b0}\n")

    # ---- end-to-end private training ---------------------------------
    ds = make_gisette_like(m=320, d=60, class_lift=0.9,
                           rng=np.random.default_rng(9))
    cfg = LogisticConfig(iterations=10, learning_rate=0.3, l_w=8, l_e=8)

    def train(t, n):
        session_cfg = SessionConfig(
            scheme=SchemeParams(n=n, k=9, s=1, m=1, t=t), master="avcc", seed=3
        )
        with Session.create(session_cfg) as sess:
            sess.load(ds.x_train)
            trainer = DistributedLogisticTrainer(sess, ds, cfg)
            hist = trainer.train()
        return trainer.final_weights, hist

    w_plain, h_plain = train(t=0, n=12)
    w_priv, h_priv = train(t=1, n=13)

    print("training with and without T=1 privacy padding:")
    print(f"  T=0 (12 workers): final test acc {h_plain.final_test_acc:.3f}")
    print(f"  T=1 (13 workers): final test acc {h_priv.final_test_acc:.3f}")
    assert np.array_equal(w_plain, w_priv)
    print("  learned weights are bit-identical — privacy costs one extra "
          "worker (Eq. 2), not accuracy.")


if __name__ == "__main__":
    main()
