"""Quickstart: verified coded matrix-vector multiplication through the
high-level Session API, with stragglers and a Byzantine worker, on your
choice of execution backend.

Five lines is the whole pipeline::

    cfg = SessionConfig(scheme=SchemeParams(n=6, k=3, s=1, m=1), ...)
    with Session.create(cfg) as sess:
        sess.load(x)                        # encode + ship shares + keys
        z = sess.submit_matvec(w).result()  # verified, exact X @ w

Under the hood the session runs the paper's core protocol: Lagrange/MDS
encoding (Fig. 1), per-worker Freivalds keys (Eqs. 6-7), one
broadcast-compute-collect round, verification in arrival order with
Byzantine rejection (Eqs. 8-10), early cancellation the moment K
results pass, and exact decoding from the fastest K verified results.
The backend string is the only thing that changes between a
deterministic simulation, real threads or processes, and a real TCP
socket fleet (``tcp`` spawns loopback worker daemons speaking the
binary wire protocol — the same daemons you would start on other
hosts with ``python -m repro.runtime.net.worker``); the layer-by-layer
wiring remains available for study in `src/repro`.

Run:  python examples/quickstart.py [sim|threaded|process|tcp]
                                    [--seed S] [--n N] [--k K]
                                    [--inflight W]

``--inflight W`` (W >= 2) additionally serves a burst of mixed
fwd/bwd requests through the pipelined round scheduler: up to W
rounds stay in flight, workers compute round i+1 while the master
verifies/decodes round i, and the results stay byte-identical to
serial execution.
"""

import argparse

import numpy as np

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matvec


def parse_args():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "backend",
        nargs="?",
        default="sim",
        choices=("sim", "threaded", "process", "tcp"),
        help="execution backend (default: sim; tcp spawns a loopback socket fleet)",
    )
    parser.add_argument("--seed", type=int, default=0, help="rng seed")
    parser.add_argument("--n", type=int, default=6, help="workers (code length)")
    parser.add_argument("--k", type=int, default=3, help="data partitions (code dim)")
    parser.add_argument(
        "--inflight",
        type=int,
        default=1,
        help="pipelined-scheduler window (>= 2 demos round pipelining)",
    )
    return parser.parse_args()


def main():
    args = parse_args()
    rng = np.random.default_rng(args.seed)
    field = PrimeField()  # the paper's q = 2**25 - 39
    print(f"backend: {args.backend}; field: F_q with q = {field.q}")

    # ---- the computation we want: z = X @ w over F_q ----------------
    m, d = 4 * args.k, 8
    x = field.random((m, d), rng)
    w = field.random(d, rng)
    expected = ff_matvec(field, x, w)

    # ---- one config describes the whole deployment ------------------
    # worker 1 straggles 10x, worker 2 sends forged results
    workers = [WorkerSpec() for _ in range(args.n)]
    workers[1] = WorkerSpec(straggler_factor=10.0)
    workers[2] = WorkerSpec(behavior="reverse")
    cfg = SessionConfig(
        scheme=SchemeParams(n=args.n, k=args.k, s=1, m=1),
        master="avcc",
        backend=args.backend,
        seed=args.seed,
        workers=tuple(workers),
        batch_window=1,  # one round per request: show pipelining, not batching
        max_inflight_rounds=max(1, args.inflight),
        # keep the injected 10x straggler's sleep short on real backends
        backend_options={} if args.backend == "sim" else {"straggle_scale": 0.01},
    )
    print(f"scheme: (N={args.n}, K={args.k}, S=1, M=1) — Eq. (2) "
          f"needs N >= {cfg.scheme.avcc_required_n}")

    # ---- create the service, load data, submit ----------------------
    with Session.create(cfg) as sess:
        sess.load(x)   # encode into N shares, ship, generate Freivalds keys
        handle = sess.submit_matvec(w)
        z = handle.result()
        record = handle.record

        # ---- what the service did, from its own telemetry -----------
        print(f"\nround used workers {list(record.used_workers)} "
              f"({record.n_verified} verified of {record.n_collected} collected)")
        for wid in record.rejected_workers:
            print(f"  worker {wid} REJECTED (Byzantine) — forgery caught "
                  f"by its Freivalds key")
        unused = [
            wid for wid in range(args.n)
            if wid not in record.used_workers and wid not in record.rejected_workers
        ]
        if unused:
            print(f"  worker(s) {unused} never waited for — the round was "
                  f"cancelled at K verified results (the injected straggler, "
                  f"worker 1, is among them).")

        # ---- optional: pipeline a mixed-family burst -----------------
        if args.inflight >= 2:
            pipelined_burst(sess, field, x, rng, args.inflight)
        print(sess.stats.summary())

    assert np.array_equal(z, expected)
    print(f"\ndecoded X@w from the fastest {args.k} verified results — bit-exact.")


def pipelined_burst(sess, field, x, rng, window):
    """Serve alternating fwd/bwd requests with up to ``window`` rounds
    in flight (sess was created with max_inflight_rounds=window)."""
    m, d = x.shape
    xt = np.ascontiguousarray(x.T)
    jobs = []
    for j in range(2 * window):
        if j % 2 == 0:
            op = field.random(d, rng)
            jobs.append((op, sess.submit_matvec(op), ff_matvec(field, x, op)))
        else:
            op = field.random(m, rng)
            jobs.append(
                (op, sess.submit_matvec(op, transpose=True), ff_matvec(field, xt, op))
            )
    sess.flush()
    print(f"\npipelined burst: {len(jobs)} mixed fwd/bwd requests, "
          f"{sess.rounds_in_flight()} rounds in flight after flush")
    for _, handle, expected in jobs:
        assert np.array_equal(handle.result(), expected)
    stats = sess.stats
    print(f"  pipeline occupancy {stats.pipeline_occupancy:.2f}, "
          f"max depth {stats.max_inflight_depth}, "
          f"{stats.rounds_overlapped} rounds overlapped — all results bit-exact")


if __name__ == "__main__":
    main()
