"""Quickstart: coded matrix-vector multiplication with stragglers and a
Byzantine worker, on your choice of execution backend.

Walks through the paper's core pipeline in five steps on a toy matrix:

1. encode ``X`` with an (N=6, K=3) MDS/Lagrange code (Fig. 1 scaled up);
2. generate per-worker Freivalds verification keys (Eqs. 6-7);
3. run one distributed round on an execution backend with one heavy
   straggler and one Byzantine worker;
4. verify results as they arrive, rejecting the forgery (Eqs. 8-10),
   and cancel the round the moment K results pass — the straggler is
   never waited for;
5. decode ``X @ w`` exactly from the fastest K verified results.

Every backend implements the same ``Backend`` protocol, so step 3 is
the only line that changes between a deterministic simulation and real
threads or processes.

Run:  python examples/quickstart.py [sim|threaded|process]
"""

import sys

import numpy as np

from repro.coding import LagrangeCode, partition_rows, unpartition_rows
from repro.ff import PrimeField, ff_matvec
from repro.runtime import (
    Honest,
    ProcessCluster,
    ReversedValueAttack,
    RoundJob,
    SimCluster,
    SimWorker,
    ThreadedCluster,
    make_profiles,
)
from repro.verify import FreivaldsVerifier


def make_backend(kind, field, workers, rng):
    if kind == "sim":
        return SimCluster(field, workers, rng=rng)
    if kind == "threaded":
        return ThreadedCluster(field, workers, straggle_scale=0.05)
    if kind == "process":
        return ProcessCluster(field, workers, straggle_scale=0.05)
    raise SystemExit(f"unknown backend {kind!r}; pick sim, threaded or process")


def main():
    kind = sys.argv[1] if len(sys.argv) > 1 else "sim"
    rng = np.random.default_rng(0)
    field = PrimeField()  # the paper's q = 2**25 - 39
    print(f"backend: {kind}; field: F_q with q = {field.q}")

    # ---- the computation we want: z = X @ w over F_q ----------------
    m, d, n, k = 12, 8, 6, 3
    x = field.random((m, d), rng)
    w = field.random(d, rng)
    expected = ff_matvec(field, x, w)

    # ---- 1) encode ----------------------------------------------------
    code = LagrangeCode(field, n=n, k=k)
    blocks = partition_rows(x, k)            # (3, 4, 8) row blocks
    shares = code.encode(blocks)             # (6, 4, 8) coded shares
    print(f"encoded {k} blocks into {n} shares (systematic: {code.is_systematic})")

    # ---- 2) verification keys ----------------------------------------
    verifier = FreivaldsVerifier(field)
    keys = verifier.keygen(shares, rng)
    print(f"generated {len(keys)} private Freivalds keys "
          f"(soundness error <= 1/q ~ {1 / field.q:.1e})")

    # ---- 3) a fleet with one straggler + one Byzantine ----------------
    profiles = make_profiles(n, straggler_factors={1: 10.0})
    behaviors = {2: ReversedValueAttack()}   # sends -z instead of z
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    with make_backend(kind, field, workers, rng) as backend:
        backend.distribute("share", shares)
        handle = backend.dispatch_round(RoundJob(payload_key="share", operand=w))

        # ---- 4) verify in arrival order; stop at K verified ----------
        verified, rejected = [], []
        for arrival in handle:
            ok = verifier.check(keys[arrival.worker_id], w, arrival.value)
            status = "ok" if ok else "REJECTED (Byzantine)"
            print(f"  worker {arrival.worker_id} arrived at "
                  f"{arrival.t_arrival * 1e3:7.2f} ms -> {status}")
            (verified if ok else rejected).append(arrival)
            if len(verified) == k:
                handle.cancel()              # no need to wait for more
                break

    # ---- 5) decode from the fastest K verified -------------------------
    idx = np.array([a.worker_id for a in verified])
    vals = np.stack([a.value for a in verified])
    decoded = unpartition_rows(code.decode(idx, vals))

    assert np.array_equal(decoded, expected)
    print(f"\ndecoded X@w from workers {idx.tolist()} — bit-exact.")
    print(f"rejected Byzantine worker(s): {[a.worker_id for a in rejected]}")
    print("straggler (worker 1) was cancelled, never waited for.")


if __name__ == "__main__":
    main()
