"""Audit demo: tamper-evident provenance for a Byzantine round.

One small AVCC session runs with ``audit=True`` against a fleet that
contains a worker which *always corrupts its share*. The demo walks
the full provenance story:

1. **Commit** — every round appends one ``RoundCommitment`` to the
   session's hash-chained ``AuditLog``: operand/output digests,
   per-worker result digests, the verify verdicts, the previous
   record's hash. The Byzantine worker's rejection lands in the chain
   as durable evidence, its corrupted share digested alongside the
   honest ones.
2. **Dump + verify** — the chain is written to ``audit_chain.jsonl``
   and re-verified from disk against the live head and length, the
   same check ``repro audit verify`` runs.
3. **Forge + detect** — one record's ``accepted`` list is edited in
   the dump (the kind of after-the-fact cleanup a tamperer would
   attempt); ``verify_chain`` rejects the file naming the forged
   record.

Usage::

    python examples/audit_demo.py [--rounds N]
"""

import argparse
import json

import numpy as np

from repro.api import Session, SessionConfig
from repro.api.config import WorkerSpec
from repro.coding import SchemeParams
from repro.obs.audit import ChainError, load_jsonl, verify_chain

#: five mildly slowed honest workers plus one fast corrupting worker —
#: the attacker is always among the first verified, so every round
#: carries a rejection
FLEET = [WorkerSpec(straggler_factor=2.0)] * 5 + [
    WorkerSpec(behavior="reverse")
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--chain", default="audit_chain.jsonl",
                        help="where to write the JSONL chain dump")
    args = parser.parse_args()

    cfg = SessionConfig(
        scheme=SchemeParams(n=6, k=3, s=1, m=1),
        backend="sim",
        seed=3,
        audit=True,
        workers=FLEET,
    )

    print("== Audit demo ==")
    with Session.create(cfg) as sess:
        x = sess.field.random((12, 8), np.random.default_rng(0))
        sess.load(x)
        for i in range(args.rounds):
            sess.submit_matvec(
                sess.field.random(8, np.random.default_rng(i))
            ).result()
        head, length = sess.audit.head, len(sess.audit)
        sess.audit.dump_path(args.chain)

        rec = sess.audit.records[-1]
        print(f"{length} rounds committed, chain head {head[:16]}...")
        print(f"\n-- commitment #{rec.seq} ({rec.family}, "
              f"scheme N={rec.scheme[0]} K={rec.scheme[1]}) --")
        print(f"  workers   {list(rec.workers)}")
        print(f"  rejected  {list(rec.rejected)}  (the Byzantine worker, "
              f"its share digested as evidence)")
        print(f"  accepted  {list(rec.accepted)}  verify_ok={rec.verify_ok}")
        print(f"  output    {rec.output_digest[:16]}...  "
              f"prev {rec.prev[:16]}...")

    verified_head = verify_chain(
        load_jsonl(args.chain), expect_head=head, expect_length=length
    )
    print(f"\ndump re-verified from {args.chain}: head matches "
          f"({verified_head[:16]}...) — `repro audit verify {args.chain} "
          f"--head {head[:12]}... --length {length}` runs the same check")

    # forge: rewrite history so the rejected worker looks accepted
    rows = [json.loads(line) for line in open(args.chain)]
    rows[1]["accepted"] = sorted(rows[1]["accepted"] + rows[1]["rejected"])
    rows[1]["rejected"] = []
    forged = args.chain + ".forged"
    with open(forged, "w") as fp:
        for row in rows:
            fp.write(json.dumps(row, sort_keys=True) + "\n")
    try:
        verify_chain(load_jsonl(forged), expect_head=head,
                     expect_length=length)
        print("forgery NOT detected — this should never happen")
    except ChainError as exc:
        print(f"\nforged acceptance in record 1 detected: {exc}")


if __name__ == "__main__":
    main()
