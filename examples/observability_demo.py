"""Observability demo: request-to-round tracing + live telemetry.

One bursty multi-tenant trace is served twice against the same
simulated AVCC fleet:

1. **observability on** — through ``Gateway.run_async`` with a live
   telemetry endpoint attached (``telemetry_port=0`` picks a free
   port). While the service runs, ``/healthz``, Prometheus
   ``/metrics`` and ``/trace/<id>`` are all queryable over plain HTTP;
   afterwards one served request's *resolved* trace — gateway
   admission → queue → session → the round it rode (broadcast /
   worker compute / verify / decode) — is rendered as a timeline, and
   the full snapshot is written to ``obs_snapshot.json`` (inspect it
   later with ``repro obs obs_snapshot.json``).
2. **observability off** (the default) — the identical replay with the
   knob left off, proving the off-switch: the ServeReport is
   byte-identical, the instrumentation simply never runs.

Usage::

    python examples/observability_demo.py [--requests N]
"""

import argparse
import asyncio
import json
import urllib.request

import numpy as np

from repro.api import Session
from repro.experiments.common import (
    SERVING_SCALE,
    ExperimentConfig,
    make_serving_workload,
    serving_config,
)
from repro.obs.bridge import render_timeline
from repro.serve import Gateway, GatewayConfig, OpenLoopSource

HYBRID = {"window": 16, "safety": 2.0, "linger": 0.02}


def build_gateway(sess, requests, tenant_weights):
    x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
    sess.load(x)
    return Gateway(
        sess,
        OpenLoopSource(requests),
        GatewayConfig(
            batch_policy="hybrid",
            policy_options=HYBRID,
            tenant_weights=tenant_weights,
        ),
    )


def replay(cfg, n_requests, observability, snapshot_path=None):
    import dataclasses

    session_cfg = dataclasses.replace(
        serving_config(cfg), observability=observability
    )
    with Session.create(session_cfg) as sess:
        generator, requests = make_serving_workload(
            sess.field, SERVING_SCALE, n_requests=n_requests
        )
        gateway = build_gateway(sess, requests, generator.tenant_weights)

        if not observability:
            return gateway.run(), None, None

        async def serve():
            report = await gateway.run_async(telemetry_port=0)
            loop = asyncio.get_running_loop()
            url = gateway.telemetry.url

            def fetch(path):
                with urllib.request.urlopen(url + path, timeout=10) as resp:
                    return resp.read().decode()

            try:
                health = await loop.run_in_executor(None, fetch, "/healthz")
                prom = await loop.run_in_executor(None, fetch, "/metrics")
                served = report.served[0]
                doc = json.loads(
                    await loop.run_in_executor(
                        None, fetch, f"/trace/req-{served.request_id}"
                    )
                )
            finally:
                await gateway.telemetry.stop()
            return report, (url, health, prom, doc)

        report, endpoint = asyncio.run(serve())
        sess.obs.dump_path(snapshot_path)
        return report, endpoint, sess.obs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=48)
    parser.add_argument("--snapshot", default="obs_snapshot.json",
                        help="where to write the Observability.snapshot JSON")
    args = parser.parse_args()
    cfg = ExperimentConfig(iterations=40)

    print("== Observability demo ==")
    report_on, (url, health, prom, doc), _ = replay(
        cfg, args.requests, True, snapshot_path=args.snapshot
    )
    print(f"served {len(report_on.served)}/{report_on.total} requests "
          f"with a live telemetry endpoint at {url}")
    print(f"healthz {health.strip()}")

    print("\n-- Prometheus /metrics (excerpt) --")
    wanted = ("gateway_requests_total", "session_rounds_total",
              "gateway_request_latency_seconds_count")
    for line in prom.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")

    tid = doc["trace_id"]
    names = sorted({s["name"] for s in doc["spans"]})
    print(f"\n-- /trace/{tid} spans: {', '.join(names)} --")
    print(render_timeline(doc["spans"], width=56))

    print(f"\nsnapshot written to {args.snapshot} "
          f"(render it with: repro obs {args.snapshot})")

    report_off, _, _ = replay(cfg, args.requests, False)
    on, off = report_on.to_dict(), report_off.to_dict()
    assert json.dumps(on, sort_keys=True) == json.dumps(off, sort_keys=True)
    print("\nServeReport byte-identical with observability off: the "
          "knob adds telemetry, never behavior.")


if __name__ == "__main__":
    main()
