"""Elastic fleet demo: the control plane heals a failing TCP fleet.

A real loopback socket fleet of 6 worker daemons serves a
deadline-carrying trace — with one 8x straggler, and two healthy
workers SIGKILLed before the first request arrives. Uncontrolled, the
shrunken roster has no erasure slack left: every round must wait for
the straggler and the SLO collapses.

The demo attaches PR 7's control plane instead: the gateway closes a
control window every 250 ms and hands its
:class:`~repro.control.signals.WindowSignals` (SLO attainment, queue
depth, shed rate, fleet roster) to an
:class:`~repro.control.autoscaler.Autoscaler`. The first window sees
the dead workers and the SLO burst, so the
:class:`~repro.control.controller.FleetController` restarts the dead
daemons, waits for them to dial back in, and re-codes the roster at
the next quiesce point — after which the straggler is droppable again
and deadlines are met.

Every served answer is still decoded exactly; the demo checks a few
against direct field arithmetic at the end.

Usage::

    python examples/autoscale_demo.py [--requests N]
"""

import argparse
import os
import signal

import numpy as np

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.control import Autoscaler, AutoscalerConfig, FleetController
from repro.ff import PrimeField, ff_matvec
from repro.serve import Gateway, GatewayConfig, OpenLoopSource, Request

SHAPE = (96, 48)
N_WORKERS = 6
KILLED = (4, 5)
STRAGGLER = 1
SPACING = 0.03
SLACK = 0.08
CONTROL_INTERVAL = 0.25


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=100)
    args = parser.parse_args()

    field = PrimeField()
    rng = np.random.default_rng(7)
    x = field.random(SHAPE, rng)
    requests = [
        Request(
            request_id=i,
            tenant="demo",
            family="matvec",
            operand=field.random(SHAPE[1], rng),
            arrival=i * SPACING,
            deadline=i * SPACING + SLACK,
        )
        for i in range(args.requests)
    ]

    config = SessionConfig(
        scheme=SchemeParams(n=N_WORKERS, k=4, s=1, m=0),
        master="avcc",
        backend="tcp",
        workers=tuple(
            WorkerSpec(straggler_factor=8.0 if i == STRAGGLER else 1.0)
            for i in range(N_WORKERS)
        ),
        backend_options={
            "straggle_scale": 0.01,
            "heartbeat_interval": 0.05,
            "heartbeat_timeout": 0.5,
        },
    )

    with Session.create(config) as sess:
        sess.load(x)
        print(f"fleet up: {N_WORKERS} worker daemons, scheme {sess.master.scheme_now}")
        pids = sess.backend.worker_pids()
        for wid in KILLED:
            os.kill(pids[wid], signal.SIGKILL)
        print(f"SIGKILLed workers {list(KILLED)} — no erasure slack left")
        probe = field.random(SHAPE[1], rng)
        while not set(KILLED) <= set(sess.backend.membership().dead):
            sess.submit_matvec(probe).result()  # rounds observe the deaths

        controller = FleetController(
            sess,
            Autoscaler(
                AutoscalerConfig(
                    slo_target=0.9,
                    scale_up_after=1,
                    scale_step=len(KILLED),
                    cooldown_windows=1,
                    min_workers=N_WORKERS,
                    max_workers=N_WORKERS,
                )
            ),
        )
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(
                batch_policy="hybrid",
                policy_options={"window": 8, "linger": 0.01},
            ),
            control_interval=CONTROL_INTERVAL,
            controller=controller,
        )
        report = gateway.run()

        print("\nwindow  slo    live  pend  dead  decision")
        for window, (decision, _) in zip(
            gateway.window_history, controller.actions
        ):
            print(
                f"  {window.window_index:>4}  {window.slo_attainment:>5.0%}"
                f"  {window.live_workers:>4}  {window.pending_workers:>4}"
                f"  {window.dead_workers:>4}  {decision.action}"
                + (f" ({decision.reason})" if decision.reason else "")
            )

        view = sess.backend.membership()
        print(
            f"\nfinal roster: {len(view.live)} live, scheme "
            f"{sess.master.scheme_now} — "
            + ("fully healed" if len(view.live) == N_WORKERS else "degraded")
        )
        print(
            f"served {len(report.served)}/{report.total}, "
            f"SLO attainment {report.slo_attainment:.1%}"
        )
        print(sess.stats.summary())

        by_id = {r.request_id: r for r in requests}
        checked = 0
        for rid in sorted(gateway.results)[:5]:
            expected = ff_matvec(field, x, by_id[rid].operand)
            got = np.asarray(gateway.results[rid]).ravel()
            assert np.array_equal(got, expected), f"request {rid} mismatch"
            checked += 1
        print(f"{checked} spot-checked answers verified bit-exact")


if __name__ == "__main__":
    main()
