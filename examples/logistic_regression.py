"""Distributed logistic regression under attack — the paper's headline
experiment (Fig. 3).

Trains the two-round protocol with AVCC, LCC and the uncoded baseline
on a GISETTE-like dataset while one straggler and two Byzantine workers
(constant attack) disrupt the cluster, then prints accuracy-vs-time
curves and speedups.

Run:  python examples/logistic_regression.py [panel]
      panel in {a, b, c, d} (default: d, the strongest contrast)
"""

import sys

from repro.experiments import ExperimentConfig, run_fig3
from repro.experiments.table1 import speedup_over


def main():
    panel = sys.argv[1] if len(sys.argv) > 1 else "d"
    cfg = ExperimentConfig(iterations=50)
    print(f"running Fig. 3({panel}) at scale m={cfg.m}, d={cfg.d}, "
          f"{cfg.iterations} iterations, N={cfg.n_workers}, K={cfg.k} ...\n")

    result = run_fig3(panel, cfg)
    print(result.render())

    print("\nspeedups (time-to-accuracy, AVCC vs baseline):")
    for baseline in ("lcc", "uncoded"):
        print(f"  vs {baseline:8s}: {speedup_over(result, baseline):.2f}x")

    avcc = result.histories["avcc"]
    if any(b for b in avcc.detected_byzantine):
        detected = sorted({w for ws in avcc.detected_byzantine for w in ws})
        print(f"\nAVCC detected and dropped Byzantine workers: {detected}")
        print(f"scheme trajectory: {avcc.schemes[0]} -> {avcc.schemes[-1]}")


if __name__ == "__main__":
    main()
