"""Micro-benchmarks of the finite-field substrate.

These are genuine wall-clock benches (pytest-benchmark statistics are
meaningful here): chunked modular matmul, Fermat vs Montgomery
inversion, vectorized modpow.
"""

import numpy as np
import pytest

from repro.ff import batch_inverse, ff_matmul, ff_matvec, mod_inverse


@pytest.mark.parametrize("n", [128, 512])
def test_ff_matmul_square(benchmark, field, rng, n):
    a = field.random((n, n), rng)
    b = field.random((n, n), rng)
    out = benchmark(ff_matmul, field, a, b)
    assert out.shape == (n, n)


def test_ff_matmul_chunked_overhead(benchmark, field, rng):
    """The chunked path (forced) must stay within ~3x of single-shot
    for GISETTE-block shapes — chunking is an overflow guard, not a
    performance cliff."""
    a = field.random((64, 5000), rng)
    b = field.random((5000, 8), rng)

    import time

    t0 = time.perf_counter()
    want = ff_matmul(field, a, b)
    single = time.perf_counter() - t0

    old = field.chunk
    field.chunk = 512
    try:
        t0 = time.perf_counter()
        got = ff_matmul(field, a, b)
        chunked = time.perf_counter() - t0
    finally:
        field.chunk = old
    np.testing.assert_array_equal(got, want)
    assert chunked < max(3.5 * single, single + 0.05)
    benchmark(ff_matmul, field, a, b)


def test_worker_round_matvec(benchmark, field, rng):
    """The exact hot operation a worker performs per round at GISETTE
    scale: (667, 5000) x (5000,)."""
    share = field.random((667, 5000), rng)
    w = field.random(5000, rng)
    out = benchmark(ff_matvec, field, share, w)
    assert out.shape == (667,)


def test_fermat_inverse_vectorized(benchmark, field, rng):
    a = field.random(100_000, rng) + 1
    a %= field.q
    a[a == 0] = 1
    inv = benchmark(mod_inverse, a, field.q)
    assert np.all(a * inv % field.q == 1)


def test_montgomery_batch_inverse_small(benchmark, field, rng):
    """Decoder-sized batches (N+K elements) — the Montgomery trick's
    natural regime."""
    a = field.random(32, rng) + 1
    a %= field.q
    a[a == 0] = 1
    inv = benchmark(batch_inverse, a, field.q)
    assert np.all(a * inv % field.q == 1)
