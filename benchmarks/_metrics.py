"""Key-metric emission for the CI perf-regression gate.

pytest-benchmark JSON captures *wall* times, but the metrics this
repo's perf gate guards are protocol-level and deterministic on the
simulator: the session's batching factor, the pipeline's simulated
service-time speedup, pipeline occupancy. Benches record them with
:func:`record_metric`; when the ``BENCH_METRICS_OUT`` environment
variable names a file, the metrics are merged into that JSON (created
on first write), and ``check_perf_regression.py`` compares the file
against the committed baselines under ``benchmarks/baselines/``.

Without ``BENCH_METRICS_OUT`` set the helper is a no-op, so local
bench runs need no extra setup.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["record_metric"]


def record_metric(name: str, value: float) -> None:
    """Merge ``{name: value}`` into the ``BENCH_METRICS_OUT`` JSON."""
    out = os.environ.get("BENCH_METRICS_OUT")
    if not out:
        return
    path = Path(out)
    metrics: dict[str, float] = {}
    if path.exists():
        metrics = json.loads(path.read_text())
    metrics[name] = float(value)
    path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
