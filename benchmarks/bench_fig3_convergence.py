"""Fig. 3 — convergence of AVCC / LCC / uncoded under attack.

Each bench regenerates one panel and asserts the paper's qualitative
claims:

* (a)/(c) ``M = 1``: all coded methods converge to the same accuracy;
  AVCC gets there faster than LCC; uncoded is slowest and (being
  attack-blind) converges lower.
* (b)/(d) ``M = 2``: LCC's design capacity is exceeded — its accuracy
  degrades below AVCC's; uncoded degrades further; the constant attack
  (d) hurts more than the reverse-value attack (b).
"""

import pytest

from conftest import run_once

from repro.experiments import run_fig3


@pytest.mark.parametrize("panel", ["a", "b", "c", "d"])
def test_fig3(benchmark, cfg, panel):
    result = run_once(benchmark, run_fig3, panel, cfg)
    print("\n" + result.render())

    avcc = result.histories["avcc"]
    lcc = result.histories["lcc"]
    unc = result.histories["uncoded"]

    # universal claims -------------------------------------------------
    # AVCC is the accuracy ceiling: never beaten by a baseline
    assert avcc.plateau_accuracy() >= lcc.plateau_accuracy() - 0.005
    assert avcc.plateau_accuracy() >= unc.plateau_accuracy() - 0.005
    # AVCC converges to a healthy model despite the attacks
    assert avcc.plateau_accuracy() >= 0.88
    # uncoded pays the straggler tail every iteration
    assert unc.total_time > 2.5 * avcc.total_time

    if panel in ("a", "c"):
        # M=1: LCC corrects the lone attacker -> same accuracy as AVCC...
        assert lcc.plateau_accuracy() == pytest.approx(
            avcc.plateau_accuracy(), abs=0.01
        )
        # ...but AVCC finishes the run faster (Fig. 3a: "AVCC reaches
        # this accuracy level faster than LCC")
        assert avcc.total_time < lcc.total_time
    else:
        # M=2: LCC is poisoned beyond capacity and converges lower
        assert lcc.plateau_accuracy() < avcc.plateau_accuracy() - 0.02
        # uncoded (no detection at all) is the worst
        assert unc.plateau_accuracy() < avcc.plateau_accuracy() - 0.04

    if panel == "d":
        # the constant attack is the stronger one (Sec. VI)
        assert unc.plateau_accuracy() < 0.80


def test_fig3_constant_attack_stronger_than_reverse(benchmark, cfg):
    """Cross-panel claim: for every attack-blind/under-provisioned
    method, the constant attack degrades accuracy at least as much as
    the reverse-value attack (Sec. VI: 'the constant attack is a
    stronger attack')."""

    def run_both():
        return run_fig3("b", cfg), run_fig3("d", cfg)

    rev, const = run_once(benchmark, run_both)
    assert const.histories["lcc"].plateau_accuracy() <= rev.histories[
        "lcc"
    ].plateau_accuracy() + 0.005
    assert const.histories["uncoded"].plateau_accuracy() <= rev.histories[
        "uncoded"
    ].plateau_accuracy() + 0.005
