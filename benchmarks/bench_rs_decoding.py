"""Ablation: the cost LCC pays for Byzantine tolerance.

Berlekamp–Welch decoding cost as a function of the error budget — the
concrete price of coupling detection to decoding, which AVCC's
decoupling (cheap per-worker Freivalds checks) avoids. Also verifies
the 2-errors-per-slack exchange rate end to end.
"""

import numpy as np
import pytest

from repro.coding import LagrangeCode
from repro.ff import DecodingError, Poly, ReedSolomon, berlekamp_welch


@pytest.mark.parametrize("n_err", [0, 1, 2, 4])
def test_bw_cost_vs_errors(benchmark, field, rng, n_err):
    """Fixed degree, growing error budget: receive enough symbols for
    each budget and decode."""
    deg = 8
    n = deg + 1 + 2 * n_err + 1
    coeffs = field.random(deg + 1, rng)
    p = Poly(field, coeffs)
    xs = field.distinct_points(n)
    ys = p(xs).copy()
    bad = rng.choice(n, size=n_err, replace=False) if n_err else []
    for i in bad:
        ys[i] = (ys[i] + 1 + rng.integers(field.q - 1)) % field.q

    got, errs = benchmark(berlekamp_welch, field, xs, ys, deg)
    assert got == p
    assert set(errs.tolist()) == set(np.asarray(bad).tolist())


def test_rs_block_decode_with_projection(benchmark, field, rng):
    """Vector-symbol decode at GISETTE block width: one projection +
    one scalar BW + erasure interpolation."""
    n, k = 12, 9
    code = LagrangeCode(field, n=n, k=k)
    blocks = field.random((k, 667), rng)
    shares = code.encode(blocks)
    shares[4] = field.random(667, rng)  # one Byzantine share
    idx = np.arange(11)  # one straggler

    def decode():
        return code.decode_corrected(idx, shares[:11], max_errors=1, rng=rng)

    out, errs = benchmark(decode)
    np.testing.assert_array_equal(out, blocks)
    assert errs.tolist() == [4]


def test_slack_exchange_rate(benchmark, field, rng):
    """Each tolerated error consumes exactly two spare evaluations:
    with 2e extra symbols e errors decode, with 2e-1 they cannot be
    guaranteed."""
    deg = 5

    def check():
        results = []
        for e in (1, 2, 3):
            p = Poly(field, field.random(deg + 1, rng))
            n_ok = deg + 1 + 2 * e
            xs = field.distinct_points(n_ok)
            ys = p(xs).copy()
            bad = rng.choice(n_ok, size=e, replace=False)
            for i in bad:
                ys[i] = (ys[i] + 7) % field.q
            got, _ = berlekamp_welch(field, xs, ys, deg)
            results.append(got == p)
        return results

    assert all(benchmark(check))


def test_rs_insufficient_raises(field, rng):
    rs = ReedSolomon(field, field.distinct_points(6), 5)
    with pytest.raises(DecodingError):
        rs.decode(np.arange(4), field.random((4, 3), rng), np.array([1]))
