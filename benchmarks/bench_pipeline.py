"""Pipelined round scheduler: the mixed-family serving path.

PR 2's round batcher collapses B same-family jobs into one round; this
bench quantifies the orthogonal win for rounds that **cannot** batch —
independent jobs on different encoded families (fwd vs. bwd), the
regime of serving many independent requests against one encoded
dataset. The serial scheduler (``max_inflight_rounds = 1``) pays for
each round's full broadcast → compute → collect → verify → decode
chain back to back; the pipelined scheduler overlaps them:

* the master broadcasts round *i+1* while round *i*'s workers compute;
* workers compute round *i+1* while the master verifies/decodes
  round *i* (the per-worker busy-time queues in the simulator make the
  contention real — overlapping rounds queue on the same fleet);
* the steady-state cost per round collapses from the sum of the stages
  to roughly the widest single stage.

Results are byte-identical to serial execution (asserted here; the
cross-backend property test lives in ``tests/api``). The simulated
service-time ratio is deterministic, so the CI perf gate pins it
against ``benchmarks/baselines/metrics.json``.
"""

import numpy as np
import pytest

from _metrics import record_metric
from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams

N, K = 12, 9
#: serving scale (cf. bench_session): per-round overhead dominates
M_ROWS, D_COLS = 240, 120
#: independent single-job requests, alternating fwd / bwd families
N_JOBS = 24
WINDOW = 8


def _config(cfg, max_inflight, seed=5):
    specs = [WorkerSpec() for _ in range(N)]
    specs[0] = WorkerSpec(straggler_factor=5.0)
    specs[1] = WorkerSpec(behavior="reverse")
    return SessionConfig(
        scheme=SchemeParams(n=N, k=K, s=1, m=1),
        master="avcc",
        backend="sim",
        seed=seed,
        workers=tuple(specs),
        batch_window=1,  # one round per job: isolate pipelining from batching
        max_inflight_rounds=max_inflight,
        cost=cfg.cost_dict(),
    )


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(20220322)
    from repro.ff import DEFAULT_PRIME, PrimeField

    field = PrimeField(DEFAULT_PRIME)
    x = field.random((M_ROWS, D_COLS), rng)
    jobs = []
    for j in range(N_JOBS):
        if j % 2 == 0:
            jobs.append(("fwd", field.random(D_COLS, rng)))
        else:
            jobs.append(("bwd", field.random(M_ROWS, rng)))
    return field, x, jobs


def _serve(cfg, workload, max_inflight):
    """Run the mixed-family workload; returns (results, sim_time, stats)."""
    field, x, jobs = workload
    with Session.create(_config(cfg, max_inflight)) as sess:
        sess.load(x)
        t0 = sess.now
        handles = [
            sess.submit_matvec(op, transpose=(fam == "bwd")) for fam, op in jobs
        ]
        results = [h.result() for h in handles]
        elapsed = sess.now - t0
    return results, elapsed, sess.stats


def test_serial_mixed_family_service(benchmark, cfg, workload):
    """The baseline: every round runs broadcast-to-decode alone."""
    results, elapsed, stats = benchmark.pedantic(
        lambda: _serve(cfg, workload, 1), rounds=1, iterations=1
    )
    assert stats.rounds_executed == N_JOBS
    assert stats.max_inflight_depth == 1
    assert stats.rounds_overlapped == 0


def test_pipelined_mixed_family_service(benchmark, cfg, workload):
    """Same workload through a window of WINDOW in-flight rounds."""
    results, elapsed, stats = benchmark.pedantic(
        lambda: _serve(cfg, workload, WINDOW), rounds=1, iterations=1
    )
    assert stats.rounds_executed == N_JOBS
    assert stats.max_inflight_depth >= 2
    assert stats.rounds_overlapped > 0


def test_pipeline_speedup_and_identical_bytes(cfg, workload):
    """The acceptance pin: >= 1.5x simulated service time on the
    mixed-family serving workload, byte-identical decodes."""
    serial_results, serial_time, serial_stats = _serve(cfg, workload, 1)
    piped_results, piped_time, piped_stats = _serve(cfg, workload, WINDOW)

    for a, b in zip(serial_results, piped_results):
        assert a.tobytes() == b.tobytes()

    speedup = serial_time / piped_time
    record_metric("pipeline_speedup", speedup)
    record_metric("pipeline_occupancy", piped_stats.pipeline_occupancy)
    assert speedup >= 1.5, (
        f"pipelining should cut mixed-family serving time by >= 1.5x: "
        f"serial {serial_time:.4f}s vs pipelined {piped_time:.4f}s "
        f"({speedup:.2f}x)"
    )
    # the pipeline actually filled (not just double-buffered)
    assert piped_stats.pipeline_occupancy > 2.0
