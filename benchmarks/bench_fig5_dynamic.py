"""Fig. 5 — dynamic AVCC vs Static VCC.

Shape assertions (paper Sec. VI "Dynamic Coding"):

* AVCC detects the Byzantine node and the three stragglers in the
  first iteration and re-encodes from (12, 9) to (11, 8);
* the re-encode is a one-time cost (exactly one bump);
* despite the bump, AVCC's total time beats Static VCC's (the paper's
  41 s cost vs 54 s net saving);
* Static VCC never changes its scheme.
"""

from conftest import run_once

from repro.experiments import run_fig5


def test_fig5(benchmark, cfg):
    result = run_once(benchmark, run_fig5, cfg)
    print("\n" + result.render())

    # the re-encode happened once, early
    assert result.reencode_iteration == 0
    assert result.reencode_cost > 0
    bumps = [t for t in result.avcc.reencode_times if t > 0]
    assert len(bumps) == 1

    # scheme trajectory: (12,9) -> drop Byzantine + shrink -> (11,8)
    assert result.avcc.schemes[0] == (11, 8)
    assert result.avcc.schemes[-1] == (11, 8)
    assert all(s == (12, 9) for s in result.static.schemes)

    # net win for dynamic coding despite the one-time cost
    assert result.net_saving > 0
    assert result.avcc.total_time < result.static.total_time

    # the saving accrues per-iteration: static pays straggler latency
    # every iteration after the adaptation point
    per_iter_static = result.static.total_time / result.static.iterations()
    per_iter_avcc = (
        result.avcc.total_time - result.reencode_cost
    ) / result.avcc.iterations()
    assert per_iter_static > 1.5 * per_iter_avcc

    # both converge to the same model quality — adaptation must not
    # cost accuracy
    assert abs(
        result.avcc.plateau_accuracy() - result.static.plateau_accuracy()
    ) < 0.02


def test_fig5_payback_horizon(benchmark, cfg):
    """The re-encode must pay for itself within the run (the paper's
    one-time 41 s against ~2 s/iteration savings)."""
    result = run_once(benchmark, run_fig5, cfg)
    per_iter_saving = (
        result.static.total_time / result.static.iterations()
        - (result.avcc.total_time - result.reencode_cost) / result.avcc.iterations()
    )
    payback_iterations = result.reencode_cost / per_iter_saving
    assert payback_iterations < cfg.iterations
