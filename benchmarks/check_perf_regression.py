#!/usr/bin/env python
"""Compare measured bench metrics against the committed baselines.

Usage::

    python benchmarks/check_perf_regression.py MEASURED.json [BASELINE.json]

``MEASURED.json`` is the file the benches wrote via ``BENCH_METRICS_OUT``
(see ``benchmarks/_metrics.py``); ``BASELINE.json`` defaults to
``benchmarks/baselines/metrics.json``. Every baseline metric must be
present in the measured file and must not fall below
``value * (1 - tolerance)`` — all gated metrics are higher-is-better
(batching factor, speedups, occupancy). Measured metrics *above*
baseline never fail: improvements land freely and the baseline is
bumped by regenerating the JSON (command in the baseline's comment).

Baseline entries may be written either as ``{"value": V, "tolerance":
T}`` or as a bare number (the flat format ``BENCH_METRICS_OUT``
emits — a regenerated metrics file can be committed as the baseline
directly); bare numbers get ``DEFAULT_TOLERANCE``.

Exit code 0 = within tolerance; 1 = regression (or missing metric).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "metrics.json"
#: tolerance applied to bare-number baseline entries
DEFAULT_TOLERANCE = 0.15


def check(measured_path: str, baseline_path: str | None = None) -> int:
    measured = json.loads(Path(measured_path).read_text())
    baseline = json.loads(Path(baseline_path or DEFAULT_BASELINE).read_text())

    failures = []
    for name, spec in baseline.items():
        if name.startswith("_"):
            continue
        if isinstance(spec, dict):
            value, tolerance = float(spec["value"]), float(spec["tolerance"])
        else:  # flat format, as emitted by BENCH_METRICS_OUT
            value, tolerance = float(spec), DEFAULT_TOLERANCE
        floor = value * (1.0 - tolerance)
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: missing from measured metrics")
            continue
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"{name}: measured {got:.4f}, baseline {value:.4f} "
            f"(floor {floor:.4f}, tol {tolerance:.0%}) ... {status}"
        )
        if got < floor:
            failures.append(
                f"{name}: {got:.4f} < floor {floor:.4f} "
                f"(baseline {value:.4f}, tolerance {tolerance:.0%})"
            )
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf regression gate passed")
    return 0


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(check(sys.argv[1], sys.argv[2] if len(sys.argv) > 2 else None))
