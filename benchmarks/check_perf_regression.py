#!/usr/bin/env python
"""Compare measured bench metrics against the committed baselines.

Usage::

    python benchmarks/check_perf_regression.py MEASURED.json [BASELINE.json]
        [--select PATTERN ...]

``MEASURED.json`` is the file the benches wrote via ``BENCH_METRICS_OUT``
(see ``benchmarks/_metrics.py``); ``BASELINE.json`` defaults to
``benchmarks/baselines/metrics.json``. Every gated baseline metric must
be present in the measured file and must not fall below
``value * (1 - tolerance)`` — all gated metrics are higher-is-better
(batching factor, speedups, occupancy, SLO attainment). Measured
metrics *above* baseline never fail: improvements land freely.

``--select`` (repeatable, :mod:`fnmatch` patterns) restricts the gate
to matching baseline keys — how CI jobs that each run a *subset* of the
benches share one baseline file (e.g. ``--select 'serving_*'`` in the
``bench-serving`` job). Without it, every baseline key is gated.

Failure modes are reported by name, never as a raw ``KeyError``:

* baseline keys **missing** from the measured file are listed together
  (the usual cause: a bench stopped emitting a metric, or the CI job's
  ``--select`` set and the benches it runs drifted apart);
* measured keys **new** to the baseline are listed as a warning — they
  pass, but should be added to ``baselines/metrics.json`` so they
  become regression-gated;
* malformed baseline entries (a dict without ``value``/``tolerance``)
  name the offending key.

Baseline-update workflow
------------------------
Baseline entries may be written either as ``{"value": V, "tolerance":
T}`` or as a bare number (the flat format ``BENCH_METRICS_OUT`` emits);
bare numbers get ``DEFAULT_TOLERANCE``. To bump after an intentional
perf change, regenerate and commit::

    BENCH_METRICS_OUT=benchmarks/baselines/metrics.json \\
        PYTHONPATH=src python -m pytest benchmarks/bench_session.py \\
        benchmarks/bench_pipeline.py benchmarks/bench_serving.py -q

``record_metric`` merges into the existing file: the ``_comment`` entry
and any ``{value, tolerance}`` entries it does not overwrite survive;
overwritten entries become bare numbers (re-wrap them by hand to pin a
non-default tolerance). New metrics emitted by a bench must be added to
the baseline file (and, if CI gates them in a ``--select``-ed job, to
that job's patterns) in the same PR that introduces them.

Exit code 0 = within tolerance; 1 = regression, missing metric, or
malformed baseline; 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from fnmatch import fnmatch
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "metrics.json"
#: tolerance applied to bare-number baseline entries
DEFAULT_TOLERANCE = 0.15


def check(
    measured_path: str,
    baseline_path: str | None = None,
    select: list[str] | None = None,
) -> int:
    measured = json.loads(Path(measured_path).read_text())
    baseline = json.loads(Path(baseline_path or DEFAULT_BASELINE).read_text())

    gated = {
        name: spec
        for name, spec in baseline.items()
        if not name.startswith("_")
        and (not select or any(fnmatch(name, pat) for pat in select))
    }

    failures = []
    missing = [name for name in gated if name not in measured]
    for name in missing:
        failures.append(f"{name}: baseline metric missing from measured metrics")
    for name, spec in gated.items():
        if name in missing:
            continue
        if isinstance(spec, dict):
            try:
                value, tolerance = float(spec["value"]), float(spec["tolerance"])
            except KeyError as exc:
                failures.append(
                    f"{name}: malformed baseline entry {spec!r} "
                    f"(missing {exc}; use {{'value': V, 'tolerance': T}} or a bare number)"
                )
                continue
        else:  # flat format, as emitted by BENCH_METRICS_OUT
            value, tolerance = float(spec), DEFAULT_TOLERANCE
        floor = value * (1.0 - tolerance)
        try:
            got = float(measured[name])
        except (TypeError, ValueError):
            failures.append(
                f"{name}: measured value {measured[name]!r} is not a number"
            )
            continue
        status = "ok" if got >= floor else "REGRESSION"
        print(
            f"{name}: measured {got:.4f}, baseline {value:.4f} "
            f"(floor {floor:.4f}, tol {tolerance:.0%}) ... {status}"
        )
        if got < floor:
            failures.append(
                f"{name}: {got:.4f} < floor {floor:.4f} "
                f"(baseline {value:.4f}, tolerance {tolerance:.0%})"
            )

    new = sorted(
        name
        for name in measured
        if not name.startswith("_") and name not in baseline
    )
    if new:
        print(
            "\nWARNING: measured metrics not in the baseline (passing, but "
            "ungated — add them to benchmarks/baselines/metrics.json):"
        )
        for name in new:
            print(f"  + {name} = {measured[name]}")

    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    if not gated:
        print(
            f"perf regression gate: no baseline keys matched select={select}",
            file=sys.stderr,
        )
        return 1
    print("\nperf regression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate measured bench metrics against committed baselines."
    )
    parser.add_argument("measured", help="JSON written via BENCH_METRICS_OUT")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help=f"baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="PATTERN",
        help="gate only baseline keys matching this fnmatch pattern "
        "(repeatable; default: all keys)",
    )
    args = parser.parse_args(argv)
    return check(args.measured, args.baseline, args.select)


if __name__ == "__main__":
    sys.exit(main())
