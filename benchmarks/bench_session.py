"""Session-layer round batching: the heavy-traffic path.

The session coalesces concurrently submitted same-family jobs into a
single broadcast round (one ``RoundJob`` serving many jobs). This
bench quantifies the win at the experiments' calibrated scale:

* **rounds**: B batched jobs must execute in exactly 1 round (vs B
  sequential rounds), observable via ``session.stats``;
* **simulated service time**: one broadcast + one straggler exposure +
  one verification sweep + one decode, instead of B of each — the
  per-job cost collapses;
* **wall clock**: the batched matvec kernel is one ``(b, d) @ (d, B)``
  matmul per worker instead of B matvecs — better cache behaviour on
  top of the protocol savings.

The workload is serving-shaped (many small requests against one
encoded dataset): per-round overheads — broadcast transfer, link
latency, the per-round arrival critical path — dominate there, which
is exactly what coalescing amortizes. At compute-bound figure scale
(m=1200, d=600) the protocol savings still exist but shrink to a few
percent of the round, since worker arithmetic scales with B either
way.

Results are byte-identical between the two paths (asserted here; the
full cross-check lives in ``tests/api/test_session.py``).
"""

import numpy as np
import pytest

from _metrics import record_metric
from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams

N, K = 12, 9
BATCH = 16
#: serving scale: GISETTE-like structure, small enough that per-round
#: overhead (not worker arithmetic) is the dominant cost
M_ROWS, D_COLS = 240, 120


def _config(cfg, seed=5):
    specs = [WorkerSpec() for _ in range(N)]
    specs[0] = WorkerSpec(straggler_factor=5.0)
    specs[1] = WorkerSpec(behavior="reverse")
    return SessionConfig(
        scheme=SchemeParams(n=N, k=K, s=1, m=1),
        master="avcc",
        backend="sim",
        seed=seed,
        workers=tuple(specs),
        batch_window=BATCH,
        cost=cfg.cost_dict(),
    )


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(20220322)
    from repro.ff import DEFAULT_PRIME, PrimeField

    field = PrimeField(DEFAULT_PRIME)
    x = field.random((M_ROWS, D_COLS), rng)
    ops = [field.random(D_COLS, rng) for _ in range(BATCH)]
    return field, x, ops


def test_batched_submission_throughput(benchmark, cfg, workload):
    """B concurrent jobs through the round batcher: 1 round total."""
    field, x, ops = workload

    def run():
        with Session.create(_config(cfg)) as sess:
            sess.load(x)
            handles = [sess.submit_matvec(w) for w in ops]
            results = [h.result() for h in handles]
            return results, sess.stats

    results, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.rounds_executed == 1
    assert stats.jobs_per_round == [BATCH]
    assert stats.batched_jobs == BATCH
    record_metric("batching_factor", stats.batching_factor)


def test_sequential_submission_throughput(benchmark, cfg, workload):
    """The same B jobs submitted with a result() barrier between each:
    B rounds, B broadcasts, B straggler exposures. The ratio of the
    two benches' simulated times is the batching speedup."""
    field, x, ops = workload

    def run():
        with Session.create(_config(cfg)) as sess:
            sess.load(x)
            results = [sess.submit_matvec(w).result() for w in ops]
            return results, sess.stats

    results, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.rounds_executed == BATCH
    assert stats.batching_factor == 1.0


def test_batching_serves_identical_bytes_in_less_service_time(cfg, workload):
    """Not a timing bench: pins the batched path's semantics at scale —
    byte-identical decodes and strictly less simulated service time."""
    field, x, ops = workload

    with Session.create(_config(cfg)) as batched:
        batched.load(x)
        t0 = batched.now
        handles = [batched.submit_matvec(w) for w in ops]
        batched_results = [h.result() for h in handles]
        batched_time = batched.now - t0

    with Session.create(_config(cfg)) as sequential:
        sequential.load(x)
        t0 = sequential.now
        seq_results = [sequential.submit_matvec(w).result() for w in ops]
        sequential_time = sequential.now - t0

    for a, b in zip(batched_results, seq_results):
        np.testing.assert_array_equal(a, b)
    record_metric("batching_speedup", sequential_time / batched_time)
    assert batched_time < sequential_time / 2, (
        f"batching should at least halve serving-scale service time at "
        f"B={BATCH}: {batched_time:.4f}s vs {sequential_time:.4f}s"
    )
