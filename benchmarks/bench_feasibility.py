"""Ablation: Eq. (1) vs Eq. (2) — the worker-cost frontier.

Sweeps (K, S, M, T, deg f) and regenerates the paper's resource
comparison: LCC needs ``2M`` extra workers per Byzantine node, AVCC
needs ``M`` — so AVCC supports strictly more fault configurations at
any fixed fleet size.
"""

from conftest import run_once

from repro.coding import SchemeParams
from repro.experiments import format_table


def _sweep():
    rows = []
    savings = []
    for k in (4, 9, 16):
        for deg in (1, 2):
            for t in (0, 1):
                for s in (0, 1, 2, 3):
                    for m in (0, 1, 2, 3):
                        p = SchemeParams(n=10**6, k=k, s=s, m=m, t=t, deg_f=deg)
                        rows.append(
                            (k, deg, t, s, m, p.lcc_required_n, p.avcc_required_n)
                        )
                        savings.append(p.lcc_required_n - p.avcc_required_n)
    return rows, savings


def test_feasibility_frontier(benchmark):
    rows, savings = run_once(benchmark, _sweep)

    # Eq.(1) - Eq.(2) == M for every configuration
    for (k, deg, t, s, m, lcc_n, avcc_n), saving in zip(rows, savings):
        assert saving == m, (k, deg, t, s, m)
        assert avcc_n == (k + t - 1) * deg + s + m + 1

    # the paper's configuration table rows
    paper = SchemeParams(n=12, k=9, s=1, m=1)
    assert paper.lcc_required_n == 12 and paper.avcc_required_n == 11

    interesting = [r for r in rows if r[0] == 9 and r[1] == 1 and r[2] == 0][:8]
    print(
        "\n"
        + format_table(
            ["K", "deg f", "T", "S", "M", "N_LCC (Eq.1)", "N_AVCC (Eq.2)"],
            interesting,
            title="Feasibility frontier (excerpt, K=9, deg f=1, T=0)",
        )
    )


def test_fleet_size_12_fault_envelope(benchmark):
    """At the experimental fleet size (N=12, K=9): enumerate every
    (S, M) the two frameworks support — AVCC's envelope must strictly
    contain LCC's (the paper's S+M<=3 vs S+2M<=3)."""

    def envelope():
        lcc, avcc = set(), set()
        for s in range(4):
            for m in range(4):
                p = SchemeParams(n=12, k=9, s=s, m=m)
                if p.lcc_feasible:
                    lcc.add((s, m))
                if p.avcc_feasible:
                    avcc.add((s, m))
        return lcc, avcc

    lcc, avcc = run_once(benchmark, envelope)
    assert lcc < avcc  # strict superset
    assert (1, 2) in avcc and (1, 2) not in lcc  # the Fig. 3(b)/(d) setting
    assert (2, 1) in avcc and (2, 1) not in lcc
    assert avcc == {(s, m) for s in range(4) for m in range(4) if s + m <= 3}
