"""Fig. 4 — per-iteration runtime breakdown.

Shape assertions:

* (a) clean cluster: AVCC's verification+decoding is *extra* latency —
  total(uncoded) <= total(LCC) <= total(AVCC), all within a few
  percent (the paper plots them as nearly equal bars plus the small
  verify/decode additions);
* (b)/(c) with stragglers: "the decoding and verification overhead in
  AVCC is dwarfed by the straggler latency" — uncoded's compute bar
  dominates everything, and AVCC's verify+decode stays a small
  fraction of its own iteration;
* LCC never reports verification time (detection is inside decoding);
  uncoded reports neither verification nor decoding.
"""

import pytest

from conftest import run_once

from repro.experiments import run_fig4


@pytest.mark.parametrize("panel", ["a", "b", "c"])
def test_fig4(benchmark, cfg, panel):
    result = run_once(benchmark, run_fig4, panel, cfg.with_(iterations=15))
    print("\n" + result.render())

    avcc = result.breakdown["avcc"]
    lcc = result.breakdown["lcc"]
    unc = result.breakdown["uncoded"]

    # category accounting invariants
    assert avcc["verification"] > 0 and avcc["decoding"] > 0
    assert lcc["verification"] == 0 and lcc["decoding"] > 0
    assert unc["verification"] == 0 and unc["decoding"] == 0

    if panel == "a":
        # clean cluster: AVCC's integrity machinery is visible overhead
        assert result.total("uncoded") <= result.total("lcc") <= result.total("avcc")
        # ... but small: within 5% of the uncoded iteration time
        assert result.total("avcc") < 1.05 * result.total("uncoded")
    else:
        # stragglers dominate: uncoded pays them, coded methods do not
        assert result.total("uncoded") > 2.5 * result.total("avcc")
        # AVCC's verification+decoding is dwarfed by compute+comm
        overhead = avcc["verification"] + avcc["decoding"]
        assert overhead < 0.1 * (avcc["compute"] + avcc["communication"])


def test_fig4_verification_scales_with_checks_not_blocks(benchmark, cfg):
    """Ablation on the O(m+d) verification claim: the per-iteration
    verification time must be orders of magnitude below recomputing the
    workers' O(md/K) products at the master."""
    result = run_once(benchmark, run_fig4, "a", cfg.with_(iterations=5))
    avcc = result.breakdown["avcc"]
    # recomputing one worker's product at master rate would cost:
    ds_cfg = cfg
    m_train = int(ds_cfg.m * 0.75)
    macs_per_worker = (m_train // ds_cfg.k) * ds_cfg.d
    recompute = macs_per_worker * ds_cfg.master_sec_per_mac * ds_cfg.k
    assert avcc["verification"] < 0.25 * recompute
