"""Observability overhead, off-switch parity, and endpoint smoke.

The CI ``bench-obs`` job replays the deadline-batched ``bench_serving``
trace (hybrid policy, mixed Poisson+burst arrivals, sim backend) twice
— ``observability=False`` and ``observability=True`` — and gates three
metrics against ``benchmarks/baselines/metrics.json``:

* ``obs_overhead_headroom`` — CPU-time(disabled) / CPU-time(enabled)
  over the traced replay. The baseline pins 1.0 with 3% tolerance, so
  the gate fails when the enabled path is more than ~3% slower than the
  off path (the <= 3% overhead bar). Both replays run on the
  simulator's *virtual* clock, so the reported latencies are identical
  by construction; only the real cost of the Python machinery differs —
  exactly the overhead being measured. The arms are timed with
  ``time.process_time`` (immune to sleeps and other processes),
  interleaved over ``OBS_BENCH_REPEATS`` replay pairs, and the gate
  ratio uses each arm's *minimum* (best-of discards scheduler and
  frequency-scaling noise, which only ever inflates a run).
* ``obs_report_parity`` — 1.0 iff the two replays' full
  ``ServeReport.to_dict()`` JSON *and* ``SessionStats.summary()``
  strings are byte-identical: the off-switch guarantee, enforced in CI
  on the same trace the overhead is measured on.
* ``obs_endpoint_ok`` — 1.0 iff a live telemetry endpoint attached to
  the traced gateway serves ``/healthz``, a Prometheus ``/metrics``
  page containing the request counter, and ``/trace/<id>`` for a served
  request whose resolved spans reach ``round.decode``.
"""

import asyncio
import json
import os
import time
import urllib.request

import numpy as np

from _metrics import record_metric
from repro.api import Session
from repro.experiments.common import (
    SERVING_SCALE,
    make_serving_workload,
    serving_config,
)
from repro.serve import Gateway, GatewayConfig, OpenLoopSource

N_REQUESTS = int(os.environ.get("OBS_TRACE_REQUESTS", "240"))
REPEATS = int(os.environ.get("OBS_BENCH_REPEATS", "5"))
#: inline sanity floor for the headroom assert. The strict <= 3% gate
#: is enforced in CI by check_perf_regression against
#: ``baselines/metrics.json`` (value 1.0, tolerance 0.03); the inline
#: floor is tunable because the ratio is hardware-sensitive — on a
#: 1-core VM the same replay measures several percent slower from
#: cache/allocator pressure alone (the direct per-request cost is
#: ~2.7us tracer + ~1.5us metrics on CPython 3.11).
MIN_HEADROOM = float(os.environ.get("OBS_MIN_HEADROOM", "0.97"))
WINDOW = 16
HYBRID = {"window": WINDOW, "safety": 2.0, "linger": 0.02}


def _replay(cfg, observability, *, n_requests=N_REQUESTS):
    """One deadline-batched replay of the canonical serving trace;
    returns (report, stats-summary, CPU seconds)."""
    import dataclasses

    session_cfg = dataclasses.replace(
        serving_config(cfg), observability=observability
    )
    t_cpu = time.process_time()
    with Session.create(session_cfg) as sess:
        x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
        sess.load(x)
        generator, requests = make_serving_workload(
            sess.field, SERVING_SCALE, n_requests=n_requests
        )
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(
                batch_policy="hybrid",
                policy_options=HYBRID,
                tenant_weights=generator.tenant_weights,
            ),
        )
        report = gateway.run()
        summary = sess.stats.summary()
    return report, summary, time.process_time() - t_cpu


def test_obs_overhead_and_parity(cfg):
    """The <=3% gate: tracing + registry + per-round span recording on
    the full serving trace, priced against the identical untraced
    replay — while the reports stay byte-identical."""
    # warm both paths once (imports, JIT-ish numpy caches), then take
    # best-of-N per arm: best-of discards scheduler noise, which only
    # ever inflates a run
    _replay(cfg, False, n_requests=16)
    _replay(cfg, True, n_requests=16)

    walls_off, walls_on = [], []
    report_off = report_on = None
    summary_off = summary_on = None
    for _ in range(REPEATS):
        report_off, summary_off, w = _replay(cfg, False)
        walls_off.append(w)
        report_on, summary_on, w = _replay(cfg, True)
        walls_on.append(w)

    parity = float(
        json.dumps(report_off.to_dict(), sort_keys=True)
        == json.dumps(report_on.to_dict(), sort_keys=True)
        and report_off.summary() == report_on.summary()
        and summary_off == summary_on
    )
    record_metric("obs_report_parity", parity)
    assert parity == 1.0, "observability changed the report"

    headroom = min(walls_off) / min(walls_on)
    record_metric("obs_overhead_headroom", headroom)
    assert len(report_on.served) == N_REQUESTS
    assert headroom >= MIN_HEADROOM, (
        f"observability overhead exceeds the floor: off {min(walls_off):.3f}s "
        f"vs on {min(walls_on):.3f}s ({(1 / headroom - 1) * 100:.1f}% slower, "
        f"floor {MIN_HEADROOM})"
    )


def test_obs_endpoint_smoke(cfg):
    """A live telemetry endpoint on the traced gateway: health, the
    Prometheus page, and a served request's full trace."""
    import dataclasses

    session_cfg = dataclasses.replace(serving_config(cfg), observability=True)

    async def run():
        with Session.create(session_cfg) as sess:
            x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
            sess.load(x)
            generator, requests = make_serving_workload(
                sess.field, SERVING_SCALE, n_requests=32
            )
            gateway = Gateway(
                sess,
                OpenLoopSource(requests),
                GatewayConfig(
                    batch_policy="hybrid",
                    policy_options=HYBRID,
                    tenant_weights=generator.tenant_weights,
                ),
            )
            report = await gateway.run_async(telemetry_port=0)
            loop = asyncio.get_running_loop()
            url = gateway.telemetry.url

            def fetch(path):
                with urllib.request.urlopen(url + path, timeout=5) as resp:
                    return resp.read().decode()

            try:
                ok = True
                ok &= "ok" in await loop.run_in_executor(None, fetch, "/healthz")
                prom = await loop.run_in_executor(None, fetch, "/metrics")
                ok &= "gateway_requests_total" in prom
                served = report.served[0]
                doc = json.loads(
                    await loop.run_in_executor(
                        None, fetch, f"/trace/req-{served.request_id}"
                    )
                )
                names = {s["name"] for s in doc["spans"]}
                ok &= {"request", "session", "round", "round.decode"} <= names
            finally:
                await gateway.telemetry.stop()
            return float(ok)

    ok = asyncio.run(run())
    record_metric("obs_endpoint_ok", ok)
    assert ok == 1.0
