"""Ablation: verified coded matrix multiplication (generalized AVCC).

Not a paper figure — quantifies the same Eq. (2)-style decoupling win
on the bilinear workload the paper cites polynomial codes [17] for:

* worker budget: AVCC-style tolerance needs ``pq + S + M`` workers
  (the RS alternative would need ``pq + S + 2M``);
* verification stays a small fraction of a worker's multiply;
* end-to-end: the verified coded product is exact under simultaneous
  straggler + Byzantine injection.
"""

import numpy as np
import pytest

from conftest import run_once

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import ff_matmul


def _session(n, stragglers=None, behaviors=None):
    specs = [WorkerSpec() for _ in range(n)]
    for wid, factor in (stragglers or {}).items():
        specs[wid] = WorkerSpec(straggler_factor=factor)
    for wid in behaviors or ():
        specs[wid] = WorkerSpec(behavior="random")
    return Session.create(
        SessionConfig(
            scheme=SchemeParams(n=n, k=1, s=1, m=1),
            master="avcc",
            seed=13,
            workers=tuple(specs),
        )
    )


def test_verified_coded_matmul_end_to_end(benchmark, field, rng):
    a = field.random((240, 200), rng)
    b = field.random((200, 180), rng)
    with _session(9, stragglers={0: 20.0}, behaviors=(5,)) as sess:
        out = run_once(benchmark, lambda: sess.submit_matmul(a, b, p=2, q=3).outcome())
        master_sec_per_mac = sess.backend.cost_model.master_sec_per_mac
    np.testing.assert_array_equal(out.vector, ff_matmul(field, a, b))
    assert out.record.rejected_workers == (5,)
    assert 0 not in out.record.used_workers  # straggler dodged

    # verification dwarfs nothing: it stays well under the per-worker
    # compute the master would otherwise redo
    r = out.record
    worker_macs = 120 * 200 * 60
    recompute = worker_macs * master_sec_per_mac * 6
    assert r.verify_time < 0.5 * recompute


@pytest.mark.parametrize("pq", [(1, 2), (2, 2), (2, 3)])
def test_partitioning_tradeoff(benchmark, field, rng, pq):
    """Finer partitioning = less work per worker but a higher recovery
    threshold — the polynomial-code trade-off surface."""
    p, q = pq
    a = field.random((120, 80), rng)
    b = field.random((80, 60), rng)
    with _session(p * q + 2) as sess:
        out = run_once(benchmark, lambda: sess.submit_matmul(a, b, p=p, q=q).outcome())
    np.testing.assert_array_equal(out.vector, ff_matmul(field, a, b))
    assert out.record.n_verified == p * q


def test_worker_budget_vs_rs_alternative(benchmark):
    """The decoupling dividend, matmul edition: sweeping M, the
    verified design saves exactly M workers over RS error correction."""

    def sweep():
        rows = []
        for pq in (4, 6, 9):
            for s in (0, 1, 2):
                for m in (0, 1, 2, 3):
                    avcc_n = pq + s + m
                    rs_n = pq + s + 2 * m
                    rows.append((pq, s, m, avcc_n, rs_n, rs_n - avcc_n))
        return rows

    rows = run_once(benchmark, sweep)
    for pq, s, m, avcc_n, rs_n, saving in rows:
        assert saving == m
