"""Elastic fleet under failure: fixed roster vs the SLO autoscaler.

Two gateway runs replay the *same* deadline-carrying open-loop trace
over a real loopback TCP fleet of 8 worker daemons (scheme ``(n=8,
k=6, S=1)``, one injected 8x straggler) after two healthy workers are
SIGKILLed before the trace starts:

* **fixed** — no control plane. The dead pair stays in the coding
  roster as permanent erasures, so every round must wait for *all* six
  survivors — including the straggler, whose injected sleep exceeds
  the request SLO. Deadline misses pile up for the whole run.
* **autoscaled** — the gateway closes a control window every 250 ms
  and feeds it to the PR 7 control plane. The first window sees the
  dead workers and the SLO burst: the controller re-codes (evicting
  the dead pair and re-deriving K so the straggler is droppable
  again) and scales back up (restarting both daemons, admitting them
  at the quiesce, re-coding to the provisioned ``(8, 6)``). SLO
  attainment recovers for the rest of the trace.

CI gates (``bench-autoscale`` job, ``autoscale_*`` keys):

* ``autoscale_recode_recovered`` — 1.0 iff the autoscaled run ends
  with the full provisioned roster live and the scheme back at
  ``(8, 6)``. Binary, tolerance 0.
* ``autoscale_served_fraction`` — served fraction of the autoscaled
  run (the fixed run's served answers also stay byte-exact — coding
  changes are never allowed to corrupt results, only to delay them).
* ``autoscale_slo_uplift`` — autoscaled minus fixed SLO attainment;
  the loose floor guards the headline without depending on runner
  speed.
* ``autoscale_rounds_per_s`` — deliberately loose wall-clock floor.

Byte-level parity is asserted in-bench: every served answer in both
runs must equal the plain-field ground truth.
"""

import os
import signal
import time

import numpy as np

from _metrics import record_metric
from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.control import Autoscaler, AutoscalerConfig, FleetController
from repro.ff import PrimeField, ff_matvec
from repro.serve import Gateway, GatewayConfig, OpenLoopSource, Request

F = PrimeField()

SHAPE = (96, 48)
N_REQUESTS = 120
SPACING = 0.03  # seconds between arrivals (open loop)
SLACK = 0.08  # relative deadline: generous vs a healthy round,
#               hopeless vs the straggler's 70 ms injected sleep
KILLED = (6, 7)
STRAGGLER = 1
STRAGGLE_FACTOR = 8.0
CONTROL_INTERVAL = 0.25


def _config():
    workers = tuple(
        WorkerSpec(straggler_factor=STRAGGLE_FACTOR if i == STRAGGLER else 1.0)
        for i in range(8)
    )
    return SessionConfig(
        scheme=SchemeParams(n=8, k=6, s=1, m=0),
        master="avcc",
        backend="tcp",
        workers=workers,
        backend_options={
            "straggle_scale": 0.01,
            "heartbeat_interval": 0.05,
            "heartbeat_timeout": 0.5,
        },
    )


def _trace(rng):
    return [
        Request(
            request_id=i,
            tenant="t",
            family="matvec",
            operand=F.random(SHAPE[1], rng),
            arrival=i * SPACING,
            deadline=i * SPACING + SLACK,
        )
        for i in range(N_REQUESTS)
    ]


def _run(controlled):
    """One gateway run over the canonical degraded-fleet scenario."""
    rng = np.random.default_rng(42)
    x = F.random(SHAPE, rng)
    requests = _trace(rng)
    with Session.create(_config()) as sess:
        sess.load(x)
        pids = sess.backend.worker_pids()
        for wid in KILLED:
            os.kill(pids[wid], signal.SIGKILL)
        # throwaway rounds flush the heartbeat machinery, so both
        # variants start the trace from the same degraded roster
        probe = F.random(SHAPE[1], rng)
        deadline = time.monotonic() + 30.0
        while not set(KILLED) <= set(sess.backend.membership().dead):
            assert time.monotonic() < deadline, "deaths never detected"
            sess.submit_matvec(probe).result()
        controller = None
        kwargs = {}
        if controlled:
            controller = FleetController(
                sess,
                Autoscaler(
                    AutoscalerConfig(
                        slo_target=0.9,
                        scale_up_after=1,
                        scale_step=len(KILLED),
                        cooldown_windows=1,
                        min_workers=8,  # hold the provisioned floor
                        max_workers=8,
                    )
                ),
            )
            kwargs = {
                "control_interval": CONTROL_INTERVAL,
                "controller": controller,
            }
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(
                batch_policy="hybrid",
                policy_options={"window": 8, "linger": 0.01},
            ),
            **kwargs,
        )
        t0 = time.perf_counter()
        report = gateway.run()
        wall = time.perf_counter() - t0
        view = sess.backend.membership()
        scheme = sess.master.scheme_now
    # ground-truth parity: coding/membership changes may delay answers,
    # never alter them
    by_id = {r.request_id: r for r in requests}
    for rid, value in gateway.results.items():
        np.testing.assert_array_equal(
            np.asarray(value).ravel(),
            ff_matvec(F, x, by_id[rid].operand),
        )
    return {
        "report": report,
        "view": view,
        "scheme": scheme,
        "controller": controller,
        "wall": wall,
        "windows": gateway.window_history,
    }


def test_autoscaler_recovers_slo_after_fleet_failure():
    fixed = _run(controlled=False)
    scaled = _run(controlled=True)

    # the fixed roster never changes; the autoscaled one heals fully
    assert fixed["scheme"] == (8, 6) and fixed["view"].dead == KILLED
    recovered = float(
        scaled["scheme"] == (8, 6)
        and scaled["view"].live == tuple(range(8))
        and scaled["view"].dead == ()
    )
    assert recovered == 1.0, (scaled["scheme"], scaled["view"])
    actions = [d.action for d, _ in scaled["controller"].actions]
    assert "scale_up" in actions or "recode" in actions, actions

    fixed_slo = fixed["report"].slo_attainment
    scaled_slo = scaled["report"].slo_attainment
    uplift = scaled_slo - fixed_slo
    served_fraction = len(scaled["report"].served) / scaled["report"].total
    assert scaled_slo > fixed_slo, (scaled_slo, fixed_slo)

    record_metric("autoscale_recode_recovered", recovered)
    record_metric("autoscale_served_fraction", served_fraction)
    record_metric("autoscale_slo_uplift", uplift)
    record_metric(
        "autoscale_rounds_per_s",
        scaled["report"].rounds_executed / max(scaled["wall"], 1e-9),
    )
    print(
        f"\nfixed slo={fixed_slo:.1%} | autoscaled slo={scaled_slo:.1%} "
        f"uplift={uplift:+.1%} served={served_fraction:.1%} "
        f"windows={len(scaled['windows'])} actions={actions}"
    )
