"""Ablation: Freivalds verification vs recomputation.

Quantifies the paper's Sec. II-B claim: the integrity check costs
``O(m + d)`` arithmetic ops versus ``O(md)`` for recomputing — at
GISETTE block shape that is a ~300x wall-clock gap, which is what makes
per-worker verification affordable at all.
"""

import numpy as np
import pytest

from repro.ff import ff_matvec
from repro.verify import FreivaldsVerifier, MatrixPolynomialVerifier, TwoStageVerifier


@pytest.fixture(scope="module")
def gisette_block():
    from repro.ff import DEFAULT_PRIME, PrimeField

    field = PrimeField(DEFAULT_PRIME)
    rng = np.random.default_rng(5)
    share = field.random((667, 5000), rng)
    w = field.random(5000, rng)
    z = ff_matvec(field, share, w)
    return field, share, w, z, rng


def test_freivalds_check(benchmark, gisette_block):
    field, share, w, z, rng = gisette_block
    v = FreivaldsVerifier(field)
    key = v.keygen_single(share, rng)
    ok = benchmark(v.check, key, w, z)
    assert ok


def test_recompute_baseline(benchmark, gisette_block):
    """The alternative to verification: redo the worker's multiply."""
    field, share, w, z, rng = gisette_block
    out = benchmark(ff_matvec, field, share, w)
    np.testing.assert_array_equal(out, z)


def test_check_vs_recompute_gap(gisette_block):
    """Direct wall-clock comparison: verification at least 20x cheaper."""
    import time

    field, share, w, z, rng = gisette_block
    v = FreivaldsVerifier(field)
    key = v.keygen_single(share, rng)

    t0 = time.perf_counter()
    for _ in range(20):
        assert v.check(key, w, z)
    t_check = (time.perf_counter() - t0) / 20

    t0 = time.perf_counter()
    for _ in range(3):
        ff_matvec(field, share, w)
    t_recompute = (time.perf_counter() - t0) / 3

    assert t_check * 20 < t_recompute


@pytest.mark.parametrize("probes", [1, 2, 4])
def test_probe_scaling(benchmark, gisette_block, probes):
    """Check cost scales linearly in probe count (soundness q^-p)."""
    field, share, w, z, rng = gisette_block
    v = FreivaldsVerifier(field, probes=probes)
    key = v.keygen_single(share, rng)
    assert benchmark(v.check, key, w, z)


def test_two_stage_check(benchmark, field, rng):
    v = TwoStageVerifier(field)
    share = field.random((400, 300), rng)
    key = v.keygen_single(share, rng)
    w = field.random(300, rng)
    z = ff_matvec(field, share, w)
    g = ff_matvec(field, share.T.copy(), z)
    assert benchmark(v.check, key, w, z, g)


def test_matrix_polynomial_check(benchmark, field, rng):
    v = MatrixPolynomialVerifier(field)
    a = field.random((200, 200), rng)
    coeffs = [3, 1, 4, 1]
    y = v.reference_eval(a, coeffs)
    assert benchmark(v.check, a, coeffs, y, rng)
