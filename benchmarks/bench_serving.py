"""Serving gateway: serial vs pipelined vs deadline-batched.

Three gateways replay the *same* mixed Poisson+burst trace (two
tenants, bursty Markov-modulated arrivals whose bursts exceed the
serial gateway's capacity — see
``repro.experiments.common.make_serving_workload``) against the same
simulated AVCC fleet:

* **serial** — ``count`` policy with ``window=1`` on a serial session:
  every request is its own round, back to back. Under the bursts the
  queue backs up, deadlines expire, and admission control sheds.
* **pipelined** — same one-round-per-request policy, but the session
  keeps 8 rounds in flight (PR 3's scheduler): broadcast/verify/decode
  of neighboring rounds overlap.
* **deadline-batched** — the ``hybrid`` policy (fill to 16, dispatch
  earlier when the tightest deadline's slack runs out, 20 ms linger
  cap): bursts coalesce into wide rounds whose per-request cost
  collapses.

The CI-gated headline is the p99-latency ratio serial/batched
(``serving_p99_speedup`` in ``benchmarks/baselines/metrics.json``);
the acceptance bar is >= 1.5x, and the committed baseline pins the
measured ~4x. Everything runs on the simulator's virtual clock,
so the numbers are deterministic — a drop is a real scheduling/policy
regression, not runner noise.

Byte-level parity of batched vs unbatched service is asserted here for
every request (and again, against ground truth, in
``tests/serve/test_gateway.py``).

Set ``SERVE_REPORT_OUT=<path>`` to dump the batched gateway's full
:class:`~repro.serve.gateway.ServeReport` as JSON (the CI
``bench-serving`` job uploads it as an artifact).

The ``bench-tcp`` CI job additionally replays the mixed trace through
a deadline-batched gateway over a **real loopback TCP fleet**
(``test_tcp_gateway_completes_mixed_trace``): served results must stay
byte-identical to the simulated gateway's, and the served fraction is
gated as ``tcp_serving_served_fraction``.

The ``bench-async`` CI job replays the trace once more through
``Gateway.run_async`` over the event-loop ``async_tcp`` backend
(``test_async_tcp_gateway_matches_sync_tcp``) and diffs every commonly
served answer byte-for-byte against the sync ``tcp`` replay — the
ISSUE's acceptance trace. ``ASYNC_TRACE_REQUESTS`` scales the trace
length (CI sets 10000; the local default keeps the bench quick).
"""

import asyncio
import json
import os

import numpy as np
import pytest

from _metrics import record_metric
from repro.api import Session
from repro.experiments.common import (
    SERVING_SCALE,
    make_serving_workload,
    serving_config,
)
from repro.serve import Gateway, GatewayConfig, OpenLoopSource

N_REQUESTS = 240
WINDOW = 16
PIPELINE_DEPTH = 8


def _serve(
    cfg,
    *,
    policy,
    options,
    max_inflight=1,
    backend="sim",
    n_requests=N_REQUESTS,
    use_async=False,
):
    """Run one gateway variant over the canonical trace; returns
    (report, results-by-request-id). ``use_async`` drives the same
    trace through ``Gateway.run_async`` on a fresh event loop."""
    session_cfg = serving_config(
        cfg, max_inflight_rounds=max_inflight, backend=backend
    )
    with Session.create(session_cfg) as sess:
        x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
        sess.load(x)
        generator, requests = make_serving_workload(
            sess.field, SERVING_SCALE, n_requests=n_requests
        )
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(
                batch_policy=policy,
                policy_options=options,
                tenant_weights=generator.tenant_weights,
            ),
        )
        if use_async:
            report = asyncio.run(gateway.run_async())
        else:
            report = gateway.run()
    return report, gateway.results


def _serial(cfg):
    return _serve(cfg, policy="count", options={"window": 1})


def _pipelined(cfg):
    return _serve(
        cfg, policy="count", options={"window": 1}, max_inflight=PIPELINE_DEPTH
    )


def _batched(cfg):
    return _serve(
        cfg,
        policy="hybrid",
        options={"window": WINDOW, "safety": 2.0, "linger": 0.02},
    )


def test_serial_gateway(benchmark, cfg):
    """The baseline: one round per request, strictly serial."""
    report, _ = benchmark.pedantic(lambda: _serial(cfg), rounds=1, iterations=1)
    assert report.total == N_REQUESTS
    # the bursts overwhelm a serial gateway: sheds are the evidence
    assert report.shed > 0
    assert report.slo_attainment < 1.0


def test_pipelined_gateway(benchmark, cfg):
    """One round per request, but 8 rounds in flight."""
    report, _ = benchmark.pedantic(lambda: _pipelined(cfg), rounds=1, iterations=1)
    assert report.total == N_REQUESTS
    assert len(report.served) == N_REQUESTS


def test_deadline_batched_gateway(benchmark, cfg):
    """Deadline-aware micro-batching (hybrid policy)."""
    report, _ = benchmark.pedantic(lambda: _batched(cfg), rounds=1, iterations=1)
    assert report.total == N_REQUESTS
    assert len(report.served) == N_REQUESTS
    assert report.batching_factor > 4.0  # bursts actually coalesced


def test_serving_p99_speedup_and_parity(cfg):
    """The acceptance pin: deadline-batched beats serial by >= 1.5x on
    p99 latency under the mixed trace, while serving byte-identical
    results for every request both gateways served."""
    serial_report, serial_results = _serial(cfg)
    batched_report, batched_results = _batched(cfg)

    # parity: batching must never change a single byte of any answer
    assert set(batched_results) >= set(serial_results)
    for rid, vec in serial_results.items():
        assert vec.tobytes() == batched_results[rid].tobytes()

    speedup = serial_report.p99 / batched_report.p99
    record_metric("serving_p99_speedup", speedup)
    record_metric("serving_slo_attainment", batched_report.slo_attainment)
    record_metric("serving_batching_factor", batched_report.batching_factor)

    out = os.environ.get("SERVE_REPORT_OUT")
    if out:
        with open(out, "w") as fh:
            json.dump(batched_report.to_dict(), fh, indent=2)

    assert batched_report.slo_attainment > serial_report.slo_attainment
    assert speedup >= 1.5, (
        f"deadline batching should cut p99 by >= 1.5x under the mixed trace: "
        f"serial p99 {serial_report.p99:.4f}s vs batched "
        f"{batched_report.p99:.4f}s ({speedup:.2f}x)"
    )


def test_tcp_gateway_completes_mixed_trace(cfg):
    """The distributed acceptance pin: the deadline-batched gateway
    replays a (smaller) mixed Poisson+burst trace over a real loopback
    TCP fleet. Every request terminates, the served fraction clears
    the gated baseline, and every result served by both the tcp and
    the simulated gateway is byte-identical — the substrate can change
    the timing, never a byte of an answer."""
    n = 120
    sim_report, sim_results = _serve(
        cfg, policy="hybrid",
        options={"window": WINDOW, "safety": 2.0, "linger": 0.02},
        n_requests=n,
    )
    tcp_report, tcp_results = _serve(
        cfg, policy="hybrid",
        options={"window": WINDOW, "safety": 2.0, "linger": 0.02},
        backend="tcp", n_requests=n,
    )

    assert tcp_report.total == n
    assert len(tcp_report.served) + tcp_report.shed == n
    served_fraction = len(tcp_report.served) / n
    record_metric("tcp_serving_served_fraction", served_fraction)
    assert served_fraction >= 0.8, tcp_report.summary()

    common = set(tcp_results) & set(sim_results)
    assert common, "the two gateways served no request in common"
    for rid in common:
        assert tcp_results[rid].tobytes() == sim_results[rid].tobytes()
    assert sim_report.total == n  # both replays saw the identical trace


def test_async_tcp_gateway_matches_sync_tcp(cfg):
    """The asyncio acceptance pin: one event-loop master replays the
    open-loop mixed trace through ``Gateway.run_async`` over a
    loopback ``async_tcp`` fleet. Every request terminates, the served
    fraction clears the gated ``async_tcp_serving_served_fraction``
    baseline, and every answer served by both the async and the sync
    ``tcp`` replay is byte-identical — swapping reader threads for one
    event loop can change timing, never a byte.

    ``ASYNC_TRACE_REQUESTS`` scales the trace; the CI ``bench-async``
    job sets 10000 (the ISSUE's acceptance length)."""
    n = int(os.environ.get("ASYNC_TRACE_REQUESTS", "240"))
    hybrid = {"window": WINDOW, "safety": 2.0, "linger": 0.02}
    sync_report, sync_results = _serve(
        cfg, policy="hybrid", options=hybrid, backend="tcp", n_requests=n
    )
    async_report, async_results = _serve(
        cfg,
        policy="hybrid",
        options=hybrid,
        backend="async_tcp",
        n_requests=n,
        use_async=True,
    )

    assert async_report.total == n
    assert len(async_report.served) + async_report.shed == n
    served_fraction = len(async_report.served) / n
    record_metric("async_tcp_serving_served_fraction", served_fraction)
    record_metric("async_tcp_trace_requests", n)
    assert served_fraction >= 0.8, async_report.summary()

    common = set(async_results) & set(sync_results)
    assert common, "the async and sync gateways served no request in common"
    for rid in common:
        assert async_results[rid].tobytes() == sync_results[rid].tobytes()
    assert sync_report.total == n  # both replays saw the identical trace


@pytest.mark.parametrize("variant", ["serial", "pipelined", "batched"])
def test_every_request_terminates(cfg, variant):
    """Each variant accounts for all requests: served or shed, never
    lost."""
    report, _ = {
        "serial": _serial,
        "pipelined": _pipelined,
        "batched": _batched,
    }[variant](cfg)
    assert report.total == N_REQUESTS
    assert len(report.served) + report.shed == N_REQUESTS
