"""Shared fixtures for the benchmark suite.

The paper-reproduction benches run the experiment harness at the
calibrated default scale (m=1200, d=600, 12 workers) with 40 training
iterations — enough for every plateau/crossover the paper reports while
keeping the full suite in the minutes range. Each experiment runs once
per bench (``pedantic`` with one round): the simulated clock inside is
deterministic, so repetition adds wall time without adding information.
"""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig
from repro.ff import DEFAULT_PRIME, PrimeField


@pytest.fixture(scope="session")
def cfg():
    return ExperimentConfig(iterations=40)


@pytest.fixture(scope="session")
def field():
    return PrimeField(DEFAULT_PRIME)


@pytest.fixture
def rng():
    return np.random.default_rng(20220322)


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
