"""Execution-backend comparison at the paper's calibrated scale.

Runs the identical AVCC workload — setup plus a block of
forward/backward rounds at the experiments' default (m=1200, d=600,
N=12, K=9) scale — on all three ``Backend`` implementations and
reports real wall-clock for each:

* ``sim`` measures protocol + master arithmetic only (worker time is
  virtual), so it is the floor: the master-side cost of the protocol.
* ``threaded`` adds real concurrent worker execution; NumPy kernels
  release the GIL, so this approximates one beefy multi-core node.
* ``process`` pays per-round IPC (shared-memory broadcast + pickled
  results) to escape the GIL entirely — the trade the paper's testbed
  makes across its real network.

Shape assertions only check correctness (every backend must decode
bit-exactly); relative wall-clock between the real backends is
machine-dependent and intentionally not asserted.
"""

import numpy as np
import pytest

from repro.coding import SchemeParams
from repro.core import AVCCMaster
from repro.ff import ff_matvec
from repro.runtime import (
    Honest,
    ProcessCluster,
    ReversedValueAttack,
    SimCluster,
    SimWorker,
    ThreadedCluster,
    make_profiles,
)

N, K, S, M = 12, 9, 1, 2
ROUNDS = 4


def _fleet(n):
    profiles = make_profiles(n, {0: 3.0})
    behaviors = {7: ReversedValueAttack()}
    return [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]


def _make_backend(kind, field):
    if kind == "sim":
        return SimCluster(field, _fleet(N), rng=np.random.default_rng(1))
    if kind == "threaded":
        return ThreadedCluster(field, _fleet(N), straggle_scale=0.01)
    return ProcessCluster(field, _fleet(N), straggle_scale=0.01)


@pytest.mark.parametrize("kind", ["sim", "threaded", "process"])
def test_avcc_rounds_per_backend(benchmark, cfg, field, rng, kind):
    x = field.random((cfg.m, cfg.d), rng)
    w = field.random(cfg.d, rng)
    e = field.random(cfg.m, rng)
    z = ff_matvec(field, x, w)
    g = ff_matvec(field, x.T.copy(), e)

    def run():
        with _make_backend(kind, field) as backend:
            master = AVCCMaster(
                backend,
                SchemeParams(n=N, k=K, s=S, m=M),
                rng=np.random.default_rng(2),
            )
            master.setup(x)
            outs = []
            for _ in range(ROUNDS):
                outs.append(master.forward_round(w).vector)
                outs.append(master.backward_round(e).vector)
                master.end_iteration()
            return outs

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    for i, vec in enumerate(outs):
        np.testing.assert_array_equal(vec, z if i % 2 == 0 else g)


@pytest.mark.parametrize("kind", ["threaded", "process"])
def test_early_stopping_saves_straggler_tail(benchmark, field, rng, kind):
    """With one heavy straggler and enough slack, a real-backend round
    must cost ~(fast worker time), not ~(straggler sleep)."""
    sleep = 0.75
    factor = 6.0
    scale = sleep / (factor - 1.0)
    x = field.random((600, 300), rng)
    w = field.random(300, rng)

    def run():
        workers = [
            SimWorker(i, profile=make_profiles(N, {0: factor})[i], behavior=Honest())
            for i in range(N)
        ]
        cls = ThreadedCluster if kind == "threaded" else ProcessCluster
        with cls(field, workers, straggle_scale=scale) as backend:
            master = AVCCMaster(
                backend, SchemeParams(n=N, k=K, s=2, m=1), rng=np.random.default_rng(3)
            )
            master.setup(x)
            return master.forward_round(w)

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_array_equal(out.vector, ff_matvec(field, x, w))
    assert 0 not in out.record.used_workers
