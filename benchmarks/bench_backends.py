"""Execution-backend comparison at the paper's calibrated scale.

Runs the identical AVCC workload — setup plus a block of
forward/backward rounds at the experiments' default (m=1200, d=600,
N=12, K=9) scale — on all four ``Backend`` implementations and
reports real wall-clock for each. The deployment is one
``SessionConfig``; only the ``backend`` registry name changes:

* ``sim`` measures protocol + master arithmetic only (worker time is
  virtual), so it is the floor: the master-side cost of the protocol.
* ``threaded`` adds real concurrent worker execution; NumPy kernels
  release the GIL, so this approximates one beefy multi-core node.
* ``process`` pays per-round IPC (shared-memory broadcast + pickled
  results) to escape the GIL entirely — the trade the paper's testbed
  makes across its real network.
* ``tcp`` pays real sockets and real serialization (the binary wire
  protocol) against a loopback fleet of worker daemons — the closest
  this repo gets to the paper's physical testbed.
* ``async_tcp`` is the same wire protocol driven by one event loop
  (a single extra thread demultiplexing every worker socket) instead
  of per-socket reader threads.

Shape assertions only check correctness (every backend must decode
bit-exactly); relative wall-clock between the real backends is
machine-dependent and intentionally not asserted. The CI ``bench-tcp``
and ``bench-async`` jobs gate the deterministic
``tcp_decode_success_rate`` / ``async_tcp_decode_success_rate``
emitted here (every socket round must decode bit-exactly) via
``check_perf_regression.py --select``.
"""

import numpy as np
import pytest

from _metrics import record_metric
from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import ff_matvec

N, K, S, M = 12, 9, 1, 2
ROUNDS = 4


def _specs(straggler_factor=3.0, byzantine_id=7):
    specs = [WorkerSpec() for _ in range(N)]
    specs[0] = WorkerSpec(straggler_factor=straggler_factor)
    if byzantine_id is not None:
        specs[byzantine_id] = WorkerSpec(behavior="reverse")
    return tuple(specs)


def _config(kind, s=S, m=M, **kwargs):
    return SessionConfig(
        scheme=SchemeParams(n=N, k=K, s=s, m=m),
        master="avcc",
        backend=kind,
        seed=1,
        **kwargs,
    )


@pytest.mark.parametrize("kind", ["sim", "threaded", "process", "tcp", "async_tcp"])
def test_avcc_rounds_per_backend(benchmark, cfg, field, rng, kind):
    x = field.random((cfg.m, cfg.d), rng)
    w = field.random(cfg.d, rng)
    e = field.random(cfg.m, rng)
    z = ff_matvec(field, x, w)
    g = ff_matvec(field, x.T.copy(), e)

    opts = {} if kind == "sim" else {"backend_options": {"straggle_scale": 0.01}}
    config = _config(kind, workers=_specs(), **opts)

    def run():
        with Session.create(config) as sess:
            sess.load(x)
            outs = []
            for _ in range(ROUNDS):
                outs.append(sess.submit_matvec(w).result())
                outs.append(sess.submit_matvec(e, transpose=True).result())
                sess.end_iteration()
            return outs

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    for i, vec in enumerate(outs):
        np.testing.assert_array_equal(vec, z if i % 2 == 0 else g)


@pytest.mark.parametrize("kind", ["threaded", "process", "tcp", "async_tcp"])
def test_early_stopping_saves_straggler_tail(benchmark, field, rng, kind):
    """With one heavy straggler and enough slack, a real-backend round
    must cost ~(fast worker time), not ~(straggler sleep)."""
    sleep = 0.75
    factor = 6.0
    scale = sleep / (factor - 1.0)
    x = field.random((600, 300), rng)
    w = field.random(300, rng)

    config = _config(
        kind,
        s=2,
        m=1,
        workers=_specs(straggler_factor=factor, byzantine_id=None),
        backend_options={"straggle_scale": scale},
    )

    def run():
        with Session.create(config) as sess:
            sess.load(x)
            return sess.submit_matvec(w).outcome()

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_array_equal(out.vector, ff_matvec(field, x, w))
    assert 0 not in out.record.used_workers


@pytest.mark.parametrize("kind", ["tcp", "async_tcp"])
def test_tcp_loopback_fleet_decode_rate(benchmark, cfg, field, rng, kind):
    """The ``bench-tcp`` / ``bench-async`` CI headline: a loopback
    socket fleet (per-socket reader threads for ``tcp``, one event
    loop for ``async_tcp``) serving a block of mixed fwd/bwd rounds
    under a straggler and a Byzantine worker must decode every round
    bit-exactly.

    The gated metric is a *success rate*, not a wall time — runner
    hardware varies, protocol correctness does not. The measured
    round rate is still recorded (ungated) for the artifact trail.
    """
    x = field.random((cfg.m, cfg.d), rng)
    w = field.random(cfg.d, rng)
    e = field.random(cfg.m, rng)
    z = ff_matvec(field, x, w)
    g = ff_matvec(field, x.T.copy(), e)

    config = _config(
        kind, workers=_specs(), backend_options={"straggle_scale": 0.01}
    )
    n_rounds = 2 * ROUNDS

    def run():
        import time as _time

        with Session.create(config) as sess:
            sess.load(x)
            t0 = _time.perf_counter()
            outs = []
            for _ in range(ROUNDS):
                outs.append(sess.submit_matvec(w).result())
                outs.append(sess.submit_matvec(e, transpose=True).result())
            return outs, _time.perf_counter() - t0

    outs, elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = sum(
        np.array_equal(vec, z if i % 2 == 0 else g) for i, vec in enumerate(outs)
    )
    record_metric(f"{kind}_decode_success_rate", exact / n_rounds)
    record_metric(f"{kind}_rounds_per_s", n_rounds / elapsed)
    assert exact == n_rounds
