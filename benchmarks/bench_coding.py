"""Micro-benchmarks of the codecs: encode/decode costs and their
scaling, backing the paper's quasi-linear complexity discussion
(Sec. II-A)."""

import numpy as np
import pytest

from repro.coding import LagrangeCode, MDSCode


@pytest.mark.parametrize("n,k", [(12, 9), (24, 18), (48, 36)])
def test_lagrange_encode_scaling(benchmark, field, rng, n, k):
    """Encoding cost grows ~linearly in N at fixed per-worker share."""
    blocks = field.random((k, 64, 256), rng)
    code = LagrangeCode(field, n=n, k=k)
    shares = benchmark(code.encode, blocks)
    assert shares.shape == (n, 64, 256)


def test_mds_decode_paper_shape(benchmark, field, rng):
    """Decode from K=9 verified results at GISETTE block size."""
    n, k = 12, 9
    code = LagrangeCode(field, n=n, k=k)
    blocks = field.random((k, 667), rng)
    shares = code.encode(blocks)
    idx = np.arange(9)
    out = benchmark(code.decode, idx, shares[idx])
    np.testing.assert_array_equal(out, blocks)


def test_decode_subset_choice_irrelevant(benchmark, field, rng):
    """Any K-subset decodes in the same time (no fast/slow subsets)."""
    n, k = 12, 9
    code = LagrangeCode(field, n=n, k=k)
    blocks = field.random((k, 667), rng)
    shares = code.encode(blocks)
    idx = np.array([11, 9, 7, 5, 3, 1, 0, 2, 4])  # scattered subset
    out = benchmark(code.decode, idx, shares[idx])
    np.testing.assert_array_equal(out, blocks)


def test_privacy_padding_encode_overhead(benchmark, field, rng):
    """T=1 adds one random block to the interpolation — encoding cost
    rises by ~1/K, not by a multiplicative factor."""
    k, t, n = 9, 1, 13
    blocks = field.random((k, 64, 128), rng)
    code = LagrangeCode(field, n=n, k=k, t=t)
    shares = benchmark(code.encode, blocks, rng)
    assert shares.shape == (n, 64, 128)


def test_explicit_generator_mds_roundtrip(benchmark, field, rng):
    code = MDSCode.systematic(field, 12, 9)
    blocks = field.random((9, 100), rng)
    shares = code.encode(blocks)
    idx = np.arange(3, 12)
    out = benchmark(code.decode, idx, shares[idx])
    np.testing.assert_array_equal(out, blocks)
