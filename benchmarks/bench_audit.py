"""Audit-chain overhead and tamper-evidence gates.

The CI ``bench-audit`` job replays the deadline-batched serving trace
(hybrid policy, mixed Poisson+burst arrivals, sim backend) twice —
``audit=False`` and ``audit=True`` — and gates three metrics against
``benchmarks/baselines/metrics.json``:

* ``audit_overhead_headroom`` — CPU-time(unaudited) /
  CPU-time(audited) over the replay, timed with
  ``time.process_time``, interleaved arms, best-of-N per arm. Each
  audited round blake2b-hashes its operand, decoded output and every
  worker share (~50 KB/round at the canonical serving scale), which
  is memory-bandwidth-bound and intrinsically costs a mid-single-
  digit percentage of the sim replay's CPU. The committed baseline
  pins that measured ratio (0.93 on the reference box) with the 3%
  regression tolerance used by ``obs_overhead_headroom``: the gate
  catches the audit path getting *more* expensive, not runner speed.
* ``audit_chain_verified`` — 1.0 iff the audited replay's full chain
  (one commitment per executed round) passes ``verify_chain`` after a
  JSONL dump/load round trip, against the live head and length.
* ``audit_tamper_detected`` — 1.0 iff every probed single-byte
  mutation of the dumped chain is caught by ``verify_chain`` naming a
  record at or before the mutated line.

Report *parity* is deliberately not gated here: an audited
``ServeReport`` legitimately adds ``audit_seq`` keys. The byte-parity
guarantees (audit off == pre-audit output, audit on == off modulo
``audit_seq``) are enforced by ``tests/obs/test_audit.py``.
"""

import json
import os
import time

import numpy as np

from _metrics import record_metric
from repro.api import Session
from repro.experiments.common import (
    SERVING_SCALE,
    make_serving_workload,
    serving_config,
)
from repro.obs.audit import ChainError, load_jsonl, verify_chain
from repro.serve import Gateway, GatewayConfig, OpenLoopSource

N_REQUESTS = int(os.environ.get("AUDIT_TRACE_REQUESTS", "240"))
REPEATS = int(os.environ.get("AUDIT_BENCH_REPEATS", "5"))
#: inline sanity floor; the regression gate proper runs in CI via
#: check_perf_regression against the committed baseline ratio.
#: Tunable because the CPU-time ratio is hardware-sensitive on small
#: runners.
MIN_HEADROOM = float(os.environ.get("AUDIT_MIN_HEADROOM", "0.90"))
#: single-byte mutations probed by the tamper gate
N_MUTATIONS = int(os.environ.get("AUDIT_TAMPER_PROBES", "32"))
HYBRID = {"window": 16, "safety": 2.0, "linger": 0.02}


def _replay(cfg, audit, *, n_requests=N_REQUESTS):
    """One deadline-batched replay of the canonical serving trace;
    returns (report, audit-log-or-None, CPU seconds)."""
    import dataclasses

    session_cfg = dataclasses.replace(serving_config(cfg), audit=audit)
    t_cpu = time.process_time()
    with Session.create(session_cfg) as sess:
        x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
        sess.load(x)
        generator, requests = make_serving_workload(
            sess.field, SERVING_SCALE, n_requests=n_requests
        )
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(
                batch_policy="hybrid",
                policy_options=HYBRID,
                tenant_weights=generator.tenant_weights,
            ),
        )
        report = gateway.run()
        log = sess.audit
    return report, log, time.process_time() - t_cpu


def test_audit_overhead(cfg):
    """The headroom gate: per-round blake2b commitments on the full
    serving trace, priced against the identical unaudited replay."""
    _replay(cfg, False, n_requests=16)  # warm both paths
    _replay(cfg, True, n_requests=16)

    walls_off, walls_on = [], []
    report_on = None
    for _ in range(REPEATS):
        _, _, w = _replay(cfg, False)
        walls_off.append(w)
        report_on, _, w = _replay(cfg, True)
        walls_on.append(w)

    headroom = min(walls_off) / min(walls_on)
    record_metric("audit_overhead_headroom", headroom)
    assert len(report_on.served) == N_REQUESTS
    assert headroom >= MIN_HEADROOM, (
        f"audit overhead exceeds the floor: off {min(walls_off):.3f}s vs "
        f"on {min(walls_on):.3f}s ({(1 / headroom - 1) * 100:.1f}% slower, "
        f"floor {MIN_HEADROOM})"
    )


def test_audit_chain_verified_and_tamper_detected(cfg, tmp_path):
    """The evidence gates: the audited replay's chain survives a
    dump/load round trip against the live head, and every probed
    single-byte mutation of the dump is detected."""
    report, log, _ = _replay(cfg, True)
    assert log is not None and len(log) == report.rounds_executed

    path = tmp_path / "chain.jsonl"
    log.dump_path(str(path))
    try:
        head = verify_chain(
            load_jsonl(str(path)), expect_head=log.head, expect_length=len(log)
        )
        verified = float(head == log.head)
    except ChainError:
        verified = 0.0
    record_metric("audit_chain_verified", verified)
    assert verified == 1.0, "the audited replay's chain failed verification"

    raw = path.read_bytes()
    offsets = np.random.default_rng(20220322).choice(
        len(raw), size=min(N_MUTATIONS, len(raw)), replace=False
    )
    probed = caught = 0
    for off in offsets:
        if raw[off : off + 1] == b"\n":
            continue  # line splits/merges are covered by the others
        probed += 1
        mutated = bytearray(raw)
        mutated[off] ^= 0x01
        bad = tmp_path / "mutated.jsonl"
        bad.write_bytes(bytes(mutated))
        line_no = raw[: int(off)].count(b"\n")
        try:
            verify_chain(
                load_jsonl(str(bad)), expect_head=log.head, expect_length=len(log)
            )
        except ChainError as exc:
            caught += exc.seq <= line_no
        except UnicodeDecodeError:
            caught += 1
    detected = float(probed > 0 and caught == probed)
    record_metric("audit_tamper_detected", detected)
    assert detected == 1.0, (
        f"tamper gate: {caught}/{probed} probed mutations detected"
    )
    assert json.loads(path.read_text().splitlines()[0])["seq"] == 0
