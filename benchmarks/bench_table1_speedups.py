"""Table I — end-to-end speedups of AVCC over LCC and the uncoded
baseline across the four (attack, S, M) settings.

Shape assertions (paper Table I):

* every AVCC-vs-LCC speedup exceeds 1;
* the M=1 settings give modest speedups (timing only — accuracies tie);
* the M=2 settings give multi-x speedups (LCC converges lower/slower);
* the constant-attack M=2 entry is the largest of the LCC column;
* every AVCC-vs-uncoded speedup is at least 3x.

Absolute values are recorded in EXPERIMENTS.md next to the paper's.
"""

from conftest import run_once

from repro.experiments import run_table1


def test_table1(benchmark, cfg):
    result = run_once(benchmark, run_table1, cfg)
    print("\n" + result.render())

    sp = result.speedups
    lcc_m1 = [sp[("reverse", 2, 1)][0], sp[("constant", 2, 1)][0]]
    lcc_m2 = [sp[("reverse", 1, 2)][0], sp[("constant", 1, 2)][0]]
    unc_all = [v[1] for v in sp.values()]

    # vs LCC: all wins
    for v in lcc_m1 + lcc_m2:
        assert v > 1.0, f"AVCC must beat LCC, got {v:.2f}x"
    # M=1 settings: timing-only advantage, small like the paper's 1.09-1.13x
    for v in lcc_m1:
        assert 1.0 < v < 2.0
    # M=2 settings: accuracy-driven advantage, multi-x like 2.66-4.17x
    for v in lcc_m2:
        assert v > 1.8
    # the constant attack produces the largest LCC speedup (paper: 4.17x)
    assert sp[("constant", 1, 2)][0] == max(v[0] for v in sp.values())

    # vs uncoded: large wins everywhere (paper: 3.22-7.64x)
    for v in unc_all:
        assert v > 3.0, f"AVCC must dominate uncoded, got {v:.2f}x"
