"""Verifiable serving provenance: the hash-chained round audit log.

Three layers of guarantees are pinned here:

* **chain integrity** — property tests (hypothesis) that *any*
  single-byte flip, record swap or record drop in a dumped JSONL
  chain is caught by ``verify_chain`` naming the offending record;
* **off-switch parity** — with ``audit=False`` (the default) nothing
  is allocated and ``ServeReport``/round results are byte-identical
  to an unaudited build, across every backend;
* **evidence content** — a Byzantine round's commitment names the
  rejected worker; socket-fleet daemons countersign results and land
  in ``attested``; the ``repro audit`` CLI verifies/renders/diffs.
"""

import dataclasses
import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session, SessionConfig
from repro.api.config import WorkerSpec
from repro.coding import SchemeParams
from repro.experiments.common import make_serving_workload
from repro.ff import PrimeField, ff_matvec
from repro.obs.audit import (
    GENESIS,
    AuditLog,
    ChainError,
    RoundCommitment,
    diff_chains,
    digest_array,
    load_jsonl,
    record_hash,
    verify_chain,
)
from repro.serve import Gateway, GatewayConfig, OpenLoopSource

F = PrimeField()
SHAPE = (48, 24)
BACKENDS = ["sim", "threaded", "process", "tcp", "async_tcp"]


def _commit_n(log: AuditLog, n: int) -> None:
    for i in range(n):
        log.commit(
            family="fwd" if i % 2 == 0 else "bwd",
            scheme=(8, 4, 1, 1),
            operand_digest=f"op{i:02d}",
            output_digest=f"out{i:02d}",
            workers=(0, 1, 2, 3),
            worker_digests=((0, f"d0-{i}"), (1, f"d1-{i}")),
            attested=(0,),
            accepted=(0, 1, 2),
            rejected=(3,) if i == 1 else (),
            verify_ok=i != 1,
            t_end=float(i),
        )


def _session_cfg(backend: str, *, audit: bool, workers=None) -> SessionConfig:
    opts = {} if backend == "sim" else {"straggle_scale": 0.01}
    return SessionConfig(
        scheme=SchemeParams(n=6, k=3, s=1, m=1),
        backend=backend,
        seed=3,
        audit=audit,
        workers=workers or [],
        backend_options=opts,
    )


def _run_rounds(backend: str, *, audit: bool, workers=None, n_rounds: int = 2):
    """A few matvec rounds; returns (results, audit_log)."""
    cfg = _session_cfg(backend, audit=audit, workers=workers)
    with Session.create(cfg) as sess:
        x = sess.field.random((12, 8), np.random.default_rng(0))
        sess.load(x)
        outs = []
        for i in range(n_rounds):
            w = sess.field.random(8, np.random.default_rng(100 + i))
            outs.append(sess.submit_matvec(w).result())
        return outs, sess.audit


# ----------------------------------------------------------------------
# chain mechanics
# ----------------------------------------------------------------------
class TestChainMechanics:
    def test_empty_log_head_is_genesis(self):
        log = AuditLog()
        assert log.head == GENESIS
        assert log.verify_chain() == 0

    def test_commit_links_and_verifies(self):
        log = AuditLog()
        _commit_n(log, 5)
        assert len(log) == 5
        assert log.records[0].prev == GENESIS
        for a, b in zip(log.records, log.records[1:]):
            assert b.prev == a.hash
        assert log.head == log.records[-1].hash
        assert log.verify_chain() == 5

    def test_record_hash_is_canonical_over_body(self):
        log = AuditLog()
        _commit_n(log, 1)
        rec = log.records[0]
        assert record_hash(rec.body()) == rec.hash
        # round-tripping through JSON must not change the hash
        back = RoundCommitment.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert record_hash(back.body()) == rec.hash

    def test_digest_array_commits_dtype_shape_and_bytes(self):
        a = np.arange(12, dtype=np.int64)
        assert digest_array(a) == digest_array(a.copy())
        assert digest_array(a) != digest_array(a.reshape(3, 4))
        assert digest_array(a) != digest_array(a.astype(np.int32))
        b = a.copy()
        b[5] += 1
        assert digest_array(a) != digest_array(b)

    def test_dump_load_verify_round_trip(self, tmp_path):
        log = AuditLog()
        _commit_n(log, 4)
        path = tmp_path / "chain.jsonl"
        assert log.dump_path(str(path)) == 4
        rows = load_jsonl(str(path))
        head = verify_chain(rows, expect_head=log.head, expect_length=4)
        assert head == log.head

    def test_expected_head_catches_truncated_tail(self, tmp_path):
        log = AuditLog()
        _commit_n(log, 4)
        path = tmp_path / "chain.jsonl"
        log.dump_path(str(path))
        rows = load_jsonl(str(path))[:-1]  # drop the tail record
        # the prefix is internally consistent ...
        verify_chain(rows)
        # ... but the independently-held head/length expose the cut
        with pytest.raises(ChainError):
            verify_chain(rows, expect_head=log.head)
        with pytest.raises(ChainError, match="3 records, expected 4"):
            verify_chain(rows, expect_length=4)

    def test_diff_chains_reports_divergence_and_length(self):
        log_a, log_b = AuditLog(), AuditLog()
        _commit_n(log_a, 3)
        _commit_n(log_b, 3)
        a = [r.to_dict() for r in log_a.records]
        b = [r.to_dict() for r in log_b.records]
        assert diff_chains(a, b) == []
        b[1]["family"] = "tampered"  # stale hash left in place
        out = diff_chains(a, b)
        assert out and "record 1" in out[0] and "family" in out[0]
        assert diff_chains(a, a[:-1]) == ["length: 3 vs 2 records"]


# ----------------------------------------------------------------------
# tamper detection properties
# ----------------------------------------------------------------------
def _dumped_rows(n: int = 5) -> list[str]:
    log = AuditLog()
    _commit_n(log, n)
    return [json.dumps(r.to_dict(), sort_keys=True) for r in log.records]


_ROWS = _dumped_rows()
_BLOB = "\n".join(_ROWS)


class TestTamperDetection:
    @settings(max_examples=60, deadline=None)
    @given(pos=st.integers(0, len(_BLOB) - 1), bit=st.integers(0, 6))
    def test_any_single_byte_flip_is_caught(self, tmp_path_factory, pos, bit):
        """Flip one bit anywhere in the dumped JSONL: either the line
        no longer parses, or verification fails — and the offending
        record is named."""
        raw = bytearray(_BLOB.encode())
        raw[pos] ^= 1 << bit
        if raw == _BLOB.encode():  # pragma: no cover - xor always flips
            return
        path = tmp_path_factory.mktemp("flip") / "chain.jsonl"
        path.write_bytes(bytes(raw) + b"\n")
        line_no = _BLOB.encode()[:pos].count(b"\n")
        try:
            rows = load_jsonl(str(path))
            verify_chain(rows, expect_head=json.loads(_ROWS[-1])["hash"],
                         expect_length=len(_ROWS))
        except (ChainError, UnicodeDecodeError) as exc:
            if isinstance(exc, ChainError):
                assert 0 <= exc.seq <= line_no
            return
        pytest.fail(f"flip at byte {pos} (record {line_no}) went undetected")

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_any_record_swap_is_caught(self, tmp_path_factory, data):
        i = data.draw(st.integers(0, len(_ROWS) - 1))
        j = data.draw(st.integers(0, len(_ROWS) - 1).filter(lambda v: v != i))
        rows = list(_ROWS)
        rows[i], rows[j] = rows[j], rows[i]
        path = tmp_path_factory.mktemp("swap") / "chain.jsonl"
        path.write_text("\n".join(rows) + "\n")
        with pytest.raises(ChainError) as err:
            verify_chain(load_jsonl(str(path)))
        assert err.value.seq == min(i, j)

    @settings(max_examples=25, deadline=None)
    @given(drop=st.integers(0, len(_ROWS) - 1))
    def test_any_record_drop_is_caught(self, tmp_path_factory, drop):
        rows = [r for k, r in enumerate(_ROWS) if k != drop]
        path = tmp_path_factory.mktemp("drop") / "chain.jsonl"
        path.write_text("\n".join(rows) + "\n")
        with pytest.raises(ChainError) as err:
            verify_chain(
                load_jsonl(str(path)), expect_length=len(_ROWS),
                expect_head=json.loads(_ROWS[-1])["hash"],
            )
        # an interior drop shifts the next record into the hole (its
        # seq betrays it there); dropping the tail is only visible to
        # the expected head/length — either way the hole is named
        assert err.value.seq == drop


# ----------------------------------------------------------------------
# off-switch parity
# ----------------------------------------------------------------------
class TestOffSwitchParity:
    def test_disabled_session_allocates_nothing(self):
        with Session.create(_session_cfg("sim", audit=False)) as sess:
            assert sess.audit is None
            assert sess.master.audit is None
            assert sess.backend.attest is False

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_round_results_identical_audit_on_vs_off(self, backend):
        outs_off, log_off = _run_rounds(backend, audit=False)
        outs_on, log_on = _run_rounds(backend, audit=True)
        assert log_off is None
        assert log_on is not None and len(log_on) == len(outs_on)
        for a, b in zip(outs_off, outs_on):
            np.testing.assert_array_equal(a, b)
        log_on.verify_chain()

    def test_serve_report_byte_identical_with_audit_off(self):
        rep_base = self._serve(audit=None)  # field absent entirely
        rep_off = self._serve(audit=False)
        assert json.dumps(rep_off.to_dict(), sort_keys=True) == json.dumps(
            rep_base.to_dict(), sort_keys=True
        )

    def test_audited_report_only_adds_audit_seq(self):
        rep_off = self._serve(audit=False)
        rep_on = self._serve(audit=True)
        rows_on = rep_on.to_dict()
        served = [o for o in rep_on.outcomes if o.status == "served"]
        assert served and all(o.audit_seq is not None for o in served)
        stripped = json.loads(json.dumps(rows_on))
        for row in stripped.get("requests", []):
            row.pop("audit_seq", None)
        assert json.dumps(stripped, sort_keys=True) == json.dumps(
            rep_off.to_dict(), sort_keys=True
        )

    @staticmethod
    def _serve(audit, n_requests=40):
        cfg = SessionConfig(
            scheme=SchemeParams(n=8, k=4, s=1, m=1),
            backend="sim",
            seed=0,
            batch_window=64,
        )
        if audit is not None:
            cfg = dataclasses.replace(cfg, audit=audit)
        with Session.create(cfg) as sess:
            x = sess.field.random(SHAPE, np.random.default_rng(0))
            sess.load(x)
            gen, reqs = make_serving_workload(
                sess.field, SHAPE, n_requests=n_requests
            )
            gateway = Gateway(
                sess,
                OpenLoopSource(reqs),
                GatewayConfig(
                    batch_policy="hybrid", tenant_weights=gen.tenant_weights
                ),
            )
            return gateway.run()


# ----------------------------------------------------------------------
# evidence content
# ----------------------------------------------------------------------
class TestEvidenceContent:
    # honest workers are slowed so the Byzantine worker's share is
    # always among the first verified — the rejection is deterministic
    BYZ_FLEET = [WorkerSpec(straggler_factor=2.0)] * 5 + [
        WorkerSpec(behavior="reverse")
    ]

    def test_byzantine_rejection_lands_in_chain_sim(self):
        """Regression: a round where verification rejects a corrupted
        worker must produce a commitment naming it."""
        outs, log = _run_rounds(
            "sim", audit=True, workers=self.BYZ_FLEET, n_rounds=4
        )
        log.verify_chain()
        rejections = [r for r in log.records if 5 in r.rejected]
        assert rejections, "no commitment recorded the Byzantine rejection"
        for rec in rejections:
            assert rec.verify_ok is False
            assert 5 not in rec.accepted
            # the evidence of the corrupted share survives: its digest
            # was committed even though the share was rejected
            assert any(w == 5 for w, _ in rec.worker_digests)
        assert all(a is not None for a in outs)

    def test_byzantine_rejection_lands_in_chain_tcp(self):
        _, log = _run_rounds(
            "tcp", audit=True, workers=self.BYZ_FLEET, n_rounds=3
        )
        log.verify_chain()
        rejections = [r for r in log.records if 5 in r.rejected]
        assert rejections, "no commitment recorded the Byzantine rejection"
        # the daemon countersigned the exact (corrupted) bytes it
        # shipped, so the rejected worker is attested *and* rejected
        assert any(5 in r.attested for r in rejections)

    def test_socket_daemons_countersign_results(self):
        _, log = _run_rounds("tcp", audit=True, n_rounds=2)
        for rec in log.records:
            assert rec.attested, "no worker attestations on the socket fleet"
            digests = dict(rec.worker_digests)
            assert set(rec.attested) <= set(digests)

    def test_in_process_backends_have_no_attestations(self):
        _, log = _run_rounds("sim", audit=True)
        assert all(rec.attested == () for rec in log.records)

    def test_commitment_digests_match_recomputation(self):
        cfg = _session_cfg("sim", audit=True)
        with Session.create(cfg) as sess:
            x = sess.field.random((12, 8), np.random.default_rng(0))
            sess.load(x)
            w = sess.field.random(8, np.random.default_rng(1))
            got = sess.submit_matvec(w).result()
            rec = sess.audit.records[0]
            assert rec.output_digest == digest_array(got)
            np.testing.assert_array_equal(got, ff_matvec(sess.field, x, w))

    def test_handles_carry_their_round_seq(self):
        cfg = _session_cfg("sim", audit=True)
        with Session.create(cfg) as sess:
            x = sess.field.random((12, 8), np.random.default_rng(0))
            sess.load(x)
            h1 = sess.submit_matvec(sess.field.random(8, np.random.default_rng(1)))
            h1.result()
            h2 = sess.submit_matvec(sess.field.random(8, np.random.default_rng(2)))
            h2.result()
            assert h1._audit_seq == 0
            assert h2._audit_seq == 1


# ----------------------------------------------------------------------
# record -> replay provenance parity
# ----------------------------------------------------------------------
class TestRecordReplayProvenance:
    def _serve_audited(self, requests=None, weights=None, n_requests=40):
        cfg = SessionConfig(
            scheme=SchemeParams(n=8, k=4, s=1, m=1),
            backend="sim",
            seed=0,
            batch_window=64,
            audit=True,
        )
        with Session.create(cfg) as sess:
            x = sess.field.random(SHAPE, np.random.default_rng(0))
            sess.load(x)
            if requests is None:
                gen, requests = make_serving_workload(
                    sess.field, SHAPE, n_requests=n_requests
                )
                weights = gen.tenant_weights
            gateway = Gateway(
                sess,
                OpenLoopSource(requests),
                GatewayConfig(batch_policy="hybrid", tenant_weights=weights),
            )
            report = gateway.run()
            return report, sess.stats, sess.audit, requests, weights

    def test_trace_records_chain_head_and_round_trips(self):
        from repro.serve import GatewayRecorder, RecordedTrace

        report, stats, audit, _, _ = self._serve_audited()
        trace = GatewayRecorder().capture(report, stats, audit=audit)
        assert trace.audit_head == audit.head
        blob = trace.to_dict()
        assert blob["audit_head"] == audit.head
        assert RecordedTrace.from_dict(json.loads(json.dumps(blob))) == trace
        # unaudited captures stay byte-identical to pre-audit dumps
        bare = GatewayRecorder().capture(report, stats)
        assert bare.audit_head is None
        assert "audit_head" not in bare.to_dict()

    def test_replay_rederives_identical_commitments(self):
        """Replaying the recorded run must re-derive the same chain:
        same families, operand/output digests and accept sets, ending
        at the head the trace recorded — bit-drift in a replayed round
        would surface here as a provenance mismatch."""
        from repro.serve import GatewayRecorder

        report, stats, audit, requests, weights = self._serve_audited()
        trace = GatewayRecorder().capture(report, stats, audit=audit)
        _, _, replay_audit, _, _ = self._serve_audited(
            requests=requests, weights=weights
        )
        commitments = [
            (r.family, r.operand_digest, r.output_digest, r.accepted)
            for r in audit.records
        ]
        replayed = [
            (r.family, r.operand_digest, r.output_digest, r.accepted)
            for r in replay_audit.records
        ]
        assert replayed == commitments
        replay_audit.verify_chain()
        assert replay_audit.head == trace.audit_head


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _audit_cli(*args):
    from repro.obs.cli import audit_main

    return audit_main(list(args))


class TestAuditCli:
    @pytest.fixture()
    def chain_path(self, tmp_path):
        log = AuditLog()
        _commit_n(log, 3)
        path = tmp_path / "chain.jsonl"
        log.dump_path(str(path))
        return path, log

    def test_verify_ok(self, chain_path, capsys):
        path, log = chain_path
        assert _audit_cli("verify", str(path)) == 0
        out = capsys.readouterr().out
        assert "chain OK: 3 records" in out and log.head in out

    def test_verify_with_expected_head_and_length(self, chain_path, capsys):
        path, log = chain_path
        code = _audit_cli(
            "verify", str(path), "--head", log.head, "--length", "3"
        )
        assert code == 0

    def test_verify_tampered_names_the_record(self, chain_path, capsys):
        path, _ = chain_path
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"fwd"', '"zzz"').replace('"bwd"', '"zzz"')
        path.write_text("\n".join(lines) + "\n")
        assert _audit_cli("verify", str(path)) == 1
        err = capsys.readouterr().err
        assert "chain BROKEN" in err and "record 1" in err

    def test_show_renders_commitments(self, chain_path, capsys):
        path, _ = chain_path
        assert _audit_cli("show", str(path)) == 0
        out = capsys.readouterr().out
        assert "verify_ok=False" in out and "rejected=[3]" in out
        assert _audit_cli("show", str(path), "--seq", "99") == 1

    def test_diff_detects_divergence(self, chain_path, tmp_path, capsys):
        path, _ = chain_path
        other = tmp_path / "other.jsonl"
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"verify_ok": true', '"verify_ok": false')
        other.write_text("\n".join(lines) + "\n")
        assert _audit_cli("diff", str(path), str(path)) == 0
        assert _audit_cli("diff", str(path), str(other)) == 1
        out = capsys.readouterr().out
        assert "record 2" in out

    def test_missing_file_is_an_error_not_a_traceback(self, capsys):
        assert _audit_cli("verify", "/nonexistent/chain.jsonl") == 1
        assert "error" in capsys.readouterr().err

    def test_module_entrypoint_dispatches_audit(self, chain_path):
        path, _ = chain_path
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "audit", "verify", str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "chain OK" in proc.stdout


class TestObsFollowDeadEndpoint:
    def test_refused_endpoint_exits_nonzero_with_message(self, capsys):
        """`repro obs --follow` against a dead port: clear diagnosis
        on stderr and exit 1, not a traceback."""
        from repro.obs.cli import main as obs_cli
        from repro.runtime.net import free_port

        port = free_port()  # freed immediately: nothing listens on it
        code = obs_cli(
            ["--endpoint", f"http://127.0.0.1:{port}", "--follow", "2"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "unreachable" in err and f"127.0.0.1:{port}" in err
