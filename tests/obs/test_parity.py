"""Off-switch parity and registry-accounting parity.

With ``observability=False`` (the default) the observability layer
must be invisible: ``ServeReport.to_dict()`` and the session's
``SessionStats.summary()`` byte-identical to an untouched run, zero
obs objects allocated. With it on, the registry-fed window accounting
must reproduce the legacy fresh-outcomes ``WindowSignals`` bit-for-bit
(the PR-7 control-plane contract), and the report itself must not
change either — the simulator's virtual clock makes both runs
deterministic, so equality is exact, not approximate.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.coding import SchemeParams
from repro.experiments.common import make_serving_workload
from repro.serve import Gateway, GatewayConfig, OpenLoopSource

SHAPE = (48, 24)


def _run_serving(observability, *, control_interval=None, n_requests=60):
    cfg = SessionConfig(
        scheme=SchemeParams(n=8, k=4, s=1, m=1),
        backend="sim",
        seed=0,
        batch_window=64,
        observability=observability,
    )
    with Session.create(cfg) as sess:
        x = sess.field.random(SHAPE, np.random.default_rng(0))
        sess.load(x)
        gen, reqs = make_serving_workload(
            sess.field, SHAPE, n_requests=n_requests
        )
        gateway = Gateway(
            sess,
            OpenLoopSource(reqs),
            GatewayConfig(
                batch_policy="hybrid", tenant_weights=gen.tenant_weights
            ),
            control_interval=control_interval,
        )
        report = gateway.run()
        return report, gateway, sess.stats.summary()


class TestOffSwitchParity:
    def test_disabled_session_allocates_no_obs(self):
        cfg = SessionConfig(
            scheme=SchemeParams(n=8, k=4, s=1, m=1), backend="sim", seed=0
        )
        with Session.create(cfg) as sess:
            assert sess.obs is None
            assert sess.backend.obs is None

    def test_serve_report_and_summary_byte_identical(self):
        rep_off, _, summary_off = _run_serving(False)
        rep_on, _, summary_on = _run_serving(True)
        assert json.dumps(rep_off.to_dict(), sort_keys=True) == json.dumps(
            rep_on.to_dict(), sort_keys=True
        )
        assert rep_off.summary() == rep_on.summary()
        assert summary_off == summary_on

    def test_histograms_are_opt_in_only(self):
        rep, _, _ = _run_serving(False)
        assert "histograms" not in rep.to_dict()
        assert "histograms" in rep.to_dict(include_histograms=True)
        hist = rep.latency_histogram()
        assert hist.count == len(rep.served)
        merged = hist.merge(hist)
        assert merged.count == 2 * hist.count


class TestWindowAccountingParity:
    def test_registry_windows_match_legacy_bit_for_bit(self):
        _, gw_off, _ = _run_serving(False, control_interval=0.05)
        _, gw_on, _ = _run_serving(True, control_interval=0.05)
        assert len(gw_on.window_history) == len(gw_off.window_history)
        assert gw_on.window_history, "trace produced no control windows"
        for legacy, registry in zip(
            gw_off.window_history, gw_on.window_history
        ):
            a = dataclasses.asdict(legacy)
            b = dataclasses.asdict(registry)
            assert a.keys() == b.keys()
            for key in a:
                va, vb = a[key], b[key]
                if isinstance(va, float) and np.isnan(va):
                    assert np.isnan(vb), key
                else:
                    assert va == vb, (key, va, vb)

    def test_registry_counters_match_report_totals(self):
        rep, gw, _ = _run_serving(True)
        counter = gw.obs.registry.get("gateway_requests_total")
        assert counter is not None
        assert counter.total() == rep.total
        served = sum(
            v
            for key, v in counter.series()
            if dict(key).get("status") == "served"
        )
        assert served == len(rep.served)


class TestRequestTraces:
    def test_gateway_run_traces_every_terminal_request(self):
        rep, gw, _ = _run_serving(True)
        tracer = gw.obs.tracer
        for outcome in rep.outcomes:
            tid = f"req-{outcome.request_id}"
            assert tracer.has(tid), tid
            root = tracer.root(tid)
            assert root.t_end is not None
            assert root.attrs["status"] == outcome.status
        served = rep.served[0]
        names = [
            s.name for s in tracer.resolved(f"req-{served.request_id}")
        ]
        for need in ("request", "gateway.queue", "session", "round"):
            assert need in names, (need, names)
