"""Span-completeness across every backend: one served job must leave a
single closed, gap-free trace tree — parents resolve, children nest
inside their parents, worker spans never orphan — including under
worker death and round-timeout expiry on the socket backends."""

import os
import signal
import time

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.api.config import WorkerSpec
from repro.coding import SchemeParams

BACKENDS = ["sim", "threaded", "process", "tcp", "async_tcp"]

EPS = 1e-6


def _config(backend, **overrides):
    kw = dict(
        scheme=SchemeParams(n=6, k=3, s=1, m=1),
        backend=backend,
        seed=3,
        observability=True,
    )
    if backend not in ("sim",):
        kw["backend_options"] = {"straggle_scale": 0.002}
    kw.update(overrides)
    return SessionConfig(**kw)


def _assert_closed_tree(spans):
    """One root, every span closed, every parent resolvable, every
    child inside its parent's interval."""
    assert spans, "empty trace"
    by_id = {s.span_id: s for s in spans}
    roots = [s for s in spans if s.parent_id is None]
    assert len(roots) == 1, [s.name for s in roots]
    for s in spans:
        assert s.t_end is not None, f"unclosed span {s.name}"
        assert s.t_end >= s.t_start - EPS, s.name
        if s.parent_id is not None:
            parent = by_id.get(s.parent_id)
            assert parent is not None, f"orphan span {s.name}"
            assert s.t_start >= parent.t_start - EPS, (s.name, parent.name)
            assert s.t_end <= parent.t_end + EPS, (s.name, parent.name)
    return roots[0]


def _serve_one(sess):
    rng = np.random.default_rng(0)
    x = sess.field.random((12, 8), rng)
    w = sess.field.random(8, rng)
    sess.load(x)
    return sess.submit_matvec(w).result()


def _request_traces(sess):
    tracer = sess.obs.tracer
    return [
        t
        for t in tracer.trace_ids()
        if not t.startswith("round-")
    ]


class TestSpanCompleteness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_job_leaves_one_closed_tree(self, backend):
        with Session.create(_config(backend)) as sess:
            _serve_one(sess)
            tids = _request_traces(sess)
            assert len(tids) == 1
            spans = sess.obs.tracer.resolved(tids[0])
            root = _assert_closed_tree(spans)
            assert root.name == "request"
            names = [s.name for s in spans]
            for need in (
                "session",
                "round",
                "round.broadcast",
                "round.collect",
                "round.verify",
                "round.decode",
            ):
                assert need in names, (backend, need, names)
            assert any(n.startswith("worker:") for n in names)

    @pytest.mark.parametrize("backend", ["tcp", "async_tcp"])
    def test_socket_backends_carry_daemon_sub_spans(self, backend):
        with Session.create(_config(backend)) as sess:
            _serve_one(sess)
            spans = sess.obs.tracer.resolved(_request_traces(sess)[0])
            by_id = {s.span_id: s for s in spans}
            compute = [s for s in spans if s.name == "worker.compute"]
            assert compute, "daemons shipped no sub-spans"
            for s in compute:
                # nested under a worker:<id> span, never orphaned
                parent = by_id[s.parent_id]
                assert parent.name.startswith("worker:")

    def test_worker_death_still_closes_the_tree(self):
        cfg = _config("tcp")
        with Session.create(cfg) as sess:
            rng = np.random.default_rng(0)
            x = sess.field.random((12, 8), rng)
            w = sess.field.random(8, rng)
            sess.load(x)
            os.kill(sess.backend.worker_pids()[5], signal.SIGKILL)
            time.sleep(0.05)
            got = sess.submit_matvec(w).result()
            assert got is not None
            for tid in _request_traces(sess):
                _assert_closed_tree(sess.obs.tracer.resolved(tid))

    def test_round_timeout_still_closes_the_tree(self):
        # one unbounded straggler + a tight collect deadline: the round
        # finishes by expiry, and the trace must still close gap-free
        specs = tuple(
            WorkerSpec(straggler_factor=200.0 if i == 5 else 1.0)
            for i in range(6)
        )
        cfg = _config(
            "tcp",
            workers=specs,
            backend_options={
                "straggle_scale": 0.05,
                "round_timeout": 0.35,
            },
        )
        with Session.create(cfg) as sess:
            got = _serve_one(sess)
            assert got is not None
            tids = _request_traces(sess)
            assert tids
            for tid in tids:
                _assert_closed_tree(sess.obs.tracer.resolved(tid))

    @pytest.mark.parametrize("backend", ["sim", "threaded"])
    def test_batched_jobs_share_one_round_trace(self, backend):
        cfg = _config(backend, batch_window=4)
        with Session.create(cfg) as sess:
            rng = np.random.default_rng(0)
            x = sess.field.random((12, 8), rng)
            sess.load(x)
            handles = [
                sess.submit_matvec(sess.field.random(8, rng))
                for _ in range(4)
            ]
            for h in handles:
                h.result()
            tids = _request_traces(sess)
            assert len(tids) == 4
            round_tids = [
                t
                for t in sess.obs.tracer.trace_ids()
                if t.startswith("round-")
            ]
            # one coalesced round: recorded once, linked four times
            assert len(round_tids) == 1
            for tid in tids:
                spans = sess.obs.tracer.resolved(tid)
                _assert_closed_tree(spans)
                assert "round" in [s.name for s in spans]
