"""Unit tests for the span tracer and the round-record bridge: link
splicing, forest recording, eviction, dump round-trips, and the
recorder reconstruction used by the Fig. 4 breakdown."""

import pytest

from repro.obs.bridge import (
    mean_breakdown,
    recorder_from_tracer,
    round_forest,
    round_spans,
)
from repro.obs.trace import Tracer
from repro.runtime.trace import RoundRecord


def _record(**kw):
    base = dict(
        iteration=0,
        round_name="fwd",
        t_start=10.0,
        t_end=11.0,
        compute_wait=0.5,
        comm_time=0.2,
        verify_time=0.1,
        decode_time=0.1,
        n_collected=3,
        n_verified=3,
        n_rejected=0,
        used_workers=(0, 1, 2),
        worker_latencies=((0, 0.3), (1, 0.4), (2, 0.5)),
    )
    base.update(kw)
    return RoundRecord(**base)


class TestTracer:
    def test_begin_end_and_root(self):
        tr = Tracer()
        root = tr.begin("t", "request", 1.0, tenant="a")
        child = tr.begin("t", "step", 1.1, parent_id=root)
        tr.end(child, 1.5)
        tr.end(root, 2.0, status="served")
        assert tr.root_id("t") == root
        root_span = tr.root("t")
        assert root_span.span_id == root
        assert root_span.t_end == 2.0
        assert root_span.attrs["status"] == "served"
        (child_span,) = [s for s in tr.spans("t") if s.span_id == child]
        assert child_span.duration == pytest.approx(0.4)

    def test_span_ids_globally_unique_across_traces(self):
        tr = Tracer()
        a = tr.begin("t1", "a", 0.0)
        b = tr.begin("t2", "b", 0.0)
        assert a != b

    def test_end_is_first_close_wins_and_unknown_ids_are_ignored(self):
        tr = Tracer()
        sid = tr.begin("t", "x", 0.0)
        tr.end(sid, 1.0)
        tr.end(sid, 5.0)  # already closed: kept at 1.0
        tr.end(10**9, 2.0)  # never begun: no-op
        (span,) = tr.spans("t")
        assert span.t_end == 1.0

    def test_record_forest_resolves_local_parents(self):
        tr = Tracer()
        tr.record_forest(
            "f",
            [
                {"name": "root", "t_start": 0.0, "t_end": 1.0, "parent": None},
                {"name": "kid", "t_start": 0.1, "t_end": 0.9, "parent": 0},
                {"name": "grandkid", "t_start": 0.2, "t_end": 0.3, "parent": 1},
            ],
        )
        spans = tr.spans("f")
        assert spans[1].parent_id == spans[0].span_id
        assert spans[2].parent_id == spans[1].span_id

    def test_resolved_splices_linked_trace(self):
        tr = Tracer()
        root = tr.begin("req", "request", 0.0)
        tr.end(root, 2.0)
        tr.record_forest(
            "round-0",
            [
                {"name": "round", "t_start": 0.5, "t_end": 1.5, "parent": None},
                {"name": "round.decode", "t_start": 1.4, "t_end": 1.5, "parent": 0},
            ],
        )
        link = tr.add(
            "req", "round", 0.5, 1.5, parent_id=root, link="round-0"
        )
        resolved = tr.resolved("req")
        names = [s.name for s in resolved]
        assert names == ["request", "round", "round", "round.decode"]
        # the spliced round root is re-parented under the link span
        spliced_root = resolved[2]
        assert spliced_root.parent_id == link
        # every non-root parent id resolves inside the resolved set
        ids = {s.span_id for s in resolved}
        roots = [s for s in resolved if s.parent_id is None]
        assert len(roots) == 1
        assert all(
            s.parent_id in ids for s in resolved if s.parent_id is not None
        )

    def test_resolved_survives_link_cycles(self):
        tr = Tracer()
        a = tr.add("a", "a", 0.0, 1.0, link="b")
        tr.add("b", "b", 0.0, 1.0, link="a")
        assert tr.resolved("a")  # terminates

    def test_eviction_drops_oldest_trace(self):
        tr = Tracer(max_traces=2)
        tr.add("t1", "x", 0.0, 1.0)
        tr.add("t2", "x", 0.0, 1.0)
        tr.add("t3", "x", 0.0, 1.0)
        assert not tr.has("t1")
        assert tr.has("t2") and tr.has("t3")

    def test_dump_roundtrip_preserves_ids(self):
        tr = Tracer()
        root = tr.begin("t", "request", 1.0)
        tr.begin("t", "kid", 1.1, parent_id=root)
        back = Tracer.from_dump(tr.dump())
        spans = back.spans("t")
        assert [s.span_id for s in spans] == [
            s.span_id for s in tr.spans("t")
        ]
        # new spans keep allocating above the restored ids
        fresh = back.begin("t", "more", 2.0)
        assert fresh > spans[-1].span_id


class TestBridge:
    def test_round_forest_shape_and_containment(self):
        rec = _record()
        forest = round_forest(rec, {1: [["worker.compute", 0.0, 0.2]]})
        names = [n["name"] for n in forest]
        assert names[0] == "round"
        assert "round.broadcast" in names and "round.collect" in names
        assert "round.verify" in names and "round.decode" in names
        assert sum(1 for n in names if n.startswith("worker:")) == 3
        assert "worker.compute" in names
        t0, t3 = rec.t_start, rec.t_end
        for node in forest:
            assert t0 <= node["t_start"] <= node["t_end"] <= t3

    def test_round_forest_marks_unused_workers(self):
        rec = _record(used_workers=(0, 1))
        forest = round_forest(rec)
        flags = {
            n["attrs"]["worker_id"]: n["attrs"]["used"]
            for n in forest
            if n["name"].startswith("worker:")
        }
        assert flags == {0: True, 1: True, 2: False}

    def test_recorder_reconstruction_matches_breakdown(self):
        tr = Tracer()
        for i, name in enumerate(("fwd", "bwd")):
            tr.record_forest(
                f"round-{i}", round_forest(_record(round_name=name))
            )
        rounds = round_spans(tr)
        assert len(rounds) == 2
        recorder = recorder_from_tracer(tr)
        assert len(recorder.iterations) == 1
        bd = mean_breakdown(tr)
        assert bd["communication"] == pytest.approx(0.4)
        assert bd["verification"] == pytest.approx(0.2)
        assert bd["decoding"] == pytest.approx(0.2)
        assert bd["compute"] == pytest.approx(1.0)
