"""The ISSUE's acceptance path: one served request over ``async_tcp``
produces a single trace spanning gateway → session → round →
worker-side compute, retrievable *live* from the telemetry endpoint
attached to ``Gateway.run_async``."""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.coding import SchemeParams
from repro.experiments.common import make_serving_workload
from repro.serve import Gateway, GatewayConfig, OpenLoopSource


def _fetch(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return json.loads(resp.read())


class TestLiveEndpoint:
    def test_async_tcp_request_trace_served_live(self):
        async def run():
            cfg = SessionConfig(
                scheme=SchemeParams(n=6, k=3, s=1, m=1),
                backend="async_tcp",
                seed=0,
                batch_window=64,
                observability=True,
                backend_options={"straggle_scale": 0.002},
            )
            with Session.create(cfg) as sess:
                x = sess.field.random((48, 24), np.random.default_rng(0))
                sess.load(x)
                gen, reqs = make_serving_workload(
                    sess.field, (48, 24), n_requests=8
                )
                gateway = Gateway(
                    sess,
                    OpenLoopSource(reqs),
                    GatewayConfig(
                        batch_policy="hybrid",
                        tenant_weights=gen.tenant_weights,
                    ),
                )
                report = await gateway.run_async(telemetry_port=0)
                loop = asyncio.get_running_loop()
                url = gateway.telemetry.url
                try:
                    served = report.served[0]
                    doc = await loop.run_in_executor(
                        None, _fetch, f"{url}/trace/req-{served.request_id}"
                    )
                    names = [s["name"] for s in doc["spans"]]
                    # the full causal chain, one trace, end to end
                    for need in (
                        "request",
                        "gateway.queue",
                        "session",
                        "round",
                        "round.collect",
                        "worker.compute",
                    ):
                        assert need in names, (need, names)
                    metrics = await loop.run_in_executor(
                        None, _fetch, f"{url}/metrics.json"
                    )
                    assert "gateway_requests_total" in metrics
                    assert "wire_bytes_total" in metrics
                finally:
                    await gateway.telemetry.stop()
                return report

        report = asyncio.run(run())
        assert len(report.served) == report.total

    def test_telemetry_port_requires_observability(self):
        async def run():
            cfg = SessionConfig(
                scheme=SchemeParams(n=6, k=3, s=1, m=1),
                backend="sim",
                seed=0,
            )
            with Session.create(cfg) as sess:
                x = sess.field.random((12, 8), np.random.default_rng(0))
                sess.load(x)
                gen, reqs = make_serving_workload(
                    sess.field, (12, 8), n_requests=2
                )
                gateway = Gateway(sess, OpenLoopSource(reqs))
                with pytest.raises(RuntimeError, match="observability"):
                    await gateway.run_async(telemetry_port=0)

        asyncio.run(run())
