"""Wire-level counters on the socket backends: bytes/frames in and
out, CRC rejects and per-worker heartbeat RTT, surfaced through
``SessionStats.summary()`` and the metrics registry."""

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.coding import SchemeParams
from repro.runtime.net.wire import WireCounters


def _run(backend):
    cfg = SessionConfig(
        scheme=SchemeParams(n=6, k=3, s=1, m=1),
        backend=backend,
        seed=3,
        observability=True,
        backend_options={"straggle_scale": 0.002},
    )
    with Session.create(cfg) as sess:
        rng = np.random.default_rng(0)
        x = sess.field.random((12, 8), rng)
        sess.load(x)
        sess.submit_matvec(sess.field.random(8, rng)).result()
        summary = sess.stats.summary()
        wire = sess.backend.wire
        prom = sess.obs.registry.render_prometheus()
        return summary, wire, prom


class TestWireCounters:
    @pytest.mark.parametrize("backend", ["tcp", "async_tcp"])
    def test_counts_flow_and_surface_in_summary(self, backend):
        summary, wire, prom = _run(backend)
        # hello+config+store+round out, hello+results back — all >0
        assert wire.frames_out > 0 and wire.bytes_out > 0
        assert wire.frames_in > 0 and wire.bytes_in > 0
        assert wire.crc_rejects == 0
        assert "wire:" in summary
        assert f"{wire.frames_out} frames/{wire.bytes_out}B out" in summary
        assert f"{wire.crc_rejects} crc rejects" in summary
        # mirrored into the registry by the pull-time collector
        assert 'wire_bytes_total{backend="%s",direction="out"}' % backend in prom
        assert f'wire_frames_total{{backend="{backend}",direction="in"}}' in prom

    def test_crc_reject_counter(self):
        import io
        import struct

        from repro.runtime.net.wire import (
            MSG_CODES,
            WireError,
            encode_frame,
            read_frame,
        )

        parts = encode_frame("hello", {"worker_id": 1})
        raw = bytearray(b"".join(bytes(p) for p in parts))
        raw[-1] ^= 0xFF  # flip a payload byte: CRC must catch it

        class FakeSock:
            def __init__(self, data):
                self._buf = io.BytesIO(data)

            def recv_into(self, view):
                return self._buf.readinto(view)

        counters = WireCounters()
        with pytest.raises(WireError):
            read_frame(FakeSock(bytes(raw)), counters)
        assert counters.crc_rejects == 1

    def test_summary_without_wire_backend_is_unchanged(self):
        cfg = SessionConfig(
            scheme=SchemeParams(n=6, k=3, s=1, m=1),
            backend="sim",
            seed=3,
            observability=True,
        )
        with Session.create(cfg) as sess:
            rng = np.random.default_rng(0)
            x = sess.field.random((12, 8), rng)
            sess.load(x)
            sess.submit_matvec(sess.field.random(8, rng)).result()
            assert "wire:" not in sess.stats.summary()
