"""Unit tests for the metrics registry: labeled series, fixed-ladder
histograms (mergeable snapshots, window drains), Prometheus/JSON
rendering, and registry get-or-create semantics."""

import json
import math

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    snapshot_from_values,
)


class TestCounter:
    def test_labeled_series_accumulate_independently(self):
        c = Counter("requests_total")
        c.inc(status="served")
        c.inc(status="served")
        c.inc(3, status="shed")
        assert c.value(status="served") == 2
        assert c.value(status="shed") == 3
        assert c.total() == 5

    def test_label_order_is_canonical(self):
        c = Counter("x")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.value(a=1, b=2) == 2
        assert len(list(c.series())) == 1

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4, queue="a")
        g.add(-1, queue="a")
        assert g.value(queue="a") == 3


class TestHistogram:
    def test_fixed_ladder_is_log_spaced(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(32e-6)
        ratios = [
            LATENCY_BUCKETS[i + 1] / LATENCY_BUCKETS[i]
            for i in range(len(LATENCY_BUCKETS) - 1)
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_snapshot_counts_and_overflow(self):
        h = Histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0, 3.0):
            h.observe(v)
        snap = h.merged()
        assert snap.counts == (1, 1, 2)  # <=0.1, <=1.0, +Inf
        assert snap.count == 4
        assert snap.sum == pytest.approx(5.55)

    def test_snapshots_merge_losslessly(self):
        a = snapshot_from_values([0.001, 0.01], bounds=(0.005, 0.05))
        b = snapshot_from_values([0.02, 0.1], bounds=(0.005, 0.05))
        m = a.merge(b)
        assert m.count == 4
        assert m.counts == tuple(
            x + y for x, y in zip(a.counts, b.counts)
        )
        assert m.sum == pytest.approx(a.sum + b.sum)

    def test_merge_rejects_mismatched_ladders(self):
        a = snapshot_from_values([1.0], bounds=(0.5,))
        b = snapshot_from_values([1.0], bounds=(0.25,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_percentile_interpolates_within_bucket(self):
        snap = snapshot_from_values([0.3] * 100, bounds=(0.25, 0.5, 1.0))
        # all mass in the (0.25, 0.5] bucket: estimates interpolate
        # linearly across that bucket and never leave it
        assert snap.percentile(50.0) == pytest.approx(0.375)
        assert snap.percentile(99.0) == pytest.approx(0.4975)

    def test_empty_percentile_is_nan(self):
        snap = snapshot_from_values([], bounds=(1.0,))
        assert math.isnan(snap.percentile(99.0))

    def test_snapshot_dict_roundtrip(self):
        snap = snapshot_from_values([0.1, 0.9, 5.0], bounds=(0.5, 1.0))
        back = HistogramSnapshot.from_dict(
            json.loads(json.dumps(snap.to_dict()))
        )
        assert back == snap

    def test_window_drain_returns_raw_values_once(self):
        h = Histogram("lat", track_window=True)
        h.observe(0.25, tenant="a")
        h.observe(0.5, tenant="b")
        assert sorted(h.drain_window()) == [0.25, 0.5]
        assert h.drain_window() == []
        # bucket counts survive the drain
        assert h.merged().count == 2

    def test_drain_requires_window_tracking(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.drain_window()


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(status="ok")
        reg.gauge("depth").set(3)
        reg.histogram("lat", buckets=(0.5, 1.0)).observe(0.7, tenant="t")
        text = reg.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{status="ok"} 1' in text
        assert "depth 3" in text
        # histogram: cumulative buckets, +Inf, sum and count series
        assert 'lat_bucket{tenant="t",le="0.5"} 0' in text
        assert 'lat_bucket{tenant="t",le="1"} 1' in text
        assert 'lat_bucket{tenant="t",le="+Inf"} 1' in text
        assert 'lat_sum{tenant="t"} 0.7' in text
        assert 'lat_count{tenant="t"} 1' in text

    def test_collectors_run_at_render_time(self):
        reg = MetricsRegistry()
        state = {"v": 1.0}
        reg.register_collector(
            lambda r: r.gauge("mirrored").set(state["v"])
        )
        assert "mirrored 1" in reg.render_prometheus()
        state["v"] = 2.0
        assert "mirrored 2" in reg.render_prometheus()

    def test_json_snapshot_is_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(k="v")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = json.loads(reg.to_json())
        assert "c" in doc and "h" in doc
