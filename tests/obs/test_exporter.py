"""Telemetry endpoint and `repro obs` CLI tests: route contracts of
the asyncio HTTP server, and the CLI's dump/endpoint rendering."""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.obs import Observability
from repro.obs.cli import main as obs_cli
from repro.obs.exporter import TelemetryServer


def _obs_with_data():
    obs = Observability()
    obs.registry.counter("demo_total", "demo").inc(kind="x")
    root = obs.tracer.begin("req-1", "request", 0.0)
    obs.tracer.end(root, 1.0, status="served")
    return obs


def _fetch(url, method="GET"):
    req = urllib.request.Request(url, method=method)
    with urllib.request.urlopen(req, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


async def _serve_and(fn):
    obs = _obs_with_data()
    server = await TelemetryServer(obs, port=0).start()
    loop = asyncio.get_running_loop()
    try:
        return await loop.run_in_executor(None, fn, server.url)
    finally:
        await server.stop()


class TestTelemetryServer:
    def test_healthz(self):
        def check(url):
            status, ctype, body = _fetch(url + "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok"}

        asyncio.run(_serve_and(check))

    def test_metrics_prometheus_text(self):
        def check(url):
            status, ctype, body = _fetch(url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert 'demo_total{kind="x"} 1' in body.decode()

        asyncio.run(_serve_and(check))

    def test_metrics_json(self):
        def check(url):
            status, _, body = _fetch(url + "/metrics.json")
            assert status == 200
            doc = json.loads(body)
            assert "demo_total" in doc

        asyncio.run(_serve_and(check))

    def test_trace_by_id_and_listing(self):
        def check(url):
            status, _, body = _fetch(url + "/traces")
            assert status == 200
            assert "req-1" in json.loads(body)["traces"]
            status, _, body = _fetch(url + "/trace/req-1")
            doc = json.loads(body)
            assert doc["trace_id"] == "req-1"
            assert doc["spans"][0]["name"] == "request"
            assert doc["spans"][0]["attrs"]["status"] == "served"

        asyncio.run(_serve_and(check))

    def test_unknown_trace_404(self):
        def check(url):
            with pytest.raises(urllib.error.HTTPError) as err:
                _fetch(url + "/trace/nope")
            assert err.value.code == 404

        asyncio.run(_serve_and(check))

    def test_unknown_path_404_and_post_405(self):
        def check(url):
            with pytest.raises(urllib.error.HTTPError) as err:
                _fetch(url + "/whatever")
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                _fetch(url + "/metrics", method="POST")
            assert err.value.code == 405

        asyncio.run(_serve_and(check))


class TestObsCli:
    def _dump(self, tmp_path):
        obs = _obs_with_data()
        path = tmp_path / "snap.json"
        obs.dump_path(str(path))
        return path

    def test_dump_mode_renders_metrics_and_timeline(self, tmp_path, capsys):
        path = self._dump(tmp_path)
        assert obs_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "demo_total" in out
        assert "req-1" in out
        assert "request" in out

    def test_dump_mode_specific_trace(self, tmp_path, capsys):
        path = self._dump(tmp_path)
        assert obs_cli([str(path), "--trace", "req-1"]) == 0
        assert "request" in capsys.readouterr().out

    def test_requires_dump_xor_endpoint(self, capsys):
        with pytest.raises(SystemExit):
            obs_cli([])

    def test_endpoint_mode_polls_live_server(self, capsys):
        async def run():
            obs = _obs_with_data()
            server = await TelemetryServer(obs, port=0).start()
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, obs_cli, ["--endpoint", server.url]
                )
            finally:
                await server.stop()

        assert asyncio.run(run()) == 0
        out = capsys.readouterr().out
        assert "demo_total" in out
