"""End-to-end provenance on the socket fleet: the ISSUE's acceptance
scenario. An audited tcp run that loses a worker to SIGKILL mid-run
and carries one always-corrupting Byzantine worker must leave a JSONL
chain that ``repro audit verify`` accepts, whose records show both the
Byzantine rejection and the membership change — and any mutated byte
of which is detected with the offending record named.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.api.config import WorkerSpec
from repro.coding import SchemeParams
from repro.obs.audit import ChainError, load_jsonl, verify_chain
from repro.obs.cli import audit_main

#: worker 5 always corrupts (and is fast, so it is always verified);
#: the rest are mildly slowed honest workers
FLEET = [WorkerSpec(straggler_factor=2.0)] * 5 + [WorkerSpec(behavior="reverse")]


@pytest.fixture(scope="module")
def audited_run(tmp_path_factory):
    """One audited tcp run: 3 rounds, SIGKILL worker 4, 3 more rounds.
    Yields (chain_path, head, length, killed_wid)."""
    cfg = SessionConfig(
        scheme=SchemeParams(n=6, k=3, s=1, m=1),
        backend="tcp",
        seed=3,
        audit=True,
        workers=FLEET,
        backend_options={"straggle_scale": 0.01},
    )
    killed = 4
    with Session.create(cfg) as sess:
        x = sess.field.random((12, 8), np.random.default_rng(0))
        sess.load(x)
        for i in range(3):
            sess.submit_matvec(
                sess.field.random(8, np.random.default_rng(i))
            ).result()
        os.kill(sess.backend.worker_pids()[killed], signal.SIGKILL)
        time.sleep(0.05)  # let the EOF land before the next dispatch
        for i in range(3, 6):
            sess.submit_matvec(
                sess.field.random(8, np.random.default_rng(i))
            ).result()
        path = tmp_path_factory.mktemp("audit") / "chain.jsonl"
        length = sess.audit.dump_path(str(path))
        head = sess.audit.head
    return path, head, length, killed


class TestAcceptanceScenario:
    def test_chain_passes_repro_audit_verify(self, audited_run, capsys):
        path, head, length, _ = audited_run
        code = audit_main(
            ["verify", str(path), "--head", head, "--length", str(length)]
        )
        assert code == 0
        assert "chain OK" in capsys.readouterr().out

    def test_chain_contains_the_rejection(self, audited_run):
        path, _, _, _ = audited_run
        rows = load_jsonl(str(path))
        rejected = [r for r in rows if 5 in r["rejected"]]
        assert rejected, "Byzantine rejection missing from the chain"
        for row in rejected:
            assert row["verify_ok"] is False
            assert 5 not in row["accepted"]
            # the daemon countersigned the corrupted bytes it shipped
            assert 5 in row["attested"]

    def test_chain_contains_the_membership_change(self, audited_run):
        path, _, _, killed = audited_run
        rows = load_jsonl(str(path))
        alive = [
            r for r in rows if any(w == killed for w, _ in r["worker_digests"])
        ]
        assert alive, "the killed worker never contributed a digest"
        # after the SIGKILL it stops responding: the final records hold
        # no digest (and no attestation) from it
        last = rows[-1]
        assert all(w != killed for w, _ in last["worker_digests"])
        assert killed not in last["attested"]
        assert max(r["seq"] for r in alive) < last["seq"]

    def test_any_mutated_byte_is_detected_and_named(self, audited_run, tmp_path):
        path, head, length, _ = audited_run
        raw = bytearray(path.read_bytes())
        offsets = np.random.default_rng(7).choice(len(raw), size=24, replace=False)
        prefix = bytes(raw)
        for off in offsets:
            if prefix[off : off + 1] == b"\n":
                continue
            mutated = bytearray(prefix)
            mutated[off] ^= 0x01
            bad = tmp_path / "mutated.jsonl"
            bad.write_bytes(bytes(mutated))
            line_no = prefix[: int(off)].count(b"\n")
            with pytest.raises((ChainError, UnicodeDecodeError)) as err:
                verify_chain(
                    load_jsonl(str(bad)),
                    expect_head=head,
                    expect_length=length,
                )
            if isinstance(err.value, ChainError):
                assert err.value.seq <= line_no

    def test_verify_cli_rejects_a_mutated_chain(self, audited_run, tmp_path, capsys):
        path, head, length, _ = audited_run
        rows = path.read_text().splitlines()
        row = json.loads(rows[2])
        row["accepted"] = list(row["accepted"]) + [99]  # forge an acceptance
        rows[2] = json.dumps(row, sort_keys=True)
        bad = tmp_path / "forged.jsonl"
        bad.write_text("\n".join(rows) + "\n")
        code = audit_main(
            ["verify", str(bad), "--head", head, "--length", str(length)]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "chain BROKEN" in err and "record 2" in err
