"""Integration tests for the four masters over the simulated cluster.

The central correctness property: in F_q, every master's
``forward_round``/``backward_round`` must return **bit-exactly**
``X·w`` / ``X^T·e`` when its tolerance assumptions hold.
"""

import numpy as np
import pytest

from repro.coding import SchemeParams
from repro.core import (
    AVCCMaster,
    InsufficientResultsError,
    LCCMaster,
    StaticVCCMaster,
    UncodedMaster,
)
from repro.ff import PrimeField, ff_matvec
from repro.runtime import (
    ConstantAttack,
    CostModel,
    Honest,
    ReversedValueAttack,
    SilentFailure,
    SimCluster,
    SimWorker,
    make_profiles,
)

F = PrimeField(2**25 - 39)


def make_cluster(
    n=12,
    straggler_factors=None,
    behaviors=None,
    seed=3,
    cost_model=None,
):
    profiles = make_profiles(n, straggler_factors or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(
        F, workers, cost_model=cost_model or CostModel(), rng=np.random.default_rng(seed)
    )


@pytest.fixture
def data(rng):
    x = F.random((36, 10), rng)
    w = F.random(10, rng)
    e = F.random(36, rng)
    return x, w, e


def _exact(x, w, e):
    return ff_matvec(F, x, w), ff_matvec(F, x.T.copy(), e)


class TestExactness:
    """All masters, attack-free: results equal the direct computation."""

    def test_avcc(self, data):
        x, w, e = data
        cluster = make_cluster()
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(x)
        z, g = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)
        np.testing.assert_array_equal(master.backward_round(e).vector, g)

    def test_lcc(self, data):
        x, w, e = data
        cluster = make_cluster()
        master = LCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=1))
        master.setup(x)
        z, g = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)
        np.testing.assert_array_equal(master.backward_round(e).vector, g)

    def test_uncoded(self, data):
        x, w, e = data
        cluster = make_cluster()
        master = UncodedMaster(cluster, k=9)
        master.setup(x)
        z, g = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)
        np.testing.assert_array_equal(master.backward_round(e).vector, g)

    def test_static_vcc(self, data):
        x, w, e = data
        cluster = make_cluster()
        master = StaticVCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(x)
        z, _ = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)

    def test_avcc_with_privacy_padding(self, data):
        x, w, e = data
        cluster = make_cluster(n=13)
        master = AVCCMaster(cluster, SchemeParams(n=13, k=9, s=1, m=1, t=1))
        master.setup(x)
        z, g = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)
        np.testing.assert_array_equal(master.backward_round(e).vector, g)


class TestByzantineTolerance:
    def test_avcc_rejects_byzantine_and_stays_exact(self, data):
        x, w, e = data
        cluster = make_cluster(behaviors={3: ReversedValueAttack(), 7: ConstantAttack()})
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=2))
        master.setup(x)
        z, g = _exact(x, w, e)
        out_f = master.forward_round(w)
        np.testing.assert_array_equal(out_f.vector, z)
        assert set(out_f.record.rejected_workers) == {3, 7}
        out_b = master.backward_round(e)
        np.testing.assert_array_equal(out_b.vector, g)

    def test_lcc_corrects_one_byzantine(self, data):
        x, w, e = data
        cluster = make_cluster(behaviors={5: ConstantAttack()})
        master = LCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=1))
        master.setup(x)
        z, _ = _exact(x, w, e)
        out = master.forward_round(w)
        np.testing.assert_array_equal(out.vector, z)
        assert 5 in out.record.rejected_workers

    def test_lcc_poisoned_by_two_byzantine(self, data):
        """(12,9,S=1,M=1) LCC + 2 attackers: decode capacity exceeded,
        fallback silently returns a wrong vector (Fig. 3b/3d mechanism)."""
        x, w, e = data
        cluster = make_cluster(
            behaviors={2: ConstantAttack(), 8: ConstantAttack()}
        )
        master = LCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=1))
        master.setup(x)
        z, _ = _exact(x, w, e)
        out = master.forward_round(w)
        assert not np.array_equal(out.vector, z)

    def test_uncoded_ingests_corruption(self, data):
        x, w, e = data
        cluster = make_cluster(behaviors={4: ConstantAttack()})
        master = UncodedMaster(cluster, k=9)
        master.setup(x)
        z, _ = _exact(x, w, e)
        out = master.forward_round(w)
        assert not np.array_equal(out.vector, z)
        # corruption is confined to worker 4's block
        b = x.shape[0] // 9  # 36/9 = 4 rows per block
        got = out.vector
        np.testing.assert_array_equal(got[: 4 * b], z[: 4 * b])
        assert not np.array_equal(got[4 * b : 5 * b], z[4 * b : 5 * b])
        np.testing.assert_array_equal(got[5 * b :], z[5 * b :])

    def test_avcc_insufficient_verified_raises(self, data):
        """More Byzantine + silent workers than the fleet can absorb."""
        x, w, _ = data
        behaviors = {i: ConstantAttack() for i in range(3)}
        behaviors[3] = SilentFailure()
        cluster = make_cluster(behaviors=behaviors)
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=2))
        master.setup(x)
        with pytest.raises(InsufficientResultsError):
            master.forward_round(w)


class TestStragglerTiming:
    def test_avcc_never_waits_for_stragglers_with_slack(self, data):
        x, w, _ = data
        slow = make_cluster(straggler_factors={0: 50.0, 1: 40.0, 2: 30.0})
        fast = make_cluster()
        for cluster in (slow, fast):
            master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=3, m=0))
            master.setup(x)
            master.forward_round(w)
        # identical round time despite three heavy stragglers
        assert slow.now == pytest.approx(fast.now, rel=1e-9)

    def test_lcc_pays_faster_of_two_stragglers(self, data):
        """Design S=1 but two stragglers present: LCC must wait for the
        less-slow straggler (Fig. 3a discussion)."""
        x, w, _ = data
        cluster = make_cluster(straggler_factors={0: 8.0, 1: 1.4})
        master = LCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=1))
        master.setup(x)
        out = master.forward_round(w)
        assert 1 in out.record.used_workers     # mild straggler waited on
        assert 0 not in out.record.used_workers  # heavy straggler skipped

    def test_uncoded_pays_slowest_worker(self, data):
        x, w, _ = data
        c_slow = make_cluster(straggler_factors={4: 8.0})
        c_fast = make_cluster()
        for cluster, factor in ((c_slow, 8.0), (c_fast, 1.0)):
            master = UncodedMaster(cluster, k=9)
            master.setup(x)
            master.forward_round(w)
        assert c_slow.now > c_fast.now

    def test_ordering_avcc_faster_than_lcc_faster_than_uncoded(self, rng):
        """The paper's headline timing ordering under (S=2, M=1)-style
        conditions with heterogeneous stragglers. Uses data large
        enough that compute dominates master-side bookkeeping, as in
        the paper's GISETTE regime."""
        x = F.random((1800, 100), rng)
        w = F.random(100, rng)
        stragglers = {0: 8.0, 1: 1.4}
        byz = {11: ReversedValueAttack()}

        c_avcc = make_cluster(straggler_factors=stragglers, behaviors=byz)
        avcc = AVCCMaster(c_avcc, SchemeParams(n=12, k=9, s=2, m=1))
        avcc.setup(x)
        t0 = c_avcc.now
        avcc.forward_round(w)
        t_avcc = c_avcc.now - t0

        c_lcc = make_cluster(straggler_factors=stragglers, behaviors=byz)
        lcc = LCCMaster(c_lcc, SchemeParams(n=12, k=9, s=1, m=1))
        lcc.setup(x)
        t0 = c_lcc.now
        lcc.forward_round(w)
        t_lcc = c_lcc.now - t0

        c_unc = make_cluster(straggler_factors=stragglers, behaviors=byz)
        unc = UncodedMaster(c_unc, k=9)
        unc.setup(x)
        t0 = c_unc.now
        unc.forward_round(w)
        t_unc = c_unc.now - t0

        assert t_avcc < t_lcc < t_unc


class TestDynamicAdaptation:
    def test_byzantine_worker_dropped_after_iteration(self, data):
        x, w, e = data
        cluster = make_cluster(behaviors={6: ConstantAttack()})
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=2))
        master.setup(x)
        master.forward_round(w)
        master.backward_round(e)
        out = master.end_iteration()
        assert out.detected_byzantine == (6,)
        assert out.dropped_workers == (6,)
        assert 6 not in master.active
        assert master.scheme_now == (11, 9)
        # next iteration still exact without the dropped worker
        z, _ = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)

    def test_fig5_recode_to_11_8(self, rng):
        """3 stragglers + 1 Byzantine at (12,9) -> re-encode to (11,8)."""
        x = F.random((1800, 100), rng)
        w = F.random(100, rng)
        e = F.random(1800, rng)
        cluster = make_cluster(
            straggler_factors={0: 20.0, 1: 28.0, 2: 36.0},
            behaviors={3: ConstantAttack()},
        )
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(x)
        master.forward_round(w)
        master.backward_round(e)
        out = master.end_iteration()
        assert out.detected_byzantine == (3,)
        assert set(out.observed_stragglers) == {0, 1, 2}
        assert out.reencode_time > 0
        assert master.scheme_now == (11, 8)
        # exactness preserved after the re-encode
        z, g = _exact(x, w, e)
        np.testing.assert_array_equal(master.forward_round(w).vector, z)
        np.testing.assert_array_equal(master.backward_round(e).vector, g)

    def test_static_vcc_never_adapts(self, data):
        x, w, e = data
        cluster = make_cluster(
            straggler_factors={0: 20.0, 1: 20.0, 2: 20.0},
            behaviors={3: ConstantAttack()},
        )
        master = StaticVCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(x)
        master.forward_round(w)
        master.backward_round(e)
        out = master.end_iteration()
        assert out.reencode_time == 0.0
        assert master.scheme_now == (12, 9)
        assert 3 in master.active  # nobody dropped

    def test_adaptation_outcome_counts_reset(self, data):
        x, w, e = data
        cluster = make_cluster(behaviors={6: ConstantAttack()})
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=2))
        master.setup(x)
        master.forward_round(w)
        master.end_iteration()
        out2 = master.end_iteration()  # nothing new observed
        assert out2.detected_byzantine == ()
        assert out2.reencode_time == 0.0


class TestValidation:
    def test_scheme_cluster_mismatch(self):
        cluster = make_cluster(n=8)
        with pytest.raises(ValueError, match="cluster.n"):
            AVCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=1))

    def test_infeasible_scheme_rejected(self):
        cluster = make_cluster(n=12)
        with pytest.raises(ValueError, match="Eq. 2"):
            AVCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=2))
        with pytest.raises(ValueError, match="Eq. 1"):
            LCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=1))

    def test_round_before_setup(self, data):
        _, w, _ = data
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
        with pytest.raises(RuntimeError, match="setup"):
            master.forward_round(w)

    def test_uncoded_validation(self):
        cluster = make_cluster(n=4)
        with pytest.raises(ValueError):
            UncodedMaster(cluster, k=5)
        with pytest.raises(ValueError, match="participants"):
            UncodedMaster(cluster, k=2, participants=[0, 1, 2])

    def test_operand_length_validation(self, data):
        x, _, _ = data
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(x)
        with pytest.raises(ValueError, match="operand"):
            master.forward_round(F.zeros(5))


class TestClusterAliasRemoved:
    """`master.cluster` predated the Backend protocol; deprecated in
    0.3, it is now gone — `backend` is the one attribute."""

    def test_alias_is_gone(self):
        cluster = make_cluster(n=6)
        master = AVCCMaster(cluster, SchemeParams(n=6, k=3, s=1, m=1))
        with pytest.raises(AttributeError):
            master.cluster

    def test_backend_attribute_is_silent(self):
        import warnings

        cluster = make_cluster(n=6)
        master = UncodedMaster(cluster, k=3)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert master.backend is cluster
