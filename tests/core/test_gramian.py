"""Tests for the generalized (degree-2) AVCC master."""

import numpy as np
import pytest

from repro.coding import SchemeParams
from repro.core import GramianAVCCMaster, InsufficientResultsError
from repro.ff import PrimeField, ff_matmul, ff_matvec
from repro.runtime import (
    ConstantAttack,
    Honest,
    ReversedValueAttack,
    SimCluster,
    SimWorker,
    make_profiles,
)

F = PrimeField(2**25 - 39)


def make_cluster(n=12, straggler_factors=None, behaviors=None, seed=5):
    profiles = make_profiles(n, straggler_factors or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(F, workers, rng=np.random.default_rng(seed))


def exact_gramian(x, w):
    return ff_matvec(F, ff_matmul(F, x.T.copy(), x), w)


SCHEME = SchemeParams(n=12, k=4, s=2, m=1, deg_f=2)  # threshold 7, 7+2+1+1=11<=12


class TestExactness:
    def test_matches_direct_computation(self, rng):
        x = F.random((20, 6), rng)
        w = F.random(6, rng)
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        master.setup(x)
        out = master.gramian_round(w)
        np.testing.assert_array_equal(out.vector, exact_gramian(x, w))

    def test_with_row_padding(self, rng):
        x = F.random((18, 5), rng)  # 18 % 4 != 0 -> padded to 20
        w = F.random(5, rng)
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        master.setup(x)
        np.testing.assert_array_equal(
            master.gramian_round(w).vector, exact_gramian(x, w)
        )

    def test_with_privacy_padding(self, rng):
        # (k + t - 1)*2 + 1 = 9; 9 + s + m + 1 = 12
        scheme = SchemeParams(n=12, k=4, s=1, m=1, t=1, deg_f=2)
        x = F.random((16, 5), rng)
        w = F.random(5, rng)
        master = GramianAVCCMaster(make_cluster(), scheme)
        master.setup(x)
        np.testing.assert_array_equal(
            master.gramian_round(w).vector, exact_gramian(x, w)
        )

    def test_repeated_rounds(self, rng):
        x = F.random((20, 6), rng)
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        master.setup(x)
        for _ in range(3):
            w = F.random(6, rng)
            np.testing.assert_array_equal(
                master.gramian_round(w).vector, exact_gramian(x, w)
            )


class TestFaults:
    def test_byzantine_rejected(self, rng):
        x = F.random((20, 6), rng)
        w = F.random(6, rng)
        master = GramianAVCCMaster(
            make_cluster(behaviors={5: ReversedValueAttack()}), SCHEME
        )
        master.setup(x)
        out = master.gramian_round(w)
        np.testing.assert_array_equal(out.vector, exact_gramian(x, w))
        assert out.record.rejected_workers == (5,)

    def test_byzantine_corrupting_only_gramian_part_rejected(self, rng):
        """An attacker that computes z honestly but corrupts g must be
        caught by the second verification stage."""

        class GramianOnlyAttack:
            is_byzantine = True

            def corrupt(self, result, field, rng):
                out = result.copy()
                out[-1] = (out[-1] + 1) % field.q  # g lives at the tail
                return out

        x = F.random((20, 6), rng)
        w = F.random(6, rng)
        master = GramianAVCCMaster(
            make_cluster(behaviors={2: GramianOnlyAttack()}), SCHEME
        )
        master.setup(x)
        out = master.gramian_round(w)
        np.testing.assert_array_equal(out.vector, exact_gramian(x, w))
        assert out.record.rejected_workers == (2,)

    def test_straggler_skipped(self, rng):
        x = F.random((20, 6), rng)
        w = F.random(6, rng)
        slow = make_cluster(straggler_factors={0: 50.0, 1: 40.0})
        fast = make_cluster()
        for cluster in (slow, fast):
            master = GramianAVCCMaster(cluster, SCHEME)
            master.setup(x)
            master.gramian_round(w)
        assert slow.now == pytest.approx(fast.now, rel=1e-9)

    def test_too_many_byzantine_raises(self, rng):
        x = F.random((20, 6), rng)
        w = F.random(6, rng)
        behaviors = {i: ConstantAttack() for i in range(6)}
        master = GramianAVCCMaster(make_cluster(behaviors=behaviors), SCHEME)
        master.setup(x)
        with pytest.raises(InsufficientResultsError):
            master.gramian_round(w)


class TestDegreeAccounting:
    def test_threshold_is_degree_weighted(self):
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        assert master.scheme.recovery_threshold == (4 - 1) * 2 + 1 == 7

    def test_rejects_wrong_degree_scheme(self):
        with pytest.raises(ValueError, match="deg_f=2"):
            GramianAVCCMaster(make_cluster(), SchemeParams(n=12, k=4, s=2, m=1))

    def test_infeasible_scheme_rejected(self):
        with pytest.raises(ValueError, match="Eq. 2"):
            GramianAVCCMaster(
                make_cluster(), SchemeParams(n=12, k=5, s=2, m=2, deg_f=2)
            )

    def test_operand_validation(self, rng):
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        master.setup(F.random((20, 6), rng))
        with pytest.raises(ValueError, match="length 6"):
            master.gramian_round(F.zeros(4))

    def test_round_before_setup(self):
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        with pytest.raises(RuntimeError, match="setup"):
            master.gramian_round(F.zeros(6))


class TestOneRoundLinearRegression:
    def test_gradient_descent_via_gramian(self, rng):
        """One-round linear regression: grad = (X^T X w - X^T y)/m."""
        from repro.ml import Quantizer, make_linreg_dataset

        ds = make_linreg_dataset(m=160, d=12, rng=np.random.default_rng(3))
        master = GramianAVCCMaster(make_cluster(), SCHEME)
        master.setup(ds.x_train)
        q = Quantizer(F, 6)
        xty = ds.x_train.T @ ds.y_train  # master-side constant
        w = np.zeros(ds.d)
        losses = []
        for _ in range(15):
            w_q = q.quantize(w)
            gram = master.gramian_round(w_q)
            # scale: data (2^0) squared times w (2^6) -> dequantize 2^-6
            xxw = q.dequantize(gram.vector)
            grad = (xxw - xty) / ds.m
            norm = np.linalg.norm(grad)
            if norm > 50:
                grad *= 50 / norm
            w = w - 0.005 * grad
            losses.append(float(np.mean((ds.x_train @ w - ds.y_train) ** 2)))
        assert losses[-1] < losses[0] * 0.6
