"""Tests for the adaptive policy (Eqs. 16–19) and the encoding cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AdaptivePolicy, EncodingCache
from repro.ff import PrimeField

F = PrimeField(7919)


class TestPolicyMDS:
    def test_fig5_scenario(self):
        """Fig. 5: (N=12, K=9), 3 stragglers + 1 Byzantine observed ->
        A_t = 12-1-3-9-0 = -1 < 0 -> new scheme (11, 8)."""
        policy = AdaptivePolicy(mode="mds")
        d = policy.decide(n_t=12, k_t=9, m_t=1, s_t=3)
        assert d.slack == -1
        assert (d.new_n, d.new_k) == (11, 8)
        assert d.reencode

    def test_positive_slack_drops_byzantine_only(self):
        """Eq. 17 top branch: A_t >= 0 -> (N-M, K), no re-encode."""
        policy = AdaptivePolicy(mode="mds")
        d = policy.decide(n_t=12, k_t=9, m_t=1, s_t=1)
        assert d.slack == 1
        assert (d.new_n, d.new_k) == (11, 9)
        assert not d.reencode

    def test_exactly_zero_slack(self):
        policy = AdaptivePolicy(mode="mds")
        d = policy.decide(n_t=12, k_t=9, m_t=1, s_t=2)
        assert d.slack == 0
        assert (d.new_n, d.new_k) == (11, 9)
        assert not d.reencode

    def test_t_colluders_consume_slack(self):
        policy = AdaptivePolicy(mode="mds")
        assert policy.decide(12, 9, 1, 1, t_t=1).slack == 0
        assert policy.decide(12, 9, 1, 1, t_t=2).slack == -1

    def test_infeasible_raises(self):
        policy = AdaptivePolicy(mode="mds", min_k=1)
        with pytest.raises(ValueError, match="no feasible"):
            policy.decide(n_t=4, k_t=2, m_t=2, s_t=2)

    def test_invalid_observation(self):
        policy = AdaptivePolicy()
        with pytest.raises(ValueError):
            policy.slack(0, 1, 0, 0)
        with pytest.raises(ValueError):
            policy.slack(4, 2, -1, 0)


class TestPolicyLagrange:
    def test_degree_weighted_slack(self):
        """Eq. 18: A_t = N - M - S - (K+T-1) deg f."""
        policy = AdaptivePolicy(mode="lagrange", deg_f=2)
        assert policy.slack(20, 4, m_t=1, s_t=2, t_t=1) == 20 - 1 - 2 - 8

    def test_shrink_uses_floor_division(self):
        """Eq. 19: K' = K + floor(A_t / deg f)."""
        policy = AdaptivePolicy(mode="lagrange", deg_f=2)
        d = policy.decide(n_t=12, k_t=6, m_t=1, s_t=2, t_t=0)
        # A = 12-1-2-10 = -1; floor(-1/2) = -1 -> K' = 5
        assert d.slack == -1
        assert (d.new_n, d.new_k) == (11, 5)
        assert d.reencode

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(mode="bogus")
        with pytest.raises(ValueError):
            AdaptivePolicy(deg_f=0)

    @given(
        n=st.integers(4, 30),
        k=st.integers(1, 10),
        m=st.integers(0, 3),
        s=st.integers(0, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_new_scheme_feasible(self, n, k, m, s):
        """Whenever the policy returns a decision, the new scheme must be
        decodable: K' + S' <= N' for every straggler level up to the
        observed one."""
        policy = AdaptivePolicy(mode="mds")
        if n - m - s < k + 0:
            # may raise (infeasible) — that is acceptable behaviour
            try:
                d = policy.decide(n, k, m, s)
            except ValueError:
                return
        else:
            d = policy.decide(n, k, m, s)
        assert d.new_k >= 1
        assert d.new_n - s >= d.new_k or d.slack >= 0


class TestEncodingCache:
    def test_builds_consistent_config(self, rng):
        x = F.random((12, 10), rng)
        cache = EncodingCache(F, x, rng=rng)
        cfg = cache.get(6, 4)
        assert cfg.fwd_shares.shape == (6, 3, 10)   # m=12, k=4 -> 3 rows
        assert cfg.bwd_shares.shape == (6, 3, 12)   # d=10 padded to 12
        assert cfg.m_pad == 12 and cfg.d_pad == 12
        assert len(cfg.fwd_keys) == 6 and len(cfg.bwd_keys) == 6

    def test_memoized(self, rng):
        x = F.random((8, 4), rng)
        cache = EncodingCache(F, x, rng=rng)
        assert cache.get(4, 2) is cache.get(4, 2)

    def test_prebuild(self, rng):
        x = F.random((8, 4), rng)
        cache = EncodingCache(F, x, rng=rng)
        cache.prebuild([(4, 2), (3, 2)])
        assert (4, 2) in cache._configs and (3, 2) in cache._configs

    def test_padding_roundtrip_through_decode(self, rng):
        """Padded encode/decode must reproduce X w exactly."""
        from repro.ff import ff_matvec

        x = F.random((10, 7), rng)  # 10 rows, k=4 -> pad to 12
        w = F.random(7, rng)
        cache = EncodingCache(F, x, rng=rng)
        cfg = cache.get(6, 4)
        results = np.stack(
            [ff_matvec(F, s, w) for s in cfg.fwd_shares]
        )
        blocks = cfg.code.decode(np.arange(4), results[:4])
        got = blocks.reshape(-1)[:10]
        np.testing.assert_array_equal(got, ff_matvec(F, x, w))

    def test_no_keys_mode(self, rng):
        cache = EncodingCache(F, F.random((4, 4), rng), build_keys=False, rng=rng)
        cfg = cache.get(4, 2)
        assert cfg.fwd_keys == () and cfg.bwd_keys == ()

    def test_share_elements(self, rng):
        cache = EncodingCache(F, F.random((8, 6), rng), rng=rng)
        cfg = cache.get(4, 2)
        assert cfg.share_elements_per_worker() == cfg.fwd_shares[0].size + cfg.bwd_shares[0].size

    def test_rejects_non_matrix(self, rng):
        with pytest.raises(ValueError):
            EncodingCache(F, F.random(5, rng))

    def test_privacy_padding_used_when_t_positive(self, rng):
        x = F.random((6, 4), rng)
        cache = EncodingCache(F, x, t=1, rng=rng)
        cfg = cache.get(6, 2)
        assert cfg.code.t == 1
        assert not cfg.code.is_systematic
