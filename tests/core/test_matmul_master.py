"""Tests for the coded-matmul AVCC master (polynomial codes +
Freivalds matmul verification)."""

import numpy as np
import pytest

from repro.core import CodedMatmulAVCCMaster, InsufficientResultsError
from repro.ff import PrimeField, ff_matmul
from repro.runtime import (
    ConstantAttack,
    Honest,
    RandomAttack,
    SimCluster,
    SimWorker,
    make_profiles,
)

F = PrimeField(2**25 - 39)


def make_cluster(n=9, straggler_factors=None, behaviors=None, seed=8):
    profiles = make_profiles(n, straggler_factors or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(F, workers, rng=np.random.default_rng(seed))


@pytest.fixture
def factors(rng):
    a = F.random((8, 10), rng)
    b = F.random((10, 6), rng)
    return a, b


class TestExactness:
    def test_product_exact(self, factors):
        a, b = factors
        master = CodedMatmulAVCCMaster(make_cluster(), p=2, q=3, s=2, m=1)
        master.setup(a, b)
        out = master.multiply()
        np.testing.assert_array_equal(out.vector, ff_matmul(F, a, b))

    def test_repeated_multiplies(self, factors):
        a, b = factors
        master = CodedMatmulAVCCMaster(make_cluster(), p=2, q=3, s=2, m=1)
        master.setup(a, b)
        want = ff_matmul(F, a, b)
        for _ in range(3):
            np.testing.assert_array_equal(master.multiply().vector, want)

    def test_p1_q1_replication_degenerate(self, rng):
        """p = q = 1: every worker holds the full factors."""
        a = F.random((4, 5), rng)
        b = F.random((5, 3), rng)
        master = CodedMatmulAVCCMaster(make_cluster(n=3), p=1, q=1, s=1, m=1)
        master.setup(a, b)
        np.testing.assert_array_equal(master.multiply().vector, ff_matmul(F, a, b))


class TestFaults:
    def test_byzantine_rejected(self, factors):
        a, b = factors
        master = CodedMatmulAVCCMaster(
            make_cluster(behaviors={3: RandomAttack()}), p=2, q=3, s=1, m=2
        )
        master.setup(a, b)
        out = master.multiply()
        np.testing.assert_array_equal(out.vector, ff_matmul(F, a, b))
        assert out.record.rejected_workers == (3,)

    def test_straggler_skipped(self, factors):
        a, b = factors
        slow = make_cluster(straggler_factors={0: 60.0, 8: 45.0})
        fast = make_cluster()
        for cluster in (slow, fast):
            master = CodedMatmulAVCCMaster(cluster, p=2, q=3, s=2, m=1)
            master.setup(a, b)
            master.multiply()
        assert slow.now == pytest.approx(fast.now, rel=1e-9)

    def test_combined_faults_at_capacity(self, factors):
        a, b = factors
        master = CodedMatmulAVCCMaster(
            make_cluster(
                straggler_factors={1: 30.0, 2: 25.0},
                behaviors={5: ConstantAttack(value=3)},
            ),
            p=2,
            q=3,
            s=2,
            m=1,
        )
        master.setup(a, b)
        out = master.multiply()
        np.testing.assert_array_equal(out.vector, ff_matmul(F, a, b))
        assert out.record.rejected_workers == (5,)

    def test_beyond_capacity_raises(self, factors):
        a, b = factors
        behaviors = {i: RandomAttack() for i in range(4)}
        master = CodedMatmulAVCCMaster(
            make_cluster(behaviors=behaviors), p=2, q=3, s=2, m=1
        )
        master.setup(a, b)
        with pytest.raises(InsufficientResultsError):
            master.multiply()


class TestValidation:
    def test_worker_budget(self):
        with pytest.raises(ValueError, match="p\\*q \\+ S \\+ M"):
            CodedMatmulAVCCMaster(make_cluster(n=6), p=2, q=3, s=1, m=1)

    def test_divisibility(self, rng):
        master = CodedMatmulAVCCMaster(make_cluster(), p=3, q=2, s=1, m=1)
        with pytest.raises(ValueError, match="divide"):
            master.setup(F.random((8, 4), rng), F.random((4, 6), rng))

    def test_incompatible_factors(self, rng):
        master = CodedMatmulAVCCMaster(make_cluster(), p=2, q=2, s=1, m=1)
        with pytest.raises(ValueError, match="incompatible"):
            master.setup(F.random((4, 5), rng), F.random((6, 4), rng))

    def test_multiply_before_setup(self):
        master = CodedMatmulAVCCMaster(make_cluster(), p=2, q=3, s=1, m=1)
        with pytest.raises(RuntimeError, match="setup"):
            master.multiply()

    def test_scheme_now(self, factors):
        a, b = factors
        master = CodedMatmulAVCCMaster(make_cluster(), p=2, q=3, s=2, m=1)
        master.setup(a, b)
        assert master.scheme_now == (9, 6)
