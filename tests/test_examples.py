"""Smoke tests: every example script must run to completion.

Examples are the public face of the library — a broken example is a
broken release. The heavyweight training examples are exercised at
reduced scale through the experiment-harness tests instead; here we run
the fast ones end to end as subprocesses.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "bit-exact" in out
        assert "REJECTED (Byzantine)" in out
        assert "never waited for" in out

    @pytest.mark.parametrize("backend", ["threaded", "process", "tcp"])
    def test_quickstart_real_backends(self, backend):
        out = _run("quickstart.py", backend)
        assert f"backend: {backend}" in out
        assert "bit-exact" in out
        # no Byzantine-rejection assert here: on real backends arrival
        # order is a wall-clock race, and the round may legitimately
        # early-stop on K honest results before the forgery is consumed

    def test_coded_matmul(self):
        out = _run("coded_matmul.py")
        assert "recovered bit-exactly" in out
        assert "rejected (lying):  [4]" in out

    def test_linear_regression(self):
        out = _run("linear_regression.py")
        assert "bit-exact" in out
        assert "avcc" in out and "uncoded" in out

    def test_serving_demo(self):
        out = _run("serving_demo.py", "--requests", "80")
        assert "ServeReport per gateway variant" in out
        assert "serial" in out and "pipelined" in out and "batched" in out
        assert "SLO attainment" in out
        assert "fairness (Jain, weighted)" in out
        assert "bit-exact against direct arithmetic" in out

    def test_serving_demo_over_tcp(self):
        """The same gateway demo over a real loopback socket fleet."""
        out = _run("serving_demo.py", "--backend", "tcp", "--requests", "40")
        assert "backend tcp" in out
        assert "ServeReport per gateway variant" in out
        assert "bit-exact against direct arithmetic" in out

    def test_autoscale_demo(self):
        """The control plane heals a SIGKILLed loopback fleet live."""
        out = _run("autoscale_demo.py", "--requests", "60")
        assert "SIGKILLed workers" in out
        assert "scale_up" in out
        assert "fully healed" in out
        assert "rejoined" in out
        assert "verified bit-exact" in out

    def test_observability_demo(self, tmp_path):
        snap = tmp_path / "obs_snapshot.json"
        out = _run(
            "observability_demo.py", "--requests", "24", "--snapshot", str(snap)
        )
        assert "live telemetry endpoint at http://" in out
        assert "gateway_requests_total" in out
        assert "round.decode" in out
        assert "byte-identical with observability off" in out
        # the snapshot the demo writes must be a loadable repro-obs dump
        doc = json.loads(snap.read_text())
        assert "metrics" in doc and "traces" in doc

    def test_audit_demo(self, tmp_path):
        """Audited Byzantine round -> dump -> verify -> forgery named."""
        chain = tmp_path / "audit_chain.jsonl"
        out = _run("audit_demo.py", "--chain", str(chain))
        assert "rounds committed, chain head" in out
        assert "rejected  [5]" in out
        assert "dump re-verified" in out
        assert "forged acceptance in record 1 detected" in out
        assert "audit chain broken at record 1" in out
        # the dump the demo writes must be a loadable JSONL chain
        rows = [json.loads(line) for line in chain.read_text().splitlines()]
        assert [r["seq"] for r in rows] == list(range(len(rows)))

    def test_private_inference(self):
        out = _run("private_inference.py")
        assert "bit-identical" in out
        assert "indistinguishable" in out

    @pytest.mark.slow
    def test_dynamic_coding(self):
        out = _run("dynamic_coding.py", timeout=600)
        assert "re-encode" in out

    @pytest.mark.slow
    def test_logistic_regression_panel_a(self):
        out = _run("logistic_regression.py", "a", timeout=600)
        assert "speedups" in out
