"""Acceptance tests for the session API (the PR's tentpole).

Pins the three contract points:

(a) a config dict round-trips through ``SessionConfig`` and builds
    every registered backend × master combination;
(b) N concurrently submitted matvec jobs against one family execute in
    fewer rounds than N (observable via ``session.stats``), with
    byte-identical results vs sequential submission;
(c) the examples and trainers run through ``Session`` — no direct
    ``SimCluster``/``AVCCMaster``-style construction survives outside
    ``core``/``runtime`` internals and their dedicated tests.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    JobHandle,
    Session,
    SessionConfig,
    WorkerSpec,
    backend_names,
    master_names,
    register_backend,
    register_master,
)
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matvec
from repro.ff.linalg import ff_matmul

F = PrimeField()
RNG = np.random.default_rng(11)
X = F.random((12, 8), RNG)
SCHEME = SchemeParams(n=6, k=3, s=1, m=1)


def _specs(n=6, straggler=1, byzantine=2):
    specs = [WorkerSpec() for _ in range(n)]
    specs[straggler] = WorkerSpec(straggler_factor=10.0)
    specs[byzantine] = WorkerSpec(behavior="reverse")
    return tuple(specs)


def _config(**overrides):
    base = dict(
        scheme=SCHEME,
        master="avcc",
        backend="sim",
        seed=1,
        workers=_specs(),
        backend_options={},
    )
    base.update(overrides)
    if base["backend"] in ("threaded", "process") and not base["backend_options"]:
        base["backend_options"] = {"straggle_scale": 0.01}
    return SessionConfig(**base)


class TestConfigRoundTrip:
    def test_dict_round_trip_identity(self):
        cfg = _config(cost={"worker_sec_per_mac": 5e-8}, batch_window=7)
        d = cfg.to_dict()
        assert isinstance(d["scheme"], dict)
        assert isinstance(d["workers"][0], dict)
        assert SessionConfig.from_dict(d) == cfg

    def test_dict_is_json_serializable(self):
        import json

        blob = json.dumps(_config().to_dict())
        assert SessionConfig.from_dict(json.loads(blob)) == _config()

    def test_unknown_keys_rejected(self):
        d = _config().to_dict()
        d["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            SessionConfig.from_dict(d)

    def test_net_tunables_round_trip_from_mapping(self):
        from repro.runtime import NetTunables

        cfg = _config(net=NetTunables(heartbeat_interval=0.1, heartbeat_timeout=2.0))
        d = cfg.to_dict()
        assert isinstance(d["net"], dict)  # asdict recurses into the nested dataclass
        assert SessionConfig.from_dict(d) == cfg

    def test_net_tunables_validation(self):
        from repro.runtime import NetTunables

        with pytest.raises(ValueError, match="heartbeat_interval"):
            NetTunables(heartbeat_interval=0.0)
        with pytest.raises(ValueError, match="must exceed"):
            NetTunables(heartbeat_interval=1.0, heartbeat_timeout=0.5)
        with pytest.raises(ValueError, match="io_timeout"):
            NetTunables(io_timeout=-1.0)
        with pytest.raises(ValueError, match="round_timeout"):
            NetTunables(round_timeout=0.0)
        with pytest.raises(ValueError, match="unknown NetTunables"):
            NetTunables.from_dict({"heartbeat_interval": 0.1, "bogus": 1})
        with pytest.raises(TypeError, match="net must be NetTunables"):
            _config(net={"heartbeat_interval": 0.1})
        # io_timeout=None inherits the dead-worker threshold
        assert NetTunables(heartbeat_timeout=3.0).effective_io_timeout == 3.0
        assert NetTunables(io_timeout=1.5).effective_io_timeout == 1.5

    def test_worker_count_must_match_scheme(self):
        with pytest.raises(ValueError, match="worker specs"):
            SessionConfig(scheme=SCHEME, workers=(WorkerSpec(),) * 4)

    def test_worker_spec_validation(self):
        with pytest.raises(ValueError, match="behavior"):
            WorkerSpec(behavior="bogus")
        with pytest.raises(ValueError, match="straggler_factor"):
            WorkerSpec(straggler_factor=0.5)
        with pytest.raises(ValueError, match="probability"):
            WorkerSpec(probability=0.0)

    def test_builds_every_backend_master_combination(self):
        w = F.random(8, RNG)
        expected = ff_matvec(F, X, w)
        assert set(backend_names()) >= {"sim", "threaded", "process"}
        assert set(master_names()) >= {"avcc", "lcc", "static_vcc", "uncoded"}
        for backend in backend_names():
            for master in master_names():
                cfg = _config(backend=backend, master=master)
                with Session.create(cfg) as sess:
                    assert type(sess.backend).__name__ != "object"
                    sess.load(X)
                    got = sess.submit_matvec(w).result()
                    if master != "uncoded":
                        # uncoded ingests the injected forgery by design
                        assert np.array_equal(got, expected), (backend, master)
                    assert got.shape == expected.shape


class TestRegistryExtension:
    def test_custom_names_resolve(self):
        calls = {}

        def my_backend(config, field, workers, rng):
            from repro.runtime import SimCluster

            calls["backend"] = True
            return SimCluster(field, workers, cost_model=config.cost_model(), rng=rng)

        def my_master(config, backend, rng):
            from repro.core import AVCCMaster

            calls["master"] = True
            return AVCCMaster(backend, config.scheme, rng=rng)

        register_backend("test_sim_clone", my_backend, overwrite=True)
        register_master("test_avcc_clone", my_master, overwrite=True)
        cfg = _config(backend="test_sim_clone", master="test_avcc_clone")
        w = F.random(8, RNG)
        with Session.create(cfg) as sess:
            sess.load(X)
            assert np.array_equal(sess.submit_matvec(w).result(), ff_matvec(F, X, w))
        assert calls == {"backend": True, "master": True}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("sim", lambda *a: None)
        with pytest.raises(ValueError, match="already registered"):
            register_master("avcc", lambda *a: None)

    def test_unknown_names_listed_in_error(self):
        with pytest.raises(ValueError, match="registered"):
            Session.create(_config(backend="warp_drive"))


class TestRoundBatching:
    N_JOBS = 6

    def _ops(self):
        rng = np.random.default_rng(77)
        return [F.random(8, rng) for _ in range(self.N_JOBS)]

    def test_concurrent_jobs_execute_in_fewer_rounds_than_jobs(self):
        ops = self._ops()
        with Session.create(_config()) as sess:
            sess.load(X)
            handles = [sess.submit_matvec(w) for w in ops]
            assert sess.pending_jobs() == self.N_JOBS
            results = [h.result() for h in handles]
        stats = sess.stats
        assert stats.jobs_submitted == self.N_JOBS
        assert stats.rounds_executed < self.N_JOBS
        assert stats.rounds_executed == 1
        assert stats.jobs_per_round == [self.N_JOBS]
        assert stats.batched_jobs == self.N_JOBS
        assert stats.batching_factor == pytest.approx(self.N_JOBS)
        for w, got in zip(ops, results):
            assert np.array_equal(got, ff_matvec(F, X, w))

    def test_batched_results_byte_identical_to_sequential(self):
        ops = self._ops()
        with Session.create(_config()) as batched:
            batched.load(X)
            batched_results = [
                h.result() for h in [batched.submit_matvec(w) for w in ops]
            ]
        with Session.create(_config()) as sequential:
            sequential.load(X)
            seq_results = [sequential.submit_matvec(w).result() for w in ops]
        assert sequential.stats.rounds_executed == self.N_JOBS
        for a, b in zip(batched_results, seq_results):
            assert a.tobytes() == b.tobytes()

    def test_batching_works_on_every_master(self):
        ops = self._ops()
        for master in ("avcc", "static_vcc", "lcc", "uncoded"):
            with Session.create(_config(master=master)) as sess:
                sess.load(X)
                handles = [sess.submit_matvec(w) for w in ops]
                results = [h.result() for h in handles]
            assert sess.stats.rounds_executed == 1, master
            if master != "uncoded":
                for w, got in zip(ops, results):
                    assert np.array_equal(got, ff_matvec(F, X, w)), master

    def test_fwd_and_bwd_families_batch_separately(self):
        rng = np.random.default_rng(5)
        ws = [F.random(8, rng) for _ in range(3)]
        es = [F.random(12, rng) for _ in range(2)]
        xt = np.ascontiguousarray(X.T)
        with Session.create(_config()) as sess:
            sess.load(X)
            fwd = [sess.submit_matvec(w) for w in ws]
            bwd = [sess.submit_matvec(e, transpose=True) for e in es]
            for w, h in zip(ws, fwd):
                assert np.array_equal(h.result(), ff_matvec(F, X, w))
            for e, h in zip(es, bwd):
                assert np.array_equal(h.result(), ff_matvec(F, xt, e))
        assert sess.stats.rounds_executed == 2
        assert sorted(sess.stats.jobs_per_round) == [2, 3]

    def test_batch_window_auto_flushes(self):
        ops = self._ops()
        with Session.create(_config(batch_window=2)) as sess:
            sess.load(X)
            handles = [sess.submit_matvec(w) for w in ops]
            # every pair flushed eagerly; nothing left pending
            assert sess.pending_jobs() == 0
            assert all(h.done() for h in handles)
        assert sess.stats.rounds_executed == self.N_JOBS // 2
        assert sess.stats.jobs_per_round == [2, 2, 2]

    def test_flush_on_close(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            h = sess.submit_matvec(self._ops()[0])
        assert h.done()
        assert np.array_equal(h.result(), ff_matvec(F, X, self._ops()[0]))

    def test_stats_surface_verification_telemetry(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            [sess.submit_matvec(w) for w in self._ops()]
            sess.flush()
            sess.end_iteration()
        stats = sess.stats
        assert stats.verify_time > 0.0
        assert stats.decode_time > 0.0
        # the injected forger (worker 2) must be observable
        assert 2 in stats.rejected_workers
        assert len(stats.adaptations) == 1
        assert 2 in stats.adaptations[0].detected_byzantine
        assert "jobs served" in stats.summary()

    def test_batched_round_on_wall_clock_backends(self):
        ops = self._ops()
        for backend in ("threaded", "process"):
            with Session.create(_config(backend=backend)) as sess:
                sess.load(X)
                handles = [sess.submit_matvec(w) for w in ops]
                results = [h.result() for h in handles]
            assert sess.stats.rounds_executed == 1, backend
            for w, got in zip(ops, results):
                assert np.array_equal(got, ff_matvec(F, X, w)), backend


class TestOtherWorkloads:
    def test_gramian_jobs_batch(self):
        cfg = _config(scheme=SchemeParams(n=8, k=3, s=1, m=1), workers=())
        rng = np.random.default_rng(9)
        ws = [F.random(8, rng) for _ in range(3)]
        xt = np.ascontiguousarray(X.T)
        with Session.create(cfg) as sess:
            sess.load(X)
            handles = [sess.submit_gramian(w) for w in ws]
            for w, h in zip(ws, handles):
                expect = ff_matvec(F, xt, ff_matvec(F, X, w))
                assert np.array_equal(h.result(), expect)
        assert sess.stats.rounds_executed == 1
        assert sess.stats.jobs_per_round == [3]

    def test_gramian_requires_load(self):
        with Session.create(_config(workers=())) as sess:
            with pytest.raises(RuntimeError, match="load"):
                sess.submit_gramian(F.random(8, RNG))

    def test_matmul_executes_immediately(self):
        rng = np.random.default_rng(21)
        a = F.random((8, 6), rng)
        b = F.random((6, 4), rng)
        with Session.create(_config(workers=())) as sess:
            h = sess.submit_matmul(a, b, p=2, q=2)
            assert h.done()
            assert np.array_equal(h.result(), ff_matmul(F, a, b))

    def test_submit_after_close_raises(self):
        sess = Session.create(_config())
        sess.close()
        with pytest.raises(RuntimeError, match="closed"):
            sess.submit_matvec(F.random(8, RNG))


class TestTrainerThroughSession:
    def test_trainer_accepts_session_and_batches_nothing_silently(self):
        from repro.ml import (
            DistributedLogisticTrainer,
            LogisticConfig,
            make_gisette_like,
        )

        ds = make_gisette_like(m=48, d=8, rng=np.random.default_rng(2))
        cfg = _config(scheme=SchemeParams(n=6, k=3, s=1, m=1))
        with Session.create(cfg) as sess:
            sess.load(ds.x_train)
            trainer = DistributedLogisticTrainer(
                sess, ds, LogisticConfig(iterations=3, learning_rate=0.1)
            )
            hist = trainer.train()
        assert hist.iterations() == 3
        # 2 rounds per iteration (fwd + bwd), sequential by data dependency
        assert sess.stats.rounds_executed == 6
        assert len(sess.stats.adaptations) == 3

    def test_trainer_wraps_bare_master_in_session(self):
        from repro.core import AVCCMaster
        from repro.ml import (
            DistributedLogisticTrainer,
            LogisticConfig,
            make_gisette_like,
        )
        from repro.runtime import Honest, SimCluster, SimWorker, make_profiles

        ds = make_gisette_like(m=48, d=8, rng=np.random.default_rng(2))
        workers = [
            SimWorker(i, profile=make_profiles(6)[i], behavior=Honest())
            for i in range(6)
        ]
        cluster = SimCluster(F, workers, rng=np.random.default_rng(0))
        master = AVCCMaster(cluster, SchemeParams(n=6, k=3, s=1, m=1))
        master.setup(ds.x_train)
        trainer = DistributedLogisticTrainer(
            master, ds, LogisticConfig(iterations=2, learning_rate=0.1)
        )
        hist = trainer.train()
        assert hist.iterations() == 2
        assert isinstance(trainer.session, Session)


class TestNoBespokeConstructionOutsideCore:
    """The session layer is the only sanctioned construction path:
    examples, trainers and the experiment harness must not instantiate
    clusters or masters directly."""

    FORBIDDEN = re.compile(
        r"\b(SimCluster|ThreadedCluster|ProcessCluster|AVCCMaster|"
        r"StaticVCCMaster|LCCMaster|UncodedMaster|GramianAVCCMaster|"
        r"CodedMatmulAVCCMaster)\s*\("
    )

    def _offenders(self, paths):
        hits = []
        for path in paths:
            text = path.read_text()
            for lineno, line in enumerate(text.splitlines(), 1):
                if self.FORBIDDEN.search(line):
                    hits.append(f"{path.name}:{lineno}: {line.strip()}")
        return hits

    def test_examples_are_session_only(self):
        root = Path(__file__).resolve().parents[2]
        examples = sorted((root / "examples").glob("*.py"))
        assert examples, "examples directory went missing"
        assert self._offenders(examples) == []

    def test_trainers_and_experiments_are_session_only(self):
        root = Path(__file__).resolve().parents[2]
        paths = sorted((root / "src" / "repro" / "ml").glob("*.py")) + sorted(
            (root / "src" / "repro" / "experiments").glob("*.py")
        )
        assert paths
        assert self._offenders(paths) == []


class TestJobHandle:
    def test_handle_exposes_record_after_result(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            h = sess.submit_matvec(F.random(8, RNG))
            assert isinstance(h, JobHandle)
            assert not h.done()
            h.result()
            assert h.done()
            assert h.record.n_verified >= SCHEME.k
            assert h.record.round_name == "fwd"

    def test_batched_handles_share_one_record(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            h1 = sess.submit_matvec(F.random(8, RNG))
            h2 = sess.submit_matvec(F.random(8, RNG))
            assert h1.record is h2.record


class TestGramianSurvivesDynamicRecoding:
    """The lazily-built gramian master shares the backend pool with the
    matvec master; when dynamic re-coding evicts a Byzantine worker the
    gramian master must stop dispatching to it too (on wall-clock
    backends a dispatch to a dropped worker raises)."""

    def _cfg(self, backend):
        specs = [WorkerSpec() for _ in range(8)]
        specs[2] = WorkerSpec(behavior="reverse")
        opts = {"straggle_scale": 0.01} if backend == "threaded" else {}
        return SessionConfig(
            scheme=SchemeParams(n=8, k=3, s=1, m=1),
            master="avcc",
            backend=backend,
            seed=1,
            workers=tuple(specs),
            backend_options=opts,
        )

    @pytest.mark.parametrize("backend", ["sim", "threaded"])
    def test_gramian_round_after_byzantine_eviction(self, backend):
        rng = np.random.default_rng(3)
        w = F.random(8, rng)
        xt = np.ascontiguousarray(X.T)
        expect = ff_matvec(F, xt, ff_matvec(F, X, w))
        with Session.create(self._cfg(backend)) as sess:
            sess.load(X)
            # round 1 exposes the forger to both masters
            assert np.array_equal(sess.submit_matvec(w).result(), ff_matvec(F, X, w))
            assert np.array_equal(sess.submit_gramian(w).result(), expect)
            out = sess.end_iteration()
            if 2 in out.dropped_workers:
                assert 2 not in sess._gramian_master.active
            # the gramian service must keep working on the reduced pool
            assert np.array_equal(sess.submit_gramian(w).result(), expect)
            assert np.array_equal(sess.submit_matvec(w).result(), ff_matvec(F, X, w))


class TestCloseDuringUnwind:
    def test_exception_in_body_skips_flush_and_propagates(self):
        with pytest.raises(KeyError, match="user bug"):
            with Session.create(_config()) as sess:
                sess.load(X)
                h = sess.submit_matvec(F.random(8, RNG))
                raise KeyError("user bug")
        # the pending job was abandoned, not executed
        assert sess.stats.rounds_executed == 0
        with pytest.raises(RuntimeError, match="pending"):
            h.result()

    def test_clean_exit_still_flushes(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            h = sess.submit_matvec(F.random(8, RNG))
        assert h.done()
        assert sess.stats.rounds_executed == 1
