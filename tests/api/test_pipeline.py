"""Acceptance tests for the pipelined round scheduler (PR 3 tentpole).

Pins the contract points:

(a) with ``max_inflight_rounds >= 2`` two independent-family jobs
    overlap in simulated time — the second round is dispatched before
    the first finalizes — and every result is byte-identical to
    ``max_inflight_rounds = 1``;
(b) ``flush`` is non-blocking under a wide window (dispatch only);
    ``JobHandle.result()`` finalizes rounds FIFO up to its own and no
    further;
(c) the window is bounded: at most W rounds are ever in flight;
(d) ``end_iteration`` drains the window before adapting, so a dynamic
    re-code never coexists with rounds planned under the old scheme;
(e) a closed session raises ``SessionClosedError`` (never
    ``AttributeError``) from submissions and from resolving abandoned
    handles.
"""

import numpy as np
import pytest

from repro.api import (
    Session,
    SessionClosedError,
    SessionConfig,
    WorkerSpec,
)
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matvec

F = PrimeField()
RNG = np.random.default_rng(23)
X = F.random((12, 8), RNG)
SCHEME = SchemeParams(n=6, k=3, s=1, m=1)


def _specs(n=6, straggler=1, byzantine=2):
    specs = [WorkerSpec() for _ in range(n)]
    specs[straggler] = WorkerSpec(straggler_factor=10.0)
    specs[byzantine] = WorkerSpec(behavior="reverse")
    return tuple(specs)


def _config(**overrides):
    base = dict(
        scheme=SCHEME,
        master="avcc",
        backend="sim",
        seed=1,
        workers=_specs(),
        max_inflight_rounds=4,
    )
    base.update(overrides)
    return SessionConfig(**base)


class TestOverlapAcceptance:
    """The ISSUE's acceptance pin."""

    def _serve(self, w, e, max_inflight):
        with Session.create(_config(max_inflight_rounds=max_inflight)) as sess:
            sess.load(X)
            h_fwd = sess.submit_matvec(w)
            h_bwd = sess.submit_matvec(e, transpose=True)
            sess.flush()
            depth = sess.rounds_in_flight()
            results = (h_fwd.result(), h_bwd.result())
        return results, depth, sess.stats

    def test_two_families_overlap_and_match_serial_bytes(self):
        w = F.random(8, RNG)
        e = F.random(12, RNG)
        serial, serial_depth, serial_stats = self._serve(w, e, 1)
        piped, piped_depth, piped_stats = self._serve(w, e, 2)

        # byte identity across window sizes
        for a, b in zip(serial, piped):
            assert a.tobytes() == b.tobytes()
        np.testing.assert_array_equal(piped[0], ff_matvec(F, X, w))

        # serial: each round finalized before the next dispatches
        assert serial_depth == 0
        assert serial_stats.rounds_overlapped == 0
        r0, r1 = serial_stats.records
        assert r1.t_start >= r0.t_end

        # pipelined: the bwd round is dispatched before fwd finalizes
        assert piped_depth == 2
        assert piped_stats.rounds_overlapped == 1
        assert piped_stats.max_inflight_depth == 2
        r0, r1 = piped_stats.records
        assert r1.t_start < r0.t_end, "second round must overlap the first"
        # the overlap buys simulated time: pipeline finishes earlier
        assert r1.t_end < serial_stats.records[1].t_end

    def test_pipelined_serving_is_faster_at_scale(self):
        ops = [F.random(8, RNG) for _ in range(6)]
        times = {}
        for w_len in (1, 4):
            cfg = _config(max_inflight_rounds=w_len, batch_window=1)
            with Session.create(cfg) as sess:
                sess.load(X)
                t0 = sess.now
                handles = [sess.submit_matvec(op) for op in ops]
                results = [h.result() for h in handles]
                times[w_len] = sess.now - t0
            for op, got in zip(ops, results):
                assert np.array_equal(got, ff_matvec(F, X, op))
        assert times[4] < times[1]


class TestNonBlockingFlush:
    def test_flush_dispatches_without_finalizing(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            h1 = sess.submit_matvec(F.random(8, RNG))
            h2 = sess.submit_matvec(F.random(12, RNG), transpose=True)
            assert sess.pending_jobs() == 2
            sess.flush()
            assert sess.pending_jobs() == 0
            assert sess.rounds_in_flight() == 2
            assert not h1.done() and not h2.done()
            assert sess.stats.rounds_executed == 0  # nothing finalized yet
            sess.drain()
            assert sess.rounds_in_flight() == 0
            assert h1.done() and h2.done()
            assert sess.stats.rounds_executed == 2

    def test_result_finalizes_fifo_up_to_own_round_only(self):
        with Session.create(_config(batch_window=1)) as sess:
            sess.load(X)
            h1 = sess.submit_matvec(F.random(8, RNG))
            h2 = sess.submit_matvec(F.random(8, RNG))
            h3 = sess.submit_matvec(F.random(8, RNG))
            assert sess.rounds_in_flight() == 3
            h2.result()
            # h1's round finalized first (FIFO), h3's left in flight
            assert h1.done() and h2.done()
            assert not h3.done()
            assert sess.rounds_in_flight() == 1

    def test_window_bound_is_respected(self):
        with Session.create(_config(max_inflight_rounds=2, batch_window=1)) as sess:
            sess.load(X)
            handles = [sess.submit_matvec(F.random(8, RNG)) for _ in range(6)]
            assert sess.rounds_in_flight() <= 2
            assert max(sess.stats.dispatch_depths) <= 2
            results = [h.result() for h in handles]
        assert all(r.shape == (12,) for r in results)
        # window pressure finalized the early rounds as later ones came
        assert sess.stats.rounds_executed == 6

    def test_handles_resolve_on_clean_close(self):
        w = F.random(8, RNG)
        sess = Session.create(_config())
        sess.load(X)
        h = sess.submit_matvec(w)
        sess.flush()
        assert not h.done()
        sess.close()
        assert h.done()
        assert np.array_equal(h.result(), ff_matvec(F, X, w))


class TestDrainBeforeAdaptation:
    """Satellite: a dynamic re-code with rounds still in flight must
    drain the window first — no round may mix two scheme configs."""

    def _cfg(self):
        # 2 stragglers + 1 forger against (n=6, k=4, s=1, m=1):
        # A_t = 6 - 1 - 2 - 4 = -1 < 0, so end_iteration drops the
        # forger AND shrinks the code (k: 4 -> 3) — a real re-code.
        specs = [WorkerSpec() for _ in range(6)]
        specs[0] = WorkerSpec(straggler_factor=8.0)
        specs[1] = WorkerSpec(straggler_factor=12.0)
        specs[2] = WorkerSpec(behavior="reverse")  # dropped at adaptation
        return SessionConfig(
            scheme=SchemeParams(n=6, k=4, s=1, m=1),
            master="avcc",
            backend="sim",
            seed=3,
            workers=tuple(specs),
            max_inflight_rounds=4,
            batch_window=1,
            # compute-dominated regime so the latency-ratio detector
            # actually sees the stragglers at this tiny matrix size
            cost={"worker_sec_per_mac": 1e-4, "link_latency_s": 1e-6},
        )

    def test_end_iteration_drains_window_before_recode(self):
        w = F.random(8, RNG)
        e = F.random(12, RNG)
        with Session.create(self._cfg()) as sess:
            sess.load(X)
            master = sess.master
            observed = {}
            original = master._install_config

            def spying_install(n, k, participants):
                observed["in_flight_at_recode"] = sess.rounds_in_flight()
                return original(n, k, participants)

            master._install_config = spying_install

            handles = [sess.submit_matvec(w) for _ in range(3)]
            handles.append(sess.submit_matvec(e, transpose=True))
            sess.flush()
            assert sess.rounds_in_flight() >= 2  # rounds genuinely in flight
            out = sess.end_iteration()
            assert sess.rounds_in_flight() == 0
            assert all(h.done() for h in handles)
            # the forger was detected across the in-flight rounds and
            # evicted; the code shrank; the re-ship happened with an
            # empty pipeline (no in-flight round saw two configs)
            assert 2 in out.detected_byzantine
            assert 2 in out.dropped_workers
            assert out.scheme == (5, 3)
            assert out.reencode_time > 0.0
            assert observed["in_flight_at_recode"] == 0

            # every pre-adaptation decode is exact under the old scheme
            for h in handles[:3]:
                assert np.array_equal(h.result(), ff_matvec(F, X, w))
            assert np.array_equal(
                handles[3].result(), ff_matvec(F, np.ascontiguousarray(X.T), e)
            )
            # and the service keeps running on the new configuration
            h_after = sess.submit_matvec(w)
            assert np.array_equal(h_after.result(), ff_matvec(F, X, w))
            assert 2 not in sess.master.active

    def test_plan_snapshot_keeps_inflight_rounds_exact_across_recode(self):
        """Even without the session drain, a round planned under the
        old config must finalize exactly (its keys/code/positions are
        frozen in the plan) — the master-level re-entrancy guarantee."""
        w = F.random(8, RNG)
        with Session.create(self._cfg()) as sess:
            sess.load(X)
            master = sess.master
            plan = master.plan_round("fwd", [w])
            handle = master.dispatch_plan(plan)
            # adversarial: re-code to a smaller scheme mid-flight
            master._install_config(5, 3, master.active[:5])
            out = master.complete_round(plan, handle)[0]
            assert np.array_equal(out.vector, ff_matvec(F, X, w))


class TestMatmulInThePipeline:
    def test_matmul_enters_the_window_and_finalizes_fifo(self):
        from repro.ff.linalg import ff_matmul

        rng = np.random.default_rng(21)
        a = F.random((8, 6), rng)
        b = F.random((6, 4), rng)
        w = F.random(8, RNG)
        with Session.create(_config(batch_window=1)) as sess:
            sess.load(X)
            h_mv = sess.submit_matvec(w)  # dispatched, in flight
            h_mm = sess.submit_matmul(a, b)
            assert not h_mm.done()  # pipelined, not synchronous
            assert sess.rounds_in_flight() == 2
            # FIFO: resolving the matmul finalizes the matvec first
            assert np.array_equal(h_mm.result(), ff_matmul(F, a, b))
            assert h_mv.done()
        stats = sess.stats
        assert stats.rounds_executed == 2
        assert len(stats.dispatch_depths) == 2  # telemetry sees both
        assert stats.rounds_overlapped == 1

    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_concurrent_matmuls_keep_their_own_factors(self, backend):
        """Regression: each matmul master ships factors under unique
        payload keys — a second submit_matmul while the first round is
        still in flight must not overwrite the factors the first
        round's (possibly straggling) workers are computing on."""
        from repro.ff.linalg import ff_matmul

        rng = np.random.default_rng(33)
        a1, b1 = F.random((8, 6), rng), F.random((6, 4), rng)
        a2, b2 = F.random((8, 6), rng), F.random((6, 4), rng)
        specs = list(_specs())
        opts = {"straggle_scale": 0.2} if backend in ("threaded", "process") else {}
        cfg = _config(
            backend=backend, workers=tuple(specs), backend_options=opts
        )
        with Session.create(cfg) as sess:
            h1 = sess.submit_matmul(a1, b1)
            h2 = sess.submit_matmul(a2, b2)
            assert np.array_equal(h1.result(), ff_matmul(F, a1, b1)), backend
            assert np.array_equal(h2.result(), ff_matmul(F, a2, b2)), backend

    def test_matmul_still_synchronous_on_serial_window(self):
        from repro.ff.linalg import ff_matmul

        rng = np.random.default_rng(21)
        a = F.random((8, 6), rng)
        b = F.random((6, 4), rng)
        with Session.create(_config(max_inflight_rounds=1)) as sess:
            h = sess.submit_matmul(a, b)
            assert h.done()
            assert np.array_equal(h.result(), ff_matmul(F, a, b))


class TestTrainerOnPipelinedSession:
    def test_training_is_identical_at_any_window(self):
        """The trainers run on the pipelined path; their two rounds per
        iteration are data-dependent, so a wide window must change
        nothing — times, accuracies and adaptation all identical."""
        from repro.ml import (
            DistributedLogisticTrainer,
            LogisticConfig,
            make_gisette_like,
        )

        ds = make_gisette_like(m=48, d=8, rng=np.random.default_rng(2))
        histories = {}
        for window in (1, 4):
            with Session.create(_config(max_inflight_rounds=window)) as sess:
                sess.load(ds.x_train)
                trainer = DistributedLogisticTrainer(
                    sess, ds, LogisticConfig(iterations=3, learning_rate=0.1)
                )
                histories[window] = trainer.train()
            assert sess.stats.rounds_executed == 6
        assert histories[1].times == histories[4].times
        assert histories[1].test_acc == histories[4].test_acc
        assert histories[1].schemes == histories[4].schemes


class TestFailurePropagation:
    def test_window_pressure_failure_fails_the_new_jobs_too(self):
        """If finalizing an older round under window pressure raises,
        the just-submitted jobs must fail with that exception — never
        be silently lost (regression: the pressure loop used to run
        outside the handle-failing guard)."""
        from repro.core.results import InsufficientResultsError

        # 4 forgers against (n=6, k=3, s=1, m=1): every round collects
        # fewer than k verified results and finalization raises
        specs = tuple(
            WorkerSpec(behavior="reverse") if i < 4 else WorkerSpec()
            for i in range(6)
        )
        cfg = _config(workers=specs, max_inflight_rounds=2, batch_window=1)
        sess = Session.create(cfg)
        try:
            sess.load(X)
            h1 = sess.submit_matvec(F.random(8, RNG))
            h2 = sess.submit_matvec(F.random(8, RNG))
            assert sess.rounds_in_flight() == 2
            with pytest.raises(InsufficientResultsError):
                sess.submit_matvec(F.random(8, RNG))  # pressure -> finalize h1
            # the oldest round's failure landed on its own handle...
            assert h1.done()
            with pytest.raises(InsufficientResultsError):
                h1.result()
            # ...and the still-in-flight round resolves deterministically
            # too (its own round's failure, never "handle lost")
            with pytest.raises(InsufficientResultsError):
                h2.result()
        finally:
            sess.close(flush=False)

    def test_failed_drain_on_close_fails_all_inflight_handles(self):
        """When a round fails while close() drains, the remaining
        in-flight/pending handles must be failed too — not left
        unresolved behind a closed session."""
        from repro.core.results import InsufficientResultsError

        specs = tuple(
            WorkerSpec(behavior="reverse") if i < 4 else WorkerSpec()
            for i in range(6)
        )
        cfg = _config(workers=specs, max_inflight_rounds=3, batch_window=1)
        sess = Session.create(cfg)
        sess.load(X)
        h1 = sess.submit_matvec(F.random(8, RNG))
        h2 = sess.submit_matvec(F.random(8, RNG))
        assert sess.rounds_in_flight() == 2
        with pytest.raises(InsufficientResultsError):
            sess.close()
        assert h1.done() and h2.done()
        with pytest.raises(InsufficientResultsError):
            h1.result()
        with pytest.raises(InsufficientResultsError):
            h2.result()


class TestSessionClosedErrors:
    def test_submit_after_close_raises_session_closed(self):
        sess = Session.create(_config())
        sess.close()
        with pytest.raises(SessionClosedError, match="closed"):
            sess.submit_matvec(F.random(8, RNG))

    def test_result_on_abandoned_handle_raises_session_closed(self):
        sess = Session.create(_config())
        sess.load(X)
        h = sess.submit_matvec(F.random(8, RNG))
        sess.close(flush=False)
        with pytest.raises(SessionClosedError, match="pending"):
            h.result()

    def test_result_on_abandoned_inflight_round_raises_session_closed(self):
        sess = Session.create(_config())
        sess.load(X)
        h = sess.submit_matvec(F.random(8, RNG))
        sess.flush()  # dispatched, in flight
        sess.close(flush=False)
        with pytest.raises(SessionClosedError):
            h.result()

    def test_session_closed_error_is_runtime_error(self):
        # backwards compatibility: existing except RuntimeError paths
        assert issubclass(SessionClosedError, RuntimeError)

    def test_no_attribute_error_from_closed_session(self):
        sess = Session.create(_config())
        sess.load(X)
        h = sess.submit_matvec(F.random(8, RNG))
        sess.close(flush=False)
        try:
            h.result()
        except AttributeError as exc:  # pragma: no cover - the regression
            pytest.fail(f"closed session leaked AttributeError: {exc}")
        except SessionClosedError:
            pass
