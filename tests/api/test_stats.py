"""SessionStats telemetry: summary(), the PR 3 pipeline fields, and
the serving-layer round-time/queue-depth/submit hooks.

The pipeline fields (``pipeline_occupancy``, ``max_inflight_depth``,
``rounds_overlapped``) and ``summary()`` were previously only
exercised incidentally through the benches; here they are pinned
directly — both on synthetic stats (exact arithmetic) and through real
pipelined sessions.
"""

import math

import numpy as np
import pytest

from repro.api import Session, SessionConfig, SessionStats
from repro.coding import SchemeParams
from repro.ff import DEFAULT_PRIME, PrimeField

F = PrimeField(DEFAULT_PRIME)
SCHEME = SchemeParams(n=8, k=4, s=1, m=1)
RNG = np.random.default_rng(0)
X = F.random((16, 8), RNG)


def _config(**kw):
    base = dict(scheme=SCHEME, backend="sim", seed=3, batch_window=64)
    base.update(kw)
    return SessionConfig(**base)


def _run_jobs(max_inflight, n_jobs=6):
    with Session.create(_config(max_inflight_rounds=max_inflight, batch_window=1)) as sess:
        sess.load(X)
        handles = [
            sess.submit_matvec(F.random(8, RNG), transpose=False)
            if j % 2 == 0
            else sess.submit_matvec(F.random(16, RNG), transpose=True)
            for j in range(n_jobs)
        ]
        for h in handles:
            h.result()
    return sess.stats


class TestPipelineTelemetryFields:
    def test_synthetic_depths_arithmetic(self):
        stats = SessionStats(dispatch_depths=[1, 2, 3, 1, 2])
        assert stats.max_inflight_depth == 3
        assert stats.pipeline_occupancy == pytest.approx(9 / 5)
        assert stats.rounds_overlapped == 3

    def test_empty_stats_degenerate_values(self):
        stats = SessionStats()
        assert stats.max_inflight_depth == 0
        assert stats.pipeline_occupancy == 0.0
        assert stats.rounds_overlapped == 0
        assert stats.batching_factor == 0.0
        assert stats.mean_round_time == 0.0
        assert stats.recent_round_time() == 0.0

    def test_serial_session_never_overlaps(self):
        stats = _run_jobs(max_inflight=1)
        assert stats.max_inflight_depth == 1
        assert stats.pipeline_occupancy == 1.0
        assert stats.rounds_overlapped == 0
        assert stats.dispatch_depths == [1] * stats.rounds_executed

    def test_pipelined_session_reports_overlap(self):
        stats = _run_jobs(max_inflight=4)
        assert stats.max_inflight_depth >= 2
        assert stats.pipeline_occupancy > 1.0
        assert stats.rounds_overlapped >= 1
        assert len(stats.dispatch_depths) == stats.rounds_executed


class TestSummary:
    def test_summary_contains_all_headline_numbers(self):
        stats = _run_jobs(max_inflight=2)
        text = stats.summary()
        assert f"{stats.jobs_served}/{stats.jobs_submitted} jobs served" in text
        assert f"{stats.rounds_executed} rounds" in text
        assert f"batching x{stats.batching_factor:.2f}" in text
        assert f"pipeline depth {stats.pipeline_occupancy:.2f}" in text
        assert "verify" in text and "decode" in text and "re-encode" in text

    def test_summary_on_fresh_stats(self):
        text = SessionStats().summary()
        assert "0/0 jobs served in 0 rounds" in text


class TestRoundTimeTelemetry:
    def test_round_durations_match_records(self):
        stats = _run_jobs(max_inflight=1, n_jobs=4)
        assert len(stats.round_durations) == 4
        assert stats.round_durations == [r.duration for r in stats.records]
        assert stats.mean_round_time == pytest.approx(
            sum(stats.round_durations) / 4
        )

    def test_recent_round_time_windows(self):
        stats = SessionStats()
        assert stats.recent_round_time() == 0.0
        with pytest.raises(ValueError, match="window"):
            stats.recent_round_time(window=0)
        full = _run_jobs(max_inflight=1, n_jobs=6)
        assert full.recent_round_time(window=2) == pytest.approx(
            sum(full.round_durations[-2:]) / 2
        )

    def test_recent_round_time_family_filter(self):
        stats = _run_jobs(max_inflight=1, n_jobs=6)  # alternating fwd/bwd
        fwd = [r.duration for r in stats.records if r.round_name == "fwd"]
        assert stats.recent_round_time(family="fwd") == pytest.approx(
            sum(fwd) / len(fwd)
        )
        assert stats.recent_round_time(family="gram") == 0.0  # never ran

    def test_estimate_prefers_same_family_observations(self):
        with Session.create(_config(batch_window=1)) as sess:
            sess.load(X)
            # run only bwd rounds; a fwd estimate must not blend them in
            for _ in range(3):
                sess.submit_matvec(F.random(16, RNG), transpose=True).result()
            prior_fwd = sess._prior_round_time("fwd", 1)
            bwd_observed = sess.stats.recent_round_time(family="bwd")
            # fwd never ran: cold-start falls back to the overall mean
            assert sess.estimate_round_time("fwd") == pytest.approx(
                0.5 * (prior_fwd + bwd_observed)
            )
            # after a fwd round, only fwd durations feed the fwd blend
            sess.submit_matvec(F.random(8, RNG)).result()
            fwd_observed = sess.stats.recent_round_time(family="fwd")
            assert sess.estimate_round_time("fwd") == pytest.approx(
                0.5 * (prior_fwd + fwd_observed)
            )


class TestServingHooks:
    def test_queue_depths_tracks_pending_families(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            assert sess.queue_depths() == {}
            sess.submit_matvec(F.random(8, RNG))
            sess.submit_matvec(F.random(8, RNG))
            sess.submit_matvec(F.random(16, RNG), transpose=True)
            assert sess.queue_depths() == {"fwd": 2, "bwd": 1}
            sess.flush("fwd")
            assert sess.queue_depths() == {"bwd": 1}

    def test_estimate_round_time_prior_then_blend(self):
        with Session.create(_config()) as sess:
            assert sess.estimate_round_time("fwd") == 0.0  # nothing loaded
            sess.load(X)
            prior = sess.estimate_round_time("fwd", width=1)
            assert prior > 0.0
            assert sess.estimate_round_time("fwd", width=8) > prior
            assert sess.estimate_round_time("bwd") > 0.0
            assert sess.estimate_round_time("gramian") > 0.0
            sess.submit_matvec(F.random(8, RNG)).result()
            blended = sess.estimate_round_time("fwd", width=1)
            observed = sess.stats.recent_round_time()
            assert blended == pytest.approx(0.5 * (prior + observed))

    def test_estimate_round_time_validation_and_fallback(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            with pytest.raises(ValueError, match="width"):
                sess.estimate_round_time("fwd", width=0)
            # unknown family: falls back to the observed signal (none yet)
            assert sess.estimate_round_time("matmul") == 0.0

    def test_submit_routes_by_family(self):
        class _Req:
            def __init__(self, family, operand, transpose=False, operand_b=None):
                self.family = family
                self.operand = operand
                self.transpose = transpose
                self.operand_b = operand_b

        from repro.ff import ff_matmul, ff_matvec

        with Session.create(_config()) as sess:
            sess.load(X)
            w = F.random(8, RNG)
            got = sess.submit(_Req("matvec", w)).result()
            assert got.tobytes() == ff_matvec(F, X, w).tobytes()
            e = F.random(16, RNG)
            got_t = sess.submit(_Req("matvec", e, transpose=True)).result()
            assert got_t.tobytes() == ff_matvec(F, X.T.copy(), e).tobytes()
            a, b = F.random((4, 4), RNG), F.random((4, 4), RNG)
            got_mm = sess.submit(_Req("matmul", a, operand_b=b)).result()
            assert got_mm.tobytes() == ff_matmul(F, a, b).tobytes()
            with pytest.raises(ValueError, match="unknown request family"):
                sess.submit(_Req("fft", w))

    def test_submit_gramian_request(self):
        class _Req:
            family = "gramian"
            transpose = False
            operand_b = None

            def __init__(self, operand):
                self.operand = operand

        from repro.ff import ff_matmul, ff_matvec

        scheme = SchemeParams(n=12, k=4, s=2, m=1)
        with Session.create(_config(scheme=scheme)) as sess:
            x = F.random((12, 6), RNG)
            sess.load(x)
            w = F.random(6, RNG)
            got = sess.submit(_Req(w)).result()
            expected = ff_matvec(F, ff_matmul(F, x.T.copy(), x), w)
            assert got.tobytes() == expected.tobytes()

    def test_estimate_is_finite_and_sane(self):
        with Session.create(_config()) as sess:
            sess.load(X)
            est = sess.estimate_round_time("fwd", width=4)
            assert math.isfinite(est)
            assert est < 1.0  # sim costs at this scale are milliseconds
