"""Property test: pipelined execution is byte-identical to serial.

For any interleaving of concurrent submissions across the three
encoded families (fwd / bwd / gramian), any batching granularity and
any window size, the decoded results of the pipelined scheduler
(``max_inflight_rounds >= 2``) must be byte-identical to the serial
scheduler (``max_inflight_rounds = 1``) — and, on the verified AVCC
master, to the exact ground truth. This holds on all three backends:
contention (sim busy-queues, thread-pool multiplexing, process pipe
demultiplexing) may reorder arrivals and shift which verified subset
a round decodes from, but any recovery-threshold-sized verified
subset interpolates the same exact values.

The wall-clock backends run fewer examples (they spin up real
pools/processes per example); the simulator carries the bulk of the
search.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matvec

F = PrimeField()
X = F.random((12, 8), np.random.default_rng(41))
XT = np.ascontiguousarray(X.T)
#: deg_f=2 feasible: gramian needs 2*(k-1)+1 = 5 <= n = 8
SCHEME = SchemeParams(n=8, k=3, s=1, m=1)

FAMILIES = ("fwd", "bwd", "gram")

jobs_strategy = st.lists(
    st.sampled_from(FAMILIES), min_size=1, max_size=6
)


def _config(backend, window, batch_window, seed):
    specs = [WorkerSpec() for _ in range(8)]
    specs[1] = WorkerSpec(straggler_factor=6.0)
    specs[2] = WorkerSpec(behavior="reverse")
    opts = {"straggle_scale": 0.005} if backend in ("threaded", "process") else {}
    return SessionConfig(
        scheme=SCHEME,
        master="avcc",
        backend=backend,
        seed=seed,
        workers=tuple(specs),
        batch_window=batch_window,
        max_inflight_rounds=window,
        backend_options=opts,
    )


def _operands(families, data_seed):
    rng = np.random.default_rng(data_seed)
    ops = []
    for fam in families:
        length = 12 if fam == "bwd" else 8
        ops.append(F.random(length, rng))
    return ops


def _expected(fam, op):
    if fam == "fwd":
        return ff_matvec(F, X, op)
    if fam == "bwd":
        return ff_matvec(F, XT, op)
    return ff_matvec(F, XT, ff_matvec(F, X, op))


def _serve(backend, families, ops, window, batch_window, seed):
    with Session.create(_config(backend, window, batch_window, seed)) as sess:
        sess.load(X)
        handles = []
        for fam, op in zip(families, ops):
            if fam == "fwd":
                handles.append(sess.submit_matvec(op))
            elif fam == "bwd":
                handles.append(sess.submit_matvec(op, transpose=True))
            else:
                handles.append(sess.submit_gramian(op))
        return [h.result() for h in handles]


def _check_parity(backend, families, window, batch_window, data_seed):
    ops = _operands(families, data_seed)
    serial = _serve(backend, families, ops, 1, batch_window, seed=data_seed)
    piped = _serve(backend, families, ops, window, batch_window, seed=data_seed)
    for fam, op, a, b in zip(families, ops, serial, piped):
        assert a.tobytes() == b.tobytes(), (backend, fam, window, batch_window)
        np.testing.assert_array_equal(b, _expected(fam, op), err_msg=str((backend, fam)))


class TestPipelinedParity:
    @settings(max_examples=25, deadline=None)
    @given(
        families=jobs_strategy,
        window=st.integers(min_value=2, max_value=4),
        batch_window=st.sampled_from([1, 2, 32]),
        data_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sim(self, families, window, batch_window, data_seed):
        _check_parity("sim", families, window, batch_window, data_seed)

    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        families=jobs_strategy,
        window=st.integers(min_value=2, max_value=3),
        batch_window=st.sampled_from([1, 32]),
        data_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_threaded(self, families, window, batch_window, data_seed):
        _check_parity("threaded", families, window, batch_window, data_seed)

    @settings(
        max_examples=3, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        families=jobs_strategy,
        window=st.integers(min_value=2, max_value=3),
        batch_window=st.sampled_from([1, 32]),
        data_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_process(self, families, window, batch_window, data_seed):
        _check_parity("process", families, window, batch_window, data_seed)
