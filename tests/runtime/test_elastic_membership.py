"""Elastic membership on the socket backends: worker join/rejoin.

Covers what PR 7 added to the runtime layer — a restarted or brand-new
worker daemon can dial a *running* cluster, handshake, park as a
pending join, and be admitted at a quiesce point (never mid-round);
``drop_workers`` is reversible; the hello-level protocol negotiation
turns mismatched daemons away with a descriptive error on both the
sync and async read paths. The session-level reconciliation
(``end_iteration`` growing N, byte-exact results across membership
changes) is exercised at the bottom.
"""

import asyncio
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.coding import SchemeParams
from repro.ff import PrimeField, ff_matvec
from repro.runtime import AsyncTcpCluster, RoundJob, SimWorker, TcpCluster
from repro.runtime.net import (
    PROTOCOL_VERSION,
    WireError,
    read_frame,
    send_frame,
)
from repro.runtime.net.wire import check_hello, read_frame_async

F = PrimeField()

CLUSTERS = {"tcp": TcpCluster, "async_tcp": AsyncTcpCluster}
KINDS = sorted(CLUSTERS)


def _cluster(kind, n, **kw):
    workers = [SimWorker(i) for i in range(n)]
    kw.setdefault("straggle_scale", 0.002)
    kw.setdefault("heartbeat_interval", 0.05)
    kw.setdefault("heartbeat_timeout", 0.5)
    return CLUSTERS[kind](F, workers, **kw)


def _await(pred, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(interval)
    return pred()


def _round(backend, shares, v, participants=None):
    """Distribute fresh shares and run one matvec round; returns the
    arrivals' worker ids (sorted) after checking values are exact."""
    roster = list(participants) if participants is not None else None
    backend.distribute("share", shares, participants=participants)
    handle = backend.dispatch_round(
        RoundJob(payload_key="share", operand=v), participants=participants
    )
    arrivals = list(handle)
    handle.result()  # harvest: deregisters the round from the cluster
    for a in arrivals:
        # share i ships to participants[i] (identity when unrestricted)
        row = roster.index(a.worker_id) if roster is not None else a.worker_id
        np.testing.assert_array_equal(a.value, ff_matvec(F, shares[row], v))
    return sorted(a.worker_id for a in arrivals)


# ----------------------------------------------------------------------
# backend-level join / rejoin / drop
# ----------------------------------------------------------------------
class TestElasticJoin:
    @pytest.mark.parametrize("kind", KINDS)
    def test_sigkill_restart_rejoin_and_serve(self, kind, rng):
        """The ISSUE's acceptance choreography: SIGKILL a worker
        mid-run, restart its daemon, admit it at a quiesce point, and
        serve with the full fleet again."""
        shares = F.random((4, 3, 5), rng)
        v = F.random(5, rng)
        with _cluster(kind, 4) as backend:
            assert _round(backend, shares, v) == [0, 1, 2, 3]
            os.kill(backend.worker_pids()[2], signal.SIGKILL)
            # the sync pump only runs while collecting — the next round
            # both detects the death and completes without the victim
            assert _round(backend, shares, v) == [0, 1, 3]
            assert 2 in backend.membership().dead

            backend.restart_worker(2)
            assert _await(lambda: 2 in backend.membership().pending)
            assert backend.admit_workers() == (2,)
            view = backend.membership()
            assert view.live == (0, 1, 2, 3) and view.dead == ()
            # the replacement daemon starts with empty storage — the
            # caller re-ships, then the full fleet serves again
            assert _round(backend, shares, v) == [0, 1, 2, 3]
            kinds = {(e.kind, e.worker_id) for e in backend.take_membership_events()}
        assert ("dead", 2) in kinds and ("rejoined", 2) in kinds

    @pytest.mark.parametrize("kind", KINDS)
    def test_admit_mid_round_raises(self, kind, rng):
        shares = F.random((3, 2, 4), rng)
        v = F.random(4, rng)
        with _cluster(kind, 3) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            with pytest.raises(RuntimeError, match="mid-round"):
                backend.admit_workers()
            list(handle)
            handle.result()  # drained and harvested: now admissible
            assert backend.admit_workers() == ()

    @pytest.mark.parametrize("kind", KINDS)
    def test_spawn_worker_grows_roster(self, kind, rng):
        with _cluster(kind, 3) as backend:
            wid = backend.spawn_worker()
            assert wid == 3
            assert _await(lambda: 3 in backend.membership().pending)
            assert backend.admit_workers() == (3,)
            view = backend.membership()
            assert view.n == 4 and view.live == (0, 1, 2, 3)
            shares = F.random((4, 3, 5), rng)
            v = F.random(5, rng)
            assert _round(backend, shares, v) == [0, 1, 2, 3]
            kinds = {(e.kind, e.worker_id) for e in backend.take_membership_events()}
        assert ("joined", 3) in kinds

    @pytest.mark.parametrize("kind", KINDS)
    def test_drop_is_reversible(self, kind, rng):
        shares = F.random((3, 2, 4), rng)
        v = F.random(4, rng)
        with _cluster(kind, 3) as backend:
            backend.drop_workers([1])
            assert backend.membership().dropped == (1,)
            assert _round(backend, shares, v, participants=[0, 2]) == [0, 2]
            # dropping shut the daemon down — reversal is a restart
            backend.restart_worker(1)
            assert _await(lambda: 1 in backend.membership().pending)
            assert backend.admit_workers() == (1,)
            view = backend.membership()
            assert view.dropped == () and view.live == (0, 1, 2)
            assert _round(backend, shares, v) == [0, 1, 2]

    @pytest.mark.parametrize("kind", KINDS)
    def test_gapped_id_waits_for_dense_roster(self, kind):
        """A joiner whose id would leave a hole in 0..n-1 parks until
        the gap fills (ids index the share arrays — they must stay
        dense)."""
        with _cluster(kind, 2) as backend:
            assert backend.spawn_worker(3) == 3
            assert _await(lambda: 3 in backend.membership().pending)
            assert backend.admit_workers() == ()  # 3 > n: stays parked
            assert 3 in backend.membership().pending
            assert backend.spawn_worker(2) == 2
            assert _await(lambda: 2 in backend.membership().pending)
            assert backend.admit_workers() == (2, 3)  # gap filled: both land
            assert backend.membership().live == (0, 1, 2, 3)


# ----------------------------------------------------------------------
# hello-level version negotiation
# ----------------------------------------------------------------------
class TestVersionNegotiation:
    def test_check_hello_accepts_current_protocol(self):
        assert check_hello({"worker_id": 7, "protocol": PROTOCOL_VERSION}) == 7

    def test_check_hello_names_both_versions(self):
        with pytest.raises(WireError, match="version mismatch") as err:
            check_hello({"worker_id": 3, "protocol": PROTOCOL_VERSION + 9})
        msg = str(err.value)
        assert str(PROTOCOL_VERSION) in msg and str(PROTOCOL_VERSION + 9) in msg

    def test_check_hello_rejects_missing_or_negative_id(self):
        with pytest.raises(WireError, match="worker_id"):
            check_hello({"protocol": PROTOCOL_VERSION})
        with pytest.raises(WireError, match=">= 0"):
            check_hello({"worker_id": -1, "protocol": PROTOCOL_VERSION})

    @pytest.mark.parametrize("kind", KINDS)
    def test_mismatched_daemon_turned_away_at_join(self, kind):
        """A late dialer whose hello negotiates the wrong protocol
        revision is rejected (connection closed, never parked) on both
        the sync selector path and the asyncio path."""
        with _cluster(kind, 2) as backend:
            fresh = 2  # would be a valid new id if the hello were sane
            with socket.create_connection(
                (backend.host, backend.port), timeout=5.0
            ) as conn:
                send_frame(
                    conn,
                    "hello",
                    {"worker_id": fresh, "protocol": PROTOCOL_VERSION + 1},
                )
                conn.settimeout(5.0)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    backend.membership()  # sync path sweeps the backlog here
                    try:
                        read_frame(conn)
                    except WireError:
                        break  # master hung up without a config frame
                else:  # pragma: no cover - timing failure
                    pytest.fail("master never closed the mismatched dialer")
            assert fresh not in backend.membership().pending

    def test_async_read_path_rejects_frame_version(self):
        """The asyncio reader raises the same descriptive WireError as
        the sync one when the preamble's version byte is foreign."""
        from repro.runtime.net.wire import encode_frame

        frame = bytearray(
            b"".join(bytes(p) for p in encode_frame("heartbeat", {"seq": 1}))
        )
        frame[2] = PROTOCOL_VERSION + 1

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(bytes(frame))
            reader.feed_eof()
            await read_frame_async(reader)

        with pytest.raises(WireError, match="version mismatch"):
            asyncio.run(scenario())


# ----------------------------------------------------------------------
# session-level reconciliation: grow N, keep results byte-exact
# ----------------------------------------------------------------------
def _session_config(kind):
    return SessionConfig(
        scheme=SchemeParams(n=4, k=2, s=1, m=0),
        master="avcc",
        backend=kind,
        backend_options={
            "straggle_scale": 0.002,
            "heartbeat_interval": 0.05,
            "heartbeat_timeout": 0.5,
        },
    )


class TestElasticSession:
    @pytest.mark.parametrize("kind", KINDS)
    def test_membership_changes_keep_results_exact(self, kind, rng):
        """Kill → evict → rejoin → grow → release across quiesce
        points; every matvec answer must equal the plain-field
        reference bit for bit, and the stats must narrate the
        membership story."""
        x = F.random((6, 5), rng)
        vs = [F.random(5, rng) for _ in range(5)]
        expected = [ff_matvec(F, x, v) for v in vs]

        with Session.create(_session_config(kind)) as sess:
            sess.load(x)
            results = [sess.submit_matvec(vs[0]).result()]

            os.kill(sess.backend.worker_pids()[3], signal.SIGKILL)
            # s=1 absorbs the death mid-round, but rounds early-stop
            # faster than the heartbeat timeout — keep serving until
            # the liveness machinery has actually declared it dead
            deadline = time.monotonic() + 30.0
            while 3 not in sess.backend.membership().dead:
                assert time.monotonic() < deadline, "death never detected"
                sess.submit_matvec(vs[1]).result()
            results.append(sess.submit_matvec(vs[1]).result())
            out = sess.end_iteration()
            assert out.departed_workers == (3,)
            assert sess.master.scheme_now[0] == 3

            sess.backend.restart_worker(3)
            assert _await(lambda: 3 in sess.backend.membership().pending)
            out = sess.end_iteration()
            assert out.joined_workers == (3,)
            assert out.reencode_time > 0.0  # rejoin re-ships shares
            assert sess.master.scheme_now[0] == 4
            results.append(sess.submit_matvec(vs[2]).result())

            sess.backend.spawn_worker()
            assert _await(lambda: 4 in sess.backend.membership().pending)
            out = sess.end_iteration()
            assert out.joined_workers == (4,)
            assert sess.master.scheme_now[0] == 5
            results.append(sess.submit_matvec(vs[3]).result())

            out = sess.release_workers([4])
            assert out.departed_workers == (4,)
            assert sess.master.scheme_now[0] == 4
            results.append(sess.submit_matvec(vs[4]).result())

            stats = sess.stats
        assert stats.dead_workers == (3,)
        assert stats.rejoined_workers == (3,)
        assert stats.joined_workers == (4,)
        assert stats.membership_changes >= 3
        assert "membership:" in stats.summary()
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)

    def test_release_workers_validates_roster(self, rng):
        x = F.random((4, 3), rng)
        with Session.create(_session_config("tcp")) as sess:
            sess.load(x)
            with pytest.raises(ValueError, match="not in the roster"):
                sess.release_workers([17])
            with pytest.raises(ValueError, match="at least one"):
                sess.release_workers([])
