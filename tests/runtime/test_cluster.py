"""Tests for the simulated cluster round executor."""

import math

import numpy as np
import pytest

from repro.ff import PrimeField, ff_matvec
from repro.runtime import (
    CostModel,
    Honest,
    ReversedValueAttack,
    SilentFailure,
    SimCluster,
    SimWorker,
    make_profiles,
)

F = PrimeField(7919)


def _mk_cluster(n=4, straggler_factors=None, behaviors=None, rng=None, cm=None):
    profiles = make_profiles(n, straggler_factors or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(F, workers, cost_model=cm or CostModel(), rng=rng or np.random.default_rng(1))


class TestConstruction:
    def test_requires_contiguous_ids(self):
        with pytest.raises(ValueError, match="0..n-1"):
            SimCluster(F, [SimWorker(0), SimWorker(2)])

    def test_workers_sorted_by_id(self):
        c = SimCluster(F, [SimWorker(1), SimWorker(0)])
        assert [w.worker_id for w in c.workers] == [0, 1]


class TestClock:
    def test_advance(self):
        c = _mk_cluster()
        c.advance_to(5.0)
        assert c.now == 5.0
        with pytest.raises(ValueError, match="backward"):
            c.advance_to(1.0)

    def test_elapse(self):
        c = _mk_cluster()
        c.elapse(2.0)
        c.elapse(3.0)
        assert c.now == 5.0
        with pytest.raises(ValueError):
            c.elapse(-1.0)


class TestDistribute:
    def test_stores_and_charges_time(self, rng):
        c = _mk_cluster(n=3)
        shares = F.random((3, 4, 5), rng)
        spent = c.distribute("X", shares)
        for i in range(3):
            np.testing.assert_array_equal(c.worker(i).payload["X"], shares[i])
        want = 3 * c.cost_model.transfer_time(20)
        assert spent == pytest.approx(want)
        assert c.now == pytest.approx(want)

    def test_subset_participants_slot_mapping(self, rng):
        """shares[slot] goes to participants[slot] — the (N-1,K-1)
        re-encode path ships fewer shares than workers."""
        c = _mk_cluster(n=4)
        shares = F.random((2, 3), rng)
        c.distribute("X", shares, participants=[3, 1])
        np.testing.assert_array_equal(c.worker(3).payload["X"], shares[0])
        np.testing.assert_array_equal(c.worker(1).payload["X"], shares[1])
        assert "X" not in c.worker(0).payload

    def test_too_few_shares(self, rng):
        c = _mk_cluster(n=3)
        with pytest.raises(ValueError, match="fewer shares"):
            c.distribute("X", F.random((2, 2), rng))


class TestRunRound:
    def _setup(self, c, rng, d=6):
        shares = F.random((c.n, 3, d), rng)
        c.distribute("X", shares)
        w = F.random(d, rng)
        return shares, w

    def test_honest_results_and_ordering(self, rng):
        c = _mk_cluster(n=4, straggler_factors={2: 10.0})
        shares, w = self._setup(c, rng)
        rr = c.run_round(
            compute=lambda p: ff_matvec(F, p["X"], w),
            macs=lambda p: p["X"].size,
            broadcast_elements=w.size,
        )
        assert len(rr.arrivals) == 4
        times = [a.t_arrival for a in rr.arrivals]
        assert times == sorted(times)
        assert rr.arrivals[-1].worker_id == 2  # the straggler arrives last
        for a in rr.arrivals:
            np.testing.assert_array_equal(
                a.value, ff_matvec(F, shares[a.worker_id], w)
            )

    def test_straggler_time_scales(self, rng):
        cm = CostModel(link_latency_s=0.0)
        c = _mk_cluster(n=2, straggler_factors={1: 5.0}, cm=cm)
        self._setup(c, rng)
        w = F.random(6, rng)
        rr = c.run_round(
            compute=lambda p: ff_matvec(F, p["X"], w),
            macs=lambda p: p["X"].size,
            broadcast_elements=w.size,
        )
        fast, slow = rr.arrivals
        assert slow.compute_time == pytest.approx(5.0 * fast.compute_time)

    def test_byzantine_value_corrupted_flag_set(self, rng):
        c = _mk_cluster(n=3, behaviors={1: ReversedValueAttack()})
        shares, w = self._setup(c, rng)
        rr = c.run_round(
            compute=lambda p: ff_matvec(F, p["X"], w),
            macs=lambda p: p["X"].size,
            broadcast_elements=w.size,
        )
        by_id = {a.worker_id: a for a in rr.arrivals}
        honest = ff_matvec(F, shares[1], w)
        np.testing.assert_array_equal(by_id[1].value, F.neg(honest))
        assert by_id[1].truly_byzantine
        assert not by_id[0].truly_byzantine

    def test_silent_worker_never_arrives(self, rng):
        c = _mk_cluster(n=3, behaviors={2: SilentFailure()})
        shares, w = self._setup(c, rng)
        rr = c.run_round(
            compute=lambda p: ff_matvec(F, p["X"], w),
            macs=lambda p: p["X"].size,
            broadcast_elements=w.size,
        )
        assert math.isinf(rr.arrivals[-1].t_arrival)
        assert rr.arrivals[-1].worker_id == 2
        assert len(rr.arrived()) == 2

    def test_participants_subset(self, rng):
        c = _mk_cluster(n=4)
        shares, w = self._setup(c, rng)
        rr = c.run_round(
            compute=lambda p: ff_matvec(F, p["X"], w),
            macs=lambda p: p["X"].size,
            broadcast_elements=w.size,
            participants=[0, 3],
        )
        assert sorted(a.worker_id for a in rr.arrivals) == [0, 3]

    def test_clock_advanced_to_broadcast_only(self, rng):
        c = _mk_cluster(n=2)
        self._setup(c, rng)
        t0 = c.now
        w = F.random(6, rng)
        rr = c.run_round(
            compute=lambda p: ff_matvec(F, p["X"], w),
            macs=lambda p: p["X"].size,
            broadcast_elements=w.size,
        )
        assert c.now == pytest.approx(t0 + rr.broadcast_time)
        assert all(a.t_arrival >= c.now for a in rr.arrivals)

    def test_deterministic_given_seed(self, rng):
        def run(seed):
            c = _mk_cluster(n=3, straggler_factors={0: 3.0}, rng=np.random.default_rng(seed))
            shares = F.random((3, 2, 4), np.random.default_rng(42))
            c.distribute("X", shares)
            w = F.asarray([1, 2, 3, 4])
            rr = c.run_round(
                compute=lambda p: ff_matvec(F, p["X"], w),
                macs=lambda p: p["X"].size,
                broadcast_elements=4,
            )
            return [(a.worker_id, a.t_arrival) for a in rr.arrivals]

        assert run(7) == run(7)

    def test_duplicate_participants_rejected(self, rng):
        c = _mk_cluster(n=3)
        self._setup(c, rng)
        with pytest.raises(ValueError, match="duplicate"):
            c.run_round(
                compute=lambda p: p["X"][0],
                macs=lambda p: 1,
                broadcast_elements=1,
                participants=[1, 1],
            )
