"""Tests for the real thread-pool backend (kept small: wall-clock)."""

import math

import numpy as np

from repro.ff import PrimeField, ff_matvec
from repro.runtime import Honest, ReversedValueAttack, SilentFailure, SimWorker, make_profiles
from repro.runtime.threaded import ThreadedCluster

F = PrimeField(7919)


def _workers(n, straggler_factors=None, behaviors=None):
    profiles = make_profiles(n, straggler_factors or {})
    behaviors = behaviors or {}
    return [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]


class TestThreadedCluster:
    def test_round_returns_real_results(self, rng):
        workers = _workers(3)
        shares = F.random((3, 4, 5), rng)
        for w, s in zip(workers, shares):
            w.store(X=s)
        v = F.random(5, rng)
        with ThreadedCluster(F, workers, straggle_scale=0.0) as cluster:
            arrivals = cluster.run_round(lambda p: ff_matvec(F, p["X"], v))
        assert len(arrivals) == 3
        for a in arrivals:
            np.testing.assert_array_equal(a.value, ff_matvec(F, shares[a.worker_id], v))

    def test_straggler_arrives_last(self, rng):
        workers = _workers(3, straggler_factors={1: 4.0})
        for w in workers:
            w.store(X=F.random((2, 3), rng))
        with ThreadedCluster(F, workers, straggle_scale=0.05) as cluster:
            arrivals = cluster.run_round(lambda p: ff_matvec(F, p["X"], F.asarray([1, 2, 3])))
        assert arrivals[-1].worker_id == 1
        assert arrivals[-1].t_arrival > arrivals[0].t_arrival

    def test_byzantine_and_silent(self, rng):
        workers = _workers(
            3, behaviors={0: ReversedValueAttack(), 2: SilentFailure()}
        )
        shares = F.random((3, 2, 3), rng)
        for w, s in zip(workers, shares):
            w.store(X=s)
        v = F.asarray([1, 1, 1])
        with ThreadedCluster(F, workers, straggle_scale=0.0) as cluster:
            arrivals = cluster.run_round(lambda p: ff_matvec(F, p["X"], v))
        by_id = {a.worker_id: a for a in arrivals}
        assert by_id[2].value is None and math.isinf(by_id[2].t_arrival)
        np.testing.assert_array_equal(
            by_id[0].value, F.neg(ff_matvec(F, shares[0], v))
        )
        assert by_id[0].truly_byzantine

    def test_participants_subset(self, rng):
        workers = _workers(4)
        for w in workers:
            w.store(X=F.random((2, 2), rng))
        with ThreadedCluster(F, workers, straggle_scale=0.0) as cluster:
            arrivals = cluster.run_round(
                lambda p: ff_matvec(F, p["X"], F.asarray([1, 2])), participants=[1, 2]
            )
        assert sorted(a.worker_id for a in arrivals) == [1, 2]
