"""Cross-backend contract tests.

The point of the ``Backend`` protocol is that a master's output is a
property of the *protocol*, not of the execution substrate. These
tests pin that down:

* **parity** — for the same seed, scheme and Byzantine/straggler
  assignment, the decoded vectors of every master must be
  byte-identical across the simulator, the thread pool, the process
  pool and the TCP socket fleet (exact field arithmetic makes this a
  hard equality, regardless of real-execution arrival order);
* **early stopping** — once the verified-recovery threshold is met the
  round is cancelled, so the real backends must not pay a straggler's
  tail latency the master does not need.
"""

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import SchemeParams
from repro.core import AVCCMaster, LCCMaster, UncodedMaster
from repro.ff import PrimeField, ff_matvec
from repro.runtime import (
    AsyncTcpCluster,
    Backend,
    ConstantAttack,
    Honest,
    ProcessCluster,
    ReversedValueAttack,
    RoundJob,
    SilentFailure,
    SimCluster,
    SimWorker,
    TcpCluster,
    ThreadedCluster,
    make_profiles,
)

F = PrimeField()  # the paper's field: exactness must hold at full size

BACKENDS = ["sim", "threaded", "process", "tcp", "async_tcp"]
REAL_BACKENDS = ["threaded", "process", "tcp", "async_tcp"]

#: (straggler_factors, behaviors) — each must stay within the
#: (n=12, k=9, s=1, m=2) scheme's tolerance so decoding is exact
SCENARIOS = {
    "clean": ({}, {}),
    "stragglers": ({0: 6.0, 5: 3.0}, {}),
    "byzantine": ({}, {3: ReversedValueAttack(), 7: ConstantAttack()}),
    "mixed": ({2: 5.0}, {9: ConstantAttack(value=77)}),
}


def _fleet(n, straggler_factors, behaviors):
    profiles = make_profiles(n, straggler_factors)
    return [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]


def _make_backend(kind, n, straggler_factors, behaviors, straggle_scale=0.01):
    workers = _fleet(n, straggler_factors, behaviors)
    if kind == "sim":
        return SimCluster(F, workers, rng=np.random.default_rng(3))
    if kind == "threaded":
        return ThreadedCluster(F, workers, straggle_scale=straggle_scale)
    if kind == "process":
        return ProcessCluster(F, workers, straggle_scale=straggle_scale)
    if kind == "tcp":
        return TcpCluster(F, workers, straggle_scale=straggle_scale)
    if kind == "async_tcp":
        return AsyncTcpCluster(F, workers, straggle_scale=straggle_scale)
    raise ValueError(kind)


class TestProtocolConformance:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_is_backend_and_serves_matvec_jobs(self, kind, rng):
        shares = F.random((4, 3, 5), rng)
        v = F.random(5, rng)
        with _make_backend(kind, 4, {}, {}) as backend:
            assert isinstance(backend, Backend)
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            arrivals = list(handle)
            rr = handle.result()
        assert sorted(a.worker_id for a in arrivals) == [0, 1, 2, 3]
        for a in arrivals:
            np.testing.assert_array_equal(a.value, ff_matvec(F, shares[a.worker_id], v))
        # arrival stream and full result agree
        assert {a.worker_id for a in rr.arrived()} == {a.worker_id for a in arrivals}
        assert all(
            a.t_arrival >= rr.t_start + rr.broadcast_time for a in rr.arrived()
        )

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_silent_worker_never_arrives(self, kind, rng):
        shares = F.random((3, 2, 4), rng)
        v = F.random(4, rng)
        with _make_backend(kind, 3, {}, {1: SilentFailure()}) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            arrivals = list(handle)
            rr = handle.result()
        assert sorted(a.worker_id for a in arrivals) == [0, 2]
        silent = [a for a in rr.arrivals if a.worker_id == 1]
        assert len(silent) == 1 and math.isinf(silent[0].t_arrival)


class TestBackendParity:
    """Property: decoded output is substrate-independent.

    Exactness over F_q means any K verified results decode to the same
    blocks, so the real backends' nondeterministic arrival order must
    not leak into the result — byte-for-byte.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_avcc_decodes_identically_everywhere(self, scenario, seed):
        straggler_factors, behaviors = SCENARIOS[scenario]
        data_rng = np.random.default_rng(seed)
        x = F.random((30, 8), data_rng)
        w = F.random(8, data_rng)
        e = F.random(30, data_rng)

        forward, backward = {}, {}
        for kind in BACKENDS:
            with _make_backend(kind, 12, straggler_factors, behaviors) as backend:
                master = AVCCMaster(
                    backend,
                    SchemeParams(n=12, k=9, s=1, m=2),
                    rng=np.random.default_rng(seed + 100),
                )
                master.setup(x)
                forward[kind] = master.forward_round(w).vector
                backward[kind] = master.backward_round(e).vector

        z = ff_matvec(F, x, w)
        g = ff_matvec(F, x.T.copy(), e)
        for kind in BACKENDS:
            np.testing.assert_array_equal(forward[kind], z, err_msg=kind)
            np.testing.assert_array_equal(backward[kind], g, err_msg=kind)
            assert forward[kind].tobytes() == forward["sim"].tobytes()
            assert backward[kind].tobytes() == backward["sim"].tobytes()

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        stragglers=st.dictionaries(
            st.integers(0, 11), st.floats(1.5, 8.0), max_size=2
        ),
        byzantine=st.lists(
            st.sampled_from([3, 7, 9]), unique=True, max_size=2
        ),
    )
    def test_parity_property(self, seed, stragglers, byzantine):
        """Hypothesis-driven: any seed + any in-tolerance fault
        assignment decodes byte-identically on every backend."""
        behaviors = {
            wid: (ReversedValueAttack() if i % 2 else ConstantAttack())
            for i, wid in enumerate(byzantine)
        }
        data_rng = np.random.default_rng(seed)
        x = F.random((24, 6), data_rng)
        w = F.random(6, data_rng)

        decoded = {}
        for kind in BACKENDS:
            with _make_backend(kind, 12, stragglers, behaviors) as backend:
                master = AVCCMaster(
                    backend,
                    SchemeParams(n=12, k=9, s=1, m=2),
                    rng=np.random.default_rng(seed ^ 0xA5C),
                )
                master.setup(x)
                decoded[kind] = master.forward_round(w).vector

        z = ff_matvec(F, x, w)
        for kind in BACKENDS:
            np.testing.assert_array_equal(decoded[kind], z, err_msg=kind)
            assert decoded[kind].tobytes() == decoded["sim"].tobytes()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_lcc_and_uncoded_parity_clean_fleet(self, seed):
        data_rng = np.random.default_rng(seed)
        x = F.random((36, 6), data_rng)
        w = F.random(6, data_rng)

        z = ff_matvec(F, x, w)
        for kind in BACKENDS:
            with _make_backend(kind, 12, {}, {}) as backend:
                lcc = LCCMaster(
                    backend,
                    SchemeParams(n=12, k=9, s=1, m=1),
                    rng=np.random.default_rng(seed + 7),
                )
                lcc.setup(x)
                np.testing.assert_array_equal(
                    lcc.forward_round(w).vector, z, err_msg=f"lcc/{kind}"
                )
            with _make_backend(kind, 12, {}, {}) as backend:
                unc = UncodedMaster(backend, k=9)
                unc.setup(x)
                np.testing.assert_array_equal(
                    unc.forward_round(w).vector, z, err_msg=f"uncoded/{kind}"
                )

    def test_avcc_adaptation_parity_across_backends(self):
        """A full iterate -> drop Byzantine -> next iteration cycle must
        stay exact on every backend (worker-pool mutation path)."""
        data_rng = np.random.default_rng(9)
        x = F.random((27, 5), data_rng)
        w = F.random(5, data_rng)
        e = F.random(27, data_rng)
        z = ff_matvec(F, x, w)
        g = ff_matvec(F, x.T.copy(), e)

        for kind in BACKENDS:
            with _make_backend(kind, 12, {}, {6: ConstantAttack()}) as backend:
                master = AVCCMaster(
                    backend,
                    SchemeParams(n=12, k=9, s=1, m=2),
                    rng=np.random.default_rng(42),
                )
                master.setup(x)
                master.forward_round(w)
                master.backward_round(e)
                out = master.end_iteration()
                assert out.detected_byzantine == (6,), kind
                assert 6 not in master.active
                # dropped worker is really gone: still exact without it
                np.testing.assert_array_equal(master.forward_round(w).vector, z)
                np.testing.assert_array_equal(master.backward_round(e).vector, g)


class TestEarlyStopping:
    """Once the verified threshold is met the round is cancelled; a
    real backend must not pay the straggler's sleep the master skipped."""

    SLEEP = 1.5  # seconds of injected straggle, far above a round's work

    @pytest.mark.parametrize("kind", REAL_BACKENDS)
    def test_round_does_not_wait_for_cancelled_straggler(self, kind):
        data_rng = np.random.default_rng(1)
        x = F.random((30, 8), data_rng)
        w = F.random(8, data_rng)
        factor = 16.0
        scale = self.SLEEP / (factor - 1.0)
        with _make_backend(kind, 12, {0: factor}, {}, straggle_scale=scale) as backend:
            master = AVCCMaster(
                backend, SchemeParams(n=12, k=9, s=2, m=1), rng=np.random.default_rng(2)
            )
            master.setup(x)
            t0 = time.perf_counter()
            out = master.forward_round(w)
            wall = time.perf_counter() - t0
        np.testing.assert_array_equal(out.vector, ff_matvec(F, x, w))
        assert 0 not in out.record.used_workers
        # any wall < SLEEP proves the straggler's sleep was skipped;
        # 0.8 leaves slack for loaded single-core CI runners
        assert wall < self.SLEEP * 0.8, f"{kind} round waited on a cancelled straggler"

    @pytest.mark.parametrize("kind", REAL_BACKENDS)
    def test_back_to_back_rounds_after_cancellation(self, kind):
        """Stale results of a cancelled round must not bleed into the
        next one (the process backend drains them by round id)."""
        data_rng = np.random.default_rng(4)
        x = F.random((30, 8), data_rng)
        w = F.random(8, data_rng)
        e = F.random(30, data_rng)
        with _make_backend(kind, 12, {0: 9.0}, {}, straggle_scale=0.05) as backend:
            master = AVCCMaster(
                backend, SchemeParams(n=12, k=9, s=2, m=1), rng=np.random.default_rng(2)
            )
            master.setup(x)
            for _ in range(3):
                np.testing.assert_array_equal(
                    master.forward_round(w).vector, ff_matvec(F, x, w)
                )
                np.testing.assert_array_equal(
                    master.backward_round(e).vector, ff_matvec(F, x.T.copy(), e)
                )
                master.end_iteration()

    def test_threaded_cancel_wakes_sleeping_straggler(self, rng):
        """The cancellation event must interrupt the injected sleep —
        the backend's own join must not serialize on it either."""
        shares = F.random((4, 2, 3), rng)
        v = F.random(3, rng)
        with ThreadedCluster(
            F, _fleet(4, {3: 31.0}, {}), straggle_scale=0.1
        ) as backend:  # straggler sleeps 3 s uncancelled
            backend.distribute("share", shares)
            t0 = time.perf_counter()
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            seen = []
            for a in handle:
                seen.append(a.worker_id)
                if len(seen) == 3:
                    handle.cancel()
                    break
            rr = handle.result()  # joins all tasks
            wall = time.perf_counter() - t0
        assert sorted(seen) == [0, 1, 2]
        late = [a for a in rr.arrivals if a.worker_id == 3]
        assert len(late) == 1 and math.isinf(late[0].t_arrival)
        assert wall < 1.5, "result() blocked on the cancelled straggler's sleep"


class TestFaultContainment:
    """Real backends must degrade, not hang or crash, on worker faults."""

    @pytest.mark.parametrize("kind", REAL_BACKENDS)
    def test_malformed_job_raises_instead_of_hanging(self, kind, rng):
        """A job every worker fails on (bad payload key) must raise —
        the threaded backend used to deadlock in queue.get() here."""
        shares = F.random((3, 2, 3), rng)
        v = F.random(3, rng)
        with _make_backend(kind, 3, {}, {}) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="nope", operand=v))
            with pytest.raises(RuntimeError, match="all 3 workers failed"):
                list(handle)

    @pytest.mark.parametrize("kind", REAL_BACKENDS)
    def test_single_worker_error_degrades_to_silence(self, kind, rng):
        """One worker missing its payload behaves like a crash-stop
        node: the others still arrive and the round completes."""
        shares = F.random((3, 2, 3), rng)
        v = F.random(3, rng)
        with _make_backend(kind, 3, {}, {}) as backend:
            backend.distribute("share", shares)
            backend.distribute("extra", shares[:1], participants=[0])
            handle = backend.dispatch_round(RoundJob(payload_key="extra", operand=v))
            arrivals = list(handle)
            rr = handle.result()
        assert [a.worker_id for a in arrivals] == [0]
        assert {a.worker_id for a in rr.arrivals} == {0, 1, 2}
        assert set(handle.worker_errors) == {1, 2}

    def test_process_survives_killed_worker(self, rng):
        """A SIGKILLed worker process is marked dead and later rounds
        and re-distributions keep running without it."""
        import os
        import signal

        shares = F.random((4, 2, 3), rng)
        v = F.random(3, rng)
        with _make_backend("process", 4, {}, {}) as backend:
            backend.distribute("share", shares)
            os.kill(backend._procs[2].pid, signal.SIGKILL)
            for _ in range(2):
                handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
                assert sorted(a.worker_id for a in handle) == [0, 1, 3]
                dead = [a for a in handle.result().arrivals if a.worker_id == 2]
                assert len(dead) == 1 and math.isinf(dead[0].t_arrival)
            backend.distribute("share", shares)  # re-encode path survives too

    def test_threaded_intermittent_attack_varies_across_rounds(self, rng):
        """The behaviour RNG lives for the worker's lifetime, so a
        per-round-random attack really is per-round random (the
        backend used to reseed per round, freezing the coin flip)."""
        from repro.runtime import IntermittentAttack

        share = F.random((1, 2, 3), rng)
        v = F.random(3, rng)
        fleet = [
            SimWorker(
                0,
                profile=make_profiles(1, {})[0],
                behavior=IntermittentAttack(ReversedValueAttack(), probability=0.5),
            )
        ]
        outputs = set()
        with ThreadedCluster(F, fleet, straggle_scale=0.0) as backend:
            backend.distribute("share", share)
            for _ in range(12):
                handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
                arrival = next(iter(handle))
                handle.result()
                outputs.add(arrival.value.tobytes())
        assert len(outputs) == 2  # honest rounds and attacked rounds
