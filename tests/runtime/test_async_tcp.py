"""Asyncio TCP backend specifics: what only the event-loop master can
exhibit.

The generic Backend-contract, parity and early-stopping coverage for
``async_tcp`` lives in ``test_backends.py`` (it is in the ``BACKENDS``
matrix); this file covers the loop-native behaviours: cancellation
mid-collect, always-on heartbeat dead-peer detection, clean loop
shutdown with rounds still in flight, and the headline scaling
property — thread count O(1) in worker count at 64+ workers.
"""

import math
import socket
import threading
import time

import numpy as np
import pytest
from test_backends import _fleet

from repro.ff import PrimeField, ff_matvec
from repro.runtime import AsyncTcpCluster, RoundJob
from repro.runtime.net import (
    PROTOCOL_VERSION,
    free_port,
    read_frame,
    send_frame,
    spawn_local_workers,
)

F = PrimeField()


class TestCancellation:
    def test_cancel_mid_collect_skips_straggler_sleep(self, rng):
        """Cancelling after enough arrivals must neither wait for the
        straggler's injected sleep nor leak its late reply into the
        next round."""
        sleep = 1.5
        factor = 16.0
        shares = F.random((4, 2, 4), rng)
        v1 = F.random(4, rng)
        v2 = F.random(4, rng)
        with AsyncTcpCluster(
            F, _fleet(4, {3: factor}, {}), straggle_scale=sleep / (factor - 1.0)
        ) as backend:
            backend.distribute("share", shares)
            t0 = time.perf_counter()
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v1))
            seen = []
            for a in handle:
                seen.append(a.worker_id)
                if len(seen) == 3:
                    handle.cancel()
                    break
            rr = handle.result()
            wall = time.perf_counter() - t0
            assert sorted(seen) == [0, 1, 2]
            assert wall < sleep * 0.8, "collect waited on a cancelled straggler"
            late = [a for a in rr.arrivals if a.worker_id == 3]
            assert len(late) == 1 and math.isinf(late[0].t_arrival)
            # cancel is idempotent and safe after result()
            handle.cancel()
            assert handle.result().arrivals == rr.arrivals
            # the cancelled round's rid never bleeds into the next one
            time.sleep(sleep + 0.3)  # let the straggler drain its sleep
            handle2 = backend.dispatch_round(RoundJob(payload_key="share", operand=v2))
            got2 = {a.worker_id: a.value for a in handle2}
            assert sorted(got2) == [0, 1, 2, 3]
            for wid, value in got2.items():
                np.testing.assert_array_equal(value, ff_matvec(F, shares[wid], v2))


class TestLiveness:
    def test_heartbeat_detects_zombie_peer(self, rng):
        """A peer that registers then goes silent must be marked dead
        by the always-on heartbeat task and recorded as a never-arrived
        straggler — the round completes without it."""
        port = free_port()
        stop = threading.Event()

        def zombie():
            deadline = time.monotonic() + 20.0
            while True:  # retry until the master listens
                try:
                    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.02)
            with sock:
                send_frame(sock, "hello", {"worker_id": 2, "protocol": PROTOCOL_VERSION})
                read_frame(sock)  # config
                stop.wait(30.0)  # never answer anything again

        # spawn (fork) the real workers before starting any thread
        fleet = spawn_local_workers("127.0.0.1", port, [0, 1])
        thread = threading.Thread(target=zombie, daemon=True)
        thread.start()
        try:
            with AsyncTcpCluster(
                F,
                _fleet(3, {}, {}),
                port=port,
                spawn_workers=False,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.4,
            ) as backend:
                shares = F.random((3, 2, 4), rng)
                v = F.random(4, rng)
                backend.distribute("share", shares)
                t0 = time.perf_counter()
                handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
                arrivals = list(handle)
                wall = time.perf_counter() - t0
                rr = handle.result()
            assert sorted(a.worker_id for a in arrivals) == [0, 1]
            zombie_arrival = [a for a in rr.arrivals if a.worker_id == 2]
            assert len(zombie_arrival) == 1
            assert not np.isfinite(zombie_arrival[0].t_arrival)
            assert wall < 10.0, "heartbeat detection should beat any long timeout"
        finally:
            stop.set()
            fleet.terminate()

    def test_round_collect_timeout_expires_stragglers(self, rng):
        """The loop's call_later round deadline records outstanding
        workers as never-arrived without killing them."""
        shares = F.random((3, 2, 4), rng)
        v1 = F.random(4, rng)
        with AsyncTcpCluster(
            F, _fleet(3, {1: 21.0}, {}), straggle_scale=0.05, round_timeout=0.25
        ) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v1))
            arrivals = list(handle)
            assert sorted(a.worker_id for a in arrivals) == [0, 2]
            # expired-for-this-round is not dead: after the sleep
            # drains, an un-deadlined round collects all three
            assert 1 not in backend._dead
            time.sleep(1.3)
            backend.round_timeout = None
            handle3 = backend.dispatch_round(RoundJob(payload_key="share", operand=v1))
            got3 = {a.worker_id: a.value for a in handle3}
            assert sorted(got3) == [0, 1, 2]
            for wid, value in got3.items():
                np.testing.assert_array_equal(value, ff_matvec(F, shares[wid], v1))


class TestShutdown:
    def test_close_with_rounds_in_flight(self, rng):
        """close() while a round is still collecting must resolve the
        round (outstanding workers become never-arrived), stop the
        loop, and return promptly — no hang, no leaked thread."""
        sleep = 3.0
        factor = 31.0
        shares = F.random((3, 2, 4), rng)
        v = F.random(4, rng)
        backend = AsyncTcpCluster(
            F, _fleet(3, {2: factor}, {}), straggle_scale=sleep / (factor - 1.0)
        )
        try:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            # collect the two fast workers, leave the straggler in flight
            seen = []
            for a in handle:
                seen.append(a.worker_id)
                if len(seen) == 2:
                    break
            assert sorted(seen) == [0, 1]
        finally:
            t0 = time.perf_counter()
            backend.close()
            wall = time.perf_counter() - t0
        assert wall < sleep * 0.8, "close() waited out an in-flight straggler"
        rr = handle.result()  # resolves from the pushed missing events
        assert {a.worker_id for a in rr.arrivals} == {0, 1, 2}
        late = [a for a in rr.arrivals if a.worker_id == 2]
        assert math.isinf(late[0].t_arrival)
        assert not backend._thread.is_alive()
        backend.close()  # idempotent


class TestFanoutScaling:
    """The ISSUE's headline metric: one master, 64+ workers, O(1)
    threads."""

    @staticmethod
    def _run_fleet(n, rng):
        shares = F.random((n, 2, 4), rng)
        v = F.random(4, rng)
        with AsyncTcpCluster(F, _fleet(n, {}, {}), straggle_scale=0.0) as backend:
            during = threading.active_count()
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            got = {a.worker_id: a.value for a in handle}
            handle.result()
        assert sorted(got) == list(range(n))
        for wid, value in got.items():
            np.testing.assert_array_equal(value, ff_matvec(F, shares[wid], v))
        return during

    @pytest.mark.slow
    def test_64_workers_with_o1_threads(self, rng):
        threads_small = self._run_fleet(8, rng)
        threads_large = self._run_fleet(64, rng)
        # O(1): the master adds exactly one loop thread regardless of
        # worker count — 8x the fleet, identical thread census
        assert threads_large == threads_small
