"""Tests for the event-queue kernel."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop() for _ in range(3)] == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_fifo_on_ties(self):
        q = EventQueue()
        for name in ["first", "second", "third"]:
            q.push(5.0, name)
        assert [p for _, p in q.drain()] == ["first", "second", "third"]

    def test_inf_sorts_last(self):
        q = EventQueue()
        q.push(math.inf, "never")
        q.push(1e9, "late")
        assert q.pop()[1] == "late"
        assert q.pop()[1] == "never"

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(math.nan, "x")

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, None)
        assert q and len(q) == 1

    def test_peek_does_not_consume(self):
        q = EventQueue()
        q.push(2.5, "x")
        assert q.peek_time() == 2.5
        assert len(q) == 1

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_sorted_drain(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, t)
        out = [t for t, _ in q.drain()]
        assert out == sorted(times)
