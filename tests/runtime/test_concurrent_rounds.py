"""Concurrent in-flight rounds at the backend layer.

The pipelined scheduler keeps several dispatched rounds open at once,
so every backend must honor the extended ``RoundHandle`` contract:

* multiple outstanding rounds per fleet, each handle yielding exactly
  its own round's results (the process backend demultiplexes the
  shared per-worker pipes by round id — no handle may steal or drop
  another round's replies);
* ``cancel()`` idempotent, and safe before/after ``result()``;
* on the simulator, outstanding rounds contend through per-worker
  busy-time queues, and retiring a round (cancel/finalize) releases
  its workers for later dispatches.
"""

import numpy as np
import pytest
from test_backends import BACKENDS, _make_backend

from repro.ff import PrimeField, ff_matvec
from repro.runtime import RoundJob, SimCluster, SimWorker, make_profiles

F = PrimeField()


def _store_shares(backend, n, rng):
    shares = F.random((n, 4, 6), rng)
    backend.distribute("share", shares)
    return shares


class TestCancelContract:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_cancel_is_idempotent_and_safe_after_result(self, kind, rng):
        v = F.random(6, rng)
        with _make_backend(kind, 4, {}, {}) as backend:
            shares = _store_shares(backend, 4, rng)
            handle = backend.dispatch_round(RoundJob(operand=v))
            arrivals = list(handle)
            assert len(arrivals) == 4
            rr = handle.result()
            # cancel after result: no error, result unchanged
            handle.cancel()
            handle.cancel()
            assert handle.result().arrivals == rr.arrivals
            for a in rr.arrived():
                np.testing.assert_array_equal(
                    a.value, ff_matvec(F, shares[a.worker_id], v)
                )

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_cancel_before_consuming_then_result(self, kind, rng):
        v = F.random(6, rng)
        with _make_backend(kind, 4, {}, {}) as backend:
            _store_shares(backend, 4, rng)
            handle = backend.dispatch_round(RoundJob(operand=v))
            handle.cancel()
            handle.cancel()  # idempotent
            rr = handle.result()
            assert len(rr.arrivals) == 4  # every worker accounted for


class TestConcurrentRounds:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_two_outstanding_rounds_consumed_out_of_order(self, kind, rng):
        """Dispatch two rounds back to back, finalize the *second*
        first: each handle must deliver exactly its own operand's
        products (the process pipes carry both rounds' replies)."""
        v1 = F.random(6, rng)
        v2 = F.random(6, rng)
        with _make_backend(kind, 4, {}, {}) as backend:
            shares = _store_shares(backend, 4, rng)
            h1 = backend.dispatch_round(RoundJob(operand=v1))
            h2 = backend.dispatch_round(RoundJob(operand=v2))
            for handle, v in ((h2, v2), (h1, v1)):
                got = {a.worker_id: a.value for a in handle}
                assert len(got) == 4
                for wid, value in got.items():
                    np.testing.assert_array_equal(
                        value, ff_matvec(F, shares[wid], v)
                    )

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_many_outstanding_rounds_fifo_finalize(self, kind, rng):
        ops = [F.random(6, rng) for _ in range(5)]
        with _make_backend(kind, 4, {}, {}) as backend:
            shares = _store_shares(backend, 4, rng)
            handles = [backend.dispatch_round(RoundJob(operand=v)) for v in ops]
            for v, handle in zip(ops, handles):
                arrivals = list(handle)
                rr = handle.result()
                assert len(rr.arrived()) == 4
                for a in arrivals:
                    np.testing.assert_array_equal(
                        a.value, ff_matvec(F, shares[a.worker_id], v)
                    )


class TestSimBusyQueues:
    """The discrete-event simulator's worker busy-time contention."""

    def _sim(self, n=3):
        workers = [
            SimWorker(i, profile=make_profiles(n)[i]) for i in range(n)
        ]
        return SimCluster(F, workers, rng=np.random.default_rng(0))

    def test_outstanding_round_delays_the_next(self, rng):
        v = F.random(6, rng)
        c = self._sim()
        _store_shares(c, 3, rng)

        h1 = c.dispatch_round(RoundJob(operand=v))
        finish1 = {
            a.worker_id: a.t_arrival - a.comm_time for a in h1.result().arrivals
        }
        # h1.result() retired round 1 -> no contention for round 2
        h2 = c.dispatch_round(RoundJob(operand=v))
        base2 = {
            a.worker_id: a.t_arrival - a.comm_time - a.compute_time
            for a in h2.result().arrivals
        }
        # every worker of the retired rounds started at broadcast end
        assert all(
            t == pytest.approx(h2.t_start + h2.broadcast_time)
            for t in base2.values()
        )

        # now keep round 3 OUTSTANDING while dispatching round 4:
        h3 = c.dispatch_round(RoundJob(operand=v))
        finish3 = {
            a.worker_id: a.t_arrival - a.comm_time
            for a in h3._rr.arrivals  # peek without retiring
        }
        h4 = c.dispatch_round(RoundJob(operand=v))
        start4 = {
            a.worker_id: a.t_arrival - a.comm_time - a.compute_time
            for a in h4.result().arrivals
        }
        for wid, t_start in start4.items():
            # round 4's compute queues behind round 3's at each worker
            assert t_start >= finish3[wid] - 1e-12
        assert c.outstanding_rounds() == 1  # h3 still open
        h3.cancel()
        assert c.outstanding_rounds() == 0
        assert finish1  # silence unused-var lint

    def test_cancel_releases_workers(self, rng):
        v = F.random(6, rng)
        c = self._sim()
        _store_shares(c, 3, rng)
        h1 = c.dispatch_round(RoundJob(operand=v))
        h1.cancel()  # abandoned: workers drop the cancelled work
        h2 = c.dispatch_round(RoundJob(operand=v))
        for a in h2.result().arrivals:
            start = a.t_arrival - a.comm_time - a.compute_time
            assert start == pytest.approx(h2.t_start + h2.broadcast_time)

    def test_serial_path_timing_unchanged(self):
        """Dispatch + immediate finalize (the serial scheduler) never
        sees contention: the second round's workers all start at its
        own broadcast end, exactly as on the pre-pipelining simulator."""
        data_rng = np.random.default_rng(7)
        v = F.random(6, data_rng)
        c = self._sim()
        c.distribute("share", F.random((3, 4, 6), data_rng))

        first = c.dispatch_round(RoundJob(operand=v)).result()
        c.advance_to(first.arrivals[-1].t_arrival)
        second_handle = c.dispatch_round(RoundJob(operand=v))
        second = second_handle.result()
        for a in second.arrivals:
            start = a.t_arrival - a.comm_time - a.compute_time
            assert start == pytest.approx(
                second_handle.t_start + second_handle.broadcast_time
            )
