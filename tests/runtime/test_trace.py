"""Tests for execution trace records and aggregation."""

import pytest

from repro.runtime import RoundRecord, TraceRecorder


def _round(it, name, t0, t1, **kw):
    defaults = dict(
        compute_wait=1.0,
        comm_time=0.5,
        verify_time=0.1,
        decode_time=0.2,
        n_collected=9,
        n_verified=9,
        n_rejected=0,
    )
    defaults.update(kw)
    return RoundRecord(iteration=it, round_name=name, t_start=t0, t_end=t1, **defaults)


class TestRecords:
    def test_round_duration(self):
        r = _round(0, "z", 1.0, 3.5)
        assert r.duration == 2.5

    def test_iteration_breakdown_sums_rounds(self):
        it = TraceRecorder.merge_rounds(
            0, [_round(0, "z", 0, 2), _round(0, "g", 2, 4, verify_time=0.3)]
        )
        b = it.breakdown()
        assert b["compute"] == 2.0
        assert b["communication"] == 1.0
        assert b["verification"] == pytest.approx(0.4)
        assert b["decoding"] == pytest.approx(0.4)

    def test_merge_requires_rounds(self):
        with pytest.raises(ValueError):
            TraceRecorder.merge_rounds(0, [])

    def test_merge_adds_reencode_to_end(self):
        it = TraceRecorder.merge_rounds(
            1, [_round(1, "z", 10, 12)], reencode_time=41.0, scheme=(11, 8)
        )
        assert it.t_end == 53.0
        assert it.reencode_time == 41.0
        assert it.scheme == (11, 8)


class TestRecorder:
    def _recorder(self):
        tr = TraceRecorder()
        tr.add(TraceRecorder.merge_rounds(0, [_round(0, "z", 0, 2)], scheme=(12, 9)))
        tr.add(
            TraceRecorder.merge_rounds(
                1,
                [_round(1, "z", 2, 5, rejected_workers=(3,), n_rejected=1)],
                reencode_time=4.0,
                scheme=(11, 8),
            )
        )
        return tr

    def test_total_time(self):
        assert self._recorder().total_time() == 9.0

    def test_cumulative(self):
        assert self._recorder().cumulative_times() == [2.0, 9.0]

    def test_mean_breakdown(self):
        b = self._recorder().mean_breakdown()
        assert b["compute"] == 1.0
        assert b["communication"] == 0.5

    def test_empty_recorder(self):
        tr = TraceRecorder()
        assert tr.total_time() == 0.0
        assert tr.mean_breakdown()["compute"] == 0.0

    def test_reencode_total_and_schemes(self):
        tr = self._recorder()
        assert tr.total_reencode_time() == 4.0
        assert tr.schemes() == [(12, 9), (11, 8)]

    def test_rejected_by_iteration(self):
        assert self._recorder().rejected_by_iteration() == [set(), {3}]
