"""Tests for the cost model."""

import pytest

from repro.runtime import CostModel


class TestCostModel:
    def test_compute_time_linear_in_macs(self):
        cm = CostModel(worker_sec_per_mac=2e-9)
        assert cm.worker_compute_time(10**9) == pytest.approx(2.0)
        assert cm.worker_compute_time(10**9, speed_factor=8.0) == pytest.approx(16.0)

    def test_master_time(self):
        cm = CostModel(master_sec_per_mac=1e-9)
        assert cm.master_compute_time(5 * 10**9) == pytest.approx(5.0)

    def test_transfer_time(self):
        cm = CostModel(
            bytes_per_element=8, bandwidth_bytes_per_s=125e6, link_latency_s=1e-3
        )
        # 1M elements = 8 MB over 125 MB/s = 64 ms + 1 ms latency
        assert cm.transfer_time(10**6) == pytest.approx(0.065)

    def test_zero_elements_costs_latency_only(self):
        cm = CostModel(link_latency_s=2e-3)
        assert cm.transfer_time(0) == pytest.approx(2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(worker_sec_per_mac=0)
        with pytest.raises(ValueError):
            CostModel(link_latency_s=-1)
        with pytest.raises(ValueError):
            CostModel(bytes_per_element=0)
        cm = CostModel()
        with pytest.raises(ValueError):
            cm.worker_compute_time(-1)
        with pytest.raises(ValueError):
            cm.worker_compute_time(10, speed_factor=0)
        with pytest.raises(ValueError):
            cm.master_compute_time(-5)
        with pytest.raises(ValueError):
            cm.transfer_time(-2)

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(Exception):
            cm.link_latency_s = 5.0
