"""TCP backend specifics: the wire protocol's rejection of malformed
frames, fault tolerance of the round transport (killed workers,
heartbeat-dead peers, cancel idempotence), the external-daemon
registration path (the real ``python -m`` CLI), and byte-identical
decode parity vs the simulator for every master family.

The generic Backend-contract, parity and early-stopping coverage for
``tcp`` lives in ``test_backends.py``/``test_concurrent_rounds.py``
(the tcp backend is in their ``BACKENDS`` matrix); this file covers
what only a socket fleet can exhibit.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest
from test_backends import _fleet, _make_backend

from repro.api import Session, SessionConfig
from repro.coding import SchemeParams
from repro.core.results import InsufficientResultsError
from repro.ff import PrimeField, ff_matvec
from repro.ff.linalg import ff_matmul
from repro.runtime import RoundJob, TcpCluster
from repro.runtime.net import (
    PROTOCOL_VERSION,
    WireError,
    decode_payload,
    encode_frame,
    free_port,
    read_frame,
    send_frame,
    spawn_local_workers,
)
from repro.runtime.net.wire import MSG_CODES

F = PrimeField()


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestWireProtocol:
    def _pipe(self):
        return socket.socketpair()

    def test_frame_round_trips_fields_and_arrays(self, rng):
        a = F.random((5, 7), rng)
        b = F.random(3, rng)
        left, right = self._pipe()
        with left, right:
            send_frame(left, "store", {"name": "share", "n": 2}, (a, b))
            kind, fields, arrays = read_frame(right)
        assert kind == "store"
        assert fields == {"name": "share", "n": 2}
        np.testing.assert_array_equal(arrays[0], a)
        np.testing.assert_array_equal(arrays[1], b)
        assert arrays[0].dtype == a.dtype

    def test_truncated_frame_rejected_with_description(self, rng):
        frame = b"".join(bytes(p) for p in encode_frame("store", {"name": "s"}, (F.random(4, rng),)))
        left, right = self._pipe()
        with right:
            with left:
                left.sendall(frame[: len(frame) - 5])  # cut mid-payload
            with pytest.raises(WireError, match="closed mid-frame"):
                read_frame(right)

    def test_corrupted_payload_fails_checksum(self, rng):
        frame = bytearray(
            b"".join(bytes(p) for p in encode_frame("store", {"name": "s"}, (F.random(4, rng),)))
        )
        frame[-1] ^= 0xFF  # flip a bit in the last array byte
        left, right = self._pipe()
        with left, right:
            left.sendall(bytes(frame))
            with pytest.raises(WireError, match="checksum"):
                read_frame(right)

    def test_non_protocol_peer_rejected(self):
        left, right = self._pipe()
        with left, right:
            left.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n" + b"\x00" * 32)
            with pytest.raises(WireError, match="magic"):
                read_frame(right)

    def test_wrong_version_rejected(self):
        frame = bytearray(b"".join(bytes(p) for p in encode_frame("heartbeat", {"seq": 1})))
        frame[2] = PROTOCOL_VERSION + 1
        left, right = self._pipe()
        with left, right:
            left.sendall(bytes(frame))
            with pytest.raises(WireError, match="version mismatch"):
                read_frame(right)

    def test_malformed_header_and_descriptor_rejected(self):
        with pytest.raises(WireError, match="header"):
            decode_payload(MSG_CODES["store"], memoryview(b"\x00\x00\x00\x04{]:["))
        # declared array overruns the actual payload
        import json
        import struct
        import zlib

        header = json.dumps(
            {"_arrays": [{"dtype": "<i8", "shape": [64], "nbytes": 512}]}
        ).encode()
        payload = struct.pack(">I", len(header)) + header  # no array bytes at all
        assert zlib.crc32(payload) >= 0  # payload is internally consistent
        with pytest.raises(WireError, match="overruns"):
            decode_payload(MSG_CODES["store"], memoryview(payload))


# ----------------------------------------------------------------------
# fault-tolerant round transport
# ----------------------------------------------------------------------
class TestFaultTolerance:
    def test_worker_killed_mid_round_survivors_complete(self, rng):
        """SIGKILL one worker while its round is in flight: the EOF
        marks it dead, the round completes from the survivors, and
        later rounds keep running without it."""
        shares = F.random((4, 3, 5), rng)
        v = F.random(5, rng)
        # the victim straggles, so it is mid-sleep when the kill lands
        with _make_backend("tcp", 4, {2: 40.0}, {}, straggle_scale=0.05) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            os.kill(backend.worker_pids()[2], signal.SIGKILL)
            arrivals = list(handle)
            rr = handle.result()
            assert sorted(a.worker_id for a in arrivals) == [0, 1, 3]
            dead = [a for a in rr.arrivals if a.worker_id == 2]
            assert len(dead) == 1 and not np.isfinite(dead[0].t_arrival)
            # the fleet degrades, it does not crash: next round works too
            handle2 = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            assert sorted(a.worker_id for a in handle2) == [0, 1, 3]

    def test_crash_within_tolerance_still_decodes_exactly(self, rng):
        """Master-level: killing one worker mid-round stays inside the
        (n=6, k=3) code's slack, so the decoded result is still exact."""
        x = F.random((12, 8), rng)
        w = F.random(8, rng)
        cfg = SessionConfig(
            scheme=SchemeParams(n=6, k=3, s=1, m=1),
            backend="tcp",
            seed=3,
            backend_options={"straggle_scale": 0.01},
        )
        with Session.create(cfg) as sess:
            sess.load(x)
            os.kill(sess.backend.worker_pids()[5], signal.SIGKILL)
            for _ in range(2):
                got = sess.submit_matvec(w).result()
                np.testing.assert_array_equal(got, ff_matvec(F, x, w))

    def test_crashes_beyond_tolerance_raise_clear_error(self, rng):
        """Kill so many workers that fewer than K can ever respond: the
        master must raise a descriptive error, not hang."""
        x = F.random((12, 8), rng)
        w = F.random(8, rng)
        cfg = SessionConfig(
            scheme=SchemeParams(n=4, k=3, s=1, m=0),
            backend="tcp",
            seed=3,
            backend_options={"straggle_scale": 0.01},
        )
        with Session.create(cfg) as sess:
            sess.load(x)
            pids = sess.backend.worker_pids()
            for wid in (0, 2):
                os.kill(pids[wid], signal.SIGKILL)
            time.sleep(0.05)  # let the EOFs land before dispatch
            with pytest.raises(InsufficientResultsError):
                sess.submit_matvec(w).result()

    def test_unresponsive_worker_surfaces_as_straggler_not_hang(self, rng):
        """A peer that registers but then goes silent (wedged host)
        must be detected by heartbeat timeout and recorded as a
        never-arrived straggler — the round completes without it."""
        port = free_port()
        stop = threading.Event()

        def zombie():
            deadline = time.monotonic() + 20.0
            while True:  # retry until the master listens
                try:
                    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.02)
            with sock:
                send_frame(sock, "hello", {"worker_id": 2, "protocol": PROTOCOL_VERSION})
                read_frame(sock)  # config
                stop.wait(30.0)  # never answer anything again

        # spawn (fork) the real workers before starting any thread
        fleet = spawn_local_workers("127.0.0.1", port, [0, 1])
        thread = threading.Thread(target=zombie, daemon=True)
        thread.start()
        try:
            with TcpCluster(
                F,
                _fleet(3, {}, {}),
                port=port,
                spawn_workers=False,
                heartbeat_interval=0.05,
                heartbeat_timeout=0.4,
            ) as backend:
                shares = F.random((3, 2, 4), rng)
                v = F.random(4, rng)
                backend.distribute("share", shares)
                t0 = time.perf_counter()
                handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
                arrivals = list(handle)
                wall = time.perf_counter() - t0
                rr = handle.result()
            assert sorted(a.worker_id for a in arrivals) == [0, 1]
            zombie_arrival = [a for a in rr.arrivals if a.worker_id == 2]
            assert len(zombie_arrival) == 1
            assert not np.isfinite(zombie_arrival[0].t_arrival)
            assert wall < 10.0, "heartbeat detection should beat any long timeout"
        finally:
            stop.set()
            fleet.terminate()

    def test_round_collect_timeout_expires_stragglers(self, rng):
        """A per-round collect deadline records still-outstanding
        workers as never-arrived without killing them, and their late
        replies never bleed into later rounds."""
        shares = F.random((3, 2, 4), rng)
        v1 = F.random(4, rng)
        v2 = F.random(4, rng)
        # worker 1 sleeps ~1 s per round; rounds give up after 0.25 s
        with TcpCluster(
            F, _fleet(3, {1: 21.0}, {}), straggle_scale=0.05, round_timeout=0.25
        ) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v1))
            arrivals = list(handle)
            assert sorted(a.worker_id for a in arrivals) == [0, 2]
            # expired-for-this-round is not dead: the worker stays in
            # the pool and its (late) round-1 reply is dropped by rid,
            # never delivered into round 2
            assert 1 not in backend._dead
            handle2 = backend.dispatch_round(RoundJob(payload_key="share", operand=v2))
            got2 = {a.worker_id: a.value for a in handle2}
            assert sorted(got2) == [0, 2]
            for wid, value in got2.items():
                np.testing.assert_array_equal(value, ff_matvec(F, shares[wid], v2))
            # after the sleeps drain, the straggler is still serving:
            # an un-deadlined round collects all three
            time.sleep(2.2)
            backend.round_timeout = None
            handle3 = backend.dispatch_round(RoundJob(payload_key="share", operand=v1))
            got3 = {a.worker_id: a.value for a in handle3}
            assert sorted(got3) == [0, 1, 2]
            for wid, value in got3.items():
                np.testing.assert_array_equal(value, ff_matvec(F, shares[wid], v1))

    def test_cancel_idempotent_and_safe_after_result(self, rng):
        shares = F.random((3, 2, 4), rng)
        v = F.random(4, rng)
        with _make_backend("tcp", 3, {}, {}) as backend:
            backend.distribute("share", shares)
            handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
            list(handle)
            rr = handle.result()
            handle.cancel()
            handle.cancel()
            assert handle.result().arrivals == rr.arrivals


# ----------------------------------------------------------------------
# external daemons (the real CLI) and parity
# ----------------------------------------------------------------------
class TestExternalFleet:
    def test_subprocess_daemons_via_module_entrypoint(self, rng):
        """Spawn real ``python -m repro.runtime.net.worker`` daemons at
        a pre-chosen port, then attach a non-spawning cluster — the
        exact flow of a multi-host deployment."""
        port = free_port()
        with spawn_local_workers("127.0.0.1", port, [0, 1, 2], mode="subprocess"):
            with TcpCluster(
                F, _fleet(3, {}, {}), port=port, spawn_workers=False,
                connect_timeout=60.0,
            ) as backend:
                shares = F.random((3, 2, 4), rng)
                v = F.random(4, rng)
                backend.distribute("share", shares)
                handle = backend.dispatch_round(RoundJob(payload_key="share", operand=v))
                got = {a.worker_id: a.value for a in handle}
        assert sorted(got) == [0, 1, 2]
        for wid, value in got.items():
            np.testing.assert_array_equal(value, ff_matvec(F, shares[wid], v))


class TestFamilyParityVsSim:
    """Byte-identical decode vs the simulator for every master family
    (fwd, bwd, gramian, matmul) through the Session front door."""

    SCHEME = SchemeParams(n=8, k=3, s=1, m=1)

    def _serve_all(self, backend, x, w, e, g):
        cfg = SessionConfig(
            scheme=self.SCHEME,
            backend=backend,
            seed=5,
            backend_options={} if backend == "sim" else {"straggle_scale": 0.01},
        )
        with Session.create(cfg) as sess:
            sess.load(x)
            fwd = sess.submit_matvec(w).result()
            bwd = sess.submit_matvec(e, transpose=True).result()
            gram = sess.submit_gramian(g).result()
            mm = sess.submit_matmul(x, x.T.copy()).result()
        return fwd, bwd, gram, mm

    def test_all_families_byte_identical(self, rng):
        x = F.random((12, 8), rng)
        w = F.random(8, rng)
        e = F.random(12, rng)
        g = F.random(8, rng)
        sim = self._serve_all("sim", x, w, e, g)
        tcp = self._serve_all("tcp", x, w, e, g)
        for name, a, b in zip(("fwd", "bwd", "gram", "matmul"), sim, tcp):
            assert a.tobytes() == b.tobytes(), name
        np.testing.assert_array_equal(tcp[0], ff_matvec(F, x, w))
        np.testing.assert_array_equal(tcp[1], ff_matvec(F, x.T.copy(), e))
        np.testing.assert_array_equal(
            tcp[2], ff_matvec(F, x.T.copy(), ff_matvec(F, x, g))
        )
        np.testing.assert_array_equal(tcp[3], ff_matmul(F, x, x.T.copy()))
