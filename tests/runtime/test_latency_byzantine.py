"""Tests for latency profiles and Byzantine behaviours."""

import numpy as np
import pytest

from repro.ff import PrimeField
from repro.runtime import (
    ConstantAttack,
    DeterministicLatency,
    GaussianJitterLatency,
    Honest,
    IntermittentAttack,
    RandomAttack,
    ReversedValueAttack,
    ShiftedExponentialLatency,
    SilentFailure,
    TraceLatency,
    make_profiles,
)

F = PrimeField(7919)


class TestLatencyModels:
    def test_deterministic(self, rng):
        assert DeterministicLatency(3.0).sample(2.0, rng) == 6.0

    def test_shifted_exponential_floor(self, rng):
        m = ShiftedExponentialLatency(factor=2.0, rate=5.0)
        samples = [m.sample(1.0, rng) for _ in range(500)]
        assert min(samples) >= 2.0  # service floor
        assert np.mean(samples) == pytest.approx(2.0 * (1 + 1 / 5), rel=0.15)

    def test_gaussian_jitter_nonnegative(self, rng):
        m = GaussianJitterLatency(factor=1.0, sigma=2.0)  # huge sigma
        assert all(m.sample(1.0, rng) >= 0 for _ in range(300))

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicLatency(0)
        with pytest.raises(ValueError):
            ShiftedExponentialLatency(rate=0)
        with pytest.raises(ValueError):
            GaussianJitterLatency(sigma=-1)

    def test_make_profiles(self, rng):
        profiles = make_profiles(5, {1: 8.0, 3: 1.4})
        assert profiles[0].sample(1.0, rng) == 1.0
        assert profiles[1].sample(1.0, rng) == 8.0
        assert profiles[3].sample(1.0, rng) == pytest.approx(1.4)

    def test_make_profiles_jitter(self, rng):
        profiles = make_profiles(3, {0: 4.0}, jitter_sigma=0.01)
        assert isinstance(profiles[0], GaussianJitterLatency)
        assert profiles[0].sample(1.0, rng) == pytest.approx(4.0, rel=0.2)

    def test_make_profiles_bad_id(self):
        with pytest.raises(ValueError, match="out of range"):
            make_profiles(3, {5: 2.0})


class TestTraceLatency:
    def test_replays_samples_in_order(self, rng):
        t = TraceLatency([1.0, 2.0, 0.5])
        assert [t.sample(2.0, rng) for _ in range(3)] == [2.0, 4.0, 1.0]

    def test_wraps_around(self, rng):
        t = TraceLatency([1.0, 3.0])
        assert [t.sample(1.0, rng) for _ in range(5)] == [1.0, 3.0, 1.0, 3.0, 1.0]

    def test_start_offset_shifts_replay(self, rng):
        t = TraceLatency([1.0, 2.0, 4.0], start=2)
        assert [t.sample(1.0, rng) for _ in range(3)] == [4.0, 1.0, 2.0]

    def test_reset_rewinds_to_start(self, rng):
        t = TraceLatency([1.0, 2.0], start=1)
        assert t.sample(1.0, rng) == 2.0
        t.reset()
        assert t.sample(1.0, rng) == 2.0

    def test_ignores_rng(self):
        # replay is deterministic: the generator plays no part
        a = TraceLatency([1.5, 2.5])
        b = TraceLatency([1.5, 2.5])
        r1, r2 = np.random.default_rng(0), np.random.default_rng(999)
        assert [a.sample(1.0, r1) for _ in range(4)] == [
            b.sample(1.0, r2) for _ in range(4)
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceLatency([])
        with pytest.raises(ValueError, match="positive"):
            TraceLatency([1.0, 0.0])
        with pytest.raises(ValueError, match="start"):
            TraceLatency([1.0], start=-1)


class TestBehaviors:
    def test_honest_identity(self, rng):
        z = F.random(6, rng)
        np.testing.assert_array_equal(Honest().corrupt(z, F, rng), z)
        assert not Honest().is_byzantine

    def test_reversed_value_is_negation(self, rng):
        """Paper: send -c*z with c=1: corrupt(z) == -z in the field."""
        z = F.random(6, rng)
        got = ReversedValueAttack(c=1).corrupt(z, F, rng)
        np.testing.assert_array_equal((got + z) % F.q, np.zeros(6, dtype=np.int64))

    def test_reversed_value_scaled(self, rng):
        z = F.asarray([1, 2, 3])
        got = ReversedValueAttack(c=2).corrupt(z, F, rng)
        np.testing.assert_array_equal(got, F.neg(F.mul(z, 2)))

    def test_reversed_value_validation(self):
        with pytest.raises(ValueError):
            ReversedValueAttack(c=0)

    def test_constant_attack(self, rng):
        z = F.random((2, 3), rng)
        got = ConstantAttack(value=-7).corrupt(z, F, rng)
        assert got.shape == z.shape
        assert np.all(got == F.from_signed(np.array([-7]))[0])

    def test_random_attack_changes_and_shapes(self, rng):
        z = F.random(50, rng)
        got = RandomAttack().corrupt(z, F, rng)
        assert got.shape == z.shape
        assert not np.array_equal(got, z)  # w.h.p.

    def test_silent_failure(self, rng):
        assert SilentFailure().corrupt(F.random(3, rng), F, rng) is None
        assert not SilentFailure().is_byzantine  # it's a straggler, not a liar

    def test_byzantine_flags(self):
        assert ReversedValueAttack().is_byzantine
        assert ConstantAttack().is_byzantine
        assert RandomAttack().is_byzantine


class TestIntermittentAttack:
    def test_rate_approximates_probability(self, rng):
        attack = IntermittentAttack(ReversedValueAttack(), probability=0.3)
        z = F.asarray([1, 2, 3])
        fired = sum(
            not np.array_equal(attack.corrupt(z, F, rng), z) for _ in range(2000)
        )
        assert 0.25 < fired / 2000 < 0.35

    def test_probability_bounds(self, rng):
        z = F.asarray([5])
        always = IntermittentAttack(ReversedValueAttack(), probability=1.0)
        never = IntermittentAttack(ReversedValueAttack(), probability=0.0)
        assert not np.array_equal(always.corrupt(z, F, rng), z)
        np.testing.assert_array_equal(never.corrupt(z, F, rng), z)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntermittentAttack(ReversedValueAttack(), probability=1.5)
        with pytest.raises(ValueError, match="attack"):
            IntermittentAttack(Honest(), probability=0.5)

    def test_flagged_byzantine(self):
        assert IntermittentAttack(ConstantAttack()).is_byzantine
