"""Failure-injection integration tests.

End-to-end training runs under adversarial cluster conditions beyond
the paper's configurations: attackers at every position, crash-stop
workers, straggler storms, simultaneous fault mixes, and the boundary
cases at exactly the tolerated fault counts.
"""

import numpy as np
import pytest

from repro import (
    AVCCMaster,
    ConstantAttack,
    DistributedLogisticTrainer,
    Honest,
    InsufficientResultsError,
    IntermittentAttack,
    LCCMaster,
    LogisticConfig,
    PrimeField,
    ReversedValueAttack,
    SchemeParams,
    SilentFailure,
    SimCluster,
    SimWorker,
    make_gisette_like,
    make_profiles,
)

F = PrimeField(2**25 - 39)
CFG = LogisticConfig(iterations=5, learning_rate=0.3, l_w=8, l_e=8)


@pytest.fixture(scope="module")
def dataset():
    return make_gisette_like(m=240, d=36, class_lift=0.9, rng=np.random.default_rng(1))


@pytest.fixture(scope="module")
def reference_weights(dataset):
    """Clean-cluster AVCC weights — the target every fault-tolerant run
    must reproduce bit-exactly."""
    master = AVCCMaster(_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
    master.setup(dataset.x_train)
    trainer = DistributedLogisticTrainer(master, dataset, CFG)
    trainer.train()
    return trainer.final_weights


def _cluster(straggler_factors=None, behaviors=None, seed=42):
    from repro import CostModel

    profiles = make_profiles(12, straggler_factors or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(12)
    ]
    # compute-dominant constants so straggler *detection* works at this
    # tiny test scale (with the defaults, fixed link latency would mask
    # the compute slowdown — realistic, but not what we test here)
    cm = CostModel(worker_sec_per_mac=2e-6, link_latency_s=1e-5)
    return SimCluster(F, workers, cost_model=cm, rng=np.random.default_rng(seed))


class TestAttackerPosition:
    @pytest.mark.parametrize("pos", range(12))
    def test_byzantine_at_every_position(self, dataset, reference_weights, pos):
        """AVCC's result must not depend on where the attacker sits —
        including position 0 (systematic share = raw data block) and
        the last coded position."""
        master = AVCCMaster(
            _cluster(behaviors={pos: ConstantAttack(value=777)}),
            SchemeParams(n=12, k=9, s=2, m=1),
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        trainer.train()
        np.testing.assert_array_equal(trainer.final_weights, reference_weights)


class TestCrashStop:
    def test_silent_worker_treated_as_straggler(self, dataset, reference_weights):
        master = AVCCMaster(
            _cluster(behaviors={4: SilentFailure()}),
            SchemeParams(n=12, k=9, s=2, m=1),
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        hist = trainer.train()
        np.testing.assert_array_equal(trainer.final_weights, reference_weights)
        # the dead worker is observed as a straggler (not Byzantine)
        # every iteration and stays in the pool
        assert all(4 in ws for ws in hist.observed_stragglers)
        assert all(4 not in ws for ws in hist.detected_byzantine)
        assert 4 in master.active

    def test_silent_plus_byzantine_plus_straggler(self, dataset, reference_weights):
        """The full fault mix at the tolerance boundary: one crash, one
        attacker, one heavy straggler — S+M budget exactly consumed."""
        master = AVCCMaster(
            _cluster(
                straggler_factors={0: 9.0},
                behaviors={5: SilentFailure(), 8: ReversedValueAttack()},
            ),
            SchemeParams(n=12, k=9, s=2, m=1),
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        trainer.train()
        np.testing.assert_array_equal(trainer.final_weights, reference_weights)

    def test_lcc_survives_silent_worker(self, dataset):
        master = LCCMaster(
            _cluster(behaviors={2: SilentFailure()}),
            SchemeParams(n=12, k=9, s=1, m=1),
        )
        master.setup(dataset.x_train)
        hist = DistributedLogisticTrainer(master, dataset, CFG).train()
        assert hist.iterations() == CFG.iterations

    def test_too_many_crashes_fail_loudly(self, dataset):
        behaviors = {i: SilentFailure() for i in range(4)}  # > S+M slack
        master = AVCCMaster(
            _cluster(behaviors=behaviors), SchemeParams(n=12, k=9, s=2, m=1)
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        with pytest.raises(InsufficientResultsError):
            trainer.train()


class TestStragglerStorm:
    def test_everyone_slow_but_uniform(self, dataset, reference_weights):
        """A uniformly slow cluster has no stragglers: nothing is
        flagged, results exact, time scales by the factor."""
        slow = _cluster(straggler_factors={i: 4.0 for i in range(12)})
        fast = _cluster()
        masters = []
        for cluster in (slow, fast):
            m = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=2, m=1))
            m.setup(dataset.x_train)
            t = DistributedLogisticTrainer(m, dataset, CFG)
            t.train()
            masters.append((t, cluster))
        np.testing.assert_array_equal(masters[0][0].final_weights, reference_weights)
        assert masters[0][1].now > masters[1][1].now

    def test_three_heavy_stragglers_with_adaptation(self, dataset, reference_weights):
        """Beyond-design straggler storm: the adaptive master re-encodes
        and still produces the exact model."""
        master = AVCCMaster(
            _cluster(straggler_factors={0: 20.0, 1: 25.0, 2: 30.0}),
            SchemeParams(n=12, k=9, s=2, m=1),
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        hist = trainer.train()
        np.testing.assert_array_equal(trainer.final_weights, reference_weights)
        # A_t = 12 - 0 - 3 - 9 = 0: exactly enough fast workers remain,
        # so Eq. 17 keeps (12, 9) — the 9 healthy workers cover K
        assert hist.schemes[-1] == (12, 9)
        assert all(set(ws) == {0, 1, 2} for ws in hist.observed_stragglers)


class TestIntermittentAdversary:
    def test_on_off_attacker_dropped_after_first_strike(self, dataset, reference_weights):
        master = AVCCMaster(
            _cluster(
                behaviors={7: IntermittentAttack(ConstantAttack(), probability=0.5)}
            ),
            SchemeParams(n=12, k=9, s=2, m=1),
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        hist = trainer.train()
        np.testing.assert_array_equal(trainer.final_weights, reference_weights)
        strikes = [i for i, ws in enumerate(hist.detected_byzantine) if 7 in ws]
        if strikes:  # once detected, never participates again
            first = strikes[0]
            assert all(7 not in ws for ws in hist.detected_byzantine[first + 1:])
            assert 7 not in master.active

    def test_static_vcc_keeps_rejecting_forever(self, dataset, reference_weights):
        from repro import StaticVCCMaster

        master = StaticVCCMaster(
            _cluster(behaviors={7: ConstantAttack()}),
            SchemeParams(n=12, k=9, s=2, m=1),
        )
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        hist = trainer.train()
        np.testing.assert_array_equal(trainer.final_weights, reference_weights)
        # rejected in every iteration, never dropped
        assert all(7 in ws for ws in hist.detected_byzantine)
        assert 7 in master.active
