"""Cross-cutting hypothesis property tests over the full stack.

These generate random fault patterns *within* the deployed scheme's
tolerance and assert the system-level invariants the paper's Theorem 1
promises: exact recovery (S-resiliency + M-security) regardless of
which workers misbehave, for random data, placements and fleet shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AVCCMaster,
    ConstantAttack,
    Honest,
    PrimeField,
    RandomAttack,
    ReversedValueAttack,
    SchemeParams,
    SilentFailure,
    SimCluster,
    SimWorker,
    make_profiles,
)
from repro.ff import ff_matvec

F = PrimeField(2**25 - 39)

ATTACKS = [ReversedValueAttack, lambda: ConstantAttack(value=123456), RandomAttack]


def _cluster(n, straggler_ids, byz_ids, silent_ids, attack_idx, seed):
    profiles = make_profiles(n, {w: 10.0 + 3 * i for i, w in enumerate(straggler_ids)})
    behaviors = {}
    for w in byz_ids:
        behaviors[w] = ATTACKS[attack_idx % len(ATTACKS)]()
    for w in silent_ids:
        behaviors[w] = SilentFailure()
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(F, workers, rng=np.random.default_rng(seed))


class TestTheorem1:
    @given(
        k=st.integers(2, 6),
        s=st.integers(0, 2),
        m=st.integers(0, 2),
        extra=st.integers(0, 2),
        attack_idx=st.integers(0, 2),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_avcc_exact_under_any_tolerated_fault_pattern(
        self, k, s, m, extra, attack_idx, seed
    ):
        """Random (K, S, M) scheme, random fault placement at full
        budget: the forward round must equal X @ w exactly."""
        rng = np.random.default_rng(seed)
        n = (k - 1) + s + m + 1 + extra
        scheme = SchemeParams(n=n, k=k, s=s, m=m)
        assert scheme.avcc_feasible

        ids = rng.permutation(n)
        straggler_ids = ids[:s].tolist()
        byz_ids = ids[s : s + m].tolist()
        cluster = _cluster(n, straggler_ids, byz_ids, [], attack_idx, seed)

        x = F.random((k * 3, 5), rng)
        w = F.random(5, rng)
        master = AVCCMaster(cluster, scheme, rng=rng)
        master.setup(x)
        out = master.forward_round(w)
        np.testing.assert_array_equal(out.vector, ff_matvec(F, x, w))
        # every Byzantine worker that responded before the threshold was
        # reached must have been caught
        assert set(out.record.rejected_workers) <= set(byz_ids)

    @given(
        k=st.integers(2, 5),
        budget=st.integers(1, 3),
        split=st.integers(0, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_silent_workers_spend_straggler_budget(self, k, budget, split, seed):
        """Crash-stop workers consume S (not M): with S+M = budget
        faults of which ``split`` are silent, recovery still works when
        silent <= S + slack."""
        rng = np.random.default_rng(seed)
        n_silent = min(split, budget)
        n = (k - 1) + budget + 1 + 1  # one spare
        scheme = SchemeParams(n=n, k=k, s=min(budget, n_silent + 1), m=budget - min(budget, n_silent + 1))
        if not scheme.avcc_feasible or scheme.s + scheme.m > budget:
            scheme = SchemeParams(n=n, k=k, s=budget, m=0)
        ids = rng.permutation(n)
        silent_ids = ids[:n_silent].tolist()
        cluster = _cluster(n, [], [], silent_ids, 0, seed)
        x = F.random((k * 2, 4), rng)
        w = F.random(4, rng)
        master = AVCCMaster(cluster, scheme, rng=rng)
        master.setup(x)
        out = master.forward_round(w)
        np.testing.assert_array_equal(out.vector, ff_matvec(F, x, w))

    @given(
        k=st.integers(2, 5),
        t=st.integers(1, 2),
        m=st.integers(0, 1),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_privacy_padding_never_changes_results(self, k, t, m, seed):
        """T > 0 must be output-invariant: same decoded vector with and
        without padding (only the shares differ)."""
        rng = np.random.default_rng(seed)
        x = F.random((k * 2, 4), rng)
        w = F.random(4, rng)
        want = ff_matvec(F, x, w)
        for t_run in (0, t):
            n = (k + t_run - 1) + m + 1 + 1
            cluster = _cluster(n, [], [], [], 0, seed)
            master = AVCCMaster(
                cluster,
                SchemeParams(n=n, k=k, s=1, m=m, t=t_run),
                rng=np.random.default_rng(seed),
            )
            master.setup(x)
            np.testing.assert_array_equal(master.forward_round(w).vector, want)


class TestTimingMonotonicity:
    @given(factor=st.floats(1.0, 20.0), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_uniform_slowdown_scales_compute_wait(self, factor, seed):
        """Slowing every worker by c scales the compute wait by ~c —
        the simulator's clock is linear in the latency model."""
        rng = np.random.default_rng(seed)
        x = F.random((8, 5), rng)
        w = F.random(5, rng)

        waits = []
        for f in (1.0, factor):
            cluster = _cluster(4, [], [], [], 0, seed)
            for worker in cluster.workers:
                object.__setattr__(worker.profile, "factor", f) if hasattr(
                    worker.profile, "factor"
                ) else None
            from repro.runtime import DeterministicLatency

            for worker in cluster.workers:
                worker.profile = DeterministicLatency(f)
            master = AVCCMaster(cluster, SchemeParams(n=4, k=2, s=1, m=1), rng=rng)
            master.setup(x)
            out = master.forward_round(w)
            waits.append(out.record.compute_wait)
        assert waits[1] == pytest.approx(waits[0] * factor, rel=1e-9)
