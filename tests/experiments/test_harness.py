"""Fast wiring tests for the experiment harness (shape assertions live
in the benchmark suite, which runs at full experiment scale)."""

import math

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    FIG3_SETTINGS,
    format_table,
    run_fig3,
    run_fig4,
    run_fig5,
    run_training,
)
from repro.experiments.common import make_session, scenario_config
from repro.experiments.fig4 import FIG4_SETTINGS
from repro.experiments.table1 import PAPER_TABLE1, speedup_over

# A deliberately tiny config: exercises every code path in ~seconds.
TINY = ExperimentConfig(
    m=240,
    d=60,
    iterations=4,
    learning_rate=0.1,
    seed=7,
)


class TestConfig:
    def test_cost_model_construction(self):
        cm = TINY.cost_model()
        assert cm.worker_sec_per_mac == TINY.worker_sec_per_mac

    def test_dataset_cached_shape(self):
        ds = TINY.dataset()
        assert ds.m + ds.x_test.shape[0] == 240
        assert ds.d == 60

    def test_with_override(self):
        assert TINY.with_(iterations=9).iterations == 9
        assert TINY.iterations == 4

    def test_settings_tables_match_paper(self):
        assert FIG3_SETTINGS["a"] == ("reverse", 2, 1)
        assert FIG3_SETTINGS["d"] == ("constant", 1, 2)
        assert FIG4_SETTINGS["a"] == (0, 0)
        assert set(PAPER_TABLE1) == {
            ("reverse", 1, 2),
            ("reverse", 2, 1),
            ("constant", 1, 2),
            ("constant", 2, 1),
        }


class TestScenarioConfig:
    """Scenario descriptions materialize through the api registries —
    the pre-0.4 ``build_cluster``/``make_master`` shims are gone."""

    def test_placement_defaults(self):
        config = scenario_config(
            "avcc", TINY, s=2, m=1, n_stragglers=2, n_byzantine=1
        )
        workers = config.build_workers()
        # stragglers at 0,1; byzantine at 2 — inside uncoded's range
        assert workers[2].is_byzantine
        assert not workers[0].is_byzantine
        assert workers[0].profile.factor == TINY.straggler_factors[0]

    def test_explicit_placement(self):
        config = scenario_config(
            "avcc",
            TINY,
            s=1,
            m=1,
            n_stragglers=1,
            n_byzantine=1,
            straggler_ids=(5,),
            byzantine_ids=(9,),
        )
        workers = config.build_workers()
        assert workers[9].is_byzantine
        assert workers[5].profile.factor == TINY.straggler_factors[0]

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            scenario_config(
                "avcc",
                TINY,
                s=1,
                m=1,
                n_stragglers=1,
                n_byzantine=1,
                straggler_ids=(3,),
                byzantine_ids=(3,),
            )

    def test_too_many_stragglers(self):
        with pytest.raises(ValueError, match="factors"):
            scenario_config("avcc", TINY, s=2, m=0, n_stragglers=5, n_byzantine=0)

    def test_bad_attack_kind(self):
        with pytest.raises(ValueError, match="unknown attack"):
            scenario_config(
                "avcc", TINY, s=0, m=1, n_stragglers=0, n_byzantine=1, attack="bogus"
            )

    def test_persistent_attack_mode(self):
        config = scenario_config(
            "avcc",
            TINY,
            s=0,
            m=1,
            n_stragglers=0,
            n_byzantine=1,
            intermittent=False,
        )
        from repro.runtime import IntermittentAttack

        workers = config.build_workers()
        assert not any(
            isinstance(w.behavior, IntermittentAttack) for w in workers
        )


class TestMakeSession:
    def test_all_methods(self):
        for method, cls_name in [
            ("avcc", "AVCCMaster"),
            ("static_vcc", "StaticVCCMaster"),
            ("lcc", "LCCMaster"),
            ("uncoded", "UncodedMaster"),
        ]:
            with make_session(
                method, TINY, s=1, m=1, n_stragglers=1, n_byzantine=1
            ) as sess:
                assert type(sess.master).__name__ == cls_name

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            scenario_config("bogus", TINY, s=0, m=0)


class TestRunners:
    def test_run_training_returns_history_and_trace(self):
        ds = TINY.dataset()
        hist, rec = run_training("avcc", TINY, ds, s=1, m=1)
        assert hist.iterations() == TINY.iterations
        assert len(rec.iterations) == TINY.iterations
        assert all(np.isfinite(t) for t in hist.times)

    def test_fig3_tiny(self):
        res = run_fig3("a", TINY)
        assert set(res.histories) == {"avcc", "lcc", "uncoded"}
        assert "Fig. 3(a)" in res.render()

    def test_fig3_bad_panel(self):
        with pytest.raises(ValueError):
            run_fig3("z", TINY)

    def test_fig4_tiny(self):
        res = run_fig4("a", TINY)
        assert res.total("avcc") > 0
        assert res.breakdown["lcc"]["verification"] == 0.0
        assert res.breakdown["uncoded"]["decoding"] == 0.0
        assert "Fig. 4(a)" in res.render()

    def test_fig4_bad_panel(self):
        with pytest.raises(ValueError):
            run_fig4("x", TINY)

    def test_fig5_tiny(self):
        res = run_fig5(TINY)
        assert res.avcc.iterations() == TINY.iterations
        assert res.reencode_iteration >= 0
        assert res.reencode_cost > 0
        assert "dynamic coding" in res.render()

    def test_speedup_metric(self):
        res = run_fig3("a", TINY)
        s = speedup_over(res, "uncoded")
        assert s > 0 and math.isfinite(s)


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out

    def test_format_series_empty(self):
        from repro.experiments.report import format_series

        assert "(empty)" in format_series("x", [], [])
