"""Tests for Freivalds matrix-matrix verification."""

import numpy as np
import pytest

from repro.ff import PrimeField, ff_matmul
from repro.verify import MatmulVerifier

F = PrimeField(2**25 - 39)
SMALL = PrimeField(97)


class TestMatmulVerifier:
    def test_honest_passes(self, rng):
        v = MatmulVerifier(F)
        a = F.random((6, 8), rng)
        b = F.random((8, 5), rng)
        key = v.keygen_single(a, rng)
        assert v.check(key, b, ff_matmul(F, a, b))

    def test_forgery_rejected(self, rng):
        v = MatmulVerifier(F)
        a = F.random((6, 8), rng)
        b = F.random((8, 5), rng)
        c = ff_matmul(F, a, b)
        for _ in range(100):
            forged = c.copy()
            i, j = rng.integers(0, 6), rng.integers(0, 5)
            forged[i, j] = (forged[i, j] + rng.integers(1, F.q)) % F.q
            assert not v.check(key_for(v, a, rng), b, forged)

    def test_statistical_soundness_small_field(self, rng):
        v = MatmulVerifier(SMALL, probes=1)
        a = SMALL.random((4, 4), rng)
        b = SMALL.random((4, 4), rng)
        c = ff_matmul(SMALL, a, b)
        passed = 0
        trials = 3000
        for _ in range(trials):
            key = v.keygen_single(a, rng)
            forged = (c + SMALL.random((4, 4), rng)) % SMALL.q
            if np.array_equal(forged, c):
                continue
            if v.check(key, b, forged):
                passed += 1
        assert passed / trials < 3 / 97

    def test_batch_keygen(self, rng):
        v = MatmulVerifier(F)
        shares = F.random((4, 5, 6), rng)
        keys = v.keygen(shares, rng)
        assert len(keys) == 4
        b = F.random((6, 3), rng)
        for key, a in zip(keys, shares):
            assert v.check(key, b, ff_matmul(F, a, b))

    def test_shape_validation(self, rng):
        v = MatmulVerifier(F)
        key = v.keygen_single(F.random((4, 6), rng), rng)
        with pytest.raises(ValueError, match="claimed"):
            v.check(key, F.random((6, 3), rng), F.random((5, 3), rng))
        with pytest.raises(ValueError, match="B-share"):
            v.check(key, F.random((7, 3), rng), F.random((4, 3), rng))
        with pytest.raises(ValueError, match="columns"):
            v.check(key, F.random((6, 2), rng), F.random((4, 3), rng))
        with pytest.raises(ValueError):
            v.keygen_single(F.random(5, rng), rng)
        with pytest.raises(ValueError):
            MatmulVerifier(F, probes=0)

    def test_cost_asymmetry(self):
        """Check cost << worker cost by roughly a factor of the output
        rows (the whole point of verification)."""
        v = MatmulVerifier(F)
        a_rows, inner, out_cols = 500, 400, 300
        worker = v.worker_cost_ops(a_rows, inner, out_cols)
        check = v.probes * (a_rows * out_cols + inner * out_cols)
        assert check * 50 < worker


def key_for(v, a, rng):
    return v.keygen_single(a, rng)
