"""Tests for two-stage (gramian) verification."""

import numpy as np
import pytest

from repro.ff import PrimeField, ff_matvec
from repro.verify import TwoStageVerifier

F = PrimeField(2**25 - 39)
SMALL = PrimeField(97)


def _honest(field, share, w):
    z = ff_matvec(field, share, w)
    g = ff_matvec(field, share.T, z)
    return z, g


class TestTwoStage:
    def test_honest_passes(self, rng):
        v = TwoStageVerifier(F)
        share = F.random((7, 5), rng)
        key = v.keygen_single(share, rng)
        w = F.random(5, rng)
        z, g = _honest(F, share, w)
        assert v.check(key, w, z, g)

    def test_wrong_intermediate_rejected(self, rng):
        v = TwoStageVerifier(F)
        share = F.random((7, 5), rng)
        key = v.keygen_single(share, rng)
        w = F.random(5, rng)
        z, g = _honest(F, share, w)
        z_bad = (z + 1) % F.q
        assert not v.check(key, w, z_bad, g)

    def test_wrong_result_with_correct_intermediate_rejected(self, rng):
        """The subtle case: a Byzantine worker does stage 1 honestly and
        corrupts only the gramian — stage 2 must catch it."""
        v = TwoStageVerifier(F)
        share = F.random((7, 5), rng)
        key = v.keygen_single(share, rng)
        w = F.random(5, rng)
        z, g = _honest(F, share, w)
        g_bad = g.copy()
        g_bad[2] = (g_bad[2] + 7) % F.q
        assert not v.check(key, w, z, g_bad)

    def test_consistent_forgery_rejected(self, rng):
        """Worker fabricates z' and a g' consistent with z' — stage 1
        still rejects because z' != A w."""
        v = TwoStageVerifier(F)
        share = F.random((7, 5), rng)
        key = v.keygen_single(share, rng)
        w = F.random(5, rng)
        z_fake = F.random(7, rng)
        g_fake = ff_matvec(F, share.T, z_fake)  # internally consistent
        z_true, _ = _honest(F, share, w)
        if np.array_equal(z_fake, z_true):
            pytest.skip("collision")
        assert not v.check(key, w, z_fake, g_fake)

    def test_keygen_batch(self, rng):
        v = TwoStageVerifier(F)
        shares = F.random((4, 6, 3), rng)
        keys = v.keygen(shares, rng)
        assert len(keys) == 4
        w = F.random(3, rng)
        for key, share in zip(keys, shares):
            z, g = _honest(F, share, w)
            assert v.check(key, w, z, g)

    def test_shape_validation(self, rng):
        v = TwoStageVerifier(F)
        with pytest.raises(ValueError):
            v.keygen_single(F.random(5, rng), rng)
        with pytest.raises(ValueError):
            v.keygen(F.random((6, 3), rng), rng)

    def test_cost(self, rng):
        v = TwoStageVerifier(F)
        key = v.keygen_single(F.random((10, 4), rng), rng)
        # (b + d) + (d + b) = 2(b+d)
        assert v.check_cost_ops(key) == 2 * (10 + 4)
