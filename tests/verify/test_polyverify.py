"""Tests for generalized matrix-polynomial verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import PrimeField
from repro.verify import MatrixPolynomialVerifier

F = PrimeField(2**25 - 39)
SMALL = PrimeField(97)


class TestReferenceEval:
    def test_identity_poly(self, rng):
        v = MatrixPolynomialVerifier(F)
        a = F.random((4, 4), rng)
        np.testing.assert_array_equal(v.reference_eval(a, [0, 1]), a)

    def test_constant_poly(self, rng):
        v = MatrixPolynomialVerifier(F)
        a = F.random((4, 4), rng)
        np.testing.assert_array_equal(
            v.reference_eval(a, [5]), 5 * np.eye(4, dtype=np.int64)
        )

    def test_square_poly(self, rng):
        from repro.ff import ff_matmul

        v = MatrixPolynomialVerifier(F)
        a = F.random((5, 5), rng)
        want = (ff_matmul(F, a, a) + 3 * a + 2 * np.eye(5, dtype=np.int64)) % F.q
        np.testing.assert_array_equal(v.reference_eval(a, [2, 3, 1]), want)

    def test_rejects_non_square(self, rng):
        v = MatrixPolynomialVerifier(F)
        with pytest.raises(ValueError, match="square"):
            v.reference_eval(F.random((3, 4), rng), [1])


class TestCheck:
    def test_honest_passes(self, rng):
        v = MatrixPolynomialVerifier(F)
        a = F.random((6, 6), rng)
        coeffs = [1, 4, 2, 7]  # degree 3
        y = v.reference_eval(a, coeffs)
        for _ in range(20):
            assert v.check(a, coeffs, y, rng)

    def test_forgery_rejected(self, rng):
        v = MatrixPolynomialVerifier(F)
        a = F.random((6, 6), rng)
        coeffs = [1, 4, 2]
        y = v.reference_eval(a, coeffs)
        y_bad = y.copy()
        y_bad[3, 2] = (y_bad[3, 2] + 1) % F.q
        for _ in range(20):
            assert not v.check(a, coeffs, y_bad, rng)

    def test_small_field_soundness_rate(self, rng):
        v = MatrixPolynomialVerifier(SMALL, probes=1)
        a = SMALL.random((4, 4), rng)
        coeffs = [3, 1, 2]
        y = v.reference_eval(a, coeffs)
        passed = 0
        trials = 3000
        for _ in range(trials):
            y_bad = (y + SMALL.random((4, 4), rng)) % SMALL.q
            if np.array_equal(y_bad, y):
                continue
            if v.check(a, coeffs, y_bad, rng):
                passed += 1
        assert passed / trials < 3 / 97

    def test_shape_mismatch(self, rng):
        v = MatrixPolynomialVerifier(F)
        a = F.random((4, 4), rng)
        with pytest.raises(ValueError, match="claimed"):
            v.check(a, [1, 1], F.random((3, 3), rng), rng)

    def test_probes_validation(self):
        with pytest.raises(ValueError):
            MatrixPolynomialVerifier(F, probes=0)

    @given(b=st.integers(1, 5), deg=st.integers(1, 4), seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_completeness(self, b, deg, seed):
        r = np.random.default_rng(seed)
        v = MatrixPolynomialVerifier(SMALL, probes=2)
        a = SMALL.random((b, b), r)
        coeffs = SMALL.random(deg + 1, r)
        y = v.reference_eval(a, coeffs)
        assert v.check(a, coeffs, y, r)


class TestCosts:
    def test_verification_much_cheaper_than_recompute(self):
        v = MatrixPolynomialVerifier(F)
        b, deg = 500, 3
        assert v.check_cost_ops(b, deg) * 50 < v.recompute_cost_ops(b, deg)
