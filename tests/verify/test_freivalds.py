"""Tests for Freivalds matvec verification: completeness, soundness,
attack detection, and cost accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import PrimeField, ff_matvec
from repro.verify import FreivaldsVerifier, soundness_error

SMALL = PrimeField(97)
F = PrimeField(2**25 - 39)


def _honest(field, share, w):
    return ff_matvec(field, share, w)


class TestCompleteness:
    def test_honest_always_passes(self, rng):
        v = FreivaldsVerifier(F)
        share = F.random((8, 12), rng)
        key = v.keygen_single(share, rng)
        for _ in range(50):
            w = F.random(12, rng)
            assert v.check(key, w, _honest(F, share, w))

    def test_zero_vectors(self, rng):
        v = FreivaldsVerifier(F)
        share = F.random((4, 6), rng)
        key = v.keygen_single(share, rng)
        w = F.zeros(6)
        assert v.check(key, w, _honest(F, share, w))

    def test_multiworker_keygen(self, rng):
        v = FreivaldsVerifier(F)
        shares = F.random((5, 4, 6), rng)
        keys = v.keygen(shares, rng)
        assert len(keys) == 5
        w = F.random(6, rng)
        for key, share in zip(keys, shares):
            assert v.check(key, w, _honest(F, share, w))

    @given(
        b=st.integers(1, 10),
        d=st.integers(1, 10),
        probes=st.integers(1, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_completeness(self, b, d, probes, seed):
        r = np.random.default_rng(seed)
        v = FreivaldsVerifier(SMALL, probes=probes)
        share = SMALL.random((b, d), r)
        key = v.keygen_single(share, r)
        w = SMALL.random(d, r)
        assert v.check(key, w, _honest(SMALL, share, w))


class TestSoundness:
    def test_single_entry_forgery_caught_whp_large_field(self, rng):
        """In the 25-bit field a forgery slipping through is a ~3e-8
        event; 200 attempts must all be caught."""
        v = FreivaldsVerifier(F)
        share = F.random((6, 9), rng)
        key = v.keygen_single(share, rng)
        w = F.random(9, rng)
        z = _honest(F, share, w)
        for _ in range(200):
            forged = z.copy()
            i = rng.integers(0, 6)
            forged[i] = (forged[i] + rng.integers(1, F.q)) % F.q
            assert not v.check(key, w, forged)

    def test_statistical_soundness_small_field(self, rng):
        """F_97, 1 probe: forged acceptance rate must be ~1/97, far
        below 5% and above 0 occasionally — check it stays under 3/97
        over many trials (binomial tail is negligible)."""
        v = FreivaldsVerifier(SMALL, probes=1)
        share = SMALL.random((5, 5), rng)
        w = SMALL.random(5, rng)
        z = _honest(SMALL, share, w)
        trials, passed = 4000, 0
        for _ in range(trials):
            key = v.keygen_single(share, rng)  # fresh r each trial
            forged = (z + SMALL.random(5, rng)) % SMALL.q
            if np.array_equal(forged, z):
                continue
            if v.check(key, w, forged):
                passed += 1
        assert passed / trials < 3 / 97

    def test_probe_amplification(self, rng):
        """With 2 probes in F_97 the pass rate drops to ~1e-4: expect
        zero passes in 3000 trials (P(any) < 0.3)."""
        v = FreivaldsVerifier(SMALL, probes=3)
        share = SMALL.random((5, 5), rng)
        w = SMALL.random(5, rng)
        z = _honest(SMALL, share, w)
        for _ in range(3000):
            key = v.keygen_single(share, rng)
            forged = z.copy()
            forged[0] = (forged[0] + 1) % SMALL.q
            assert not v.check(key, w, forged)

    def test_soundness_error_bound(self):
        assert soundness_error(97) == pytest.approx(1 / 97)
        assert soundness_error(97, 2) == pytest.approx(1 / 97**2)
        assert soundness_error(2**25 - 39) < 3e-8
        with pytest.raises(ValueError):
            soundness_error(97, 0)


class TestPaperAttacks:
    """The two Byzantine models of Sec. V must be detected."""

    def test_reverse_value_attack_detected(self, rng):
        """z -> -c z with c = 1 (the paper's setting)."""
        v = FreivaldsVerifier(F)
        share = F.random((6, 8), rng)
        key = v.keygen_single(share, rng)
        w = F.random(8, rng)
        z = _honest(F, share, w)
        attacked = F.neg(z)
        if np.array_equal(attacked, z):  # only if z == 0
            pytest.skip("degenerate zero result")
        assert not v.check(key, w, attacked)

    def test_constant_attack_detected(self, rng):
        v = FreivaldsVerifier(F)
        share = F.random((6, 8), rng)
        key = v.keygen_single(share, rng)
        w = F.random(8, rng)
        z = _honest(F, share, w)
        attacked = np.full_like(z, 12345)
        if np.array_equal(attacked, z):
            pytest.skip("degenerate constant result")
        assert not v.check(key, w, attacked)


class TestValidationAndCosts:
    def test_shape_checks(self, rng):
        v = FreivaldsVerifier(F)
        key = v.keygen_single(F.random((4, 6), rng), rng)
        with pytest.raises(ValueError, match="claimed"):
            v.check(key, F.random(6, rng), F.random(5, rng))
        with pytest.raises(ValueError, match="operand"):
            v.check(key, F.random(7, rng), F.random(4, rng))

    def test_keygen_shape_checks(self, rng):
        v = FreivaldsVerifier(F)
        with pytest.raises(ValueError):
            v.keygen_single(F.random(4, rng), rng)
        with pytest.raises(ValueError):
            v.keygen(F.random((4, 6), rng), rng)

    def test_probes_validation(self):
        with pytest.raises(ValueError):
            FreivaldsVerifier(F, probes=0)

    def test_cost_accounting_matches_paper(self, rng):
        """Check cost O(m+d) must be far below compute cost O(m d / K):
        the asymmetry that makes verification worthwhile (Sec. II-B)."""
        v = FreivaldsVerifier(F)
        b, d = 667, 5000  # GISETTE block: m/K = 6000/9 rows
        key_cost = v.keygen_cost_ops(b, d)
        share = F.random((10, 20), rng)
        key = v.keygen_single(share, rng)
        assert v.check_cost_ops(key) == 10 + 20
        assert key_cost == b * d  # one-time
        # per-check cost (b + d) << worker compute (b * d)
        assert (b + d) * 100 < b * d
