"""Shared fixtures: fields of several sizes and deterministic RNGs.

Tests default to a small prime field (fast, and makes soundness
probabilities like ``1/q`` large enough to observe statistically) but
key integration tests also run over the paper's 25-bit field.
"""

import numpy as np
import pytest

from repro.ff import DEFAULT_PRIME, PrimeField


@pytest.fixture
def rng():
    return np.random.default_rng(20220322)  # arXiv v2 date


@pytest.fixture
def small_field():
    """F_97: tiny field for statistical/adversarial tests."""
    return PrimeField(97)


@pytest.fixture
def mid_field():
    """F_7919: roomy enough for coding tests, still fast."""
    return PrimeField(7919)


@pytest.fixture
def paper_field():
    """The paper's field, q = 2**25 - 39."""
    return PrimeField(DEFAULT_PRIME)
