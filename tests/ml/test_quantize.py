"""Tests for quantization and overflow budgeting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import PrimeField
from repro.ml import OverflowBudget, Quantizer

F = PrimeField(2**25 - 39)


class TestQuantizer:
    def test_roundtrip_within_half_lsb(self, rng):
        q = Quantizer(F, 5)
        x = rng.normal(0, 10, size=200)
        back = q.dequantize(q.quantize(x))
        assert np.max(np.abs(back - x)) <= q.roundtrip_error_bound() + 1e-12

    def test_integers_exact_at_any_l(self, rng):
        for l in [0, 3, 8]:
            q = Quantizer(F, l)
            x = rng.integers(-100, 100, size=50).astype(np.float64)
            np.testing.assert_array_equal(q.dequantize(q.quantize(x)), x)

    def test_negative_values_twos_complement(self):
        q = Quantizer(F, 0)
        enc = q.quantize(np.array([-1.0]))
        assert enc[0] == F.q - 1  # -1 == q-1
        assert q.dequantize(enc)[0] == -1.0

    def test_extra_bits_scaling(self):
        """A product of two l-bit values carries 2l bits of scale."""
        q = Quantizer(F, 3)
        a, b = 1.5, 2.25
        prod_q = F.mul(q.quantize(np.array([a])), q.quantize(np.array([b])))
        got = q.dequantize(prod_q, extra_bits=3)  # total scale 2^6
        assert got[0] == pytest.approx(a * b)

    def test_overflow_rejected(self):
        small = PrimeField(97)
        q = Quantizer(small, 4)
        with pytest.raises(OverflowError, match="exceeds"):
            q.quantize(np.array([10.0]))  # 160 > 48

    def test_negative_l_rejected(self):
        with pytest.raises(ValueError):
            Quantizer(F, -1)

    @given(st.floats(min_value=-1000, max_value=1000), st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, x, l):
        q = Quantizer(F, l)
        back = q.dequantize(q.quantize(np.array([x])))[0]
        assert abs(back - x) <= 0.5 / 2**l + 1e-9


class TestOverflowBudget:
    def test_matvec_max(self):
        b = OverflowBudget(F)
        assert b.matvec_max(10, 32, 600) == 10 * 32 * 600

    def test_fits_boundary(self):
        b = OverflowBudget(F)
        assert b.fits(b.half)
        assert not b.fits(b.half + 1)

    def test_check_raises_with_context(self):
        b = OverflowBudget(F)
        with pytest.raises(OverflowError, match="round-X"):
            b.check_matvec(1000, 1000, 1000, what="round-X")

    def test_check_passes_paper_like_config(self):
        """The experiment configuration must fit: x<=15, l_w=5 weights
        bounded by 30, d=600."""
        b = OverflowBudget(F)
        b.check_matvec(15, 30 * 32, 600)   # z = X w
        b.check_matvec(15, 64, 1200)       # g = X^T e with l_e=6

    def test_headroom_bits(self):
        b = OverflowBudget(F)
        assert b.headroom_bits(b.half) == pytest.approx(0.0)
        assert b.headroom_bits(b.half / 2) == pytest.approx(1.0)
        assert b.headroom_bits(0) > 20

    def test_invalid_inputs(self):
        b = OverflowBudget(F)
        with pytest.raises(ValueError):
            b.matvec_max(-1, 1, 1)
