"""Tests for distributed linear regression."""

import numpy as np
import pytest

from repro.coding import SchemeParams
from repro.core import AVCCMaster, UncodedMaster
from repro.ff import PrimeField
from repro.ml import (
    DistributedLinearRegressionTrainer,
    LinRegConfig,
    make_linreg_dataset,
)
from repro.runtime import ConstantAttack, Honest, SimCluster, SimWorker, make_profiles

F = PrimeField(2**25 - 39)


def make_cluster(n=12, behaviors=None, seed=2):
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=make_profiles(n)[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(F, workers, rng=np.random.default_rng(seed))


@pytest.fixture(scope="module")
def dataset():
    return make_linreg_dataset(m=240, d=24, rng=np.random.default_rng(7))


class TestLinReg:
    def test_loss_decreases(self, dataset):
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=8, s=2, m=1))
        master.setup(dataset.x_train)
        cfg = LinRegConfig(iterations=25, learning_rate=0.01)
        hist = DistributedLinearRegressionTrainer(master, dataset, cfg).train()
        assert hist.train_loss[-1] < hist.train_loss[0] * 0.5

    def test_matches_uncoded_attack_free(self, dataset):
        cfg = LinRegConfig(iterations=10, learning_rate=0.01)
        m1 = AVCCMaster(make_cluster(), SchemeParams(n=12, k=8, s=2, m=1))
        m1.setup(dataset.x_train)
        t1 = DistributedLinearRegressionTrainer(m1, dataset, cfg)
        t1.train()

        m2 = UncodedMaster(make_cluster(), k=8)
        m2.setup(dataset.x_train)
        t2 = DistributedLinearRegressionTrainer(m2, dataset, cfg)
        t2.train()

        np.testing.assert_array_equal(t1.final_weights, t2.final_weights)

    def test_avcc_immune_to_byzantine(self, dataset):
        cfg = LinRegConfig(iterations=10, learning_rate=0.01)
        clean = AVCCMaster(make_cluster(), SchemeParams(n=12, k=8, s=2, m=1))
        clean.setup(dataset.x_train)
        tc = DistributedLinearRegressionTrainer(clean, dataset, cfg)
        tc.train()

        attacked = AVCCMaster(
            make_cluster(behaviors={4: ConstantAttack(value=9)}),
            SchemeParams(n=12, k=8, s=2, m=1),
        )
        attacked.setup(dataset.x_train)
        ta = DistributedLinearRegressionTrainer(attacked, dataset, cfg)
        ta.train()

        np.testing.assert_array_equal(tc.final_weights, ta.final_weights)

    def test_residual_clip_respected(self, dataset):
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=8, s=2, m=1))
        master.setup(dataset.x_train)
        cfg = LinRegConfig(iterations=3, learning_rate=0.01, residual_clip=2.0)
        hist = DistributedLinearRegressionTrainer(master, dataset, cfg).train()
        assert hist.iterations() == 3  # runs without overflow errors
