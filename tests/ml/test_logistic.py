"""End-to-end tests of distributed logistic regression.

The load-bearing invariant: coded execution must be **bit-identical**
to a centralized implementation of the same quantized update — coding,
verification and decoding are exact in F_q, so the entire training
trajectory must match to the last ULP.
"""

import numpy as np
import pytest

from repro.coding import SchemeParams
from repro.core import AVCCMaster, LCCMaster, UncodedMaster
from repro.ff import PrimeField, ff_matvec
from repro.ml import (
    DistributedLogisticTrainer,
    LogisticConfig,
    Quantizer,
    accuracy,
    make_gisette_like,
    sigmoid,
)
from repro.runtime import (
    ConstantAttack,
    Honest,
    ReversedValueAttack,
    SimCluster,
    SimWorker,
    TraceRecorder,
    make_profiles,
)

F = PrimeField(2**25 - 39)
CFG = LogisticConfig(iterations=8, learning_rate=1.0, l_w=5, l_e=6)


def make_cluster(n=12, straggler_factors=None, behaviors=None, seed=11):
    profiles = make_profiles(n, straggler_factors or {})
    behaviors = behaviors or {}
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    return SimCluster(F, workers, rng=np.random.default_rng(seed))


@pytest.fixture(scope="module")
def dataset():
    return make_gisette_like(m=320, d=60, class_lift=0.9, rng=np.random.default_rng(9))


def centralized_reference(ds, cfg):
    """The same quantized two-round update, computed locally in F_q."""
    qw, qe = Quantizer(F, cfg.l_w), Quantizer(F, cfg.l_e)
    x_q = F.asarray(ds.x_train)
    w = np.zeros(ds.d)
    accs = []
    for _ in range(cfg.iterations):
        z = qw.dequantize(ff_matvec(F, x_q, qw.quantize(w)))
        e = sigmoid(z) - ds.y_train
        g = qe.dequantize(ff_matvec(F, x_q.T.copy(), qe.quantize(e)))
        grad = g / ds.m
        norm = np.linalg.norm(grad)
        if cfg.grad_clip is not None and norm > cfg.grad_clip:
            grad *= cfg.grad_clip / norm
        w = w - cfg.learning_rate * grad
        accs.append(accuracy(ds.y_test, sigmoid(ds.x_test @ w)))
    return w, accs


class TestBitExactness:
    @pytest.mark.parametrize(
        "mk",
        [
            lambda c: AVCCMaster(c, SchemeParams(n=12, k=9, s=2, m=1)),
            lambda c: LCCMaster(c, SchemeParams(n=12, k=9, s=1, m=1)),
            lambda c: UncodedMaster(c, k=9),
        ],
        ids=["avcc", "lcc", "uncoded"],
    )
    def test_matches_centralized_reference(self, dataset, mk):
        master = mk(make_cluster())
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        hist = trainer.train()
        w_ref, accs_ref = centralized_reference(dataset, CFG)
        np.testing.assert_array_equal(trainer.final_weights, w_ref)
        assert hist.test_acc == accs_ref

    def test_avcc_with_straggler_and_byzantine_still_exact(self, dataset):
        cluster = make_cluster(
            straggler_factors={2: 8.0}, behaviors={5: ReversedValueAttack()}
        )
        master = AVCCMaster(cluster, SchemeParams(n=12, k=9, s=1, m=2))
        master.setup(dataset.x_train)
        trainer = DistributedLogisticTrainer(master, dataset, CFG)
        trainer.train()
        w_ref, _ = centralized_reference(dataset, CFG)
        np.testing.assert_array_equal(trainer.final_weights, w_ref)


class TestConvergence:
    def test_reaches_good_accuracy(self, dataset):
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(dataset.x_train)
        cfg = LogisticConfig(iterations=30, learning_rate=0.3, l_w=8, l_e=8)
        hist = DistributedLogisticTrainer(master, dataset, cfg).train()
        assert hist.final_test_acc >= 0.84
        assert hist.times == sorted(hist.times)

    def test_history_fields_populated(self, dataset):
        recorder = TraceRecorder()
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(dataset.x_train)
        hist = DistributedLogisticTrainer(master, dataset, CFG).train(recorder)
        assert hist.iterations() == CFG.iterations
        assert len(recorder.iterations) == CFG.iterations
        assert all(s == (12, 9) for s in hist.schemes)
        b = recorder.mean_breakdown()
        assert b["verification"] > 0 and b["decoding"] > 0


class TestUnderAttack:
    def test_avcc_beats_uncoded_under_constant_attack(self, dataset):
        cfg = LogisticConfig(iterations=25, learning_rate=1.0, l_w=5, l_e=6)
        behaviors = {3: ConstantAttack(value=50)}

        c1 = make_cluster(behaviors=behaviors)
        avcc = AVCCMaster(c1, SchemeParams(n=12, k=9, s=2, m=1))
        avcc.setup(dataset.x_train)
        h_avcc = DistributedLogisticTrainer(avcc, dataset, cfg).train()

        c2 = make_cluster(behaviors=behaviors)
        unc = UncodedMaster(c2, k=9)
        unc.setup(dataset.x_train)
        h_unc = DistributedLogisticTrainer(unc, dataset, cfg).train()

        w_ref, _ = centralized_reference(dataset, cfg)
        # AVCC is attack-immune: identical to the clean reference
        assert h_avcc.final_test_acc == pytest.approx(
            accuracy(dataset.y_test, sigmoid(dataset.x_test @ w_ref))
        )
        assert h_avcc.plateau_accuracy() > h_unc.plateau_accuracy()

    def test_lcc_degrades_with_two_byzantine(self, dataset):
        """(12,9,S=1,M=1) LCC + 2 constant attackers: decode poisoned,
        accuracy below the AVCC level (Fig. 3d mechanism)."""
        cfg = LogisticConfig(iterations=25, learning_rate=1.0, l_w=5, l_e=6)
        behaviors = {3: ConstantAttack(value=50), 8: ConstantAttack(value=50)}

        c1 = make_cluster(behaviors=behaviors)
        lcc = LCCMaster(c1, SchemeParams(n=12, k=9, s=1, m=1))
        lcc.setup(dataset.x_train)
        h_lcc = DistributedLogisticTrainer(lcc, dataset, cfg).train()

        c2 = make_cluster(behaviors=behaviors)
        avcc = AVCCMaster(c2, SchemeParams(n=12, k=9, s=1, m=2))
        avcc.setup(dataset.x_train)
        h_avcc = DistributedLogisticTrainer(avcc, dataset, cfg).train()

        assert h_avcc.plateau_accuracy() > h_lcc.plateau_accuracy()

    def test_time_to_accuracy_metric(self, dataset):
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(dataset.x_train)
        cfg = LogisticConfig(iterations=20, learning_rate=1.0)
        hist = DistributedLogisticTrainer(master, dataset, cfg).train()
        t = hist.time_to_accuracy(0.8)
        assert np.isfinite(t)
        assert hist.time_to_accuracy(2.0) == np.inf


class TestOverflowGuard:
    def test_oversized_data_rejected(self):
        """A dataset violating the Sec. V budget must be refused, not
        silently wrap."""
        ds = make_gisette_like(m=320, d=60, value_max=15, rng=np.random.default_rng(3))
        big = ds.__class__(
            name="big",
            x_train=ds.x_train * 10**5,
            y_train=ds.y_train,
            x_test=ds.x_test,
            y_test=ds.y_test,
        )
        master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
        master.setup(big.x_train)
        trainer = DistributedLogisticTrainer(master, big, CFG)
        with pytest.raises(OverflowError):
            trainer.train()
