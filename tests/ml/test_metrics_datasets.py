"""Tests for metrics and the synthetic datasets."""

import numpy as np
import pytest

from repro.ml import (
    accuracy,
    binary_cross_entropy,
    make_gisette_like,
    make_linreg_dataset,
    sigmoid,
)


class TestSigmoid:
    def test_midpoint_and_symmetry(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), 1.0, atol=1e-12)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == 0.0 and out[1] == 1.0
        assert not np.any(np.isnan(out))

    def test_monotone(self):
        z = np.linspace(-10, 10, 101)
        assert np.all(np.diff(sigmoid(z)) > 0)


class TestCrossEntropy:
    def test_perfect_predictions_near_zero(self):
        y = np.array([0.0, 1.0])
        assert binary_cross_entropy(y, np.array([1e-15, 1 - 1e-15])) < 1e-10

    def test_uniform_is_log2(self):
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert binary_cross_entropy(y, np.full(4, 0.5)) == pytest.approx(np.log(2))

    def test_clipping_avoids_inf(self):
        assert np.isfinite(binary_cross_entropy(np.array([1.0]), np.array([0.0])))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            binary_cross_entropy(np.zeros(2), np.zeros(3))


class TestAccuracy:
    def test_basic(self):
        y = np.array([0, 1, 1, 0], dtype=float)
        p = np.array([0.2, 0.8, 0.4, 0.1])
        assert accuracy(y, p) == 0.75

    def test_threshold(self):
        y = np.array([1.0])
        assert accuracy(y, np.array([0.4]), threshold=0.3) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(0), np.zeros(0))


class TestGisetteLike:
    def test_shapes_and_split(self, rng):
        ds = make_gisette_like(m=400, d=50, test_fraction=0.25, rng=rng)
        assert ds.x_train.shape == (300, 50)
        assert ds.x_test.shape == (100, 50)
        assert ds.m == 300 and ds.d == 50

    def test_integer_bounded_nonnegative(self, rng):
        ds = make_gisette_like(m=300, d=40, value_max=15, rng=rng)
        for x in (ds.x_train, ds.x_test):
            assert x.dtype == np.int64
            assert x.min() >= 0 and x.max() <= 15

    def test_labels_binary_and_balancedish(self, rng):
        ds = make_gisette_like(m=800, d=60, rng=rng)
        y = np.concatenate([ds.y_train, ds.y_test])
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert 0.2 < y.mean() < 0.8

    def test_density_respected(self, rng):
        ds = make_gisette_like(m=400, d=100, density=0.1, rng=rng)
        nz = (ds.x_train != 0).mean()
        assert 0.05 < nz < 0.15

    def test_learnable_by_plain_logistic_regression(self, rng):
        """A centralized float GD must reach >= 85% test accuracy —
        otherwise the distributed experiments cannot show the paper's
        mid-90s plateaus."""
        ds = make_gisette_like(m=1000, d=100, class_lift=0.8, rng=rng)
        w = np.zeros(ds.d)
        for _ in range(80):
            p = sigmoid(ds.x_train @ w)
            w -= 0.3 * ds.x_train.T @ (p - ds.y_train) / ds.m
        assert accuracy(ds.y_test, sigmoid(ds.x_test @ w)) >= 0.85

    def test_experiment_scale_reaches_low_nineties(self):
        """At the experiment scale (d=600) the default generator must
        support a low-90s plateau (the intensity jitter intentionally
        caps it slightly below the noiseless optimum so convergence
        takes a realistic 10-30 iterations)."""
        ds = make_gisette_like(m=1200, d=600, rng=np.random.default_rng(9))
        w = np.zeros(ds.d)
        best = 0.0
        for _ in range(50):
            p = sigmoid(ds.x_train @ w)
            w -= 0.1 * ds.x_train.T @ (p - ds.y_train) / ds.m
            best = max(best, accuracy(ds.y_test, sigmoid(ds.x_test @ w)))
        assert best >= 0.90

    def test_reproducible(self):
        a = make_gisette_like(m=100, d=20, rng=np.random.default_rng(5))
        b = make_gisette_like(m=100, d=20, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_test, b.y_test)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_gisette_like(test_fraction=0.0)
        with pytest.raises(ValueError):
            make_gisette_like(density=0.0)
        with pytest.raises(ValueError):
            make_gisette_like(value_max=0)


class TestLinRegDataset:
    def test_shapes(self, rng):
        ds = make_linreg_dataset(m=200, d=30, rng=rng)
        assert ds.x_train.shape[1] == 30
        assert ds.y_train.dtype == np.float64

    def test_signal_present(self, rng):
        """Least squares on the data must beat the zero predictor."""
        ds = make_linreg_dataset(m=400, d=20, noise_std=0.1, rng=rng)
        w, *_ = np.linalg.lstsq(ds.x_train.astype(float), ds.y_train, rcond=None)
        mse_fit = np.mean((ds.x_test @ w - ds.y_test) ** 2)
        mse_zero = np.mean(ds.y_test**2)
        assert mse_fit < 0.5 * mse_zero
