"""Tests for polynomial sigmoid approximation (Sec. VII direction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import SchemeParams
from repro.core import AVCCMaster
from repro.ml import (
    DistributedLogisticTrainer,
    LogisticConfig,
    PolynomialSigmoid,
    fit_sigmoid_poly,
    make_gisette_like,
    sigmoid,
)
from repro.ml.polyapprox import _chebyshev_nodes


class TestFit:
    def test_degree3_error_bound(self):
        """The CodedPrivateML-style degree-3 fit stays within ~0.12."""
        assert PolynomialSigmoid(3).max_error() < 0.12

    def test_error_decreases_with_degree(self):
        errs = [PolynomialSigmoid(d).max_error() for d in (1, 3, 5, 7)]
        assert all(a > b for a, b in zip(errs, errs[1:]))

    def test_midpoint_preserved(self):
        """sigmoid(0) = 1/2 must be approximated closely (the fit is
        near-odd around the center)."""
        ps = PolynomialSigmoid(5)
        assert ps(np.array([0.0]))[0] == pytest.approx(0.5, abs=0.02)

    def test_output_range_clipped(self):
        ps = PolynomialSigmoid(3)
        z = np.linspace(-50, 50, 101)  # far outside the fit interval
        out = ps(z)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_monotone_on_core_interval(self):
        """Monotone where the decision boundary lives; least-squares
        fits legitimately ripple near the interval edges."""
        ps = PolynomialSigmoid(5)
        z = np.linspace(-4, 4, 201)
        assert np.all(np.diff(ps(z)) >= -1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_sigmoid_poly(0)
        with pytest.raises(ValueError):
            fit_sigmoid_poly(3, interval=(2.0, -2.0))
        with pytest.raises(ValueError):
            fit_sigmoid_poly(5, n_nodes=3)

    def test_chebyshev_nodes_inside_interval(self):
        nodes = _chebyshev_nodes(32, -3.0, 5.0)
        assert nodes.min() > -3.0 and nodes.max() < 5.0

    @given(deg=st.integers(1, 7), half=st.floats(2.0, 12.0))
    @settings(max_examples=30, deadline=None)
    def test_property_fit_beats_constant(self, deg, half):
        """Any fit must beat the trivial constant-1/2 approximation."""
        ps = PolynomialSigmoid(deg, interval=(-half, half))
        z = np.linspace(-half, half, 501)
        const_err = float(np.max(np.abs(0.5 - sigmoid(z))))
        assert ps.max_error() < const_err


class TestTrainingWithPolynomialActivation:
    def test_converges_close_to_true_sigmoid(self):
        """Training with the degree-5 polynomial activation must land
        within a few accuracy points of the exact-sigmoid run — the
        paper's 'approximation comes at the cost of accuracy loss'."""
        from tests.ml.test_logistic import make_cluster

        ds = make_gisette_like(m=320, d=60, class_lift=0.9,
                               rng=np.random.default_rng(9))
        cfg = LogisticConfig(iterations=15, learning_rate=0.3, l_w=8, l_e=8)

        accs = {}
        for name, act in (("exact", None), ("poly", PolynomialSigmoid(5))):
            master = AVCCMaster(make_cluster(), SchemeParams(n=12, k=9, s=2, m=1))
            master.setup(ds.x_train)
            hist = DistributedLogisticTrainer(master, ds, cfg, activation=act).train()
            accs[name] = hist.plateau_accuracy()
        assert accs["poly"] >= accs["exact"] - 0.05
