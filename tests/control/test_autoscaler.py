"""The control plane: autoscaling policy, gateway windows, actuation.

The :class:`~repro.control.autoscaler.Autoscaler` is pure decision
logic, so its hysteresis/cooldown/clamp behavior is pinned on
synthetic signal streams. The gateway's window builder is exercised on
the simulator (including the invariant that turning the control plane
*on* never changes a single served byte), and the
:class:`~repro.control.controller.FleetController` actuation path runs
against a real loopback TCP fleet — scale-up must heal a SIGKILLed
worker end to end (restart daemon → dial → admit → re-code).
"""

import math
import os
import signal
import time

import numpy as np
import pytest

from repro.api import Session, SessionConfig
from repro.coding import SchemeParams
from repro.control import (
    Autoscaler,
    AutoscalerConfig,
    FleetController,
    WindowSignals,
)
from repro.ff import PrimeField, ff_matvec
from repro.serve import Gateway, GatewayConfig, OpenLoopSource, Request

F = PrimeField()


def _signals(
    i=0,
    *,
    slo=1.0,
    queue=0,
    completed=20,
    shed=0,
    live=4,
    pending=0,
    dead=0,
):
    return WindowSignals(
        window_index=i,
        t_start=i * 1.0,
        t_end=(i + 1) * 1.0,
        completed=completed,
        served=completed - shed,
        shed=shed,
        queue_depth=queue,
        slo_attainment=slo,
        p99_latency=0.05,
        deadline_slack=0.1,
        live_workers=live,
        pending_workers=pending,
        dead_workers=dead,
    )


# ----------------------------------------------------------------------
# policy: hysteresis, cooldown, clamps, precedence
# ----------------------------------------------------------------------
class TestAutoscalerPolicy:
    def test_single_breach_window_holds(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=2))
        assert scaler.observe(_signals(slo=0.5)).action == "hold"

    def test_persistent_breach_scales_up(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=2, scale_step=2))
        scaler.observe(_signals(0, slo=0.5))
        decision = scaler.observe(_signals(1, slo=0.5))
        assert decision.action == "scale_up" and decision.delta == 2
        assert "slo" in decision.reason

    def test_breach_streak_resets_on_calm_window(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=2))
        scaler.observe(_signals(0, slo=0.5))
        scaler.observe(_signals(1))  # calm: streak resets
        assert scaler.observe(_signals(2, slo=0.5)).action == "hold"

    def test_queue_and_shed_are_breaches_too(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=1, queue_high=4))
        assert scaler.observe(_signals(queue=9)).action == "scale_up"
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=1, shed_high=0.1))
        decision = scaler.observe(_signals(completed=10, shed=5))
        assert decision.action == "scale_up" and "shed" in decision.reason

    def test_cooldown_blocks_scaling_but_not_recode(self):
        scaler = Autoscaler(
            AutoscalerConfig(scale_up_after=1, cooldown_windows=2)
        )
        assert scaler.observe(_signals(0, slo=0.5)).action == "scale_up"
        # still breaching, but refractory: hold...
        assert scaler.observe(_signals(1, slo=0.5)).action == "hold"
        # ...unless there is roster drift, which reconciles for free
        decision = scaler.observe(_signals(2, slo=0.5, pending=1))
        assert decision.action == "recode" and "cooldown" in decision.reason

    def test_scale_up_clamped_at_max_workers(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=1, max_workers=4))
        decision = scaler.observe(_signals(slo=0.5, live=4))
        assert decision.action == "hold" and "max_workers" in decision.reason
        scaler = Autoscaler(
            AutoscalerConfig(scale_up_after=1, max_workers=4, scale_step=3)
        )
        assert scaler.observe(_signals(slo=0.5, live=3)).delta == 1

    def test_calm_streak_scales_down_with_min_clamp(self):
        cfg = AutoscalerConfig(scale_down_after=3, min_workers=3, scale_step=2)
        scaler = Autoscaler(cfg)
        for i in range(2):
            assert scaler.observe(_signals(i, live=4)).action == "hold"
        decision = scaler.observe(_signals(2, live=4))
        assert decision.action == "scale_down"
        assert decision.delta == 1  # 4 live, min 3: only one to give
        scaler = Autoscaler(cfg)
        for i in range(5):  # never below min_workers
            assert scaler.observe(_signals(i, live=3)).action != "scale_down"

    def test_recode_fires_on_roster_drift_alone(self):
        scaler = Autoscaler()
        assert scaler.observe(_signals(pending=2)).action == "recode"
        assert scaler.observe(_signals(dead=1)).action == "recode"
        assert scaler.observe(_signals()).action == "hold"

    def test_decisions_are_recorded_in_order(self):
        scaler = Autoscaler(AutoscalerConfig(scale_up_after=1))
        scaler.observe(_signals(0))
        scaler.observe(_signals(1, slo=0.5))
        assert [d.action for d in scaler.decisions] == ["hold", "scale_up"]

    @pytest.mark.parametrize(
        "bad",
        [
            {"slo_target": 0.0},
            {"slo_target": 1.5},
            {"queue_high": 0},
            {"shed_high": 1.5},
            {"scale_up_after": 0},
            {"cooldown_windows": -1},
            {"min_workers": 0},
            {"min_workers": 9, "max_workers": 4},
            {"scale_step": 0},
        ],
    )
    def test_config_validation(self, bad):
        with pytest.raises(ValueError):
            AutoscalerConfig(**bad)


class TestWindowSignals:
    def test_shed_rate(self):
        assert _signals(completed=10, shed=3).shed_rate == pytest.approx(0.3)
        assert _signals(completed=0).shed_rate == 0.0

    def test_to_dict_sanitizes_non_finite(self):
        s = WindowSignals(
            window_index=0,
            t_start=0.0,
            t_end=1.0,
            completed=0,
            served=0,
            shed=0,
            queue_depth=0,
            slo_attainment=1.0,
            p99_latency=math.nan,
            deadline_slack=math.inf,
            live_workers=4,
            pending_workers=0,
            dead_workers=0,
        )
        d = s.to_dict()
        assert d["p99_latency"] is None and d["deadline_slack"] is None
        assert d["shed_rate"] == 0.0


# ----------------------------------------------------------------------
# gateway windows on the simulator
# ----------------------------------------------------------------------
def _sim_session():
    return Session.create(
        SessionConfig(
            scheme=SchemeParams(n=4, k=2, s=1, m=0),
            master="avcc",
            backend="sim",
        )
    )


def _requests(field, d, n, rng, *, spacing=0.03, slack=0.5):
    return [
        Request(
            request_id=i,
            tenant="t",
            family="matvec",
            operand=field.random(d, rng),
            arrival=i * spacing,
            deadline=i * spacing + slack,
        )
        for i in range(n)
    ]


class TestGatewayWindows:
    def test_controller_requires_interval(self):
        with _sim_session() as sess:
            with pytest.raises(ValueError, match="control_interval"):
                Gateway(
                    sess,
                    OpenLoopSource([]),
                    GatewayConfig(),
                    controller=FleetController(sess),
                )
            with pytest.raises(ValueError, match="> 0"):
                Gateway(
                    sess, OpenLoopSource([]), GatewayConfig(), control_interval=0.0
                )

    def test_windows_summarize_the_run(self, rng):
        x = F.random((6, 5), rng)
        with _sim_session() as sess:
            sess.load(x)
            reqs = _requests(F, 5, 12, rng)
            gw = Gateway(
                sess,
                OpenLoopSource(reqs),
                GatewayConfig(),
                control_interval=0.1,
            )
            gw.run()
        assert gw.window_history, "no control windows were built"
        for i, w in enumerate(gw.window_history):
            assert w.window_index == i
            assert w.t_end == pytest.approx(w.t_start + 0.1)
            assert w.completed == w.served + w.shed
            assert w.live_workers == 4
        assert sum(w.completed for w in gw.window_history) <= len(reqs)

    def test_control_plane_never_changes_served_bytes(self, rng):
        """The parity invariant: observing windows (with no controller
        attached) must not perturb a single scheduling decision."""
        x = F.random((6, 5), rng)

        def run(interval):
            with _sim_session() as sess:
                sess.load(x)
                rr = np.random.default_rng(11)
                gw = Gateway(
                    sess,
                    OpenLoopSource(_requests(F, 5, 16, rr)),
                    GatewayConfig(),
                    control_interval=interval,
                )
                gw.run()
            return gw.results

        plain, windowed = run(None), run(0.07)
        assert set(plain) == set(windowed)
        for rid in plain:
            np.testing.assert_array_equal(plain[rid], windowed[rid])


# ----------------------------------------------------------------------
# actuation against a real TCP fleet
# ----------------------------------------------------------------------
def _tcp_session(n=4, k=2):
    return Session.create(
        SessionConfig(
            scheme=SchemeParams(n=n, k=k, s=1, m=0),
            master="avcc",
            backend="tcp",
            backend_options={
                "straggle_scale": 0.002,
                "heartbeat_interval": 0.05,
                "heartbeat_timeout": 0.5,
            },
        )
    )


class TestFleetControllerActuation:
    def test_scale_up_heals_a_killed_worker(self, rng):
        """Two breach windows after a SIGKILL: the controller restarts
        the dead daemon, waits for the dial, and re-codes it back in —
        with served answers still exact."""
        x = F.random((6, 5), rng)
        v = F.random(5, rng)
        with _tcp_session() as sess:
            sess.load(x)
            os.kill(sess.backend.worker_pids()[3], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while 3 not in sess.backend.membership().dead:
                assert time.monotonic() < deadline, "death never detected"
                sess.submit_matvec(v).result()  # rounds observe the death
            sess.end_iteration()  # evict from the roster
            assert sess.master.scheme_now[0] == 3

            ctrl = FleetController(
                sess, Autoscaler(AutoscalerConfig(scale_up_after=2))
            )
            assert ctrl.on_window(_signals(0, slo=0.5, live=3)).action == "hold"
            decision = ctrl.on_window(_signals(1, slo=0.5, live=3))
            assert decision.action == "scale_up"
            view = sess.backend.membership()
            assert view.live == (0, 1, 2, 3) and view.dead == ()
            assert sess.master.scheme_now[0] == 4
            _, outcome = ctrl.actions[-1]
            assert outcome is not None and outcome.joined_workers == (3,)
            np.testing.assert_array_equal(
                sess.submit_matvec(v).result(), ff_matvec(F, x, v)
            )

    def test_recode_admits_a_pending_joiner(self, rng):
        x = F.random((6, 5), rng)
        v = F.random(5, rng)
        with _tcp_session() as sess:
            sess.load(x)
            wid = sess.backend.spawn_worker()
            ctrl = FleetController(sess)
            ctrl._await_dialed({wid})
            decision = ctrl.on_window(_signals(pending=1))
            assert decision.action == "recode"
            assert sess.master.scheme_now[0] == 5
            assert wid in sess.backend.membership().live
            np.testing.assert_array_equal(
                sess.submit_matvec(v).result(), ff_matvec(F, x, v)
            )

    def test_scale_down_releases_highest_ids(self, rng):
        x = F.random((6, 5), rng)
        v = F.random(5, rng)
        with _tcp_session(n=5, k=2) as sess:
            sess.load(x)
            scaler = Autoscaler(
                AutoscalerConfig(scale_down_after=1, min_workers=2)
            )
            ctrl = FleetController(sess, scaler)
            decision = ctrl.on_window(_signals(live=5))
            assert decision.action == "scale_down"
            view = sess.backend.membership()
            assert view.live == (0, 1, 2, 3) and view.dropped == (4,)
            assert sess.master.scheme_now[0] == 4
            np.testing.assert_array_equal(
                sess.submit_matvec(v).result(), ff_matvec(F, x, v)
            )

    def test_scale_up_needs_an_elastic_backend(self):
        with _sim_session() as sess:
            ctrl = FleetController(
                sess, Autoscaler(AutoscalerConfig(scale_up_after=1))
            )
            with pytest.raises(RuntimeError, match="cannot spawn"):
                ctrl.on_window(_signals(slo=0.5))
