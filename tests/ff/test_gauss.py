"""Tests for exact Gaussian elimination over F_q."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import (
    PrimeField,
    SingularMatrixError,
    ff_matmul,
    gauss_inverse,
    gauss_rank,
    gauss_solve,
    gauss_solve_any,
)

F = PrimeField(97)


class TestSolve:
    def test_identity(self, rng):
        b = F.random(5, rng)
        np.testing.assert_array_equal(gauss_solve(F, np.eye(5, dtype=np.int64), b), b)

    def test_known_system(self):
        a = np.array([[2, 1], [1, 3]])
        x = np.array([4, 5])
        b = ff_matmul(F, a, x[:, None])[:, 0]
        np.testing.assert_array_equal(gauss_solve(F, a, b), x)

    def test_matrix_rhs(self, rng):
        a = F.random((6, 6), rng)
        x = F.random((6, 3), rng)
        b = ff_matmul(F, a, x)
        np.testing.assert_array_equal(gauss_solve(F, a, b), x)

    def test_singular_raises(self):
        a = np.array([[1, 2], [2, 4]])  # rank 1
        with pytest.raises(SingularMatrixError):
            gauss_solve(F, a, np.array([1, 1]))

    def test_non_square_raises(self):
        with pytest.raises(ValueError, match="square"):
            gauss_solve(F, np.ones((2, 3), dtype=np.int64), np.ones(2, dtype=np.int64))

    def test_needs_pivot_swap(self):
        a = np.array([[0, 1], [1, 0]])
        np.testing.assert_array_equal(gauss_solve(F, a, np.array([7, 9])), [9, 7])

    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, seed, n):
        r = np.random.default_rng(seed)
        # Random matrices over F_97 are invertible w.h.p.; retry until so.
        for _ in range(10):
            a = F.random((n, n), r)
            if gauss_rank(F, a) == n:
                break
        else:
            pytest.skip("no invertible sample")
        x = F.random(n, r)
        b = ff_matmul(F, a, x[:, None])[:, 0]
        np.testing.assert_array_equal(gauss_solve(F, a, b), x)


class TestInverse:
    def test_inverse_product(self, rng):
        for _ in range(5):
            a = F.random((5, 5), rng)
            if gauss_rank(F, a) < 5:
                continue
            inv = gauss_inverse(F, a)
            np.testing.assert_array_equal(
                ff_matmul(F, a, inv), np.eye(5, dtype=np.int64)
            )


class TestRank:
    def test_full_rank(self):
        assert gauss_rank(F, np.eye(4, dtype=np.int64)) == 4

    def test_rank_deficient(self):
        a = np.array([[1, 2, 3], [2, 4, 6], [1, 0, 1]])
        assert gauss_rank(F, a) == 2

    def test_zero_matrix(self):
        assert gauss_rank(F, np.zeros((3, 3), dtype=np.int64)) == 0

    def test_rectangular(self):
        assert gauss_rank(F, np.array([[1, 0, 0], [0, 1, 0]])) == 2


class TestSolveAny:
    def test_underdetermined_finds_solution(self):
        a = np.array([[1, 1, 0], [0, 1, 1]])
        b = np.array([3, 5])
        x = gauss_solve_any(F, a, b)
        assert x is not None
        np.testing.assert_array_equal(ff_matmul(F, a, x[:, None])[:, 0], b)

    def test_inconsistent_returns_none(self):
        a = np.array([[1, 1], [2, 2]])
        b = np.array([1, 3])  # 2*(first) must equal second => inconsistent
        assert gauss_solve_any(F, a, b) is None

    def test_overdetermined_consistent(self, rng):
        x_true = F.random(3, rng)
        a = F.random((6, 3), rng)
        b = ff_matmul(F, a, x_true[:, None])[:, 0]
        x = gauss_solve_any(F, a, b)
        assert x is not None
        np.testing.assert_array_equal(ff_matmul(F, a, x[:, None])[:, 0], b)

    @given(seed=st.integers(0, 2**32 - 1), rows=st.integers(1, 7), cols=st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_property_solution_always_valid(self, seed, rows, cols):
        r = np.random.default_rng(seed)
        a = F.random((rows, cols), r)
        x_true = F.random(cols, r)
        b = ff_matmul(F, a, x_true[:, None])[:, 0]
        x = gauss_solve_any(F, a, b)
        assert x is not None  # constructed consistent
        np.testing.assert_array_equal(ff_matmul(F, a, x[:, None])[:, 0], b)
