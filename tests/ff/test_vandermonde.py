"""Tests for Vandermonde utilities and the MDS submatrix property."""

from itertools import combinations

import numpy as np
import pytest

from repro.ff import (
    Poly,
    PrimeField,
    gauss_rank,
    vandermonde_matrix,
    vandermonde_solve,
)

F = PrimeField(7919)


class TestMatrix:
    def test_shape_and_values(self):
        v = vandermonde_matrix(F, np.array([2, 3]), 4)
        np.testing.assert_array_equal(v, [[1, 2, 4, 8], [1, 3, 9, 27]])

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(F, np.ones((2, 2), dtype=np.int64), 3)

    def test_every_square_submatrix_invertible(self):
        """The MDS property: any K rows of a K-column Vandermonde matrix
        on distinct points form an invertible matrix."""
        k, n = 3, 6
        v = vandermonde_matrix(F, F.distinct_points(n), k)
        for rows in combinations(range(n), k):
            assert gauss_rank(F, v[list(rows)]) == k


class TestSolve:
    def test_recovers_poly(self, rng):
        p = Poly(F, rng.integers(0, F.q, size=6))
        xs = F.distinct_points(6)
        got = vandermonde_solve(F, xs, p(xs))
        assert got == p

    def test_constant(self):
        got = vandermonde_solve(F, np.array([5]), np.array([42]))
        assert got == Poly(F, [42])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            vandermonde_solve(F, np.array([1, 2]), np.array([1]))
