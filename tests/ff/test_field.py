"""Tests for the PrimeField element-ops layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import DEFAULT_PRIME, PrimeField

elems = st.integers(min_value=-(10**9), max_value=10**9)


class TestConstruction:
    def test_default_prime_value(self):
        assert DEFAULT_PRIME == 33_554_393 == 2**25 - 39

    def test_rejects_composite(self):
        with pytest.raises(ValueError, match="not prime"):
            PrimeField(2**25 - 1)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError, match="too large"):
            PrimeField(2**31 + 11)

    def test_chunk_bound_is_safe(self):
        f = PrimeField(DEFAULT_PRIME)
        assert f.chunk * (f.q - 1) ** 2 + (f.q - 1) <= np.iinfo(np.int64).max
        assert (f.chunk + 1) * (f.q - 1) ** 2 + (f.q - 1) > np.iinfo(np.int64).max

    def test_paper_chunk_covers_gisette(self):
        """d = 5000 must fit in a single accumulation chunk (Sec. V)."""
        assert PrimeField(DEFAULT_PRIME).chunk >= 5000

    def test_equality_and_hash(self):
        assert PrimeField(97) == PrimeField(97)
        assert PrimeField(97) != PrimeField(101)
        assert hash(PrimeField(97)) == hash(PrimeField(97))


class TestConversion:
    def test_asarray_reduces(self, small_field):
        np.testing.assert_array_equal(
            small_field.asarray([-1, 97, 98, 0]), [96, 0, 1, 0]
        )

    def test_asarray_rejects_floats(self, small_field):
        with pytest.raises(TypeError, match="quantize"):
            small_field.asarray(np.array([1.5]))

    def test_asarray_bignum_objects(self, small_field):
        big = np.array([10**30, -(10**30)], dtype=object)
        got = small_field.asarray(big)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, [10**30 % 97, (-(10**30)) % 97])

    def test_signed_roundtrip(self, small_field):
        vals = np.arange(-48, 49)
        np.testing.assert_array_equal(
            small_field.to_signed(small_field.from_signed(vals)), vals
        )

    def test_signed_boundaries(self, small_field):
        # (q-1)/2 = 48 stays positive; 49 maps to -48.
        assert small_field.to_signed(np.array([48]))[0] == 48
        assert small_field.to_signed(np.array([49]))[0] == -48

    def test_random_in_range(self, small_field, rng):
        x = small_field.random(1000, rng)
        assert x.min() >= 0 and x.max() < 97


class TestFieldAxioms:
    @given(a=elems, b=elems, c=elems)
    @settings(max_examples=80, deadline=None)
    def test_ring_axioms(self, a, b, c):
        f = PrimeField(97)
        assert f.add(a, b) == f.add(b, a)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    @given(a=elems)
    @settings(max_examples=60, deadline=None)
    def test_additive_inverse(self, a):
        f = PrimeField(97)
        assert f.add(a, f.neg(a)) == 0

    @given(a=elems.filter(lambda v: v % 97 != 0))
    @settings(max_examples=60, deadline=None)
    def test_multiplicative_inverse(self, a):
        f = PrimeField(97)
        assert f.mul(a, f.inv(a)) == 1

    def test_div(self, small_field):
        assert small_field.div(10, 5) == 2
        assert small_field.mul(small_field.div(7, 13), 13) == 7

    def test_pow_negative_exponent(self, small_field):
        a = 5
        assert small_field.pow(a, -1) == small_field.inv(a)
        assert small_field.mul(small_field.pow(a, -3), small_field.pow(a, 3)) == 1


class TestDistinctPoints:
    def test_basic(self, small_field):
        pts = small_field.distinct_points(10)
        assert len(np.unique(pts)) == 10

    def test_start_offset(self, small_field):
        pts = small_field.distinct_points(5, start=50)
        np.testing.assert_array_equal(pts, [50, 51, 52, 53, 54])

    def test_too_many(self, small_field):
        with pytest.raises(ValueError):
            small_field.distinct_points(97)
