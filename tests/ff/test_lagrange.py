"""Tests for Lagrange basis evaluation and interpolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import (
    Poly,
    PrimeField,
    barycentric_weights,
    eval_lagrange_basis,
    interpolate_eval,
    lagrange_coeff_matrix,
)

F = PrimeField(7919)


class TestBarycentricWeights:
    def test_direct_formula(self):
        xs = np.array([2, 5, 11])
        w = barycentric_weights(F, xs)
        for j in range(3):
            prod = 1
            for k in range(3):
                if k != j:
                    prod = prod * (int(xs[j]) - int(xs[k])) % F.q
            assert w[j] == pow(prod, F.q - 2, F.q)

    def test_duplicate_points_raise(self):
        with pytest.raises(ValueError, match="distinct"):
            barycentric_weights(F, np.array([1, 2, 1]))


class TestBasisEvaluation:
    def test_partition_of_unity(self, rng):
        """sum_j l_j(z) = 1 for every z (interpolating the constant 1)."""
        xs = F.distinct_points(8)
        z = F.random(20, rng)
        basis = eval_lagrange_basis(F, xs, z)
        np.testing.assert_array_equal(basis.sum(axis=0) % F.q, np.ones(20, dtype=np.int64))

    def test_indicator_at_nodes(self):
        xs = np.array([3, 7, 12, 20])
        basis = eval_lagrange_basis(F, xs, xs)
        np.testing.assert_array_equal(basis, np.eye(4, dtype=np.int64))

    def test_mixed_nodes_and_fresh_points(self):
        xs = np.array([1, 2, 3])
        z = np.array([2, 50])  # one coincident, one fresh
        basis = eval_lagrange_basis(F, xs, z)
        np.testing.assert_array_equal(basis[:, 0], [0, 1, 0])
        assert basis[:, 1].sum() % F.q == 1

    def test_reproduces_polynomial(self, rng):
        """Interpolation through poly samples reproduces poly values."""
        p = Poly(F, rng.integers(0, F.q, size=5))  # degree 4
        xs = F.distinct_points(5)
        z = F.random(10, rng)
        basis = eval_lagrange_basis(F, xs, z)
        got = basis.T @ p(xs) % F.q
        np.testing.assert_array_equal(got, p(z))


class TestInterpolateEval:
    def test_scalar_values(self, rng):
        p = Poly(F, rng.integers(0, F.q, size=4))
        xs = F.distinct_points(4)
        z = F.distinct_points(6, start=100)
        np.testing.assert_array_equal(interpolate_eval(F, xs, p(xs), z), p(z))

    def test_matrix_values(self, rng):
        """Vector-valued interpolation = column-wise scalar interpolation."""
        xs = F.distinct_points(5)
        z = F.distinct_points(3, start=50)
        ys = F.random((5, 7), rng)
        got = interpolate_eval(F, xs, ys, z)
        for c in range(7):
            np.testing.assert_array_equal(
                got[:, c], interpolate_eval(F, xs, ys[:, c], z)
            )

    def test_identity_when_same_points(self, rng):
        xs = F.distinct_points(6)
        ys = F.random((6, 4), rng)
        np.testing.assert_array_equal(interpolate_eval(F, xs, ys, xs), ys)

    @given(deg=st.integers(0, 8), seed=st.integers(0, 2**32 - 1), extra=st.integers(0, 4))
    @settings(max_examples=50, deadline=None)
    def test_property_degree_recovery(self, deg, seed, extra):
        """Any deg-d poly is exactly recovered from d+1+extra samples."""
        r = np.random.default_rng(seed)
        p = Poly(F, r.integers(0, F.q, size=deg + 1))
        n = deg + 1 + extra
        xs = F.distinct_points(n)
        z = F.distinct_points(5, start=200)
        np.testing.assert_array_equal(interpolate_eval(F, xs, p(xs), z), p(z))


class TestCoeffMatrix:
    def test_alias(self):
        xs, z = np.array([1, 2]), np.array([5])
        np.testing.assert_array_equal(
            lagrange_coeff_matrix(F, xs, z), eval_lagrange_basis(F, xs, z)
        )
