"""Unit + property tests for low-level modular arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import DEFAULT_PRIME, batch_inverse, is_prime, mod_inverse, mod_pow

PRIMES = [2, 3, 5, 97, 7919, DEFAULT_PRIME, 2**31 - 1]
COMPOSITES = [0, 1, 4, 91, 561, 2**25 - 1, 3 * 7919]


class TestIsPrime:
    @pytest.mark.parametrize("p", PRIMES)
    def test_accepts_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("n", COMPOSITES)
    def test_rejects_composites(self, n):
        assert not is_prime(n)

    def test_paper_field_is_largest_25bit_prime(self):
        """Sec. V claims q = 2**25 - 39 is the largest 25-bit prime."""
        assert is_prime(DEFAULT_PRIME)
        for n in range(2**25 - 1, DEFAULT_PRIME, -1):
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)


class TestModPow:
    def test_matches_python_pow_scalarwise(self, rng):
        q = 7919
        base = rng.integers(0, q, size=50)
        for e in [0, 1, 2, 7, q - 2, q - 1, 12345]:
            got = mod_pow(base, e, q)
            want = np.array([pow(int(b), e, q) for b in base])
            np.testing.assert_array_equal(got, want)

    def test_zero_exponent_of_zero_base(self):
        # Convention: 0**0 = 1 (empty product), matching python pow.
        assert mod_pow(np.array([0]), 0, 97)[0] == 1

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            mod_pow(np.array([3]), -1, 97)

    def test_unreduced_base(self):
        assert mod_pow(np.array([97 + 3]), 2, 97)[0] == 9

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_property_vs_pow(self, b, e):
        q = DEFAULT_PRIME
        assert mod_pow(np.array([b]), e, q)[0] == pow(b, e, q)


class TestModInverse:
    @pytest.mark.parametrize("q", [5, 97, 7919, DEFAULT_PRIME])
    def test_inverse_property(self, q, rng):
        a = rng.integers(1, q, size=200)
        inv = mod_inverse(a, q)
        np.testing.assert_array_equal(a * inv % q, np.ones_like(a))

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            mod_inverse(np.array([0, 1]), 97)

    def test_preserves_shape(self, rng):
        a = rng.integers(1, 97, size=(3, 4))
        assert mod_inverse(a, 97).shape == (3, 4)


class TestBatchInverse:
    def test_matches_fermat(self, rng):
        q = 7919
        a = rng.integers(1, q, size=64)
        np.testing.assert_array_equal(batch_inverse(a, q), mod_inverse(a, q))

    def test_single_element(self):
        assert batch_inverse(np.array([2]), 7)[0] == 4

    def test_empty(self):
        assert batch_inverse(np.zeros(0, dtype=np.int64), 7).size == 0

    def test_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            batch_inverse(np.array([3, 0]), 97)

    def test_2d_shape_preserved(self, rng):
        a = rng.integers(1, 97, size=(5, 3))
        out = batch_inverse(a, 97)
        assert out.shape == (5, 3)
        np.testing.assert_array_equal(a * out % 97, np.ones_like(a))

    @given(st.lists(st.integers(min_value=1, max_value=96), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_all_inverses(self, vals):
        a = np.array(vals, dtype=np.int64)
        inv = batch_inverse(a, 97)
        assert np.all(a * inv % 97 == 1)
