"""Tests for Reed–Solomon coding and Berlekamp–Welch decoding.

These pin down the exact property LCC's Byzantine tolerance rests on:
with slack ``n - (D+1)`` spare evaluations, up to ``slack // 2`` errors
are correctable — i.e. each Byzantine worker costs *two* workers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import (
    DecodingError,
    Poly,
    PrimeField,
    ReedSolomon,
    berlekamp_welch,
)

F = PrimeField(7919)


def _random_poly(rng, deg):
    return Poly(F, rng.integers(0, F.q, size=deg + 1))


def _corrupt(rng, ys, positions):
    out = ys.copy()
    for p in positions:
        old = out[p]
        while out[p] == old:
            out[p] = rng.integers(0, F.q)
    return out


class TestBerlekampWelch:
    def test_no_errors(self, rng):
        p = _random_poly(rng, 4)
        xs = F.distinct_points(8)
        got, errs = berlekamp_welch(F, xs, p(xs), 4)
        assert got == p and errs.size == 0

    @pytest.mark.parametrize("n_err", [1, 2, 3])
    def test_corrects_errors_within_capacity(self, rng, n_err):
        deg = 3
        n = deg + 1 + 2 * n_err
        p = _random_poly(rng, deg)
        xs = F.distinct_points(n)
        pos = rng.choice(n, size=n_err, replace=False)
        ys = _corrupt(rng, p(xs), pos)
        got, errs = berlekamp_welch(F, xs, ys, deg)
        assert got == p
        assert set(errs.tolist()) == set(pos.tolist())

    def test_beyond_capacity_not_silently_wrong(self, rng):
        """With errors > capacity the decoder must not return the true
        polynomial labelled as clean — either it raises or it returns
        some other consistent codeword."""
        deg, n = 2, 5  # capacity = 1
        p = _random_poly(rng, deg)
        xs = F.distinct_points(n)
        pos = rng.choice(n, size=2, replace=False)
        ys = _corrupt(rng, p(xs), pos)
        try:
            got, errs = berlekamp_welch(F, xs, ys, deg)
        except DecodingError:
            return
        # If it decoded, the result must be consistent with >= n-1 points.
        resid = (got(xs) - ys) % F.q
        assert np.count_nonzero(resid) <= 1

    def test_too_few_points(self):
        with pytest.raises(DecodingError):
            berlekamp_welch(F, np.array([1, 2]), np.array([1, 2]), 2)

    def test_max_errors_caps_budget(self, rng):
        deg = 2
        n = deg + 1 + 4  # capacity 2
        p = _random_poly(rng, deg)
        xs = F.distinct_points(n)
        pos = rng.choice(n, size=2, replace=False)
        ys = _corrupt(rng, p(xs), pos)
        # budget 2 decodes
        got, _ = berlekamp_welch(F, xs, ys, deg, max_errors=2)
        assert got == p
        # budget 1 must not succeed with 2 errors against the true poly
        try:
            got1, errs1 = berlekamp_welch(F, xs, ys, deg, max_errors=1)
        except DecodingError:
            return
        assert np.count_nonzero((got1(xs) - ys) % F.q) <= 1

    def test_degree_zero_message(self, rng):
        xs = F.distinct_points(5)
        ys = np.full(5, 42, dtype=np.int64)
        ys[3] = 17
        got, errs = berlekamp_welch(F, xs, ys, 0)
        assert got == Poly(F, [42])
        assert errs.tolist() == [3]

    @given(
        deg=st.integers(0, 5),
        n_err=st.integers(0, 3),
        extra=st.integers(0, 2),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, deg, n_err, extra, seed):
        r = np.random.default_rng(seed)
        n = deg + 1 + 2 * n_err + extra
        p = Poly(F, r.integers(0, F.q, size=deg + 1))
        xs = F.distinct_points(n)
        pos = r.choice(n, size=n_err, replace=False) if n_err else np.zeros(0, int)
        ys = _corrupt(r, p(xs), pos)
        got, errs = berlekamp_welch(F, xs, ys, deg)
        assert got == p
        assert set(errs.tolist()) == set(np.asarray(pos).tolist())


class TestReedSolomonCodec:
    def _codec(self, n=10, deg=3):
        return ReedSolomon(F, F.distinct_points(n), deg)

    def test_encode_evaluates(self, rng):
        rs = self._codec()
        p = _random_poly(rng, 3)
        np.testing.assert_array_equal(rs.encode_poly(p), p(rs.eval_points))

    def test_encode_degree_check(self, rng):
        rs = self._codec(deg=2)
        with pytest.raises(ValueError):
            rs.encode_poly(_random_poly(rng, 3))

    def test_decode_vector_symbols_with_errors(self, rng):
        n, deg, width = 10, 3, 6
        rs = self._codec(n, deg)
        # message: one polynomial per column
        polys = [_random_poly(rng, deg) for _ in range(width)]
        word = np.stack([p(rs.eval_points) for p in polys], axis=1)
        bad = [1, 7]
        word_rx = word.copy()
        word_rx[bad] = F.random((2, width), rng)
        out_pts = F.distinct_points(4, start=500)
        res = rs.decode(np.arange(n), word_rx, out_pts)
        assert set(res.error_positions.tolist()) == set(bad)
        want = np.stack([p(out_pts) for p in polys], axis=1)
        np.testing.assert_array_equal(res.values, want)

    def test_decode_with_erasures_and_errors(self, rng):
        n, deg = 12, 3
        rs = self._codec(n, deg)
        p = _random_poly(rng, deg)
        word = p(rs.eval_points)
        received = [0, 2, 3, 5, 6, 8, 9, 11]  # 4 erased
        vals = word[received].copy()
        vals[2] = (vals[2] + 1) % F.q  # one error among received
        out_pts = np.array([700])
        res = rs.decode(received, vals, out_pts)
        assert res.error_positions.tolist() == [2]
        assert res.values[0] == p(700)

    def test_decode_scalar_squeeze(self, rng):
        rs = self._codec()
        p = _random_poly(rng, 3)
        res = rs.decode(np.arange(10), p(rs.eval_points), np.array([123, 456]))
        assert res.values.ndim == 1
        np.testing.assert_array_equal(res.values, p(np.array([123, 456])))

    def test_insufficient_symbols_raise(self, rng):
        rs = self._codec(deg=5)
        with pytest.raises(DecodingError):
            rs.decode(np.arange(4), F.random((4, 2), rng), np.array([1]))

    def test_duplicate_eval_points_rejected(self):
        with pytest.raises(ValueError, match="distinct"):
            ReedSolomon(F, np.array([1, 1, 2]), 1)

    def test_erasure_only_budget_zero(self, rng):
        """Exactly deg+1 symbols: decode must work but tolerates nothing."""
        rs = self._codec(n=6, deg=5)
        p = _random_poly(rng, 5)
        res = rs.decode(np.arange(6), p(rs.eval_points), np.array([9]))
        assert res.values[0] == p(9)
