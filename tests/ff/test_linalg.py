"""Tests for overflow-safe field linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import PrimeField, ff_dot, ff_matmul, ff_matvec, safe_chunk_len


def _ref_matmul(a, b, q):
    """Object-dtype (bignum) reference — immune to overflow."""
    return np.array(
        (a.astype(object) @ b.astype(object)) % q, dtype=np.int64
    )


class TestSafeChunk:
    @pytest.mark.parametrize("q", [97, 7919, 2**25 - 39, 2**31 - 1])
    def test_bound(self, q):
        c = safe_chunk_len(q)
        imax = np.iinfo(np.int64).max
        assert c * (q - 1) ** 2 + (q - 1) <= imax
        assert (c + 1) * (q - 1) ** 2 + (q - 1) > imax


class TestMatmul:
    def test_small_matches_reference(self, paper_field, rng):
        a = paper_field.random((7, 11), rng)
        b = paper_field.random((11, 5), rng)
        np.testing.assert_array_equal(
            ff_matmul(paper_field, a, b), _ref_matmul(a, b, paper_field.q)
        )

    def test_chunked_path_matches_reference(self, paper_field, rng):
        """Force the chunked path by shrinking the field's chunk bound."""
        a = paper_field.random((4, 25), rng)
        b = paper_field.random((25, 3), rng)
        want = _ref_matmul(a, b, paper_field.q)
        paper_field.chunk = 7  # 25 inner dims -> 4 chunks
        try:
            np.testing.assert_array_equal(ff_matmul(paper_field, a, b), want)
        finally:
            paper_field.chunk = safe_chunk_len(paper_field.q)

    def test_wide_31bit_field_no_overflow(self, rng):
        """Worst case: q near 2**31 forces chunk == 1."""
        f = PrimeField(2**31 - 1)
        assert f.chunk >= 1
        a = f.random((3, 40), rng)
        b = f.random((40, 2), rng)
        np.testing.assert_array_equal(ff_matmul(f, a, b), _ref_matmul(a, b, f.q))

    def test_unreduced_inputs(self, small_field):
        a = np.array([[-1, 98]])
        b = np.array([[3], [4]])
        # (-1*3 + 98*4) mod 97 == (96*3 + 1*4) mod 97
        assert ff_matmul(small_field, a, b)[0, 0] == (96 * 3 + 4) % 97

    def test_shape_errors(self, small_field):
        with pytest.raises(ValueError, match="inner dims"):
            ff_matmul(small_field, np.ones((2, 3), dtype=np.int64), np.ones((4, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="2-D"):
            ff_matmul(small_field, np.ones(3, dtype=np.int64), np.ones((3, 2), dtype=np.int64))

    @given(
        n=st.integers(1, 6),
        k=st.integers(1, 20),
        m=st.integers(1, 6),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_reference(self, n, k, m, seed):
        f = PrimeField(2**25 - 39)
        r = np.random.default_rng(seed)
        a = f.random((n, k), r)
        b = f.random((k, m), r)
        np.testing.assert_array_equal(ff_matmul(f, a, b), _ref_matmul(a, b, f.q))


class TestMatvec:
    def test_matches_matmul(self, paper_field, rng):
        a = paper_field.random((9, 30), rng)
        x = paper_field.random(30, rng)
        np.testing.assert_array_equal(
            ff_matvec(paper_field, a, x), ff_matmul(paper_field, a, x[:, None])[:, 0]
        )

    def test_chunked(self, paper_field, rng):
        a = paper_field.random((3, 50), rng)
        x = paper_field.random(50, rng)
        want = _ref_matmul(a, x[:, None], paper_field.q)[:, 0]
        paper_field.chunk = 8
        try:
            np.testing.assert_array_equal(ff_matvec(paper_field, a, x), want)
        finally:
            paper_field.chunk = safe_chunk_len(paper_field.q)

    def test_requires_1d(self, small_field):
        with pytest.raises(ValueError, match="1-D"):
            ff_matvec(small_field, np.ones((2, 2), dtype=np.int64), np.ones((2, 1), dtype=np.int64))


class TestDot:
    def test_basic(self, small_field):
        assert ff_dot(small_field, np.array([1, 2, 3]), np.array([4, 5, 6])) == 32 % 97

    def test_chunked_matches(self, paper_field, rng):
        x = paper_field.random(100, rng)
        y = paper_field.random(100, rng)
        want = ff_dot(paper_field, x, y)
        paper_field.chunk = 9
        try:
            assert ff_dot(paper_field, x, y) == want
        finally:
            paper_field.chunk = safe_chunk_len(paper_field.q)

    def test_returns_python_int(self, small_field, rng):
        out = ff_dot(small_field, small_field.random(5, rng), small_field.random(5, rng))
        assert isinstance(out, int)

    def test_mismatched_raises(self, small_field):
        with pytest.raises(ValueError):
            ff_dot(small_field, np.array([1, 2]), np.array([1, 2, 3]))
