"""Tests for dense polynomials over F_q."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ff import Poly, PrimeField

F = PrimeField(97)

coeff_lists = st.lists(st.integers(min_value=0, max_value=96), min_size=0, max_size=12)


def P(*coeffs):
    return Poly(F, list(coeffs))


class TestBasics:
    def test_trailing_zeros_stripped(self):
        assert P(1, 2, 0, 0).degree == 1
        assert P(0, 0).degree == -1

    def test_zero_and_one(self):
        assert Poly.zero(F).is_zero()
        assert Poly.one(F).degree == 0
        assert Poly.x(F).degree == 1

    def test_eval_scalar_and_array(self):
        p = P(1, 2, 3)  # 1 + 2x + 3x^2
        assert p(2) == (1 + 4 + 12) % 97
        np.testing.assert_array_equal(p(np.array([0, 1])), [1, 6])

    def test_zero_poly_eval(self):
        assert Poly.zero(F)(5) == 0

    def test_equality(self):
        assert P(1, 2) == P(1, 2, 0)
        assert P(1, 2) != P(2, 1)

    def test_different_fields_raise(self):
        with pytest.raises(ValueError, match="different fields"):
            P(1) + Poly(PrimeField(101), [1])


class TestArithmetic:
    def test_add_sub(self):
        a, b = P(1, 2, 3), P(4, 5)
        assert a + b == P(5, 7, 3)
        assert (a + b) - b == a

    def test_mul(self):
        # (1 + x)(1 - x) = 1 - x^2
        assert P(1, 1) * P(1, 96) == P(1, 0, 96)

    def test_mul_by_zero(self):
        assert (P(1, 2) * Poly.zero(F)).is_zero()

    def test_scalar_coerce(self):
        assert P(1, 2) + 5 == P(6, 2)
        assert P(1, 2) * 2 == P(2, 4)

    def test_scale(self):
        assert P(1, 2).scale(3) == P(3, 6)

    def test_divmod_exact(self):
        a = P(1, 2, 1)  # (x+1)^2
        q, r = divmod(a, P(1, 1))
        assert q == P(1, 1) and r.is_zero()

    def test_divmod_with_remainder(self):
        q, r = divmod(P(1, 0, 1), P(1, 1))  # x^2+1 = (x+1)(x-1) + 2
        assert q == P(96, 1)
        assert r == P(2)

    def test_division_reconstruction(self, rng):
        for _ in range(20):
            a = Poly(F, rng.integers(0, 97, size=8))
            b = Poly(F, np.append(rng.integers(0, 97, size=3), 1))
            q, r = divmod(a, b)
            assert q * b + r == a
            assert r.degree < b.degree

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            divmod(P(1), Poly.zero(F))

    def test_divides_exactly(self):
        assert P(1, 1).divides_exactly(P(1, 2, 1))
        assert not P(1, 1).divides_exactly(P(1, 0, 1))


class TestConstructors:
    def test_from_roots(self):
        p = Poly.from_roots(F, [3, 5])
        assert p(3) == 0 and p(5) == 0 and p(4) != 0
        assert p.coeffs[-1] == 1  # monic

    def test_from_roots_empty(self):
        assert Poly.from_roots(F, []) == Poly.one(F)

    def test_derivative(self):
        assert P(5, 3, 2).derivative() == P(3, 4)
        assert P(7).derivative().is_zero()

    def test_monic(self):
        p = P(2, 4).monic()
        assert p.coeffs[-1] == 1
        with pytest.raises(ZeroDivisionError):
            Poly.zero(F).monic()


class TestProperties:
    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=60, deadline=None)
    def test_mul_commutes_and_degree(self, a, b):
        pa, pb = Poly(F, a or [0]), Poly(F, b or [0])
        prod = pa * pb
        assert prod == pb * pa
        if not pa.is_zero() and not pb.is_zero():
            assert prod.degree == pa.degree + pb.degree

    @given(a=coeff_lists, b=coeff_lists, x=st.integers(0, 96))
    @settings(max_examples=60, deadline=None)
    def test_eval_homomorphism(self, a, b, x):
        pa, pb = Poly(F, a or [0]), Poly(F, b or [0])
        assert (pa * pb)(x) == pa(x) * pb(x) % 97
        assert (pa + pb)(x) == (pa(x) + pb(x)) % 97
