"""The serving gateway end to end: parity, shedding, fairness, report.

The load-bearing test is parity: whatever the admission, fairness and
batching policies do to *when* work runs, every served request must
decode to exactly the bytes unbatched execution produces — coalescing
is a scheduling optimization, never a numerical one.
"""

import json
import math

import numpy as np
import pytest

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import DEFAULT_PRIME, PrimeField, ff_matmul, ff_matvec
from repro.serve import (
    ClosedLoopSource,
    Gateway,
    GatewayConfig,
    OpenLoopSource,
    PoissonArrivals,
    Request,
    ServeReport,
    TenantSpec,
    WorkloadGenerator,
)

F = PrimeField(DEFAULT_PRIME)
M, D = 24, 12
SCHEME = SchemeParams(n=12, k=4, s=2, m=1)  # feasible at deg_f=2 (gramian)
_NEXT_ID = iter(range(100_000))


def _session_config(**kw):
    base = dict(
        scheme=SCHEME,
        master="avcc",
        backend="sim",
        seed=5,
        batch_window=64,
        workers=tuple(
            [WorkerSpec(straggler_factor=4.0), WorkerSpec(behavior="reverse")]
            + [WorkerSpec() for _ in range(10)]
        ),
    )
    base.update(kw)
    return SessionConfig(**base)


def _x(seed=0):
    return F.random((M, D), np.random.default_rng(seed))


def _generator(seed=7, slack=math.inf, rate=200.0, mix=None):
    tenants = [
        TenantSpec("free", weight=1.0, deadline_slack=slack,
                   family_mix=mix or {"matvec": 1.0}, transpose_fraction=0.4),
        TenantSpec("pro", weight=2.0, deadline_slack=slack,
                   family_mix=mix or {"matvec": 1.0}),
    ]
    return WorkloadGenerator(F, (M, D), tenants, PoissonArrivals(rate), seed=seed)


def _expected(x, req):
    if req.family == "matvec":
        return ff_matvec(F, x.T.copy() if req.transpose else x, req.operand)
    if req.family == "gramian":
        return ff_matvec(F, ff_matmul(F, x.T.copy(), x), req.operand)
    return ff_matmul(F, req.operand, req.operand_b)


def _run(requests, session_cfg=None, gateway_cfg=None, x=None):
    x = _x() if x is None else x
    with Session.create(session_cfg or _session_config()) as sess:
        sess.load(x)
        gw = Gateway(sess, OpenLoopSource(requests), gateway_cfg or GatewayConfig())
        report = gw.run()
    return x, gw, report


class TestEndToEndParity:
    def test_batched_results_byte_identical_to_ground_truth(self):
        """The acceptance parity pin: every request served by the
        deadline-batched gateway decodes to exactly the unbatched
        answer."""
        reqs = _generator(slack=math.inf).generate(40)
        x, gw, report = _run(
            reqs,
            gateway_cfg=GatewayConfig(
                batch_policy="hybrid",
                policy_options={"window": 8, "safety": 1.5, "linger": 0.05},
            ),
        )
        assert len(report.served) == 40
        for req in reqs:
            assert gw.results[req.request_id].tobytes() == _expected(x, req).tobytes()

    def test_batched_matches_serial_gateway_bytes(self):
        reqs = _generator(seed=11).generate(30)
        x, serial_gw, serial_report = _run(
            reqs,
            gateway_cfg=GatewayConfig(batch_policy="count", policy_options={"window": 1}),
        )
        _, batched_gw, batched_report = _run(
            reqs,
            gateway_cfg=GatewayConfig(
                batch_policy="count", policy_options={"window": 8}
            ),
            x=x,
        )
        assert serial_report.rounds_executed == 30
        assert batched_report.rounds_executed < serial_report.rounds_executed
        for rid, vec in serial_gw.results.items():
            assert vec.tobytes() == batched_gw.results[rid].tobytes()

    def test_pipelined_gateway_matches_serial_bytes(self):
        reqs = _generator(seed=13).generate(24)
        x, serial_gw, _ = _run(reqs)
        _, piped_gw, piped_report = _run(
            reqs, session_cfg=_session_config(max_inflight_rounds=6), x=x
        )
        assert len(piped_report.served) == 24
        assert piped_report.pipeline_occupancy > 1.0
        for rid, vec in serial_gw.results.items():
            assert vec.tobytes() == piped_gw.results[rid].tobytes()

    def test_mixed_families_including_gramian_and_matmul(self):
        mix = {"matvec": 0.6, "gramian": 0.25, "matmul": 0.15}
        reqs = _generator(seed=17, mix=mix).generate(40)
        assert {r.family for r in reqs} == {"matvec", "gramian", "matmul"}
        x, gw, report = _run(
            reqs,
            gateway_cfg=GatewayConfig(
                batch_policy="hybrid",
                policy_options={"window": 6, "linger": 0.05},
            ),
        )
        assert len(report.served) == 40
        for req in reqs:
            assert gw.results[req.request_id].tobytes() == _expected(x, req).tobytes()


class TestAsyncEntryPoint:
    def test_run_async_matches_run_bytes(self):
        """run_async is the same event loop with the network-blocking
        session calls hopped to the executor: reports and decoded
        vectors must be byte-identical to run()."""
        import asyncio

        reqs = _generator(seed=17).generate(24)
        x, sync_gw, sync_report = _run(reqs)
        with Session.create(_session_config()) as sess:
            sess.load(x)
            gw = Gateway(sess, OpenLoopSource(reqs), GatewayConfig())
            report = asyncio.run(gw.run_async())
        assert report.outcomes == sync_report.outcomes
        for rid, vec in sync_gw.results.items():
            assert vec.tobytes() == gw.results[rid].tobytes()

    def test_run_async_runs_once(self):
        import asyncio

        reqs = _generator(seed=19).generate(4)
        with Session.create(_session_config()) as sess:
            sess.load(_x())
            gw = Gateway(sess, OpenLoopSource(reqs), GatewayConfig())
            asyncio.run(gw.run_async())
            with pytest.raises(RuntimeError, match="already ran"):
                asyncio.run(gw.run_async())
            with pytest.raises(RuntimeError, match="already ran"):
                gw.run()


class TestBatchingBehavior:
    def test_serial_policy_runs_one_round_per_request(self):
        reqs = _generator(seed=3).generate(12)
        _, _, report = _run(
            reqs,
            gateway_cfg=GatewayConfig(batch_policy="count", policy_options={"window": 1}),
        )
        assert report.rounds_executed == 12
        assert report.batching_factor == 1.0

    def test_batched_policy_coalesces_rounds(self):
        reqs = _generator(seed=3, rate=2000.0).generate(32)
        _, _, report = _run(
            reqs,
            gateway_cfg=GatewayConfig(
                batch_policy="count", policy_options={"window": 8}
            ),
        )
        assert report.rounds_executed < 12
        assert report.batching_factor > 2.0

    def test_max_batch_caps_round_width(self):
        reqs = _generator(seed=3, rate=5000.0).generate(30)
        _, _, report = _run(
            reqs,
            gateway_cfg=GatewayConfig(
                batch_policy="count", policy_options={"window": 100}, max_batch=5
            ),
        )
        # flushed in <=5-wide rounds despite the huge window
        assert report.rounds_executed >= 6


class TestSheddingAndSLO:
    def test_requests_aging_past_deadline_are_shed_not_served(self):
        # tight 0.1 ms deadlines at 5000 rps against one-round-per-
        # request service: while a round executes (several simulated
        # ms) the requests queued behind it age out and must be shed,
        # not pointlessly executed
        reqs = _generator(slack=1e-4, rate=5000.0).generate(20)
        _, gw, report = _run(
            reqs,
            gateway_cfg=GatewayConfig(batch_policy="count", policy_options={"window": 1}),
        )
        # non-vacuous: the trace is rebased to the gateway's start, so
        # early requests really execute — only the ones that aged
        # behind a running round are shed
        assert len(report.served) >= 1
        assert report.shed_expired > 0
        assert len(report.served) + report.shed == 20
        assert report.slo_attainment < 1.0

    def test_queue_overflow_sheds(self):
        # a burst of simultaneous arrivals against depth-2 tenant queues
        ops = F.random(D, np.random.default_rng(0))
        reqs = [
            Request(request_id=next(_NEXT_ID), tenant="free", family="matvec",
                    arrival=0.5, operand=ops)
            for _ in range(12)
        ]
        _, _, report = _run(reqs, gateway_cfg=GatewayConfig(queue_depth=2))
        assert report.shed_queue_full > 0
        assert len(report.served) + report.shed == 12

    def test_served_within_deadline_counts_toward_slo(self):
        reqs = _generator(slack=10.0, rate=100.0).generate(15)
        _, _, report = _run(reqs)
        assert report.slo_attainment == 1.0
        for o in report.served:
            assert o.slo_met is True
            assert o.latency >= 0.0


class TestReport:
    def test_report_json_round_trip(self):
        reqs = _generator(slack=5.0).generate(10)
        _, _, report = _run(reqs)
        payload = json.dumps(report.to_dict())
        data = json.loads(payload)
        assert data["metrics"]["served"] == 10.0
        assert set(data["tenants"]) <= {"free", "pro"}
        assert len(data["requests"]) == 10
        # inf deadlines would break strict JSON; they must be sanitized
        assert "Infinity" not in payload

    def test_percentiles_and_throughput(self):
        reqs = _generator().generate(20)
        _, _, report = _run(reqs)
        assert 0 < report.p50 <= report.p95 <= report.p99
        assert report.throughput > 0
        assert report.duration > 0

    def test_tenant_summary_accounts_everyone(self):
        reqs = _generator().generate(25)
        _, _, report = _run(reqs)
        rows = report.tenant_summary()
        assert sum(int(r["submitted"]) for r in rows.values()) == 25

    def test_fairness_index_bounds(self):
        reqs = _generator().generate(25)
        _, _, report = _run(reqs)
        assert 0.0 < report.fairness_index() <= 1.0

    def test_empty_report_degenerates_cleanly(self):
        report = ServeReport(outcomes=(), t_start=0.0, t_end=0.0)
        assert report.total == 0
        assert math.isnan(report.p99)
        assert report.slo_attainment == 1.0
        assert report.throughput == 0.0
        assert report.fairness_index() == 1.0


class TestClosedLoop:
    def test_closed_loop_serves_every_client_request(self):
        gen = _generator(seed=23)
        src = ClosedLoopSource(gen, n_clients=4, think_time=0.005, requests_per_client=3)
        with Session.create(_session_config()) as sess:
            sess.load(_x())
            gw = Gateway(sess, src, GatewayConfig())
            report = gw.run()
        assert report.total == 12
        assert len(report.served) == 12
        # arrivals really were paced by completions
        arrivals = sorted(o.arrival for o in report.outcomes)
        assert arrivals[-1] > arrivals[3]

    def test_closed_loop_client_survives_a_shed(self):
        """A shed is a terminal outcome: the client still issues its
        remaining requests instead of silently going quiet."""
        gen = _generator(seed=31, slack=1e-4, rate=5000.0)
        src = ClosedLoopSource(gen, n_clients=3, think_time=1e-4, requests_per_client=4)
        with Session.create(_session_config()) as sess:
            sess.load(_x())
            gw = Gateway(
                sess,
                src,
                GatewayConfig(batch_policy="count", policy_options={"window": 1}),
            )
            report = gw.run()
        # every client issued its full budget despite sheds along the way
        assert report.total == 12
        assert report.shed_expired > 0
        assert len(report.served) + report.shed == 12


class TestGatewayGuards:
    def test_gateway_runs_once(self):
        reqs = _generator().generate(2)
        with Session.create(_session_config()) as sess:
            sess.load(_x())
            gw = Gateway(sess, OpenLoopSource(reqs), GatewayConfig())
            gw.run()
            with pytest.raises(RuntimeError, match="already ran"):
                gw.run()

    def test_gateway_respects_session_batch_window(self):
        with Session.create(_session_config(batch_window=4)) as sess:
            sess.load(_x())
            gw = Gateway(
                sess,
                OpenLoopSource([]),
                GatewayConfig(max_batch=32),
            )
            assert gw._batcher.max_batch == 4

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            GatewayConfig(max_batch=0)
        with pytest.raises(ValueError, match="queue_depth"):
            GatewayConfig(queue_depth=0)


class TestWallClockBackend:
    def test_threaded_backend_serves_trace(self):
        """The gateway must run against wall-clock backends: the
        arrival schedule replays as-fast-as-possible (advance_to only
        floors the clock) and every request still terminates served."""
        reqs = _generator(seed=29, rate=500.0).generate(8)
        cfg = _session_config(backend="threaded")
        x = _x()
        with Session.create(cfg) as sess:
            sess.load(x)
            gw = Gateway(
                sess,
                OpenLoopSource(reqs),
                GatewayConfig(
                    batch_policy="hybrid",
                    policy_options={"window": 4, "linger": 0.05},
                ),
            )
            report = gw.run()
        assert len(report.served) == 8
        for req in reqs:
            assert gw.results[req.request_id].tobytes() == _expected(x, req).tobytes()
        for o in report.served:
            assert o.latency >= 0.0
