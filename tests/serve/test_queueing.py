"""Admission control and weighted fair dequeue."""

import numpy as np
import pytest

from repro.ff import DEFAULT_PRIME, PrimeField
from repro.serve import FairQueue, Request
from repro.serve.queueing import ADMITTED, SHED_EXPIRED, SHED_QUEUE_FULL

F = PrimeField(DEFAULT_PRIME)
_OPERAND = F.random(4, np.random.default_rng(0))
_NEXT_ID = iter(range(10_000))


def _req(tenant="t", arrival=0.0, deadline=float("inf")):
    return Request(
        request_id=next(_NEXT_ID),
        tenant=tenant,
        family="matvec",
        arrival=arrival,
        deadline=deadline,
        operand=_OPERAND,
    )


class TestAdmission:
    def test_admits_until_depth_then_sheds(self):
        q = FairQueue(depth=2)
        assert q.offer(_req(), 0.0) == ADMITTED
        assert q.offer(_req(), 0.0) == ADMITTED
        assert q.offer(_req(), 0.0) == SHED_QUEUE_FULL
        assert len(q) == 2
        assert q.total_shed_queue_full == 1
        shed = q.take_shed()
        assert len(shed) == 1 and shed[0][1] == SHED_QUEUE_FULL
        assert q.take_shed() == []  # drained

    def test_depth_is_per_tenant(self):
        q = FairQueue(depth=1)
        assert q.offer(_req("a"), 0.0) == ADMITTED
        assert q.offer(_req("b"), 0.0) == ADMITTED
        assert q.offer(_req("a"), 0.0) == SHED_QUEUE_FULL

    def test_sheds_expired_at_admission(self):
        q = FairQueue()
        assert q.offer(_req(deadline=1.0), now=2.0) == SHED_EXPIRED
        assert q.total_shed_expired == 1
        assert len(q) == 0

    def test_sheds_aged_out_at_dequeue(self):
        q = FairQueue()
        q.offer(_req(deadline=1.0), now=0.0)
        q.offer(_req(deadline=10.0), now=0.0)
        got = q.pop(now=5.0)  # first aged out while queued
        assert got is not None and got.deadline == 10.0
        assert q.total_shed_expired == 1
        assert [v for _, v in q.take_shed()] == [SHED_EXPIRED]

    def test_pop_empty_returns_none(self):
        assert FairQueue().pop(0.0) is None


class TestFairDequeue:
    def test_per_tenant_fifo(self):
        q = FairQueue()
        first, second = _req("a"), _req("a")
        q.offer(first, 0.0)
        q.offer(second, 0.0)
        assert q.pop(0.0) is first
        assert q.pop(0.0) is second

    def test_weighted_share_under_backlog(self):
        q = FairQueue(depth=200, weights={"heavy": 3.0, "light": 1.0})
        for _ in range(80):
            q.offer(_req("heavy"), 0.0)
            q.offer(_req("light"), 0.0)
        first40 = [q.pop(0.0).tenant for _ in range(40)]
        # stride scheduling: ~3:1 split over any backlogged prefix
        assert first40.count("heavy") == pytest.approx(30, abs=2)

    def test_idle_tenant_does_not_bank_credit(self):
        q = FairQueue(weights={"a": 1.0, "b": 1.0})
        # a drains 10 requests while b is idle
        for _ in range(10):
            q.offer(_req("a"), 0.0)
        for _ in range(10):
            q.pop(0.0)
        # b arrives: it must not monopolize 10 dequeues to "catch up"
        for _ in range(4):
            q.offer(_req("a"), 0.0)
            q.offer(_req("b"), 0.0)
        order = [q.pop(0.0).tenant for _ in range(8)]
        assert order.count("b") == 4
        assert set(order[:2]) == {"a", "b"}  # interleaved from the start

    def test_no_credit_banked_across_an_idle_system(self):
        # tenant a drains 50 requests, the system goes FULLY idle, then
        # b joins: b must rejoin at the system virtual time, not at
        # pass 0 — otherwise it would monopolize the next 50 dequeues
        q = FairQueue(depth=200, weights={"a": 1.0, "b": 1.0})
        for _ in range(50):
            q.offer(_req("a"), 0.0)
        for _ in range(50):
            q.pop(0.0)
        assert len(q) == 0  # fully idle
        for _ in range(6):
            q.offer(_req("b"), 0.0)
            q.offer(_req("a"), 0.0)
        order = [q.pop(0.0).tenant for _ in range(12)]
        assert order.count("a") == 6  # not starved
        assert "a" in order[:2]

    def test_stats_track_lifecycle(self):
        q = FairQueue(depth=1)
        q.offer(_req("a"), 0.0)
        q.offer(_req("a"), 0.0)  # shed: full
        q.pop(0.0)
        stats = q.stats()["a"]
        assert stats.admitted == 1
        assert stats.shed_queue_full == 1
        assert stats.dequeued == 1
        assert stats.offered == 2

    def test_depth_of_and_tenants(self):
        q = FairQueue()
        q.offer(_req("a"), 0.0)
        assert q.depth_of("a") == 1
        assert q.depth_of("ghost") == 0
        assert set(q.tenants()) == {"a"}


class TestValidation:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="depth"):
            FairQueue(depth=0)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError, match="weights"):
            FairQueue(weights={"a": 0.0})
