"""Trace round-trip: record a live gateway run, replay it.

The recorder must dump a run's request arrivals and observed
per-worker slowdowns into exactly the ``TraceArrivals`` /
``TraceLatency`` format the serving and runtime layers replay — and
the replay must reproduce the recorded schedule.
"""

import json

import numpy as np
import pytest

from repro.api import Session
from repro.experiments.common import (
    SERVING_SCALE,
    ExperimentConfig,
    make_serving_workload,
    serving_config,
)
from repro.runtime.latency import DeterministicLatency, TraceLatency
from repro.serve import (
    Gateway,
    GatewayConfig,
    GatewayRecorder,
    OpenLoopSource,
    RecordedTrace,
    TraceArrivals,
    WorkloadGenerator,
)


def _run_gateway(n_requests=60):
    cfg = ExperimentConfig()
    session_cfg = serving_config(cfg)
    with Session.create(session_cfg) as sess:
        x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
        sess.load(x)
        generator, requests = make_serving_workload(
            sess.field, SERVING_SCALE, n_requests=n_requests
        )
        gateway = Gateway(
            sess,
            OpenLoopSource(requests),
            GatewayConfig(tenant_weights=generator.tenant_weights),
        )
        report = gateway.run()
        stats = sess.stats
    return report, stats, requests, generator


class TestRecorderRoundTrip:
    def test_recorded_arrivals_replay_exactly(self):
        report, stats, requests, _ = _run_gateway()
        trace = GatewayRecorder().capture(report, stats)

        original = sorted(r.arrival for r in requests)
        assert len(trace.arrival_gaps) == len(original)
        np.testing.assert_allclose(trace.replay_arrivals(), original, rtol=1e-9)

        # through the actual replay classes: TraceArrivals regenerates
        # the same interarrival schedule, independent of the rng
        process = trace.arrival_process()
        assert isinstance(process, TraceArrivals)
        rng = np.random.default_rng(123)
        t, replayed = 0.0, []
        for _ in original:
            t += process.interarrival(t, rng)
            replayed.append(t)
        np.testing.assert_allclose(replayed, original, rtol=1e-9)

    def test_recorded_run_replays_through_a_fresh_gateway(self):
        """The full loop: record a run, feed the recorded arrival
        process to a new WorkloadGenerator, serve the replayed trace —
        every request terminates."""
        report, stats, requests, generator = _run_gateway(n_requests=40)
        trace = GatewayRecorder().capture(report, stats)

        cfg = ExperimentConfig()
        session_cfg = serving_config(cfg, seed_offset=1)
        with Session.create(session_cfg) as sess:
            x = sess.field.random(SERVING_SCALE, np.random.default_rng(0))
            sess.load(x)
            replay_gen = WorkloadGenerator(
                sess.field,
                SERVING_SCALE,
                tenants=generator.tenants,
                arrivals=trace.arrival_process(),
                seed=99,
            )
            replayed = replay_gen.generate(len(requests))
            np.testing.assert_allclose(
                [r.arrival for r in replayed],
                sorted(r.arrival for r in requests),
                rtol=1e-9,
            )
            gateway = Gateway(
                sess,
                OpenLoopSource(replayed),
                GatewayConfig(tenant_weights=replay_gen.tenant_weights),
            )
            replay_report = gateway.run()
        assert replay_report.total == len(requests)
        assert len(replay_report.served) + replay_report.shed == len(requests)

    def test_worker_slowdowns_become_latency_profiles(self):
        report, stats, _, _ = _run_gateway()
        trace = GatewayRecorder().capture(report, stats)

        # the serving fleet has a 5x straggler at worker 0: its
        # observed slowdown must dominate the fleet's
        assert trace.worker_slowdowns, "no worker latencies recorded"
        means = {
            wid: float(np.mean(fs)) for wid, fs in trace.worker_slowdowns.items()
        }
        assert means[0] == max(means.values())
        assert means[0] > 2.0

        profiles = trace.latency_profiles(12)
        assert len(profiles) == 12
        assert isinstance(profiles[0], TraceLatency)
        # a recorded profile replays its factors verbatim
        rng = np.random.default_rng(0)
        expected = [f * 0.5 for f in trace.worker_slowdowns[0]]
        got = [profiles[0].sample(0.5, rng) for _ in expected]
        np.testing.assert_allclose(got, expected, rtol=1e-12)
        # unrecorded ids fall back to a deterministic nominal profile
        silent_ids = set(range(12)) - set(trace.worker_slowdowns)
        for wid in silent_ids:
            assert isinstance(profiles[wid], DeterministicLatency)

    def test_json_round_trip(self):
        report, stats, _, _ = _run_gateway(n_requests=20)
        trace = GatewayRecorder().capture(report, stats)
        blob = json.dumps(trace.to_dict())
        back = RecordedTrace.from_dict(json.loads(blob))
        assert back == trace

    def test_pinned_base_interval(self):
        report, stats, _, _ = _run_gateway(n_requests=20)
        trace = GatewayRecorder(base_interval=0.01).capture(report, stats)
        assert trace.base_interval == 0.01
        np.testing.assert_allclose(
            trace.replay_arrivals(),
            sorted(o.arrival for o in report.outcomes),
            rtol=1e-9,
        )
        with pytest.raises(ValueError, match="base_interval"):
            GatewayRecorder(base_interval=0.0)
