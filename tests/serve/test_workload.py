"""Request typing, arrival processes, and the workload generator."""

import math

import numpy as np
import pytest

from repro.ff import DEFAULT_PRIME, PrimeField
from repro.runtime.latency import TraceLatency
from repro.serve import (
    BurstyArrivals,
    ClosedLoopSource,
    DiurnalArrivals,
    OpenLoopSource,
    PoissonArrivals,
    Request,
    TenantSpec,
    TraceArrivals,
    WorkloadGenerator,
)

F = PrimeField(DEFAULT_PRIME)
RNG = np.random.default_rng(0)


def _req(**kw):
    base = dict(
        request_id=0,
        tenant="t",
        family="matvec",
        arrival=0.0,
        operand=F.random(4, np.random.default_rng(1)),
    )
    base.update(kw)
    return Request(**base)


class TestRequest:
    def test_valid_matvec(self):
        r = _req(deadline=1.0)
        assert r.slack(0.25) == 0.75
        assert not r.expired(1.0)
        assert r.expired(1.0 + 1e-9)
        assert r.payload_elements == 4

    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            _req(family="conv2d")

    def test_rejects_deadline_before_arrival(self):
        with pytest.raises(ValueError, match="precedes arrival"):
            _req(arrival=2.0, deadline=1.0)

    def test_rejects_missing_operand(self):
        with pytest.raises(ValueError, match="need an operand"):
            _req(operand=None)

    def test_matmul_needs_both_factors(self):
        with pytest.raises(ValueError, match="operand_b"):
            _req(family="matmul")
        r = _req(
            family="matmul",
            operand=F.random((3, 3), RNG),
            operand_b=F.random((3, 3), RNG),
        )
        assert r.payload_elements == 18

    def test_transpose_is_matvec_only(self):
        with pytest.raises(ValueError, match="transpose"):
            _req(family="gramian", transpose=True)

    def test_no_deadline_never_expires(self):
        r = _req()
        assert r.deadline == math.inf
        assert not r.expired(1e9)


class TestArrivalProcesses:
    def test_poisson_mean_interarrival(self):
        p = PoissonArrivals(rate=100.0)
        rng = np.random.default_rng(3)
        gaps = [p.interarrival(0.0, rng) for _ in range(4000)]
        assert np.mean(gaps) == pytest.approx(1 / 100.0, rel=0.1)

    def test_poisson_seed_reproducible(self):
        p = PoissonArrivals(rate=10.0)
        a = [p.interarrival(0.0, np.random.default_rng(5)) for _ in range(3)]
        b = [p.interarrival(0.0, np.random.default_rng(5)) for _ in range(3)]
        assert a == b

    def test_bursty_is_bimodal(self):
        p = BurstyArrivals(calm_rate=10.0, burst_rate=1000.0, p_burst=0.2, p_calm=0.2)
        rng = np.random.default_rng(7)
        gaps = np.array([p.interarrival(0.0, rng) for _ in range(5000)])
        # overall mean sits strictly between the two pure regimes
        assert 1 / 1000.0 < gaps.mean() < 1 / 10.0
        # and the short-gap cluster exists (bursts happened)
        assert (gaps < 5 / 1000.0).sum() > 100

    def test_diurnal_rate_profile_and_positivity(self):
        p = DiurnalArrivals(base_rate=50.0, amplitude=0.8, period=10.0)
        assert p.rate_at(2.5) == pytest.approx(90.0)  # peak of the sine
        assert p.rate_at(7.5) == pytest.approx(10.0)  # trough
        rng = np.random.default_rng(11)
        gaps = [p.interarrival(float(t), rng) for t in range(200)]
        assert all(g > 0 for g in gaps)

    def test_diurnal_peak_denser_than_trough(self):
        p = DiurnalArrivals(base_rate=50.0, amplitude=0.9, period=100.0)
        rng = np.random.default_rng(13)
        peak = [p.interarrival(25.0, rng) for _ in range(2000)]
        trough = [p.interarrival(75.0, rng) for _ in range(2000)]
        assert np.mean(peak) < np.mean(trough)

    def test_trace_arrivals_replay_and_wrap(self):
        trace = TraceArrivals(TraceLatency([1.0, 2.0, 4.0]), base_interval=0.5)
        rng = np.random.default_rng(0)
        gaps = [trace.interarrival(0.0, rng) for _ in range(5)]
        assert gaps == [0.5, 1.0, 2.0, 0.5, 1.0]  # wraps after 3 samples


class TestTenantSpec:
    def test_family_mix_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            TenantSpec("t", family_mix={"matvec": 0.5})

    def test_rejects_unknown_mix_family(self):
        with pytest.raises(ValueError, match="unknown families"):
            TenantSpec("t", family_mix={"fft": 1.0})

    def test_rejects_negative_mix_probability(self):
        # sums to 1.0, but must still fail at construction — not as an
        # opaque numpy error mid-trace
        with pytest.raises(ValueError, match=">= 0"):
            TenantSpec("t", family_mix={"matvec": 1.5, "gramian": -0.5})

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", weight=0.0)


def _generator(seed=7, **tenant_kw):
    tenants = [
        TenantSpec("a", weight=1.0, deadline_slack=0.5, **tenant_kw),
        TenantSpec("b", weight=3.0),
    ]
    return WorkloadGenerator(
        F, (24, 12), tenants, PoissonArrivals(rate=100.0), seed=seed
    )


class TestWorkloadGenerator:
    def test_generates_sorted_unique_ids(self):
        reqs = _generator().generate(50)
        assert len(reqs) == 50
        assert [r.request_id for r in reqs] == list(range(50))
        arrivals = [r.arrival for r in reqs]
        assert arrivals == sorted(arrivals)

    def test_deterministic_given_seed(self):
        a = _generator(seed=9).generate(20)
        b = _generator(seed=9).generate(20)
        for ra, rb in zip(a, b):
            assert ra.arrival == rb.arrival
            assert ra.tenant == rb.tenant
            assert ra.operand.tobytes() == rb.operand.tobytes()

    def test_weighted_tenant_split(self):
        reqs = _generator().generate(400)
        share_b = sum(1 for r in reqs if r.tenant == "b") / len(reqs)
        assert share_b == pytest.approx(0.75, abs=0.08)

    def test_operand_shapes_per_family(self):
        gen = WorkloadGenerator(
            F,
            (24, 12),
            [
                TenantSpec(
                    "mix",
                    family_mix={"matvec": 0.5, "gramian": 0.3, "matmul": 0.2},
                    transpose_fraction=0.5,
                )
            ],
            PoissonArrivals(rate=10.0),
            seed=3,
            matmul_dim=5,
        )
        reqs = gen.generate(200)
        seen = set()
        for r in reqs:
            seen.add((r.family, r.transpose))
            if r.family == "matvec":
                assert r.operand.shape == ((24,) if r.transpose else (12,))
            elif r.family == "gramian":
                assert r.operand.shape == (12,)
            else:
                assert r.operand.shape == (5, 5)
                assert r.operand_b.shape == (5, 5)
        assert {f for f, _ in seen} == {"matvec", "gramian", "matmul"}
        assert ("matvec", True) in seen and ("matvec", False) in seen

    def test_deadlines_follow_tenant_slack(self):
        reqs = _generator().generate(60)
        for r in reqs:
            if r.tenant == "a":
                assert r.deadline == pytest.approx(r.arrival + 0.5)
            else:
                assert r.deadline == math.inf

    def test_tenant_weights_surface(self):
        assert _generator().tenant_weights == {"a": 1.0, "b": 3.0}


class TestSources:
    def test_open_loop_sorted_and_terminal(self):
        reqs = _generator().generate(10)
        src = OpenLoopSource(reversed(reqs))
        init = src.initial()
        assert [r.request_id for r in init] == list(range(10))
        assert src.on_complete(init[0], 1.0) is None

    def test_closed_loop_issues_next_after_completion(self):
        gen = _generator()
        src = ClosedLoopSource(gen, n_clients=3, think_time=0.01, requests_per_client=2)
        init = src.initial()
        assert len(init) == 3
        follow = src.on_complete(init[0], now=5.0)
        assert follow is not None
        assert follow.arrival > 5.0
        # budget exhausted for that client
        assert src.on_complete(follow, now=6.0) is None

    def test_closed_loop_pins_clients_to_tenants(self):
        gen = _generator()
        src = ClosedLoopSource(gen, n_clients=2, think_time=0.01, requests_per_client=3)
        init = src.initial()
        tenants = {src._client_of[r.request_id]: r.tenant for r in init}
        for req in init:
            nxt = src.on_complete(req, now=1.0)
            assert nxt.tenant == tenants[src._client_of[nxt.request_id]]
