"""Batch policies, the policy registry, and the micro-batcher."""

import math

import numpy as np
import pytest

from repro.ff import DEFAULT_PRIME, PrimeField
from repro.serve import (
    CountPolicy,
    DeadlinePolicy,
    HybridPolicy,
    MicroBatcher,
    PendingBatch,
    Request,
    batch_policy_names,
    make_batch_policy,
    register_batch_policy,
)

F = PrimeField(DEFAULT_PRIME)
_OPERAND = F.random(4, np.random.default_rng(0))
_NEXT_ID = iter(range(10_000))


def _req(deadline=math.inf, arrival=0.0):
    return Request(
        request_id=next(_NEXT_ID),
        tenant="t",
        family="matvec",
        arrival=arrival,
        deadline=deadline,
        operand=_OPERAND,
    )


def _batch(*deadlines, opened_at=0.0):
    b = PendingBatch(family="fwd", opened_at=opened_at)
    for d in deadlines:
        b.add(_req(deadline=d))
    return b


def _flat_estimator(seconds):
    return lambda family, width: seconds


class TestPolicies:
    def test_count_due_only_when_full(self):
        p = CountPolicy(window=3)
        est = _flat_estimator(0.01)
        assert p.due_at(_batch(math.inf, math.inf), est) == math.inf
        assert p.due_at(_batch(math.inf, math.inf, math.inf), est) == -math.inf

    def test_count_window_one_is_serial(self):
        p = CountPolicy(window=1)
        assert p.due_at(_batch(math.inf), _flat_estimator(0.01)) == -math.inf

    def test_deadline_due_tracks_earliest_deadline_and_estimate(self):
        p = DeadlinePolicy(safety=2.0)
        b = _batch(5.0, 3.0, 9.0)
        assert b.earliest_deadline == 3.0
        assert p.due_at(b, _flat_estimator(0.5)) == pytest.approx(3.0 - 2.0 * 0.5)

    def test_deadline_ignores_slo_free_batches(self):
        p = DeadlinePolicy()
        assert p.due_at(_batch(math.inf, math.inf), _flat_estimator(0.5)) == math.inf

    def test_hybrid_takes_the_earliest_trigger(self):
        est = _flat_estimator(0.5)
        p = HybridPolicy(window=2, safety=2.0, linger=math.inf)
        assert p.due_at(_batch(8.0), est) == pytest.approx(7.0)  # deadline wins
        assert p.due_at(_batch(8.0, 8.0), est) == -math.inf  # count wins

    def test_hybrid_linger_caps_waiting(self):
        p = HybridPolicy(window=100, safety=1.0, linger=0.25)
        b = _batch(math.inf, opened_at=2.0)
        assert p.due_at(b, _flat_estimator(0.01)) == pytest.approx(2.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountPolicy(window=0)
        with pytest.raises(ValueError):
            DeadlinePolicy(safety=0.0)
        with pytest.raises(ValueError):
            HybridPolicy(linger=0.0)
        # hybrid must reject bad sub-policy knobs at construction, not
        # on the first due_at call mid-event-loop
        with pytest.raises(ValueError):
            HybridPolicy(window=0)
        with pytest.raises(ValueError):
            HybridPolicy(safety=-1.0)


class TestRegistry:
    def test_builtins_present(self):
        assert {"count", "deadline", "hybrid"} <= set(batch_policy_names())

    def test_make_by_name_with_options(self):
        p = make_batch_policy("count", window=5)
        assert isinstance(p, CountPolicy) and p.window == 5

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="registered"):
            make_batch_policy("nope")

    def test_duplicate_requires_overwrite(self):
        name = "test-policy-dup"
        register_batch_policy(name, CountPolicy)
        with pytest.raises(ValueError, match="already registered"):
            register_batch_policy(name, CountPolicy)
        register_batch_policy(name, DeadlinePolicy, overwrite=True)
        assert isinstance(make_batch_policy(name), DeadlinePolicy)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_batch_policy("", CountPolicy)


class TestMicroBatcher:
    def _batcher(self, policy=None, est=0.01, max_batch=32):
        return MicroBatcher(
            policy or HybridPolicy(window=4, linger=math.inf),
            _flat_estimator(est),
            max_batch=max_batch,
        )

    def test_accumulates_per_family(self):
        mb = self._batcher()
        mb.add("fwd", _req(), 0.0)
        mb.add("bwd", _req(), 0.0)
        mb.add("fwd", _req(), 0.0)
        assert mb.pending == 3
        assert mb.open_families() == ("bwd", "fwd")

    def test_take_due_pops_only_due_batches(self):
        mb = self._batcher()
        for _ in range(4):
            mb.add("fwd", _req(), 0.0)  # full window -> due
        mb.add("bwd", _req(), 0.0)  # no deadline, not full -> not due
        due = mb.take_due(now=0.0)
        assert [b.family for b in due] == ["fwd"]
        assert mb.pending == 1

    def test_next_due_is_event_timer(self):
        mb = self._batcher(policy=DeadlinePolicy(safety=1.0), est=0.1)
        assert mb.next_due() == math.inf
        mb.add("fwd", _req(deadline=2.0), 0.0)
        assert mb.next_due() == pytest.approx(1.9)
        assert not mb.due_now("fwd", 1.0)
        assert mb.due_now("fwd", 1.95)

    def test_max_batch_overrides_policy(self):
        mb = self._batcher(policy=CountPolicy(window=100), max_batch=2)
        mb.add("fwd", _req(), 0.0)
        assert not mb.due_now("fwd", 0.0)
        mb.add("fwd", _req(), 0.0)
        assert mb.due_now("fwd", 0.0)

    def test_drain_empties_everything(self):
        mb = self._batcher()
        mb.add("fwd", _req(), 0.0)
        mb.add("gram", _req(), 0.0)
        batches = mb.drain()
        assert sorted(b.family for b in batches) == ["fwd", "gram"]
        assert mb.pending == 0
        assert mb.drain() == []

    def test_pop_family(self):
        mb = self._batcher()
        mb.add("fwd", _req(), 0.5)
        batch = mb.pop_family("fwd")
        assert batch.width == 1 and batch.opened_at == 0.5
        assert mb.pop_family("fwd") is None

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            self._batcher(max_batch=0)
