"""T-privacy tests (paper Sec. III-B guarantee 3 and Theorem 1).

Two layers of evidence:

1. **Algebraic**: every ``T x T`` submatrix of the bottom ``T x N`` part
   of the encoding matrix is invertible (Lemma 2 of the LCC paper, used
   verbatim in AVCC's Theorem 1 proof). That makes the random mask
   ``W·U_bottom`` uniform, hence shares of any T colluders are uniform.
2. **Statistical**: empirical share distributions at T colluding workers
   are indistinguishable between two very different datasets
   (chi-square), and a single worker's share is marginally uniform.
"""

from itertools import combinations

import numpy as np
import pytest
from scipy import stats

from repro.coding import LagrangeCode
from repro.ff import PrimeField, gauss_rank

SMALL = PrimeField(97)
F = PrimeField(7919)


class TestAlgebraicPrivacy:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_bottom_submatrices_invertible(self, t):
        code = LagrangeCode(F, n=9, k=3, t=t)
        u = code.encoding_matrix()
        bottom = u[3:, :]  # (t, n)
        assert bottom.shape == (t, 9)
        for cols in combinations(range(9), t):
            assert gauss_rank(F, bottom[:, list(cols)]) == t

    def test_t0_has_no_padding_rows(self):
        code = LagrangeCode(F, n=6, k=3, t=0)
        assert code.encoding_matrix().shape == (3, 6)


class TestStatisticalPrivacy:
    def test_single_worker_share_marginally_uniform(self, rng):
        """With t=1, one worker's share entry is uniform over F_q
        regardless of the data."""
        code = LagrangeCode(SMALL, n=5, k=2, t=1)
        data = SMALL.asarray([[7], [13]])  # fixed, highly non-uniform
        samples = np.array(
            [int(code.encode(data, rng)[3, 0]) for _ in range(20000)]
        )
        counts = np.bincount(samples, minlength=97)
        chi2 = ((counts - counts.mean()) ** 2 / counts.mean()).sum()
        # df = 96; 99.9th percentile ~ 147. Reject only on extreme values.
        assert chi2 < stats.chi2.ppf(0.999, df=96)

    def test_colluding_pair_distribution_independent_of_data(self, rng):
        """t=2: the joint share distribution at two colluding workers is
        the same for two different datasets (two-sample chi-square on a
        hashed projection of the pair)."""
        code = LagrangeCode(SMALL, n=7, k=2, t=2)
        data_a = SMALL.asarray([[1], [2]])
        data_b = SMALL.asarray([[90], [45]])
        colluders = [0, 4]

        def sample(data, n_iter):
            out = np.empty(n_iter, dtype=np.int64)
            for i in range(n_iter):
                sh = code.encode(data, rng)
                out[i] = (int(sh[colluders[0], 0]) * 97 + int(sh[colluders[1], 0])) % 101
            return out

        sa, sb = sample(data_a, 8000), sample(data_b, 8000)
        table = np.stack([np.bincount(sa, minlength=101), np.bincount(sb, minlength=101)])
        _, p, _, _ = stats.chi2_contingency(table)
        assert p > 1e-4  # indistinguishable

    def test_without_padding_shares_leak(self, rng):
        """Negative control: with t=0 the shares are a deterministic
        function of the data — colluders trivially distinguish datasets."""
        code = LagrangeCode(SMALL, n=5, k=2, t=0)
        data_a = SMALL.asarray([[1], [2]])
        data_b = SMALL.asarray([[90], [45]])
        assert not np.array_equal(code.encode(data_a), code.encode(data_b))
        # and they are deterministic: repeated encodes identical
        np.testing.assert_array_equal(code.encode(data_a), code.encode(data_a))

    def test_decode_unaffected_by_padding(self, rng):
        """Privacy padding must not change the decoded computation."""
        code = LagrangeCode(F, n=9, k=3, t=2)
        blocks = F.random((3, 4), rng)
        shares = code.encode(blocks, rng)
        need = code.recovery_threshold()
        got = code.decode(np.arange(need), shares[:need])
        np.testing.assert_array_equal(got, blocks)
