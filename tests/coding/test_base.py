"""Tests for block partition helpers."""

import numpy as np
import pytest

from repro.coding import partition_rows, stack_blocks, unpartition_rows


class TestPartition:
    def test_roundtrip(self, rng):
        x = rng.integers(0, 100, size=(12, 5))
        blocks = partition_rows(x, 4)
        assert blocks.shape == (4, 3, 5)
        np.testing.assert_array_equal(unpartition_rows(blocks), x)

    def test_1d(self, rng):
        v = rng.integers(0, 10, size=10)
        blocks = partition_rows(v, 5)
        assert blocks.shape == (5, 2)
        np.testing.assert_array_equal(unpartition_rows(blocks), v)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="equal blocks"):
            partition_rows(np.zeros((10, 2)), 3)

    def test_k_zero_raises(self):
        with pytest.raises(ValueError):
            partition_rows(np.zeros((10, 2)), 0)

    def test_scalar_raises(self):
        with pytest.raises(ValueError):
            partition_rows(np.int64(3), 1)

    def test_unpartition_needs_2d(self):
        with pytest.raises(ValueError):
            unpartition_rows(np.zeros(3))


class TestStackBlocks:
    def test_stacks(self):
        out = stack_blocks([np.zeros((2, 2)), np.ones((2, 2))])
        assert out.shape == (2, 2, 2)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no blocks"):
            stack_blocks([])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="block 1"):
            stack_blocks([np.zeros((2, 2)), np.zeros((3, 2))])
