"""Tests for polynomial codes (coded matrix-matrix multiplication)."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import PolynomialCode, partition_rows
from repro.ff import PrimeField, ff_matmul

F = PrimeField(7919)


def _setup(rng, m=6, n=4, r=6, p=2, q=3, workers=8):
    a = F.random((m, n), rng)
    b = F.random((n, r), rng)
    code = PolynomialCode(F, workers, p, q)
    a_blocks = partition_rows(a, p)
    b_blocks = partition_rows(np.ascontiguousarray(b.T), q).transpose(0, 2, 1)
    return a, b, code, code.encode_a(a_blocks), code.encode_b(b_blocks)


class TestConstruction:
    def test_threshold(self):
        assert PolynomialCode(F, 10, 2, 3).recovery_threshold == 6

    def test_too_few_workers(self):
        with pytest.raises(ValueError, match="p\\*q"):
            PolynomialCode(F, 5, 2, 3)

    def test_invalid_pq(self):
        with pytest.raises(ValueError):
            PolynomialCode(F, 4, 0, 2)

    def test_duplicate_points(self):
        with pytest.raises(ValueError, match="distinct"):
            PolynomialCode(F, 3, 1, 2, points=np.array([1, 1, 2]))

    def test_block_count_validation(self, rng):
        code = PolynomialCode(F, 8, 2, 3)
        with pytest.raises(ValueError, match="A-blocks"):
            code.encode_a(F.random((3, 2, 4), rng))
        with pytest.raises(ValueError, match="B-blocks"):
            code.encode_b(F.random((2, 4, 2), rng))


class TestEncoding:
    def test_share_is_polynomial_evaluation(self, rng):
        """A~_i must equal sum_j A_j x_i^j elementwise."""
        a, b, code, a_shares, _ = _setup(rng)
        a_blocks = partition_rows(a, 2)
        for i in range(code.n):
            x = int(code.points[i])
            want = (a_blocks[0] + a_blocks[1] * x) % F.q
            np.testing.assert_array_equal(a_shares[i], want)

    def test_b_share_stride(self, rng):
        a, b, code, _, b_shares = _setup(rng)
        b_blocks = partition_rows(np.ascontiguousarray(b.T), 3).transpose(0, 2, 1)
        for i in range(code.n):
            x = int(code.points[i])
            want = (
                b_blocks[0]
                + b_blocks[1] * pow(x, 2, F.q)
                + b_blocks[2] * pow(x, 4, F.q)
            ) % F.q
            np.testing.assert_array_equal(b_shares[i], want)


class TestDecode:
    def test_full_product_roundtrip(self, rng):
        a, b, code, a_shares, b_shares = _setup(rng)
        products = np.stack(
            [ff_matmul(F, a_shares[i], b_shares[i]) for i in range(code.n)]
        )
        idx = np.arange(code.recovery_threshold)
        blocks = code.decode(idx, products[idx])
        got = PolynomialCode.assemble(blocks)
        np.testing.assert_array_equal(got, ff_matmul(F, a, b))

    def test_every_pq_subset_decodes(self, rng):
        a, b, code, a_shares, b_shares = _setup(rng, workers=8)
        products = np.stack(
            [ff_matmul(F, a_shares[i], b_shares[i]) for i in range(code.n)]
        )
        want = ff_matmul(F, a, b)
        for subset in combinations(range(8), 6):
            idx = np.array(subset)
            got = PolynomialCode.assemble(code.decode(idx, products[idx]))
            np.testing.assert_array_equal(got, want)

    def test_block_level_products(self, rng):
        """decode()[j, k] must be exactly A_j @ B_k."""
        a, b, code, a_shares, b_shares = _setup(rng)
        a_blocks = partition_rows(a, 2)
        b_blocks = partition_rows(np.ascontiguousarray(b.T), 3).transpose(0, 2, 1)
        products = np.stack(
            [ff_matmul(F, a_shares[i], b_shares[i]) for i in range(code.n)]
        )
        blocks = code.decode(np.arange(6), products[:6])
        for j in range(2):
            for k in range(3):
                np.testing.assert_array_equal(
                    blocks[j, k], ff_matmul(F, a_blocks[j], b_blocks[k])
                )

    def test_decode_validations(self, rng):
        _, _, code, a_shares, b_shares = _setup(rng)
        products = np.stack(
            [ff_matmul(F, a_shares[i], b_shares[i]) for i in range(code.n)]
        )
        with pytest.raises(ValueError, match="need 6"):
            code.decode(np.arange(5), products[:5])
        with pytest.raises(ValueError, match="duplicate"):
            code.decode(np.array([0, 0, 1, 2, 3, 4]), products[[0, 0, 1, 2, 3, 4]])
        with pytest.raises(ValueError, match="out of range"):
            code.decode(np.array([0, 1, 2, 3, 4, 99]), products[:6])

    def test_assemble_validation(self):
        with pytest.raises(ValueError):
            PolynomialCode.assemble(np.zeros((2, 3, 4)))

    @given(
        p=st.integers(1, 3),
        q=st.integers(1, 3),
        extra=st.integers(0, 3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, p, q, extra, seed):
        r = np.random.default_rng(seed)
        m, n_inner, rcols = 2 * p, 3, 2 * q
        a = F.random((m, n_inner), r)
        b = F.random((n_inner, rcols), r)
        code = PolynomialCode(F, p * q + extra, p, q)
        a_sh = code.encode_a(partition_rows(a, p))
        b_sh = code.encode_b(
            partition_rows(np.ascontiguousarray(b.T), q).transpose(0, 2, 1)
        )
        products = np.stack(
            [ff_matmul(F, a_sh[i], b_sh[i]) for i in range(code.n)]
        )
        idx = r.permutation(code.n)[: p * q]
        got = PolynomialCode.assemble(code.decode(idx, products[idx]))
        np.testing.assert_array_equal(got, ff_matmul(F, a, b))
