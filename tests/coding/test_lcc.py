"""Tests for the Lagrange code: roundtrips, systematicity, polynomial
commutation, and error-corrected decoding."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import LagrangeCode, partition_rows
from repro.ff import DecodingError, PrimeField, ff_matvec

F = PrimeField(7919)


class TestConstruction:
    def test_defaults_systematic_when_t0(self):
        code = LagrangeCode(F, n=6, k=3)
        assert code.is_systematic
        np.testing.assert_array_equal(code.beta, code.alpha[:3])

    def test_t_positive_disjoint_points(self):
        code = LagrangeCode(F, n=8, k=3, t=2)
        assert np.intersect1d(code.alpha, code.beta).size == 0
        assert not code.is_systematic

    def test_rejects_overlap_with_t(self):
        with pytest.raises(ValueError, match="disjoint"):
            LagrangeCode(F, 5, 2, 1, alpha=np.arange(1, 6), beta=np.array([5, 6, 7]))

    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            LagrangeCode(F, n=3, k=3, t=1)

    def test_rejects_duplicate_points(self):
        with pytest.raises(ValueError):
            LagrangeCode(F, 4, 2, alpha=np.array([1, 1, 2, 3]))

    def test_recovery_threshold(self):
        code = LagrangeCode(F, n=12, k=9)
        assert code.recovery_threshold() == 9
        assert code.recovery_threshold(deg_f=2) == 17
        code_t = LagrangeCode(F, n=12, k=3, t=2)
        assert code_t.recovery_threshold(2) == (3 + 2 - 1) * 2 + 1

    def test_encoding_matrix_systematic_prefix(self):
        code = LagrangeCode(F, n=6, k=3)
        u = code.encoding_matrix()
        np.testing.assert_array_equal(u[:, :3], np.eye(3, dtype=np.int64))


class TestEncodeDecode:
    def test_roundtrip_identity_f(self, rng):
        code = LagrangeCode(F, n=7, k=4)
        blocks = F.random((4, 3, 5), rng)
        shares = code.encode(blocks)
        got = code.decode(np.arange(4), shares[:4])
        np.testing.assert_array_equal(got, blocks)

    def test_roundtrip_every_k_subset(self, rng):
        n, k = 7, 3
        code = LagrangeCode(F, n=n, k=k)
        blocks = F.random((k, 2, 2), rng)
        shares = code.encode(blocks)
        for subset in combinations(range(n), k):
            idx = np.array(subset)
            np.testing.assert_array_equal(code.decode(idx, shares[idx]), blocks)

    def test_extra_shares_ignored(self, rng):
        code = LagrangeCode(F, n=8, k=3)
        blocks = F.random((3, 4), rng)
        shares = code.encode(blocks)
        np.testing.assert_array_equal(
            code.decode(np.arange(8), shares), blocks
        )

    def test_linear_f_commutes(self, rng):
        """decode(f(shares)) == f(blocks) for linear f (matvec)."""
        m, d, k, n = 12, 6, 4, 7
        x = F.random((m, d), rng)
        w = F.random(d, rng)
        blocks = partition_rows(x, k)
        code = LagrangeCode(F, n=n, k=k)
        shares = code.encode(blocks)
        results = np.stack([ff_matvec(F, s, w) for s in shares])  # workers
        idx = np.array([6, 2, 0, 5])  # any k, any order
        got = code.decode(idx, results[idx])
        want = np.stack([ff_matvec(F, b, w) for b in blocks])
        np.testing.assert_array_equal(got, want)

    def test_degree2_f_elementwise_square(self, rng):
        """Workers compute f(X) = X*X elementwise (deg 2): need 2(k+t-1)+1
        evaluations — the LCC degree accounting of Eq. (14)."""
        k, t, n = 3, 1, 12
        code = LagrangeCode(F, n=n, k=k, t=t)
        blocks = F.random((k, 2, 3), rng)
        shares = code.encode(blocks, rng)
        results = shares * shares % F.q
        need = code.recovery_threshold(deg_f=2)  # 2*3+1 = 7
        assert need == 7
        got = code.decode(np.arange(need), results[:need], deg_f=2)
        np.testing.assert_array_equal(got, blocks * blocks % F.q)

    def test_degree2_insufficient_shares_garbage(self, rng):
        """With only k+t shares a degree-2 result cannot decode — the
        code must refuse rather than silently return wrong blocks."""
        code = LagrangeCode(F, n=12, k=3, t=1)
        blocks = F.random((3, 2), rng)
        shares = code.encode(blocks, rng)
        results = shares * shares % F.q
        with pytest.raises(ValueError, match="need 7"):
            code.decode(np.arange(4), results[:4], deg_f=2)

    def test_decode_validations(self, rng):
        code = LagrangeCode(F, n=6, k=3)
        shares = code.encode(F.random((3, 2), rng))
        with pytest.raises(ValueError, match="duplicate"):
            code.decode(np.array([0, 0, 1]), shares[[0, 0, 1]])
        with pytest.raises(ValueError, match="out of range"):
            code.decode(np.array([0, 1, 9]), shares[[0, 1, 2]])
        with pytest.raises(ValueError, match="mismatch"):
            code.decode(np.array([0, 1]), shares[[0, 1, 2]])

    def test_encode_shape_validation(self, rng):
        code = LagrangeCode(F, n=6, k=3)
        with pytest.raises(ValueError, match="stacked blocks"):
            code.encode(F.random((4, 2), rng))

    def test_t_requires_rng(self, rng):
        code = LagrangeCode(F, n=8, k=3, t=2)
        with pytest.raises(ValueError, match="rng"):
            code.encode(F.random((3, 2), rng))

    @given(
        k=st.integers(1, 5),
        extra=st.integers(0, 4),
        t=st.integers(0, 2),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, k, extra, t, seed):
        r = np.random.default_rng(seed)
        n = k + t + extra
        code = LagrangeCode(F, n=n, k=k, t=t)
        blocks = F.random((k, 3), r)
        shares = code.encode(blocks, r)
        need = code.recovery_threshold()
        idx = r.permutation(n)[:need]
        np.testing.assert_array_equal(code.decode(idx, shares[idx]), blocks)


class TestDecodeCorrected:
    def test_corrects_byzantine_shares(self, rng):
        """k=4, n=12 linear: slack 8 -> corrects up to 4 errors."""
        code = LagrangeCode(F, n=12, k=4)
        blocks = F.random((4, 5), rng)
        shares = code.encode(blocks)
        shares[2] = F.random(5, rng)
        shares[9] = F.random(5, rng)
        got, errs = code.decode_corrected(np.arange(12), shares)
        np.testing.assert_array_equal(got, blocks)
        assert set(errs.tolist()) == {2, 9}

    def test_max_errors_budget_respected(self, rng):
        """LCC designed for M=1 cannot reliably fix 2 corruptions."""
        code = LagrangeCode(F, n=12, k=9)
        blocks = F.random((9, 4), rng)
        shares = code.encode(blocks)
        bad = [1, 5]
        for b in bad:
            shares[b] = F.random(4, rng)
        # 11 of 12 received (S=1 straggler), budget M=1: must fail or
        # produce a decode inconsistent with the true blocks.
        received = np.arange(11)
        try:
            got, errs = code.decode_corrected(received, shares[:11], max_errors=1)
        except DecodingError:
            return
        assert not np.array_equal(got, blocks)

    def test_exact_capacity(self, rng):
        """11 received, k=9 => slack 2 => exactly 1 error correctable."""
        code = LagrangeCode(F, n=12, k=9)
        blocks = F.random((9, 3), rng)
        shares = code.encode(blocks)
        shares[4] = F.random(3, rng)
        got, errs = code.decode_corrected(np.arange(11), shares[:11])
        np.testing.assert_array_equal(got, blocks)
        assert errs.tolist() == [4]
