"""Tests for MDS codes, including the paper's Fig. 1 worked example."""

from itertools import combinations

import numpy as np
import pytest

from repro.coding import MDSCode, partition_rows, unpartition_rows
from repro.ff import PrimeField, ff_matvec

F = PrimeField(7919)


class TestFig1Example:
    """Fig. 1: X split into X1, X2; shares X1, X2, X1+X2; the master
    recovers X1·b from (X1+X2)·b − X2·b when worker 1 straggles."""

    def test_shares(self, rng):
        x = F.random((4, 3), rng)
        x1, x2 = partition_rows(x, 2)
        code = MDSCode.fig1_code(F)
        shares = code.encode(np.stack([x1, x2]))
        np.testing.assert_array_equal(shares[0], x1)
        np.testing.assert_array_equal(shares[1], x2)
        np.testing.assert_array_equal(shares[2], (x1 + x2) % F.q)

    def test_straggler_recovery(self, rng):
        x = F.random((4, 3), rng)
        b = F.random(3, rng)
        blocks = partition_rows(x, 2)
        code = MDSCode.fig1_code(F)
        shares = code.encode(blocks)
        # worker 1 (holding X1) straggles; workers 2, 3 respond
        results = np.stack([ff_matvec(F, s, b) for s in shares])
        got_blocks = code.decode(np.array([1, 2]), results[[1, 2]])
        want = ff_matvec(F, x, b)
        np.testing.assert_array_equal(unpartition_rows(got_blocks), want)


class TestSystematic:
    def test_identity_prefix(self, rng):
        code = MDSCode.systematic(F, 6, 4)
        assert code.is_systematic
        blocks = F.random((4, 2, 3), rng)
        shares = code.encode(blocks)
        np.testing.assert_array_equal(shares[:4], blocks)

    def test_any_k_subset_decodes(self, rng):
        n, k = 6, 3
        code = MDSCode.systematic(F, n, k)
        blocks = F.random((k, 2), rng)
        shares = code.encode(blocks)
        for subset in combinations(range(n), k):
            idx = np.array(subset)
            np.testing.assert_array_equal(code.decode(idx, shares[idx]), blocks)

    def test_generator_every_submatrix_invertible(self):
        from repro.ff import gauss_rank

        code = MDSCode.systematic(F, 7, 3)
        g = code.generator_matrix()
        for cols in combinations(range(7), 3):
            assert gauss_rank(F, g[:, list(cols)]) == 3


class TestValidation:
    def test_rejects_non_mds_generator(self):
        # two identical columns -> a K-subset is singular
        bad = np.array([[1, 1, 0], [2, 2, 1]])
        with pytest.raises(ValueError, match="not MDS"):
            MDSCode.from_generator(F, bad)

    def test_rejects_deg2(self, rng):
        code = MDSCode.systematic(F, 4, 2)
        with pytest.raises(ValueError, match="linear"):
            code.recovery_threshold(deg_f=2)
        shares = code.encode(F.random((2, 2), rng))
        with pytest.raises(ValueError, match="linear"):
            code.decode(np.array([0, 1]), shares[:2], deg_f=2)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MDSCode.systematic(F, 2, 3)
        with pytest.raises(ValueError, match="generator must be"):
            MDSCode(F, 3, 2, generator=np.eye(3, dtype=np.int64))

    def test_decode_checks(self, rng):
        code = MDSCode.systematic(F, 5, 2)
        shares = code.encode(F.random((2, 3), rng))
        with pytest.raises(ValueError, match="duplicate"):
            code.decode(np.array([1, 1]), shares[[1, 1]])
        with pytest.raises(ValueError, match="need 2"):
            code.decode(np.array([1]), shares[[1]])


class TestAgainstLagrange:
    def test_mds_equals_lagrange_special_case(self, rng):
        """The generator of the default MDS code equals the Lagrange
        encoding matrix with t=0 — the paper's 'special case' claim."""
        from repro.coding import LagrangeCode

        mds = MDSCode.systematic(F, 8, 5)
        lcc = LagrangeCode(F, 8, 5, 0)
        np.testing.assert_array_equal(mds.generator_matrix(), lcc.encoding_matrix())

        blocks = F.random((5, 3), rng)
        np.testing.assert_array_equal(mds.encode(blocks), lcc.encode(blocks))
