"""Tests pinning the paper's feasibility equations (Eq. 1 and Eq. 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import SchemeParams


class TestPaperNumbers:
    def test_lcc_experimental_config(self):
        """Sec. V: (N,K,S,M) = (12, 9, 1, 1) is exactly LCC-feasible."""
        p = SchemeParams(n=12, k=9, s=1, m=1, t=0, deg_f=1)
        assert p.lcc_required_n == 12
        assert p.lcc_feasible
        p.validate_for("lcc")

    def test_avcc_experimental_configs(self):
        """Sec. V: AVCC runs (12, 9, S+M=3): both (S=1,M=2) and (S=2,M=1)."""
        for s, m in [(1, 2), (2, 1), (3, 0), (0, 3)]:
            p = SchemeParams(n=12, k=9, s=s, m=m)
            assert p.avcc_required_n == (9 - 1) * 1 + s + m + 1
            assert p.avcc_feasible

    def test_lcc_cannot_do_two_byzantine_at_n12_k9(self):
        """Sec. VI: 'LCC is able to handle only one Byzantine node with
        N=12, K=9 and S=1 by design'; two Byzantine needs N=14 or K=7."""
        assert not SchemeParams(n=12, k=9, s=1, m=2).lcc_feasible
        assert SchemeParams(n=14, k=9, s=1, m=2).lcc_feasible
        assert SchemeParams(n=12, k=7, s=1, m=2).lcc_feasible

    def test_byzantine_cost_intro_example(self):
        """Intro: 'tolerating two Byzantine workers requires an additional
        four workers while tolerating two stragglers only requires two.'"""
        base = SchemeParams(n=1, k=5).lcc_required_n
        two_byz = SchemeParams(n=1, k=5, m=2).lcc_required_n
        two_str = SchemeParams(n=1, k=5, s=2).lcc_required_n
        assert two_byz - base == 4
        assert two_str - base == 2
        # AVCC: both cost the same (Eq. 2)
        assert SchemeParams(n=1, k=5, m=2).avcc_required_n - SchemeParams(n=1, k=5).avcc_required_n == 2
        assert SchemeParams(n=1, k=5, s=2).avcc_required_n - SchemeParams(n=1, k=5).avcc_required_n == 2

    def test_recovery_threshold_examples(self):
        assert SchemeParams(n=12, k=9).recovery_threshold == 9  # MDS: K results
        assert SchemeParams(n=12, k=9, deg_f=2).recovery_threshold == 17
        assert SchemeParams(n=20, k=5, t=2, deg_f=2).recovery_threshold == 13


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            SchemeParams(n=0, k=1)
        with pytest.raises(ValueError):
            SchemeParams(n=5, k=0)
        with pytest.raises(ValueError):
            SchemeParams(n=5, k=2, s=-1)
        with pytest.raises(ValueError):
            SchemeParams(n=5, k=2, deg_f=0)

    def test_validate_raises_with_equation_reference(self):
        with pytest.raises(ValueError, match="Eq. 2"):
            SchemeParams(n=10, k=9, s=1, m=1).validate_for("avcc")
        with pytest.raises(ValueError, match="Eq. 1"):
            SchemeParams(n=12, k=9, s=1, m=2).validate_for("lcc")
        with pytest.raises(ValueError, match="unknown framework"):
            SchemeParams(n=12, k=9).validate_for("mds")

    def test_with_(self):
        p = SchemeParams(n=12, k=9, s=1, m=1)
        p2 = p.with_(n=11, k=8)
        assert (p2.n, p2.k, p2.s, p2.m) == (11, 8, 1, 1)
        assert (p.n, p.k) == (12, 9)  # original untouched


class TestSlack:
    def test_slack_values(self):
        p = SchemeParams(n=12, k=9, s=1, m=1)
        assert p.avcc_slack() == 12 - 11 == 1
        assert p.lcc_slack() == 0

    @given(
        k=st.integers(1, 10),
        s=st.integers(0, 4),
        m=st.integers(0, 4),
        t=st.integers(0, 3),
        deg=st.integers(1, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_avcc_saves_m_workers(self, k, s, m, t, deg):
        """Eq. (1) - Eq. (2) = M, always."""
        p = SchemeParams(n=1000, k=k, s=s, m=m, t=t, deg_f=deg)
        assert p.lcc_required_n - p.avcc_required_n == m
        assert p.byzantine_worker_cost_lcc == 2
        assert p.byzantine_worker_cost_avcc == 1


class TestBoundaryEquality:
    """Eq. (1)/(2) at exact feasibility: N == required_n must pass,
    N == required_n - 1 must fail — the bounds are tight."""

    def test_avcc_exactly_feasible(self):
        # (K+T-1)deg_f + S + M + 1 = 8 + 2 + 1 + 1 = 12
        p = SchemeParams(n=12, k=9, s=2, m=1)
        assert p.avcc_required_n == 12
        assert p.avcc_feasible
        assert p.avcc_slack() == 0
        p.validate_for("avcc")  # must not raise at equality

    def test_avcc_one_below_boundary(self):
        p = SchemeParams(n=11, k=9, s=2, m=1)
        assert not p.avcc_feasible
        with pytest.raises(ValueError, match="Eq. 2"):
            p.validate_for("avcc")

    def test_lcc_exactly_feasible(self):
        # (K+T-1)deg_f + S + 2M + 1 = 8 + 1 + 2 + 1 = 12
        p = SchemeParams(n=12, k=9, s=1, m=1)
        assert p.lcc_required_n == 12
        assert p.lcc_feasible
        assert p.lcc_slack() == 0
        p.validate_for("lcc")

    def test_lcc_one_below_boundary(self):
        p = SchemeParams(n=11, k=9, s=1, m=1)
        assert not p.lcc_feasible
        with pytest.raises(ValueError, match="Eq. 1"):
            p.validate_for("lcc")

    def test_boundary_with_privacy_padding(self):
        # T enters the bound through (K+T-1)deg_f:
        # (9+1-1)*1 + S + M + 1 = 9 + 1 + 1 + 1 = 12
        p = SchemeParams(n=12, k=9, s=1, m=1, t=1)
        assert p.avcc_required_n == 12
        p.validate_for("avcc")
        with pytest.raises(ValueError, match="Eq. 2"):
            SchemeParams(n=11, k=9, s=1, m=1, t=1).validate_for("avcc")


class TestGramianBounds:
    """deg_f = 2 (the gramian master's workload): thresholds and
    feasibility double the K-dependent term, per Eq. (14)."""

    def test_recovery_threshold_doubles_degree_term(self):
        p1 = SchemeParams(n=20, k=3, deg_f=1)
        p2 = SchemeParams(n=20, k=3, deg_f=2)
        assert p1.recovery_threshold == 3
        assert p2.recovery_threshold == 5  # (3-1)*2 + 1

    def test_gramian_exact_feasibility(self):
        # (K+T-1)*2 + S + M + 1 = 4 + 1 + 1 + 1 = 7
        p = SchemeParams(n=7, k=3, s=1, m=1, deg_f=2)
        assert p.avcc_required_n == 7
        p.validate_for("avcc")
        with pytest.raises(ValueError, match="Eq. 2"):
            SchemeParams(n=6, k=3, s=1, m=1, deg_f=2).validate_for("avcc")

    def test_gramian_lcc_still_pays_double_m(self):
        p = SchemeParams(n=20, k=3, s=1, m=2, deg_f=2)
        assert p.lcc_required_n - p.avcc_required_n == p.m

    def test_experimental_gramian_shape(self):
        # the session's lazy gramian master uses scheme.with_(deg_f=2);
        # the paper's (12, 9) matvec shape is NOT deg-2 feasible
        p = SchemeParams(n=12, k=9, s=1, m=1).with_(deg_f=2)
        assert p.recovery_threshold == 17
        assert not p.avcc_feasible


class TestValidateForErrorPaths:
    def test_error_message_carries_numbers(self):
        with pytest.raises(ValueError, match=r"N=10 < 11"):
            SchemeParams(n=10, k=9, s=1, m=1).validate_for("avcc")
        with pytest.raises(ValueError, match=r"N=10 < 12"):
            SchemeParams(n=10, k=9, s=1, m=1).validate_for("lcc")

    def test_unknown_framework_variants(self):
        p = SchemeParams(n=12, k=9)
        for bogus in ("", "AVCC", "rs", None):
            with pytest.raises(ValueError, match="unknown framework"):
                p.validate_for(bogus)

    def test_zero_tolerance_always_feasible_at_k_plus_one_minus(self):
        # with S=M=T=0 and deg_f=1 both bounds reduce to N >= K
        p = SchemeParams(n=9, k=9)
        assert p.avcc_required_n == p.lcc_required_n == 9
        p.validate_for("avcc")
        p.validate_for("lcc")
