"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``python setup.py develop`` works on machines without the ``wheel``
package (PEP 660 editable installs require it, ``develop`` does not).
"""

from setuptools import setup

setup()
