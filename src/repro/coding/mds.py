"""(N, K) MDS codes for linear coded computation.

Two constructions:

* :meth:`MDSCode.systematic` — the default, realized as a systematic
  Lagrange code with ``T = 0`` (exactly the paper's "MDS encoding is a
  special case of LCC encoding when the computations are only linear").
* :meth:`MDSCode.from_generator` — an explicit ``K x N`` generator
  matrix, used to reproduce textbook examples like Fig. 1's
  ``(3, 2)`` code with shares ``X1, X2, X1 + X2``. Decoding inverts the
  ``K x K`` submatrix selected by the responding workers (the classic
  "any K columns are invertible" MDS argument of Sec. IV-A step 4).

Both expose the same interface the masters consume: ``encode``,
``decode``, ``recovery_threshold``.
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.gauss import SingularMatrixError, gauss_solve
from repro.ff.linalg import ff_matmul
from repro.coding.lcc import LagrangeCode

__all__ = ["MDSCode"]


class MDSCode:
    """An ``(n, k)`` MDS code for degree-1 (linear) computations."""

    def __init__(self, field: PrimeField, n: int, k: int, *, generator=None, alpha=None):
        if k < 1 or n < k:
            raise ValueError(f"need n >= k >= 1, got n={n}, k={k}")
        self.field = field
        self.n = n
        self.k = k
        if generator is not None:
            g = field.asarray(generator)
            if g.shape != (k, n):
                raise ValueError(f"generator must be (k={k}, n={n}), got {g.shape}")
            self._g = g
            self._lcc = None
            self._check_mds_property()
        else:
            self._lcc = LagrangeCode(field, n, k, t=0, alpha=alpha)
            self._g = self._lcc.encoding_matrix()

    # ------------------------------------------------------------------
    @classmethod
    def systematic(cls, field: PrimeField, n: int, k: int) -> "MDSCode":
        """Lagrange-based systematic construction (default points)."""
        return cls(field, n, k)

    @classmethod
    def from_generator(cls, field: PrimeField, generator) -> "MDSCode":
        """Explicit generator construction; validates the MDS property
        on every ``k``-column subset for small codes (n <= 16), else on
        a random sample."""
        g = field.asarray(generator)
        return cls(field, g.shape[1], g.shape[0], generator=g)

    @classmethod
    def fig1_code(cls, field: PrimeField) -> "MDSCode":
        """The paper's Fig. 1 example: shares ``X1, X2, X1 + X2``."""
        return cls.from_generator(field, np.array([[1, 0, 1], [0, 1, 1]]))

    def _check_mds_property(self) -> None:
        from itertools import combinations

        from repro.ff.gauss import gauss_rank

        cols = range(self.n)
        subsets = list(combinations(cols, self.k))
        if len(subsets) > 2000:  # pragma: no cover - big codes sampled
            rng = np.random.default_rng(7)
            subsets = [
                tuple(np.sort(rng.choice(self.n, self.k, replace=False)))
                for _ in range(200)
            ]
        for sub in subsets:
            if gauss_rank(self.field, self._g[:, list(sub)]) != self.k:
                raise ValueError(
                    f"generator is not MDS: columns {sub} are dependent"
                )

    # ------------------------------------------------------------------
    @property
    def is_systematic(self) -> bool:
        return bool(
            np.array_equal(self._g[:, : self.k], np.eye(self.k, dtype=np.int64))
        )

    def generator_matrix(self) -> np.ndarray:
        """The ``(k, n)`` generator ``G`` with shares ``X~ = G.T @ X``."""
        return self._g.copy()

    def recovery_threshold(self, deg_f: int = 1) -> int:
        if deg_f != 1:
            raise ValueError("MDS codes only support linear computations (deg_f=1)")
        return self.k

    # ------------------------------------------------------------------
    def encode(self, blocks: np.ndarray, rng=None) -> np.ndarray:
        """Encode ``(k, ...)`` blocks into ``(n, ...)`` shares.

        ``rng`` is accepted (and ignored) for interface parity with
        :class:`LagrangeCode` — MDS has no privacy padding.
        """
        field = self.field
        blocks = field.asarray(blocks)
        if blocks.ndim < 2 or blocks.shape[0] != self.k:
            raise ValueError(f"expected (k={self.k}, ...) blocks, got {blocks.shape}")
        shape = blocks.shape[1:]
        shares = ff_matmul(field, self._g.T, blocks.reshape(self.k, -1))
        return shares.reshape(self.n, *shape)

    def decode(self, indices, shares: np.ndarray, deg_f: int = 1) -> np.ndarray:
        """Recover the ``k`` result blocks from any ``k`` worker results
        (for linear ``f``, worker results are the codeword of ``f(X_j)``)."""
        if deg_f != 1:
            raise ValueError("MDS codes only support linear computations (deg_f=1)")
        field = self.field
        idx = np.asarray(indices, dtype=np.int64)
        shares = field.asarray(shares)
        if idx.ndim != 1 or shares.shape[0] != idx.size:
            raise ValueError("indices/shares mismatch")
        if len(np.unique(idx)) != idx.size:
            raise ValueError("duplicate worker indices")
        if idx.size < self.k:
            raise ValueError(f"need {self.k} shares, got {idx.size}")
        idx = idx[: self.k]
        shares = shares[: self.k]
        shape = shares.shape[1:]
        flat = shares.reshape(self.k, -1)
        sub = self._g[:, idx]  # (k, k): columns of responding workers
        try:
            out = gauss_solve(field, sub.T, flat)
        except SingularMatrixError as exc:  # pragma: no cover - MDS guards this
            raise SingularMatrixError(
                f"non-MDS generator: columns {idx.tolist()} dependent"
            ) from exc
        return out.reshape(self.k, *shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MDSCode(n={self.n}, k={self.k}, q={self.field.q}, systematic={self.is_systematic})"
