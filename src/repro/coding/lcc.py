"""Lagrange coded computing: the paper's Eq. (12)–(13) encoder and the
matching interpolate-and-evaluate decoder.

Construction (Sec. IV-B step 1):

* pick ``K + T`` distinct points ``beta_1..beta_{K+T}``;
* build ``u(z)`` with ``u(beta_j) = X_j`` for the ``K`` data blocks and
  ``u(beta_j) = W_j`` (uniformly random) for the ``T`` privacy blocks;
* pick ``N`` distinct points ``alpha_i`` (disjoint from ``beta`` when
  ``T > 0``) and ship ``X~_i = u(alpha_i)`` to worker ``i``.

Workers apply the target polynomial ``f``; since
``deg f(u(z)) <= (K+T-1) deg f``, any ``(K+T-1) deg f + 1`` honest
evaluations determine ``f∘u`` and hence every ``f(X_j) = f(u(beta_j))``.

When ``T = 0`` the ``alpha`` set may overlap ``beta`` — choosing
``beta = alpha[:K]`` makes the code *systematic* (worker ``i < K``
stores ``X_i`` verbatim), which is how the paper's MDS special case and
its Fig. 1 example arise.
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.lagrange import eval_lagrange_basis, interpolate_eval
from repro.ff.linalg import ff_matmul
from repro.ff.rs import ReedSolomon

__all__ = ["LagrangeCode"]


class LagrangeCode:
    """An ``(N, K, T)`` Lagrange code over a prime field.

    Parameters
    ----------
    field:
        Element field.
    n, k:
        Code length (workers) and dimension (data blocks).
    t:
        Number of uniformly-random padding blocks (privacy parameter).
    alpha, beta:
        Optional explicit point sets (worker points and data points).
        Defaults: with ``t == 0``, ``beta = alpha[:k]`` (systematic);
        with ``t > 0``, ``alpha`` and ``beta`` are consecutive disjoint
        runs, enforcing the paper's ``A ∩ B = ∅`` requirement.
    """

    def __init__(
        self,
        field: PrimeField,
        n: int,
        k: int,
        t: int = 0,
        *,
        alpha=None,
        beta=None,
    ):
        if k < 1 or n < 1 or t < 0:
            raise ValueError("need n >= 1, k >= 1, t >= 0")
        if n < k + t:
            raise ValueError(f"n={n} < k+t={k + t}: code cannot be injective")
        self.field = field
        self.n = n
        self.k = k
        self.t = t

        if alpha is None:
            alpha = field.distinct_points(n, start=1)
        alpha = field.asarray(alpha)
        if alpha.shape != (n,) or len(np.unique(alpha)) != n:
            raise ValueError("alpha must be n distinct points")

        if beta is None:
            if t == 0:
                beta = alpha[:k]  # systematic
            else:
                beta = field.distinct_points(k + t, start=int(alpha.max()) + 1)
        beta = field.asarray(beta)
        if beta.shape != (k + t,) or len(np.unique(beta)) != k + t:
            raise ValueError("beta must be k+t distinct points")
        if t > 0 and np.intersect1d(alpha, beta).size:
            raise ValueError("alpha and beta must be disjoint when t > 0")

        self.alpha = alpha
        self.beta = beta
        # Encoding matrix U[j, i] = l_j(alpha_i), Eq. (13); shape (k+t, n).
        self._u = eval_lagrange_basis(field, beta, alpha)

    # ------------------------------------------------------------------
    @property
    def is_systematic(self) -> bool:
        """True when worker ``i < k`` receives ``X_{i+1}`` verbatim."""
        return bool(np.array_equal(self.alpha[: self.k], self.beta[: self.k])) and self.t == 0

    def encoding_matrix(self) -> np.ndarray:
        """The ``(k+t, n)`` matrix ``U`` with ``X~ = U.T @ [X; W]``."""
        return self._u.copy()

    def recovery_threshold(self, deg_f: int = 1) -> int:
        """Evaluations needed to decode: ``(k+t-1) deg_f + 1``."""
        if deg_f < 1:
            raise ValueError("deg_f must be >= 1")
        return (self.k + self.t - 1) * deg_f + 1

    # ------------------------------------------------------------------
    def encode(
        self, blocks: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Encode ``(k, ...)`` data blocks into ``(n, ...)`` coded shares.

        With ``t > 0`` the required randomness is drawn from ``rng``
        (mandatory then — privacy with a fixed seed is no privacy).
        """
        field = self.field
        blocks = field.asarray(blocks)
        if blocks.ndim < 2 or blocks.shape[0] != self.k:
            raise ValueError(
                f"expected (k={self.k}, ...) stacked blocks, got {blocks.shape}"
            )
        block_shape = blocks.shape[1:]
        flat = blocks.reshape(self.k, -1)
        if self.t > 0:
            if rng is None:
                raise ValueError("t > 0 requires an rng for the privacy padding")
            w = field.random((self.t, flat.shape[1]), rng)
            flat = np.concatenate([flat, w], axis=0)
        shares = ff_matmul(field, self._u.T, flat)
        return shares.reshape(self.n, *block_shape)

    def decode(
        self, indices, shares: np.ndarray, deg_f: int = 1
    ) -> np.ndarray:
        """Recover ``f(X_1)..f(X_k)`` from verified worker evaluations.

        ``indices`` are worker ids (positions into ``alpha``); ``shares``
        the corresponding ``f(X~_i)`` blocks. Exactly the recovery
        threshold count is used — callers pass their fastest *verified*
        results. Extra shares are ignored deterministically (the first
        ``threshold`` in the order given).
        """
        field = self.field
        idx = np.asarray(indices, dtype=np.int64)
        shares = field.asarray(shares)
        if idx.ndim != 1 or shares.shape[0] != idx.size:
            raise ValueError("indices/shares mismatch")
        if np.any(idx < 0) or np.any(idx >= self.n):
            raise ValueError("worker index out of range")
        if len(np.unique(idx)) != idx.size:
            raise ValueError("duplicate worker indices")
        need = self.recovery_threshold(deg_f)
        if idx.size < need:
            raise ValueError(
                f"need {need} shares to decode deg_f={deg_f}, got {idx.size}"
            )
        idx = idx[:need]
        shares = shares[:need]
        block_shape = shares.shape[1:]
        flat = shares.reshape(need, -1)
        out = interpolate_eval(field, self.alpha[idx], flat, self.beta[: self.k])
        return out.reshape(self.k, *block_shape)

    def decode_corrected(
        self,
        indices,
        shares: np.ndarray,
        deg_f: int = 1,
        max_errors: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        """Error-correcting decode — the **LCC baseline** path.

        Runs Berlekamp–Welch over the received evaluations, correcting
        up to ``(received - threshold) // 2`` corrupted shares (capped
        by ``max_errors``). Returns ``(blocks, local_error_positions)``
        where positions index into ``indices``.

        Raises :class:`repro.ff.rs.DecodingError` when the corruption
        exceeds the error-correction capability — the caller decides the
        fallback (the experiments' LCC baseline then decodes *without*
        correction and silently consumes poisoned data, reproducing the
        degraded-accuracy curves of Fig. 3b/3d).
        """
        field = self.field
        idx = np.asarray(indices, dtype=np.int64)
        shares = field.asarray(shares)
        block_shape = shares.shape[1:]
        flat = shares.reshape(idx.size, -1)
        degree = (self.k + self.t - 1) * deg_f
        rs = ReedSolomon(field, self.alpha, degree)
        res = rs.decode(idx, flat, self.beta[: self.k], max_errors=max_errors, rng=rng)
        return res.values.reshape(self.k, *block_shape), res.error_positions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LagrangeCode(n={self.n}, k={self.k}, t={self.t}, "
            f"q={self.field.q}, systematic={self.is_systematic})"
        )
