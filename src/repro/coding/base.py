"""Shared block-partitioning helpers for the codecs.

The paper's data model: a dataset ``X`` of ``m`` rows is split into
``K`` equal row-blocks ``X_1 .. X_K`` (Sec. II-A). Codecs then operate
on a stacked ``(K, m/K, d)`` array; flattening the trailing axes turns
encoding/decoding into a single field matrix product.
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_rows", "unpartition_rows", "stack_blocks"]


def partition_rows(x: np.ndarray, k: int) -> np.ndarray:
    """Split ``(m, ...)`` into ``(k, m/k, ...)`` row blocks.

    The paper assumes ``K | m``; we enforce it rather than silently pad
    (padding changes the computation the workers perform — callers that
    want padding must do it explicitly and strip the rows afterwards).
    """
    x = np.asarray(x)
    if x.ndim < 1:
        raise ValueError("need at least 1 dimension to partition")
    m = x.shape[0]
    if k <= 0 or m % k != 0:
        raise ValueError(f"cannot split {m} rows into {k} equal blocks")
    return x.reshape(k, m // k, *x.shape[1:])


def unpartition_rows(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`partition_rows`: ``(k, b, ...)`` -> ``(k*b, ...)``."""
    blocks = np.asarray(blocks)
    if blocks.ndim < 2:
        raise ValueError("blocks must have at least 2 dimensions")
    return blocks.reshape(blocks.shape[0] * blocks.shape[1], *blocks.shape[2:])


def stack_blocks(blocks) -> np.ndarray:
    """Stack a sequence of equal-shape blocks into one array, validating
    shape agreement (codecs require identical block shapes)."""
    arrs = [np.asarray(b) for b in blocks]
    if not arrs:
        raise ValueError("no blocks given")
    shape = arrs[0].shape
    for i, a in enumerate(arrs):
        if a.shape != shape:
            raise ValueError(f"block {i} has shape {a.shape}, expected {shape}")
    return np.stack(arrs, axis=0)
