"""Polynomial codes for coded matrix–matrix multiplication.

The paper's related-work anchor [17] (Yu, Maddah-Ali, Avestimehr,
"Polynomial codes: an optimal design for high-dimensional coded matrix
multiplication", NIPS 2017), which Sec. II cites for "bilinear
computations". AVCC's decoupling applies verbatim: polynomial codes
handle stragglers, Freivalds matmul checks handle Byzantine workers —
see :class:`repro.core.matmul.CodedMatmulAVCCMaster`.

Construction: to compute ``C = A @ B`` with ``A ∈ F^{m×n}`` split into
``p`` row-blocks and ``B ∈ F^{n×r}`` split into ``q`` column-blocks,
worker ``i`` receives::

    A~_i = sum_j A_j · x_i^j          (degree p-1 in x_i)
    B~_i = sum_k B_k · x_i^{p·k}      (degree p(q-1))

and returns ``C~_i = A~_i @ B~_i``, which is the evaluation at ``x_i``
of a matrix polynomial of degree ``pq - 1`` whose coefficients are
*exactly* the ``pq`` products ``A_j @ B_k``. Any ``pq`` evaluations
recover every block of ``C`` — the optimal recovery threshold.
"""

from __future__ import annotations

import numpy as np

from repro.ff.arith import mod_pow
from repro.ff.field import PrimeField
from repro.ff.gauss import gauss_solve
from repro.ff.vandermonde import vandermonde_matrix

__all__ = ["PolynomialCode"]


class PolynomialCode:
    """An ``(n_workers, p, q)`` polynomial code for ``A @ B``."""

    def __init__(self, field: PrimeField, n_workers: int, p: int, q: int, *, points=None):
        if p < 1 or q < 1:
            raise ValueError("p and q must be >= 1")
        if n_workers < p * q:
            raise ValueError(
                f"need at least p*q = {p * q} workers, got {n_workers}"
            )
        self.field = field
        self.n = n_workers
        self.p = p
        self.q = q
        if points is None:
            points = field.distinct_points(n_workers, start=1)
        points = field.asarray(points)
        if points.shape != (n_workers,) or len(np.unique(points)) != n_workers:
            raise ValueError("points must be n_workers distinct field elements")
        self.points = points

    # ------------------------------------------------------------------
    @property
    def recovery_threshold(self) -> int:
        """``pq`` — optimal for this partitioning (Yu et al., Thm. 1)."""
        return self.p * self.q

    def _encode(self, blocks: np.ndarray, stride: int) -> np.ndarray:
        """Shares ``sum_j blocks[j] * x_i^(stride*j)`` for every worker."""
        field = self.field
        blocks = field.asarray(blocks)
        n_blocks = blocks.shape[0]
        flat = blocks.reshape(n_blocks, -1)
        # coefficient matrix W[i, j] = x_i^(stride*j)
        exps = mod_pow(self.points, stride, field.q) if stride != 1 else self.points
        w = np.ones((self.n, n_blocks), dtype=np.int64)
        for j in range(1, n_blocks):
            w[:, j] = w[:, j - 1] * exps % field.q
        from repro.ff.linalg import ff_matmul

        shares = ff_matmul(field, w, flat)
        return shares.reshape(self.n, *blocks.shape[1:])

    def encode_a(self, a_blocks: np.ndarray) -> np.ndarray:
        """Encode the ``p`` row-blocks of ``A`` (exponent stride 1)."""
        if a_blocks.shape[0] != self.p:
            raise ValueError(f"expected {self.p} A-blocks, got {a_blocks.shape[0]}")
        return self._encode(a_blocks, stride=1)

    def encode_b(self, b_blocks: np.ndarray) -> np.ndarray:
        """Encode the ``q`` column-blocks of ``B`` (exponent stride p)."""
        if b_blocks.shape[0] != self.q:
            raise ValueError(f"expected {self.q} B-blocks, got {b_blocks.shape[0]}")
        return self._encode(b_blocks, stride=self.p)

    # ------------------------------------------------------------------
    def decode(self, indices, products: np.ndarray) -> np.ndarray:
        """Recover all ``p*q`` blocks ``A_j @ B_k`` from any ``pq``
        worker products.

        Returns an array of shape ``(p, q, m/p, r/q)`` with
        ``out[j, k] = A_j @ B_k``.
        """
        field = self.field
        idx = np.asarray(indices, dtype=np.int64)
        products = field.asarray(products)
        need = self.recovery_threshold
        if idx.ndim != 1 or products.shape[0] != idx.size:
            raise ValueError("indices/products mismatch")
        if len(np.unique(idx)) != idx.size:
            raise ValueError("duplicate worker indices")
        if np.any(idx < 0) or np.any(idx >= self.n):
            raise ValueError("worker index out of range")
        if idx.size < need:
            raise ValueError(f"need {need} products to decode, got {idx.size}")
        idx = idx[:need]
        products = products[:need]
        block_shape = products.shape[1:]
        flat = products.reshape(need, -1)
        # coefficients of the degree pq-1 polynomial: solve Vandermonde
        v = vandermonde_matrix(field, self.points[idx], need)
        coeffs = gauss_solve(field, v, flat)          # (pq, block_elems)
        out = coeffs.reshape(self.p * self.q, *block_shape)
        # coefficient index j + p*k  ->  block (j, k)
        return out.reshape(self.q, self.p, *block_shape).transpose(
            1, 0, *range(2, 2 + len(block_shape))
        )

    @staticmethod
    def assemble(blocks: np.ndarray) -> np.ndarray:
        """Stitch the ``(p, q, mb, rb)`` block grid into the full
        ``(p*mb, q*rb)`` product matrix."""
        if blocks.ndim != 4:
            raise ValueError("expected (p, q, mb, rb) block grid")
        p, q, mb, rb = blocks.shape
        return blocks.transpose(0, 2, 1, 3).reshape(p * mb, q * rb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolynomialCode(n={self.n}, p={self.p}, q={self.q}, q_field={self.field.q})"
