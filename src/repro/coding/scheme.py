"""Resource accounting for coded-computing schemes.

Encodes the paper's two feasibility bounds:

* **LCC** (Eq. 1):  ``N >= (K + T - 1) * deg f + S + 2M + 1``
* **AVCC** (Eq. 2): ``N >= (K + T - 1) * deg f + S + M + 1``

The factor-of-two on ``M`` is the entire point of the paper: LCC pays
two workers per Byzantine node (Reed–Solomon error correction), AVCC
pays one (Freivalds verification turns Byzantine nodes into erasures).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SchemeParams"]


@dataclass(frozen=True)
class SchemeParams:
    """Parameters of a coded-computing deployment.

    Attributes
    ----------
    n:
        Number of worker nodes.
    k:
        Number of data partitions (code dimension).
    s:
        Stragglers to tolerate.
    m:
        Byzantine workers to tolerate.
    t:
        Colluding (curious) workers to stay private against.
    deg_f:
        Degree of the polynomial computed on the coded data
        (1 for matrix–vector products, 2 for gramians, ...).
    """

    n: int
    k: int
    s: int = 0
    m: int = 0
    t: int = 0
    deg_f: int = 1

    def __post_init__(self):
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if min(self.s, self.m, self.t) < 0:
            raise ValueError("s, m, t must be non-negative")
        if self.deg_f < 1:
            raise ValueError("deg_f must be >= 1")

    # ------------------------------------------------------------------
    # the paper's bounds
    # ------------------------------------------------------------------
    @property
    def recovery_threshold(self) -> int:
        """Verified results needed to decode: ``(K+T-1) deg f + 1``
        (paper Sec. IV-B step 4)."""
        return (self.k + self.t - 1) * self.deg_f + 1

    @property
    def lcc_required_n(self) -> int:
        """Eq. (1): minimum workers for an ``(N,K,S,M,T)`` LCC scheme."""
        return (self.k + self.t - 1) * self.deg_f + self.s + 2 * self.m + 1

    @property
    def avcc_required_n(self) -> int:
        """Eq. (2): minimum workers for the same guarantees under AVCC."""
        return (self.k + self.t - 1) * self.deg_f + self.s + self.m + 1

    @property
    def lcc_feasible(self) -> bool:
        return self.n >= self.lcc_required_n

    @property
    def avcc_feasible(self) -> bool:
        return self.n >= self.avcc_required_n

    @property
    def byzantine_worker_cost_lcc(self) -> int:
        """Extra workers LCC spends per Byzantine node: always 2."""
        return 2

    @property
    def byzantine_worker_cost_avcc(self) -> int:
        """Extra workers AVCC spends per Byzantine node: always 1."""
        return 1

    # ------------------------------------------------------------------
    # slack / adaptation helpers (used by the dynamic-coding policy)
    # ------------------------------------------------------------------
    def avcc_slack(self) -> int:
        """Spare workers beyond the AVCC bound: how many *additional*
        simultaneous stragglers-or-Byzantines the deployment absorbs."""
        return self.n - self.avcc_required_n

    def lcc_slack(self) -> int:
        return self.n - self.lcc_required_n

    def with_(self, **changes) -> "SchemeParams":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

    def validate_for(self, framework: str) -> None:
        """Raise ``ValueError`` if the scheme is infeasible for
        ``framework`` ('avcc' or 'lcc')."""
        if framework == "avcc":
            if not self.avcc_feasible:
                raise ValueError(
                    f"AVCC infeasible: N={self.n} < {self.avcc_required_n} "
                    f"= (K+T-1)deg_f + S + M + 1 (Eq. 2)"
                )
        elif framework == "lcc":
            if not self.lcc_feasible:
                raise ValueError(
                    f"LCC infeasible: N={self.n} < {self.lcc_required_n} "
                    f"= (K+T-1)deg_f + S + 2M + 1 (Eq. 1)"
                )
        else:
            raise ValueError(f"unknown framework {framework!r}")
