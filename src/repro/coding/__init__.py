"""Coded-computing codecs: MDS and Lagrange coded computing (LCC).

The paper treats MDS coding as "a special case of LCC when the
computations are only linear" (Sec. IV-A); the implementation mirrors
that: :class:`MDSCode` is a thin systematic wrapper over
:class:`LagrangeCode` with ``T = 0`` and ``deg f = 1``, plus an optional
explicit-generator construction for textbook codes like Fig. 1's
``[X1, X2, X1+X2]``.

:class:`SchemeParams` carries the resource accounting of the paper —
Eq. (1) for LCC, Eq. (2) for AVCC — and is used by masters and the
dynamic-coding policy alike.
"""

from repro.coding.base import partition_rows, stack_blocks, unpartition_rows
from repro.coding.lcc import LagrangeCode
from repro.coding.mds import MDSCode
from repro.coding.polynomial import PolynomialCode
from repro.coding.scheme import SchemeParams

__all__ = [
    "LagrangeCode",
    "MDSCode",
    "PolynomialCode",
    "SchemeParams",
    "partition_rows",
    "stack_blocks",
    "unpartition_rows",
]
