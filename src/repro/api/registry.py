"""Named factories for execution backends and coded masters.

The session layer resolves ``SessionConfig.backend`` and
``SessionConfig.master`` strings through these registries, so the
string names ``"sim" | "threaded" | "process" | "tcp" | "async_tcp"``
and
``"avcc" | "lcc" | "static_vcc" | "uncoded"`` are data, not code —
a config file can pick any combination, and third parties can plug in
their own substrate or waiting/verification policy without touching
``repro`` internals:

    from repro.api import register_backend, register_master

    register_backend("my_grpc", my_grpc_factory)
    register_master("my_policy", my_policy_factory)
    Session.create(SessionConfig(..., backend="my_grpc", master="my_policy"))

Factory contracts
-----------------
``BackendFactory(config, field, workers, rng) -> Backend``
    Receives the validated :class:`~repro.api.config.SessionConfig`,
    the constructed :class:`~repro.ff.field.PrimeField`, the worker
    fleet (:class:`~repro.runtime.worker.SimWorker` objects built from
    the config's :class:`~repro.api.config.WorkerSpec` entries) and a
    seeded generator. Must return an object implementing the
    :class:`~repro.runtime.backend.Backend` protocol.

``MasterFactory(config, backend, rng) -> master``
    Receives the config and the already-constructed backend. Must
    return a master exposing the coded matvec service
    (``setup`` / ``forward_round`` / ``backward_round`` /
    ``round_many`` / ``end_iteration``).

Both registries reject silent replacement: pass ``overwrite=True`` to
re-bind a name on purpose.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.config import SessionConfig
    from repro.ff.field import PrimeField
    from repro.runtime.backend import Backend
    from repro.runtime.worker import SimWorker

__all__ = [
    "BackendFactory",
    "MasterFactory",
    "backend_names",
    "master_names",
    "register_backend",
    "register_master",
    "resolve_backend",
    "resolve_master",
]

BackendFactory = Callable[
    ["SessionConfig", "PrimeField", Sequence["SimWorker"], np.random.Generator],
    "Backend",
]
MasterFactory = Callable[["SessionConfig", "Backend", np.random.Generator], object]

_BACKENDS: dict[str, BackendFactory] = {}
_MASTERS: dict[str, MasterFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, *, overwrite: bool = False
) -> None:
    """Bind ``name`` to an execution-backend factory.

    Raises ``ValueError`` on a duplicate name unless ``overwrite``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _BACKENDS and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered (pass overwrite=True to re-bind)"
        )
    _BACKENDS[name] = factory


def register_master(
    name: str, factory: MasterFactory, *, overwrite: bool = False
) -> None:
    """Bind ``name`` to a master factory.

    Raises ``ValueError`` on a duplicate name unless ``overwrite``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"master name must be a non-empty string, got {name!r}")
    if name in _MASTERS and not overwrite:
        raise ValueError(
            f"master {name!r} is already registered (pass overwrite=True to re-bind)"
        )
    _MASTERS[name] = factory


def resolve_backend(name: str) -> BackendFactory:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def resolve_master(name: str) -> MasterFactory:
    try:
        return _MASTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown master {name!r}; registered: {master_names()}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def master_names() -> tuple[str, ...]:
    """Registered master names, sorted."""
    return tuple(sorted(_MASTERS))


# ----------------------------------------------------------------------
# built-in bindings
# ----------------------------------------------------------------------
def _sim_backend(
    config: "SessionConfig",
    field: "PrimeField",
    workers: Sequence["SimWorker"],
    rng: np.random.Generator,
) -> "Backend":
    from repro.runtime.cluster import SimCluster

    return SimCluster(field, workers, cost_model=config.cost_model(), rng=rng)


def _threaded_backend(
    config: "SessionConfig",
    field: "PrimeField",
    workers: Sequence["SimWorker"],
    rng: np.random.Generator,
) -> "Backend":
    from repro.runtime.threaded import ThreadedCluster

    return ThreadedCluster(
        field,
        workers,
        rng=rng,
        cost_model=config.cost_model(),
        **config.backend_options,
    )


def _process_backend(
    config: "SessionConfig",
    field: "PrimeField",
    workers: Sequence["SimWorker"],
    rng: np.random.Generator,
) -> "Backend":
    from repro.runtime.process import ProcessCluster

    return ProcessCluster(
        field,
        workers,
        rng=rng,
        cost_model=config.cost_model(),
        **config.backend_options,
    )


def _tcp_backend(
    config: "SessionConfig",
    field: "PrimeField",
    workers: Sequence["SimWorker"],
    rng: np.random.Generator,
) -> "Backend":
    from repro.runtime.net import TcpCluster

    return TcpCluster(
        field,
        workers,
        rng=rng,
        cost_model=config.cost_model(),
        # config.net is the shared knob surface; explicit
        # backend_options entries still win for per-run overrides
        **{**config.net.backend_kwargs(), **config.backend_options},
    )


def _async_tcp_backend(
    config: "SessionConfig",
    field: "PrimeField",
    workers: Sequence["SimWorker"],
    rng: np.random.Generator,
) -> "Backend":
    from repro.runtime.net import AsyncTcpCluster

    return AsyncTcpCluster(
        field,
        workers,
        rng=rng,
        cost_model=config.cost_model(),
        **{**config.net.backend_kwargs(), **config.backend_options},
    )


def _avcc_master(
    config: "SessionConfig", backend: "Backend", rng: np.random.Generator
) -> object:
    from repro.core.avcc import AVCCMaster

    return AVCCMaster(backend, config.scheme, probes=config.probes, rng=rng)


def _static_vcc_master(
    config: "SessionConfig", backend: "Backend", rng: np.random.Generator
) -> object:
    from repro.core.static_vcc import StaticVCCMaster

    return StaticVCCMaster(backend, config.scheme, probes=config.probes, rng=rng)


def _lcc_master(
    config: "SessionConfig", backend: "Backend", rng: np.random.Generator
) -> object:
    from repro.core.lcc_master import LCCMaster

    return LCCMaster(backend, config.scheme, rng=rng)


def _uncoded_master(
    config: "SessionConfig", backend: "Backend", rng: np.random.Generator
) -> object:
    from repro.core.uncoded import UncodedMaster

    return UncodedMaster(backend, k=config.scheme.k, rng=rng)


register_backend("sim", _sim_backend)
register_backend("threaded", _threaded_backend)
register_backend("process", _process_backend)
register_backend("tcp", _tcp_backend)
register_backend("async_tcp", _async_tcp_backend)
register_master("avcc", _avcc_master)
register_master("static_vcc", _static_vcc_master)
register_master("lcc", _lcc_master)
register_master("uncoded", _uncoded_master)
