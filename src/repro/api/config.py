"""Declarative session configuration.

One validated object captures everything needed to stand up a coded
computing service: the field, the ``(N, K, S, M, T)`` scheme, which
master policy and which execution substrate to use (by registry name),
the worker fleet's straggler/Byzantine composition, the simulated cost
constants, and the batching window. ``SessionConfig`` round-trips
through plain dicts (``to_dict`` / ``from_dict``), so deployments can
live in JSON/TOML files and travel across processes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field as dc_field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.coding.scheme import SchemeParams
from repro.ff.field import DEFAULT_PRIME, PrimeField
from repro.runtime.byzantine import (
    Behavior,
    ConstantAttack,
    Honest,
    IntermittentAttack,
    RandomAttack,
    ReversedValueAttack,
    SilentFailure,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.latency import make_profiles
from repro.runtime.net.tunables import NetTunables
from repro.runtime.worker import SimWorker

__all__ = ["SessionConfig", "WorkerSpec"]

#: behaviour names a WorkerSpec accepts
BEHAVIOR_KINDS = ("honest", "reverse", "constant", "random", "silent")


@dataclass(frozen=True)
class WorkerSpec:
    """Declarative description of one worker's failure profile.

    Attributes
    ----------
    straggler_factor:
        Compute-slowdown multiplier (1.0 = full speed). On the
        simulator it scales the sampled compute time; on wall-clock
        backends it becomes an injected sleep.
    behavior:
        One of ``"honest" | "reverse" | "constant" | "random" |
        "silent"`` (the paper's attack menu plus crash-stop).
    attack_value:
        ``c`` for the reversed-value attack, the constant for the
        constant attack; ignored otherwise.
    probability:
        Per-round attack probability. Below 1.0 the behaviour is
        wrapped in :class:`~repro.runtime.byzantine.IntermittentAttack`.
    """

    straggler_factor: float = 1.0
    behavior: str = "honest"
    attack_value: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1.0, got {self.straggler_factor}"
            )
        if self.behavior not in BEHAVIOR_KINDS:
            raise ValueError(
                f"unknown behavior {self.behavior!r}; pick one of {BEHAVIOR_KINDS}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")

    def build_behavior(self) -> Behavior:
        """Materialize the runtime behaviour object."""
        if self.behavior == "honest":
            return Honest()
        if self.behavior == "reverse":
            inner: Behavior = ReversedValueAttack(c=self.attack_value)
        elif self.behavior == "constant":
            inner = ConstantAttack(value=self.attack_value)
        elif self.behavior == "random":
            inner = RandomAttack()
        else:
            return SilentFailure()
        if self.probability < 1.0:
            return IntermittentAttack(inner, probability=self.probability)
        return inner


@dataclass(frozen=True)
class SessionConfig:
    """Everything :meth:`repro.api.session.Session.create` needs.

    Attributes
    ----------
    scheme:
        The deployment's :class:`~repro.coding.scheme.SchemeParams`
        (``n`` fixes the fleet size). Feasibility for the chosen master
        is validated by the master's own constructor at build time.
    master:
        Registry name of the waiting/verification policy
        (``"avcc" | "lcc" | "static_vcc" | "uncoded"`` built in).
    backend:
        Registry name of the execution substrate (``"sim" |
        "threaded" | "process" | "tcp" | "async_tcp"`` built in).
    prime:
        Field modulus (the paper's ``2**25 - 39`` by default).
    seed:
        Seeds the backend rng (latency jitter, attack randomness) and
        the master rng (key generation, privacy padding).
    probes:
        Freivalds probes per verification check.
    workers:
        One :class:`WorkerSpec` per worker. Empty means ``scheme.n``
        honest full-speed workers; otherwise the length must equal
        ``scheme.n``.
    batch_window:
        Maximum jobs the session coalesces into one broadcast round.
    max_inflight_rounds:
        Bound W of the session's pipelined round scheduler: up to W
        dispatched rounds may be awaiting finalization at once. ``1``
        (default) executes rounds strictly serially; ``>= 2`` lets
        independent rounds (different families, successive serving
        requests) overlap — workers compute round *i+1* while the
        master verifies/decodes round *i*. Results are byte-identical
        across window sizes.
    elastic_membership:
        When ``True`` (default), every ``end_iteration`` quiesce point
        also reconciles the coding roster with live fleet membership:
        pending joiners (restarted daemons, new capacity) are admitted
        and heartbeat-declared deaths evicted, with the master
        re-coding over the new roster. ``False`` freezes the roster at
        session start (pre-0.7 behaviour). Only the socket backends
        produce membership changes; elsewhere this is inert.
    observability:
        When ``True`` the session carries an
        :class:`~repro.obs.Observability` bundle: every submitted job
        gets a span-traced request-to-round timeline (worker daemons
        ship their own sub-spans back over the wire on the socket
        backends), and a unified metrics registry feeds the live
        telemetry endpoint (``Gateway.run_async(telemetry_port=...)``)
        and the ``repro obs`` CLI. ``False`` (default) instantiates
        none of it — reports, summaries and wire frames are
        byte-identical to an untraced build.
    audit:
        When ``True`` the session arms every master with one shared
        :class:`~repro.obs.audit.AuditLog`: each finalized round
        appends a hash-chained :class:`~repro.obs.audit.
        RoundCommitment` (scheme config, operand/output digests,
        per-worker result digests, verify verdicts), the socket
        backends' worker daemons countersign results with a digest in
        the result frame, and ``ServeReport`` rows carry the sequence
        number of the commitment backing each request. ``False``
        (default) instantiates none of it — reports, round results and
        wire frames are byte-identical to an unaudited build.
        Independent of ``observability`` (the live ``/audit`` endpoint
        needs both).
    cost:
        Overrides for :class:`~repro.runtime.costmodel.CostModel`
        fields (e.g. ``{"worker_sec_per_mac": 300e-9}``).
    net:
        The socket backends' liveness/deadline knob surface
        (:class:`~repro.runtime.net.tunables.NetTunables`):
        ``heartbeat_interval``/``heartbeat_timeout`` (probing cadence
        and the dead-worker threshold), ``io_timeout`` (per-socket I/O
        deadline) and ``round_timeout`` (per-round collect deadline).
        Shared verbatim by ``"tcp"`` and ``"async_tcp"``; ignored by
        the in-process backends. Accepts a plain mapping in
        :meth:`from_dict`.
    backend_options:
        Extra keyword arguments for the backend factory (e.g.
        ``{"straggle_scale": 0.05}`` for wall-clock backends). The
        socket backends' deployment knobs travel here too:
        ``host``/``port`` (listen address; port 0 = ephemeral),
        ``connect_timeout`` (seconds to wait for the fleet to
        register) and ``spawn_workers``/``spawn_mode`` (self-launch a
        loopback fleet vs wait for remote daemons). Entries here
        override the ``net`` field for per-run tweaks.
    """

    scheme: SchemeParams
    master: str = "avcc"
    backend: str = "sim"
    prime: int = DEFAULT_PRIME
    seed: int = 0
    probes: int = 1
    workers: tuple[WorkerSpec, ...] = ()
    batch_window: int = 32
    max_inflight_rounds: int = 1
    elastic_membership: bool = True
    observability: bool = False
    audit: bool = False
    cost: dict[str, Any] = dc_field(default_factory=dict)
    net: NetTunables = dc_field(default_factory=NetTunables)
    backend_options: dict[str, Any] = dc_field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.scheme, SchemeParams):
            raise TypeError(f"scheme must be SchemeParams, got {type(self.scheme)}")
        if self.prime < 3:
            raise ValueError(f"prime must be >= 3, got {self.prime}")
        if self.probes < 1:
            raise ValueError("probes must be >= 1")
        if self.batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        if self.max_inflight_rounds < 1:
            raise ValueError("max_inflight_rounds must be >= 1")
        object.__setattr__(self, "workers", tuple(self.workers))
        if self.workers and len(self.workers) != self.scheme.n:
            raise ValueError(
                f"got {len(self.workers)} worker specs for scheme.n={self.scheme.n}"
            )
        for spec in self.workers:
            if not isinstance(spec, WorkerSpec):
                raise TypeError(f"workers entries must be WorkerSpec, got {spec!r}")
        if not isinstance(self.net, NetTunables):
            raise TypeError(
                f"net must be NetTunables (or a mapping via from_dict), "
                f"got {type(self.net)}"
            )
        self.cost_model()  # validate the overrides eagerly

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def build_field(self) -> PrimeField:
        return PrimeField(self.prime)

    def cost_model(self) -> CostModel:
        return CostModel(**self.cost)

    def worker_specs(self) -> tuple[WorkerSpec, ...]:
        """The fleet description, defaults expanded to ``scheme.n``."""
        if self.workers:
            return self.workers
        return tuple(WorkerSpec() for _ in range(self.scheme.n))

    def build_workers(self) -> list[SimWorker]:
        """Materialize the fleet from the specs."""
        specs = self.worker_specs()
        factors = {
            i: s.straggler_factor
            for i, s in enumerate(specs)
            if s.straggler_factor != 1.0
        }
        profiles = make_profiles(len(specs), factors)
        return [
            SimWorker(i, profile=profiles[i], behavior=spec.build_behavior())
            for i, spec in enumerate(specs)
        ]

    def with_(self, **changes: Any) -> "SessionConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # dict round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form; ``from_dict(to_dict(c)) == c``."""
        out = asdict(self)  # recursive: scheme and worker specs become dicts
        out["workers"] = list(out["workers"])  # tuple -> list, JSON-friendly
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        data = dict(data)
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SessionConfig keys: {sorted(unknown)}")
        if "scheme" not in data:
            raise ValueError("SessionConfig dict needs a 'scheme' entry")
        scheme = data["scheme"]
        if isinstance(scheme, Mapping):
            data["scheme"] = SchemeParams(**scheme)
        workers: Sequence[Any] = data.get("workers", ())
        data["workers"] = tuple(
            w if isinstance(w, WorkerSpec) else WorkerSpec(**w) for w in workers
        )
        if "cost" in data:
            data["cost"] = dict(data["cost"])
        net = data.get("net")
        if isinstance(net, Mapping):
            data["net"] = NetTunables.from_dict(net)
        if "backend_options" in data:
            data["backend_options"] = dict(data["backend_options"])
        return cls(**data)

    def build_rng(self, offset: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + offset)
