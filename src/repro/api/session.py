"""The high-level session: config in, verified decoded results out.

``Session`` is the sanctioned front door to the coded-computing stack.
It owns the whole vertical — field, scheme, backend, master, worker
fleet — built from one :class:`~repro.api.config.SessionConfig`
through the name registries, and exposes a job-submission surface:

    cfg = SessionConfig(scheme=SchemeParams(n=6, k=3, s=1, m=1))
    with Session.create(cfg) as sess:
        sess.load(x)                      # encode + ship shares + keys
        z = sess.submit_matvec(w).result()   # exact X @ w

Round batching
--------------
Submissions return *futures* (:class:`JobHandle`), not results. Jobs
against the same encoded family accumulate in a per-family queue and
are **coalesced into a single broadcast round** when the queue is
flushed (first ``result()`` call, an explicit :meth:`Session.flush`,
``end_iteration``, or the ``batch_window`` filling up). B concurrent
jobs then cost one operand broadcast, one straggler exposure, one
verification sweep and one decode instead of B — the service's
heavy-traffic path. :attr:`Session.stats` makes the coalescing
observable (``jobs_per_round``, ``batching_factor``) and aggregates
the per-round verify/decode/adaptation telemetry from the masters'
trace records.

Round pipelining
----------------
Orthogonally to batching, the session keeps up to
``SessionConfig.max_inflight_rounds`` *rounds* in flight through the
:class:`~repro.api.scheduler.RoundScheduler`: :meth:`flush` plans and
dispatches without waiting for decode, so independent rounds
(different families, successive serving requests) overlap — workers
compute round *i+1* while the master verifies/decodes round *i*.
``max_inflight_rounds = 1`` (the default) is the serial scheduler;
results are byte-identical across window sizes either way.
``JobHandle.result()`` waits only for its own round (and the rounds
dispatched before it, which the master core must finalize first);
``end_iteration`` drains the window before adapting, so a dynamic
re-code never mixes shares from two scheme configurations in one
round.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Iterator

import numpy as np

from repro.api.config import SessionConfig
from repro.api.registry import resolve_backend, resolve_master
from repro.api.scheduler import InflightRound, RoundScheduler, SessionClosedError
from repro.core.results import AdaptationOutcome, RoundOutcome
from repro.obs import Observability
from repro.obs.audit import AuditLog
from repro.runtime.backend import Backend, MembershipEvent
from repro.runtime.trace import RoundRecord

__all__ = ["JobHandle", "JobRequest", "Session", "SessionClosedError", "SessionStats"]

#: request families the submission surface accepts
JOB_FAMILIES = ("matvec", "gramian", "matmul")


@dataclass(frozen=True, eq=False)
class JobRequest:
    """One typed unit of work for :meth:`Session.submit`.

    The canonical submission type: the convenience wrappers
    (``submit_matvec``/``submit_gramian``/``submit_matmul``) construct
    one of these and hand it to ``submit``. Any object exposing the
    same attributes — notably :class:`repro.serve.workload.Request` —
    is accepted by ``submit`` directly.

    Attributes
    ----------
    family:
        ``"matvec" | "gramian" | "matmul"``.
    operand:
        The job's input: the vector for matvec/gramian, the left
        factor ``A`` for matmul.
    transpose:
        Matvec only: serve ``X.T @ operand`` instead of
        ``X @ operand``.
    operand_b:
        Matmul only: the right factor ``B``.
    p, q:
        Matmul only: the ``(p, q)`` factor partitioning.
    """

    family: str
    operand: np.ndarray
    transpose: bool = False
    operand_b: np.ndarray | None = None
    p: int = 2
    q: int = 2

    def __post_init__(self) -> None:
        if self.family not in JOB_FAMILIES:
            raise ValueError(
                f"unknown request family {self.family!r}; "
                f"expected one of {JOB_FAMILIES}"
            )
        if self.family == "matmul" and self.operand_b is None:
            raise ValueError("matmul requests need operand_b (the right factor)")


class JobHandle:
    """Future-like handle for one submitted job.

    ``result()`` forces the session to flush the job's batch (if still
    pending) and returns the decoded array; ``record`` then exposes the
    round's timing/accounting (shared by every job the round served).
    """

    #: set by the session when observability is on:
    #: (trace_id, session span, root span if the session opened it)
    _trace: tuple[str, Any, Any] | None = None

    #: set at finalize when auditing is on: the sequence number of the
    #: audit-chain commitment backing this job's round
    _audit_seq: int | None = None

    def __init__(self, session: "Session", kind: str, family: str) -> None:
        self._session = session
        self.kind = kind
        self.family = family
        self._outcome: RoundOutcome | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._outcome is not None or self._error is not None

    def _resolve(self, outcome: RoundOutcome) -> None:
        self._outcome = outcome

    def _fail(self, exc: BaseException) -> None:
        self._error = exc

    def outcome(self) -> RoundOutcome:
        """The full :class:`~repro.core.results.RoundOutcome` (flushes
        the pending batch and finalizes in-flight rounds up to this
        job's own on first call)."""
        if not self.done():
            self._session._resolve_handle(self)
        if self._error is not None:
            raise self._error
        assert self._outcome is not None
        return self._outcome

    def result(self) -> np.ndarray:
        """The decoded array (vector for matvec/gramian, matrix for
        matmul)."""
        return self.outcome().vector

    @property
    def record(self) -> RoundRecord:
        """Timing/accounting of the round that served this job."""
        return self.outcome().record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return f"JobHandle({self.kind}:{self.family}, {state})"


@dataclass
class SessionStats:
    """Aggregated service telemetry, updated live by the session."""

    jobs_submitted: int = 0
    jobs_served: int = 0
    rounds_executed: int = 0
    #: number of jobs each executed round served (len == rounds_executed)
    jobs_per_round: list[int] = dc_field(default_factory=list)
    #: one record per executed round, in execution order
    records: list[RoundRecord] = dc_field(default_factory=list)
    #: one outcome per end_iteration() call
    adaptations: list[AdaptationOutcome] = dc_field(default_factory=list)
    #: in-flight depth observed at each dispatch (1 = nothing else was
    #: in flight; >= 2 = this round overlapped earlier ones)
    dispatch_depths: list[int] = dc_field(default_factory=list)
    #: fleet membership transitions (dead/dropped/rejoined/joined) in
    #: observation order, drained from the backend at iteration
    #: boundaries and on close — heartbeat-declared deaths show up
    #: here explicitly, not just as never-arrived stragglers
    membership_events: list[MembershipEvent] = dc_field(default_factory=list)
    #: the backend's live wire-level tallies (socket backends with
    #: observability on; ``None`` otherwise — keeps :meth:`summary`
    #: byte-identical to an untraced build when the knob is off)
    wire: Any = None

    @property
    def batched_jobs(self) -> int:
        """Jobs that shared their round with at least one other job."""
        return sum(b for b in self.jobs_per_round if b > 1)

    @property
    def batching_factor(self) -> float:
        """Mean jobs per executed round (1.0 = no coalescing)."""
        if not self.rounds_executed:
            return 0.0
        return self.jobs_served / self.rounds_executed

    @property
    def verify_time(self) -> float:
        return sum(r.verify_time for r in self.records)

    @property
    def decode_time(self) -> float:
        return sum(r.decode_time for r in self.records)

    @property
    def reencode_time(self) -> float:
        return sum(a.reencode_time for a in self.adaptations)

    @property
    def rejected_workers(self) -> tuple[int, ...]:
        """Workers that ever failed verification, sorted."""
        return tuple(sorted({w for r in self.records for w in r.rejected_workers}))

    # ------------------------------------------------------------------
    # membership telemetry
    # ------------------------------------------------------------------
    @property
    def dead_workers(self) -> tuple[int, ...]:
        """Workers ever declared dead (socket/heartbeat), sorted."""
        return self._membership_ids("dead")

    @property
    def rejoined_workers(self) -> tuple[int, ...]:
        """Previously lost worker ids that re-registered, sorted."""
        return self._membership_ids("rejoined")

    @property
    def joined_workers(self) -> tuple[int, ...]:
        """Brand-new worker ids admitted after startup, sorted."""
        return self._membership_ids("joined")

    @property
    def membership_changes(self) -> int:
        """Total membership transitions observed."""
        return len(self.membership_events)

    def _membership_ids(self, kind: str) -> tuple[int, ...]:
        return tuple(
            sorted({e.worker_id for e in self.membership_events if e.kind == kind})
        )

    # ------------------------------------------------------------------
    # round-time telemetry (feeds the serving layer's deadline batcher)
    # ------------------------------------------------------------------
    @property
    def round_durations(self) -> list[float]:
        """Backend-clock duration of every executed round, in order."""
        return [r.duration for r in self.records]

    @property
    def mean_round_time(self) -> float:
        """Mean round duration over the whole session (0.0 if none)."""
        durations = self.round_durations
        if not durations:
            return 0.0
        return float(sum(durations)) / len(durations)

    def recent_round_time(self, window: int = 8, family: str | None = None) -> float:
        """Mean duration of the last ``window`` rounds (0.0 if none) —
        the live signal the serving layer blends with the cost-model
        prior when estimating how long the next round will take.
        ``family`` restricts to rounds of one encoded family (matched
        against the records' ``round_name``), so a gramian-heavy
        stretch does not skew a matvec estimate."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        records = self.records
        if family is not None:
            records = [r for r in records if r.round_name == family]
        durations = [r.duration for r in records[-window:]]
        if not durations:
            return 0.0
        return float(sum(durations)) / len(durations)

    # ------------------------------------------------------------------
    # pipeline telemetry
    # ------------------------------------------------------------------
    @property
    def max_inflight_depth(self) -> int:
        """Deepest in-flight window ever observed at a dispatch."""
        return max(self.dispatch_depths, default=0)

    @property
    def pipeline_occupancy(self) -> float:
        """Mean in-flight depth at dispatch (1.0 = strictly serial)."""
        if not self.dispatch_depths:
            return 0.0
        return float(sum(self.dispatch_depths)) / len(self.dispatch_depths)

    @property
    def rounds_overlapped(self) -> int:
        """Rounds dispatched while at least one other was in flight."""
        return sum(1 for d in self.dispatch_depths if d >= 2)

    def summary(self) -> str:
        text = (
            f"{self.jobs_served}/{self.jobs_submitted} jobs served in "
            f"{self.rounds_executed} rounds "
            f"(batching x{self.batching_factor:.2f}, "
            f"pipeline depth {self.pipeline_occupancy:.2f}); "
            f"verify {self.verify_time:.4f}s, decode {self.decode_time:.4f}s, "
            f"re-encode {self.reencode_time:.4f}s"
        )
        if self.membership_events:
            text += (
                f"; membership: {len(self.dead_workers)} died, "
                f"{len(self.rejoined_workers)} rejoined, "
                f"{len(self.joined_workers)} joined"
            )
        if self.wire is not None:
            w = self.wire
            text += (
                f"; wire: {w.frames_out} frames/{w.bytes_out}B out, "
                f"{w.frames_in} frames/{w.bytes_in}B in, "
                f"{w.crc_rejects} crc rejects"
            )
        return text


class Session:
    """A live coded-computing service over one dataset.

    Construct with :meth:`create` (config-driven, owns the backend) or
    :meth:`from_master` (wraps an already-wired master — how the
    trainers keep accepting bare masters). Use as a context manager to
    release backend resources deterministically.
    """

    def __init__(
        self,
        master: Any,
        *,
        config: SessionConfig | None = None,
        owns_backend: bool = False,
    ) -> None:
        self.master = master
        self.backend: Backend = master.backend
        self.field = master.field
        self.config = config
        self.batch_window = (
            config.batch_window
            if config
            else SessionConfig.__dataclass_fields__["batch_window"].default
        )
        self.max_inflight_rounds = (
            config.max_inflight_rounds
            if config
            else SessionConfig.__dataclass_fields__["max_inflight_rounds"].default
        )
        self.elastic_membership = (
            config.elastic_membership
            if config
            else SessionConfig.__dataclass_fields__["elastic_membership"].default
        )
        self._owns_backend = owns_backend
        self._pending: dict[str, list[tuple[JobHandle, np.ndarray]]] = {}
        self._stats = SessionStats()
        self.obs: Observability | None = (
            Observability() if config is not None and config.observability else None
        )
        if self.obs is not None:
            # the backend consults this to trace dispatches (and, on the
            # socket backends, to ask worker daemons for their sub-spans)
            self.backend.obs = self.obs
            reg = self.obs.registry
            self._obs_rounds = reg.counter(
                "session_rounds_total", "rounds finalized, by family"
            )
            self._obs_jobs = reg.counter(
                "session_jobs_served_total", "jobs resolved by finalized rounds"
            )
            self._obs_round_hist = reg.histogram(
                "session_round_duration_seconds", "finalized round duration"
            )
            self._obs_verify = reg.histogram(
                "session_verify_seconds", "per-round master verification time"
            )
            self._obs_decode = reg.histogram(
                "session_decode_seconds", "per-round master decode time"
            )
            #: (kind, family) -> shared (root_attrs, child_attrs) for
            #: submit spans (the tracer copies on drain)
            self._trace_attrs: dict[tuple[str, str], tuple[dict, dict]] = {}
            wire = getattr(self.backend, "wire", None)
            if wire is not None:
                self._stats.wire = wire
                backend_name = config.backend if config else "unknown"
                reg.register_collector(
                    lambda r, w=wire, b=backend_name: w.collect_into(r, b)
                )
        self.audit: AuditLog | None = (
            AuditLog() if config is not None and config.audit else None
        )
        if self.audit is not None:
            # arm the primary master (auxiliary masters are armed as
            # they are built) and ask the socket backends to request
            # worker countersignatures on every round frame
            self.master.audit = self.audit
            self.backend.attest = True
            if self.obs is not None:
                # the live /audit telemetry endpoints read through obs
                self.obs.audit = self.audit
        self._scheduler = RoundScheduler(
            self.max_inflight_rounds,
            on_dispatched=self._stats.dispatch_depths.append,
            on_finalized=self._note_finalized,
        )
        self._gramian_master: Any = None
        self._x: np.ndarray | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, config: SessionConfig) -> "Session":
        """Build field → workers → backend → master from one config,
        resolving the backend and master by registry name."""
        field = config.build_field()
        workers = config.build_workers()
        backend = resolve_backend(config.backend)(
            config, field, workers, config.build_rng()
        )
        try:
            master = resolve_master(config.master)(
                config, backend, config.build_rng(offset=1)
            )
        except BaseException:
            backend.close()
            raise
        return cls(master, config=config, owns_backend=True)

    @classmethod
    def from_master(cls, master: Any) -> "Session":
        """Wrap an existing master/backend pair (borrowed — closing the
        session does not close the backend)."""
        return cls(master, owns_backend=False)

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def load(self, x: np.ndarray) -> float:
        """Encode ``x`` and ship shares/keys; returns the backend-clock
        seconds spent on distribution."""
        self._check_open()
        self._x = self.field.asarray(x)
        return self.master.setup(self._x)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request: Any) -> JobHandle:
        """The canonical typed entry point: submit one
        :class:`JobRequest` (or compatible object), get one
        :class:`JobHandle` — the single future type of the API.

        ``request`` is duck-typed (so :class:`repro.serve.workload.
        Request` — or any compatible object — can be submitted without
        this module importing the serving layer): it must expose
        ``family`` (``"matvec" | "gramian" | "matmul"``) and
        ``operand``, plus optionally ``transpose`` for matvec and
        ``operand_b``/``p``/``q`` for matmul.

        Matvec and gramian jobs coalesce per family into one broadcast
        round at flush time. Matmul rounds broadcast nothing (factors
        are pre-shipped at submission), so they skip the batching queue
        and dispatch immediately — but they enter the pipeline window
        like any other round, so their finalization keeps the FIFO
        master-core order and the pipeline telemetry sees them.
        """
        self._check_open()
        family = request.family
        if family == "matvec":
            fam = "bwd" if bool(getattr(request, "transpose", False)) else "fwd"
            return self._enqueue(
                "matvec", fam, self.field.asarray(request.operand), request
            )
        if family == "gramian":
            self._ensure_gramian_master()
            return self._enqueue(
                "gramian", "gram", self.field.asarray(request.operand), request
            )
        if family == "matmul":
            from repro.core.matmul import CodedMatmulAVCCMaster

            scheme = self._aux_scheme()
            s = scheme.s if scheme is not None else 0
            m = scheme.m if scheme is not None else 0
            master = CodedMatmulAVCCMaster(
                self.backend,
                p=int(getattr(request, "p", 2)),
                q=int(getattr(request, "q", 2)),
                s=s,
                m=m,
                probes=self._aux_probes(),
                rng=self.master.rng,
            )
            if self.audit is not None:
                master.audit = self.audit
            master.setup(request.operand, request.operand_b)
            handle = JobHandle(self, "matmul", "matmul")
            self._stats.jobs_submitted += 1
            if self.obs is not None:
                self._trace_submit(handle, request)
            self._scheduler.submit(master, "matmul", [handle], [])
            return handle
        raise ValueError(
            f"unknown request family {family!r}; expected matvec|gramian|matmul"
        )

    def submit_matvec(self, operand: np.ndarray, *, transpose: bool = False) -> JobHandle:
        """Queue one coded matrix–vector job: ``X @ operand`` (or
        ``X.T @ operand`` with ``transpose=True``). Thin wrapper over
        :meth:`submit`."""
        return self.submit(
            JobRequest(family="matvec", operand=operand, transpose=transpose)
        )

    def submit_gramian(self, w: np.ndarray) -> JobHandle:
        """Queue one degree-2 job: ``X^T X w`` served by a lazily
        constructed :class:`~repro.core.gramian.GramianAVCCMaster`
        sharing this session's backend (requires a scheme feasible at
        ``deg_f=2``). Thin wrapper over :meth:`submit`."""
        return self.submit(JobRequest(family="gramian", operand=w))

    def submit_matmul(
        self, a: np.ndarray, b: np.ndarray, *, p: int = 2, q: int = 2
    ) -> JobHandle:
        """Run one verified coded matrix–matrix job ``A @ B`` with
        ``(p, q)`` factor partitioning. With the serial window
        (``max_inflight_rounds=1``) the handle resolves before this
        method returns. Thin wrapper over :meth:`submit`."""
        return self.submit(
            JobRequest(family="matmul", operand=a, operand_b=b, p=p, q=q)
        )

    def _enqueue(
        self, kind: str, family: str, operand: np.ndarray, request: Any = None
    ) -> JobHandle:
        handle = JobHandle(self, kind, family)
        self._stats.jobs_submitted += 1
        if self.obs is not None:
            # before the append: a window-filling enqueue flushes (and
            # may finalize) immediately, and the round graft needs the
            # handle's trace context to exist by then
            self._trace_submit(handle, request)
        self._pending.setdefault(family, []).append((handle, operand))
        if len(self._pending[family]) >= self.batch_window:
            self.flush(family)
        return handle

    def _trace_submit(self, handle: JobHandle, request: Any) -> None:
        """Open (or join) the request's trace: gateway-admitted
        requests carry a ``request_id`` and join their ``req-<id>``
        trace; bare submissions get a fresh ``job-<n>`` root."""
        assert self.obs is not None
        rid = getattr(request, "request_id", None)
        trace_id = (
            f"req-{rid}" if rid is not None else f"job-{self._stats.jobs_submitted}"
        )
        akey = (handle.kind, handle.family)
        attrs = self._trace_attrs.get(akey)
        if attrs is None:
            attrs = self._trace_attrs[akey] = (
                {"family": handle.family},
                {"kind": handle.kind, "family": handle.family},
            )
        owned_root, span = self.obs.tracer.begin_request(
            trace_id,
            "request",
            "session",
            self.backend.now,
            child_attrs=attrs[1],
            root_attrs=attrs[0],
        )
        handle._trace = (trace_id, span, owned_root)

    # ------------------------------------------------------------------
    # batching + pipelining
    # ------------------------------------------------------------------
    def flush(self, family: str | None = None) -> None:
        """Dispatch pending jobs now — one coalesced round per family.

        ``family=None`` flushes every queue (in first-submission order).
        With ``max_inflight_rounds = 1`` each dispatched round is also
        finalized before the next (serial semantics); with a wider
        window the rounds are left *in flight* — flush does not wait
        for workers or decode, and the handles resolve when the
        pipeline finalizes their round (``result()``,
        ``end_iteration``, window pressure, or ``close``).
        """
        if self._pending:
            self._check_open()
        families = [family] if family is not None else list(self._pending)
        for fam in families:
            jobs = self._pending.pop(fam, [])
            if not jobs:
                continue
            handles = [h for h, _ in jobs]
            operands = [op for _, op in jobs]
            master = self._gramian_master if fam == "gram" else self.master
            self._scheduler.submit(master, fam, handles, operands)

    def drain(self) -> None:
        """Finalize every in-flight round (does not dispatch pending
        queues — call :meth:`flush` first for a full barrier)."""
        self._scheduler.drain()

    def rounds_in_flight(self) -> int:
        """Rounds dispatched but not yet finalized."""
        return self._scheduler.in_flight

    def _resolve_handle(self, handle: JobHandle) -> None:
        """Bring ``handle`` to resolution: dispatch its family's queue
        if it is still pending, then finalize in-flight rounds in FIFO
        order up to (and including) its own. Rounds dispatched *after*
        the handle's are left in flight."""
        if self._closed:
            # a clean close resolves every handle; reaching here means
            # the job never ran and never will
            raise SessionClosedError(
                f"session is closed; job {handle.kind}:{handle.family} "
                "was never executed"
            )
        if any(h is handle for h, _ in self._pending.get(handle.family, ())):
            self.flush(handle.family)
        self._scheduler.drain_until(handle.done)
        if not handle.done():  # pragma: no cover - internal invariant
            raise RuntimeError("job handle lost by the scheduler")

    def _note_finalized(
        self, rec: InflightRound, outcomes: list[RoundOutcome]
    ) -> None:
        self._note_round(rec.jobs, outcomes[0].record)
        if self.audit is not None and len(self.audit) > 0:
            # the commitment was appended inside complete_round, which
            # ran synchronously just before this callback — the chain
            # head is this round's record
            seq = self.audit.records[-1].seq
            for h in rec.jobs:
                h._audit_seq = seq
        if self.obs is not None:
            self._trace_round(rec, outcomes[0].record)

    def _trace_round(self, rec: InflightRound, record: RoundRecord) -> None:
        """Record the round's span tree once (in its own ``round-<n>``
        trace, worker-daemon sub-spans anchored inside it) and close
        every rider's spans with a link to it in one batched event."""
        assert self.obs is not None
        tracer = self.obs.tracer
        round_tid = self.obs.next_round_trace_id()
        worker_spans = getattr(rec.handle, "worker_spans", None)
        tracer.record_round(
            round_tid, record, dict(worker_spans) if worker_spans else None
        )
        contexts = [c for c in (h._trace for h in rec.jobs) if c is not None]
        if contexts:
            tracer.link_rounds(
                contexts,
                record.t_start,
                record.t_end,
                round_tid,
                record.round_name,
            )
        self._obs_rounds.inc(family=record.round_name)
        self._obs_jobs.inc(float(len(rec.jobs)))
        self._obs_round_hist.observe(record.duration, family=record.round_name)
        self._obs_verify.observe(record.verify_time)
        self._obs_decode.observe(record.decode_time)

    def _note_round(self, handles: list[JobHandle], record: RoundRecord) -> None:
        self._stats.rounds_executed += 1
        self._stats.jobs_per_round.append(len(handles))
        self._stats.jobs_served += len(handles)
        self._stats.records.append(record)

    # ------------------------------------------------------------------
    # iteration boundary / telemetry
    # ------------------------------------------------------------------
    def end_iteration(self) -> AdaptationOutcome:
        """Flush all queues and **drain the pipeline**, then run the
        master's adaptation step (dynamic re-coding for AVCC;
        bookkeeping otherwise). Draining first is what keeps a re-code
        sound under pipelining: every in-flight round finalizes against
        the shares/keys it was planned with, and no round ever mixes
        two scheme configurations.

        With ``elastic_membership`` (the default) the drained quiesce
        point is also where the session reconciles the coding roster
        with *fleet* membership: pending joiners are admitted into the
        backend, heartbeat-declared deaths are evicted, and the master
        adopts the new roster — growing ``N`` when capacity arrived,
        not just shrinking ``K`` — with the extra share-shipping time
        folded into the outcome's ``reencode_time``.
        """
        self._check_open()
        self.flush()
        self._scheduler.drain()
        if self._gramian_master is not None:
            self._gramian_master.end_iteration()
        out = self.master.end_iteration()
        if out.dropped_workers and self._gramian_master is not None:
            # the matvec master evicted workers from the shared pool;
            # the gramian master must stop dispatching to them too
            self._gramian_master.drop_workers(out.dropped_workers)
        if self.elastic_membership:
            out = self._reconcile_membership(out)
        self._ingest_membership_events()
        self._stats.adaptations.append(out)
        return out

    def _reconcile_membership(self, out: AdaptationOutcome) -> AdaptationOutcome:
        """Admit pending joins, evict heartbeat-declared deaths, and
        have the master adopt the resulting roster. Pipeline is
        already drained (callers guarantee it), so admission cannot
        land mid-round."""
        if not hasattr(self.master, "adopt_membership"):
            return out
        joined = self.backend.admit_workers()
        view = self.backend.membership()
        active = set(self.master.active)
        departed = tuple(sorted((set(view.dead) & active) - set(joined)))
        if not joined and not departed:
            return out
        extra = self.master.adopt_membership(joined=joined, departed=departed)
        if departed and self._gramian_master is not None:
            gram_active = set(self._gramian_master.active)
            gone = [w for w in departed if w in gram_active]
            if gone:
                self._gramian_master.drop_workers(gone)
        from dataclasses import replace

        return replace(
            out,
            reencode_time=out.reencode_time + extra,
            scheme=self.master.scheme_now,
            joined_workers=tuple(joined),
            departed_workers=departed,
        )

    def release_workers(self, worker_ids: Any) -> AdaptationOutcome:
        """Scale *down* deliberately: drain the pipeline, evict the
        given live workers from the coding roster (re-deriving K for
        the smaller fleet), and disconnect them from the backend.
        Reversible — a released worker that later re-dials is admitted
        back at the next quiesce. Returns the adaptation outcome
        (also appended to :attr:`stats`)."""
        self._check_open()
        ids = tuple(sorted({int(w) for w in worker_ids}))
        if not ids:
            raise ValueError("release_workers needs at least one worker id")
        if not hasattr(self.master, "adopt_membership"):
            raise RuntimeError(
                f"this session's master ({type(self.master).__name__}) does "
                "not support membership changes"
            )
        self.flush()
        self._scheduler.drain()
        stale = [w for w in ids if w not in set(self.master.active)]
        if stale:
            raise ValueError(f"cannot release workers not in the roster: {stale}")
        extra = self.master.adopt_membership(departed=ids)
        self.backend.drop_workers(ids)
        if self._gramian_master is not None:
            gram_active = set(self._gramian_master.active)
            gone = [w for w in ids if w in gram_active]
            if gone:
                self._gramian_master.drop_workers(gone)
        self._ingest_membership_events()
        out = AdaptationOutcome(
            reencode_time=extra,
            scheme=self.master.scheme_now,
            departed_workers=ids,
        )
        self._stats.adaptations.append(out)
        return out

    def _ingest_membership_events(self) -> None:
        """Drain the backend's membership-transition log into stats."""
        self._stats.membership_events.extend(self.backend.take_membership_events())

    @property
    def stats(self) -> SessionStats:
        return self._stats

    @property
    def now(self) -> float:
        """The backend clock (virtual on the simulator, wall otherwise)."""
        return self.backend.now

    @property
    def scheme_now(self) -> tuple[int, int]:
        """The ``(N_t, K_t)`` currently in effect."""
        return self.master.scheme_now

    def pending_jobs(self) -> int:
        return sum(len(v) for v in self._pending.values())

    def queue_depths(self) -> dict[str, int]:
        """Pending (submitted but not yet dispatched) jobs per encoded
        family — session-side queue-depth telemetry for dashboards and
        autoscaling policies (the serving gateway keeps its own
        request-level queues in front of this one)."""
        return {fam: len(jobs) for fam, jobs in self._pending.items() if jobs}

    def estimate_round_time(self, family: str = "fwd", width: int = 1) -> float:
        """Expected backend-clock duration of one ``family`` round
        serving ``width`` coalesced jobs.

        The estimate blends two signals:

        * an a-priori :class:`~repro.runtime.costmodel.CostModel`
          prior — broadcast transfer, nominal worker compute over one
          share block, result upload, and master-side verify/decode
          arithmetic (stragglers are *not* in the prior; callers that
          care add their own safety margin);
        * the live mean of recently executed round durations from
          :attr:`stats` (which *does* include straggler waiting and
          contention), preferring rounds of the *same family* and
          falling back to the all-family mean only while this family
          has never run (cold start).

        With both available the estimate is their average; with only
        one, that one; with neither (no data loaded, no rounds run),
        0.0. Families: ``"fwd"``/``"matvec"``, ``"bwd"``,
        ``"gram"``/``"gramian"`` — anything else falls back to the
        observed signal alone.
        """
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        key = {"matvec": "fwd", "gramian": "gram"}.get(family, family)
        observed = self._stats.recent_round_time(family=key)
        if observed == 0.0:
            observed = self._stats.recent_round_time()
        prior = self._prior_round_time(family, width)
        if prior > 0.0 and observed > 0.0:
            return 0.5 * (prior + observed)
        return prior if prior > 0.0 else observed

    def _prior_round_time(self, family: str, width: int) -> float:
        """Cost-model prior for :meth:`estimate_round_time` (0.0 when
        no data is loaded or the family has no closed-form shape)."""
        if self._x is None:
            return 0.0
        m, d = self._x.shape
        k = max(1, self.master.scheme_now[1])
        if family in ("fwd", "matvec"):
            out_len, op_len, deg = m, d, 1
        elif family == "bwd":
            out_len, op_len, deg = d, m, 1
        elif family in ("gram", "gramian"):
            out_len, op_len, deg = d, d, 2
        else:
            return 0.0
        block = -(-out_len // k)  # ceil: padded block rows per worker
        cm = self.backend.cost_model
        from repro.core.base import MatvecMasterBase

        worker_macs = deg * block * op_len * width
        result_elems = deg * block * width
        master_macs = (
            k * result_elems  # one probe application per verification
            + MatvecMasterBase.lagrange_decode_macs(k, k, result_elems)
        )
        return (
            cm.transfer_time(op_len * width)  # operand broadcast
            + cm.worker_compute_time(worker_macs)  # nominal worker compute
            + cm.transfer_time(result_elems)  # result upload
            + cm.master_compute_time(master_macs)  # verify + decode
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, *, flush: bool = True) -> None:
        """Release the backend (if owned); by default pending work is
        flushed and the pipeline drained first so outstanding handles
        resolve. With ``flush=False`` (the exception-unwind path)
        pending jobs and in-flight rounds are abandoned and their
        handles fail with :class:`SessionClosedError` instead."""
        if self._closed:
            return
        try:
            if flush:
                try:
                    if self.pending_jobs():
                        self.flush()
                    self._scheduler.drain()
                except BaseException as exc:
                    # a round failed while winding down: the remaining
                    # in-flight rounds and pending jobs can no longer
                    # run — cancel/fail them so no handle is left
                    # unresolved, then surface the root cause
                    self._abandon(exc)
                    raise
            else:
                self._abandon(SessionClosedError("session closed with pending jobs"))
        finally:
            try:
                self._ingest_membership_events()
            except Exception:  # pragma: no cover - telemetry best-effort
                pass
            self._closed = True
            if self._owns_backend:
                self.backend.close()

    def _abandon(self, exc: BaseException) -> None:
        """Fail every pending job and in-flight round with ``exc``."""
        for jobs in self._pending.values():
            for handle, _ in jobs:
                if not handle.done():
                    handle._fail(exc)
        self._pending.clear()
        self._scheduler.abandon(exc)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> bool:
        # don't run distributed work while the with-body is unwinding
        # from an exception (and don't mask that exception with a
        # flush-time failure)
        self.close(flush=exc[0] is None)
        return False

    def __iter__(self) -> Iterator[None]:  # pragma: no cover - guard
        raise TypeError("Session is not iterable; use submit_* handles")

    # ------------------------------------------------------------------
    def _aux_scheme(self) -> Any:
        """The SchemeParams auxiliary masters (gramian, matmul) derive
        their tolerances from: the config's when available, else the
        primary master's."""
        if self.config is not None:
            return self.config.scheme
        return getattr(self.master, "scheme", None)

    def _aux_probes(self) -> int:
        if self.config is not None:
            return self.config.probes
        return getattr(self.master, "probes", 1)

    def _ensure_gramian_master(self) -> None:
        if self._gramian_master is not None:
            return
        from repro.core.gramian import GramianAVCCMaster

        scheme = self._aux_scheme()
        if scheme is None:
            raise ValueError(
                "submit_gramian needs a SchemeParams; this session's master "
                f"({type(self.master).__name__}) carries none"
            )
        if self._x is None:
            raise RuntimeError("call session.load(x) before submit_gramian")
        self._gramian_master = GramianAVCCMaster(
            self.backend, scheme.with_(deg_f=2), probes=self._aux_probes(),
            rng=self.master.rng,
        )
        if self.audit is not None:
            self._gramian_master.audit = self.audit
        self._gramian_master.setup(self._x)

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError("session is closed")
