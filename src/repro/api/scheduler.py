"""The pipelined round scheduler: a bounded window of in-flight rounds.

PR 2's session executed rounds strictly one at a time — ``flush``
blocked inside the master until decode finished, so independent jobs on
different encoded families (fwd vs. bwd vs. gramian) and successive
serving requests serialized on a fleet that was mostly idle. AVCC's
core idea is that master-side verify/decode work overlaps straggler
waiting (paper Sec. IV-A verifies each arrival as it lands); this
module extends that overlap across *rounds*.

The masters' round lifecycle is an explicit state machine
(:class:`~repro.core.base.RoundPlan`: plan → dispatch → collect →
finalize), so the scheduler can hold several dispatched rounds open at
once:

* **dispatch** is non-blocking on every backend — the simulator
  pre-computes the arrival schedule (with per-worker busy-time queues,
  so concurrent rounds contend realistically), the thread pool
  multiplexes its workers, the process pool routes pipe replies by
  round id;
* **finalize** happens in dispatch (FIFO) order — the master core is
  one core; verify/decode of round *i* runs while the workers compute
  rounds *i+1 … i+W*;
* the window is bounded by ``SessionConfig.max_inflight_rounds`` = W.
  ``W = 1`` degenerates to the serial scheduler (every dispatch is
  finalized immediately — byte- and time-identical to PR 2's path);
  ``W >= 2`` pipelines.

Results are byte-identical across window sizes: which worker subset a
round decodes from may shift under contention, but any verified subset
of recovery-threshold size interpolates the same exact values — that
is the MDS property the masters already rely on for early stopping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.core.base import RoundPlan
from repro.core.results import RoundOutcome
from repro.runtime.backend import RoundHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import JobHandle

__all__ = ["InflightRound", "RoundScheduler", "SessionClosedError"]


class SessionClosedError(RuntimeError):
    """The session was closed; the operation (a submission, or
    resolving a job the session never got to execute) cannot run."""


@dataclass
class InflightRound:
    """One dispatched-but-not-finalized round in the window (the
    window deque itself carries the FIFO dispatch order)."""

    master: Any
    plan: RoundPlan
    handle: RoundHandle
    jobs: list["JobHandle"]


class RoundScheduler:
    """Bounded-window FIFO pipeline over the masters' round lifecycle.

    Parameters
    ----------
    max_inflight:
        Window bound W (>= 1). ``1`` is the serial scheduler.
    on_dispatched:
        Telemetry callback, invoked with the in-flight depth *after*
        each dispatch (so a depth >= 2 proves two rounds overlapped).
    on_finalized:
        Invoked with the finalized round and its outcomes, in finalize
        (= dispatch) order — the stats hook.
    """

    def __init__(
        self,
        max_inflight: int,
        on_dispatched: Callable[[int], None],
        on_finalized: Callable[[InflightRound, list[RoundOutcome]], None],
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._window: deque[InflightRound] = deque()
        self._on_dispatched = on_dispatched
        self._on_finalized = on_finalized

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Rounds currently dispatched but not finalized."""
        return len(self._window)

    def submit(
        self,
        master: Any,
        family: str,
        jobs: list["JobHandle"],
        operands: Sequence[np.ndarray],
    ) -> None:
        """Plan and dispatch one coalesced round for ``jobs``.

        Blocks only for window pressure: when W rounds are already in
        flight the oldest is finalized first. With ``W = 1`` the round
        is additionally finalized before returning (serial semantics —
        exactly the pre-pipeline session behavior).

        If anything raises before this round is in the window —
        finalizing an older round under window pressure included —
        the submitted jobs' handles fail with that exception (they
        were never dispatched, and the root cause is what the caller
        needs); no handle is ever silently lost.
        """
        try:
            while len(self._window) >= self.max_inflight:
                self.finalize_next()
            plan = master.plan_round(family, operands)
            handle = master.dispatch_plan(plan)
        except BaseException as exc:
            for h in jobs:
                if not h.done():
                    h._fail(exc)
            raise
        self._window.append(
            InflightRound(master=master, plan=plan, handle=handle, jobs=jobs)
        )
        self._on_dispatched(len(self._window))
        if self.max_inflight == 1:
            self.finalize_next()

    def finalize_next(self) -> None:
        """Finalize the oldest in-flight round: collect its arrival
        stream, verify/decode, resolve its job handles. On failure the
        round's backend handle is cancelled (idempotent, safe after
        ``result()``) so the round never keeps contending for workers,
        and its job handles fail with the root cause."""
        rec = self._window.popleft()
        try:
            outcomes = rec.master.complete_round(rec.plan, rec.handle)
        except BaseException as exc:
            try:
                rec.handle.cancel()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            for h in rec.jobs:
                if not h.done():
                    h._fail(exc)
            raise
        for h, out in zip(rec.jobs, outcomes):
            h._resolve(out)
        self._on_finalized(rec, outcomes)

    def drain(self) -> None:
        """Finalize every in-flight round (oldest first)."""
        while self._window:
            self.finalize_next()

    def drain_until(self, done: Callable[[], bool]) -> None:
        """Finalize rounds in FIFO order until ``done()`` turns true —
        a job waits only on rounds dispatched at or before its own."""
        while self._window and not done():
            self.finalize_next()

    def abandon(self, exc: BaseException) -> None:
        """Unwind path: cancel every in-flight round and fail its jobs
        instead of finalizing (used when the session closes without a
        flush, e.g. while an exception is propagating)."""
        while self._window:
            rec = self._window.popleft()
            try:
                rec.handle.cancel()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
            for h in rec.jobs:
                if not h.done():
                    h._fail(exc)
