"""The user-facing session API — one sanctioned way in.

The lower layers of this repro (``ff`` → ``coding`` → ``verify`` →
``runtime`` → ``core``) are deliberately explicit: every experiment can
reach any seam. But *using* the system should not require hand-wiring
six layers. This package is the production-shaped front door:

    from repro.api import JobRequest, Session, SessionConfig
    from repro.coding import SchemeParams

    cfg = SessionConfig(scheme=SchemeParams(n=6, k=3, s=1, m=1))
    with Session.create(cfg) as sess:
        sess.load(x)                           # encode, ship shares + keys
        req = JobRequest(family="matvec", operand=w)
        z = sess.submit(req).result()          # verified, exact X @ w
        z = sess.submit_matvec(w).result()     # same thing, sugar

Three pieces:

``SessionConfig`` (:mod:`repro.api.config`)
    One validated, ``to_dict``/``from_dict`` round-trippable object:
    field prime, ``(N, K, S, M, T)`` scheme, master and backend *names*,
    per-worker straggler/Byzantine specs, cost-model overrides and the
    batching window. Configs are plain data — storable in JSON/TOML,
    shippable across processes.

``Session`` (:mod:`repro.api.session`)
    A context-managed service over one dataset.
    ``Session.submit(request)`` is the canonical entry point: it takes
    one typed :class:`~repro.api.session.JobRequest` (or any
    compatible object, e.g. a serve-layer ``Request``) and returns a
    :class:`~repro.api.session.JobHandle` — **the single future type
    of this API**: every submission path yields one, and
    ``handle.result()`` / ``handle.outcome()`` / ``handle.record`` are
    the only ways results come back. The ``submit_matvec`` /
    ``submit_gramian`` / ``submit_matmul`` conveniences are thin
    wrappers that build a ``JobRequest`` and call ``submit``.
    Concurrently submitted jobs against the same encoded family are
    **coalesced into a single broadcast round** (one ``RoundJob``
    serving many jobs — the heavy-traffic path), and
    ``session.stats`` surfaces per-round verify/decode/adaptation
    telemetry plus pipeline occupancy.

``RoundScheduler`` (:mod:`repro.api.scheduler`) — the pipelined path
    Rounds move through an explicit plan → dispatch → collect →
    finalize lifecycle; with ``SessionConfig.max_inflight_rounds >= 2``
    the session keeps several dispatched rounds in flight, overlapping
    master-side verify/decode with worker compute across rounds.
    ``flush`` becomes non-blocking dispatch; ``result()`` waits only
    for its own round; ``end_iteration`` drains the window before any
    dynamic re-code. Results are byte-identical to serial execution.

Registries (:mod:`repro.api.registry`) — the extension point
    ``Session.create`` resolves backends and masters **by name**
    through two registries pre-populated with the built-ins
    (backends ``"sim" | "threaded" | "process" | "tcp" | "async_tcp"``;
    masters ``"avcc" | "lcc" | "static_vcc" | "uncoded"``). Third-party
    code
    plugs in without touching ``repro`` internals::

        from repro.api import register_backend, register_master

        def my_backend(config, field, workers, rng):   # -> Backend
            return MyRpcCluster(field, workers, **config.backend_options)

        register_backend("my_rpc", my_backend)
        Session.create(cfg.with_(backend="my_rpc"))

    A ``BackendFactory`` receives ``(config, field, workers, rng)`` and
    returns a :class:`~repro.runtime.backend.Backend`; a
    ``MasterFactory`` receives ``(config, backend, rng)`` and returns a
    master exposing the coded matvec service. Duplicate names raise
    unless ``overwrite=True`` — re-binding a built-in is explicit.

The layer-by-layer wiring remains available and importable (the tests
pin it); this package is sugar plus policy, not a wall.

Above this package sits :mod:`repro.serve` — the multi-tenant serving
gateway (traffic generation, admission control, deadline-aware
micro-batching). It drives sessions purely through this API:
``Session.submit(request)`` routes typed requests, and its batch
policies consume the round-time telemetry
(``Session.estimate_round_time``, blending a cost-model prior with
``SessionStats.recent_round_time``); ``queue_depths`` exposes the
session-side pending-job depth for dashboards and future autoscaling.
"""

from repro.api.config import SessionConfig, WorkerSpec
from repro.api.registry import (
    backend_names,
    master_names,
    register_backend,
    register_master,
    resolve_backend,
    resolve_master,
)
from repro.api.scheduler import RoundScheduler, SessionClosedError
from repro.api.session import JobHandle, JobRequest, Session, SessionStats

__all__ = [
    "JobHandle",
    "JobRequest",
    "RoundScheduler",
    "Session",
    "SessionClosedError",
    "SessionConfig",
    "SessionStats",
    "WorkerSpec",
    "backend_names",
    "master_names",
    "register_backend",
    "register_master",
    "resolve_backend",
    "resolve_master",
]
