"""Round records ⇄ spans.

Forward direction (``round_forest``): after a round finalizes, its
:class:`~repro.runtime.trace.RoundRecord` — plus any worker-daemon
sub-spans that came back in result frames — is lowered into a closed
span forest (round → broadcast / collect / worker:<id> / verify /
decode) that the session records once per round.

Reverse direction (``recorder_from_tracer`` / ``mean_breakdown``): the
same spans carry the full cost attributes, so the Fig. 4/5 pipeline's
per-iteration compute/communication/verification/decoding breakdown can
be reconstructed from a tracer alone — the experiments' recorder and
the live telemetry are views over one set of numbers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping, Sequence

from repro.runtime.trace import RoundRecord, TraceRecorder

from .trace import Span, Tracer

__all__ = [
    "mean_breakdown",
    "recorder_from_tracer",
    "round_forest",
    "round_spans",
]

#: trace-id prefix for the per-round span trees request traces link to
ROUND_TRACE_PREFIX = "round-"


def round_forest(
    record: RoundRecord,
    worker_spans: Mapping[int, Sequence[Sequence[Any]]] | None = None,
) -> list[dict[str, Any]]:
    """Lower one finalized round into a local-parent span forest
    (consumed by :meth:`repro.obs.trace.Tracer.record_forest`).

    ``worker_spans`` maps worker id → ``[[name, t0, t1], ...]`` with
    times relative to the daemon's frame-receipt instant; they are
    anchored so the last sub-span ends at the master-observed arrival,
    putting master-side wait and worker-side truth on one timeline.
    """
    t0, t3 = record.t_start, record.t_end

    def clamp(a: float, b: float) -> tuple[float, float]:
        a = min(max(a, t0), t3)
        return a, min(max(b, a), t3)

    forest: list[dict[str, Any]] = [
        {
            "name": "round",
            "t_start": t0,
            "t_end": t3,
            "parent": None,
            "attrs": {
                "round_name": record.round_name,
                "iteration": record.iteration,
                "compute_wait": record.compute_wait,
                "comm_time": record.comm_time,
                "verify_time": record.verify_time,
                "decode_time": record.decode_time,
                "n_collected": record.n_collected,
                "n_verified": record.n_verified,
                "n_rejected": record.n_rejected,
            },
        }
    ]
    b0, b_end = clamp(t0, t0 + record.comm_time)
    forest.append(
        {"name": "round.broadcast", "t_start": b0, "t_end": b_end, "parent": 0}
    )
    c0, c_end = clamp(b_end, b_end + record.compute_wait)
    collect_idx = len(forest)
    forest.append(
        {"name": "round.collect", "t_start": c0, "t_end": c_end, "parent": 0}
    )
    used = set(record.used_workers)
    for wid, latency in record.worker_latencies:
        # capped at the collect window: a straggler arriving after the
        # master stopped waiting still nests gap-free (the raw latency
        # survives in the attrs)
        w0 = min(max(b_end, t0), c_end)
        w_end = min(max(b_end + latency, w0), c_end)
        worker_idx = len(forest)
        forest.append(
            {
                "name": f"worker:{wid}",
                "t_start": w0,
                "t_end": w_end,
                "parent": collect_idx,
                "attrs": {
                    "worker_id": wid,
                    "used": wid in used,
                    "latency": latency,
                },
            }
        )
        subs = (worker_spans or {}).get(wid) or ()
        if subs:
            # anchor daemon-relative offsets so the last sub-span ends
            # at the master-observed arrival time
            anchor = w_end - float(subs[-1][2])
            for name, r0, r1 in subs:
                s0 = max(w0, anchor + float(r0))
                s1 = min(w_end, max(anchor + float(r1), s0))
                forest.append(
                    {
                        "name": str(name),
                        "t_start": s0,
                        "t_end": s1,
                        "parent": worker_idx,
                    }
                )
    v0, v_end = clamp(c_end, c_end + record.verify_time)
    forest.append({"name": "round.verify", "t_start": v0, "t_end": v_end, "parent": 0})
    d0, d_end = clamp(v_end, v_end + record.decode_time)
    forest.append({"name": "round.decode", "t_start": d0, "t_end": d_end, "parent": 0})
    return forest


def round_spans(tracer: Tracer) -> list[Span]:
    """Every recorded top-level round span, in recording order."""
    out: list[Span] = []
    for tid in tracer.trace_ids():
        if not tid.startswith(ROUND_TRACE_PREFIX):
            continue
        for span in tracer.spans(tid):
            if span.name == "round" and span.parent_id is None:
                out.append(span)
    return out


def _record_from_span(span: Span) -> RoundRecord:
    a = span.attrs
    return RoundRecord(
        iteration=int(a.get("iteration", 0)),
        round_name=str(a.get("round_name", "round")),
        t_start=span.t_start,
        t_end=span.t_end if span.t_end is not None else span.t_start,
        compute_wait=float(a.get("compute_wait", 0.0)),
        comm_time=float(a.get("comm_time", 0.0)),
        verify_time=float(a.get("verify_time", 0.0)),
        decode_time=float(a.get("decode_time", 0.0)),
        n_collected=int(a.get("n_collected", 0)),
        n_verified=int(a.get("n_verified", 0)),
        n_rejected=int(a.get("n_rejected", 0)),
    )


def recorder_from_tracer(tracer: Tracer) -> TraceRecorder:
    """Rebuild a Fig. 4/5-compatible :class:`TraceRecorder` from the
    round spans a traced run left behind: per-iteration groups of
    reconstructed :class:`RoundRecord` with the cost fields intact."""
    by_iteration: dict[int, list[RoundRecord]] = defaultdict(list)
    for span in round_spans(tracer):
        rec = _record_from_span(span)
        by_iteration[rec.iteration].append(rec)
    recorder = TraceRecorder()
    for iteration in sorted(by_iteration):
        rounds = sorted(by_iteration[iteration], key=lambda r: r.t_start)
        recorder.add(TraceRecorder.merge_rounds(iteration, rounds))
    return recorder


def mean_breakdown(tracer: Tracer) -> dict[str, float]:
    """Fig. 4's mean per-iteration cost breakdown, from spans alone."""
    return recorder_from_tracer(tracer).mean_breakdown()


def render_timeline(
    spans: Iterable[Mapping[str, Any]], width: int = 64
) -> str:
    """ASCII timeline of one resolved trace (``repro obs`` CLI)."""
    spans = [dict(s) for s in spans]
    closed = [s for s in spans if s.get("t_end") is not None]
    if not closed:
        return "(no closed spans)"
    t_lo = min(s["t_start"] for s in closed)
    t_hi = max(s["t_end"] for s in closed)
    scale = (t_hi - t_lo) or 1.0
    by_id = {s["span_id"]: s for s in spans}

    def depth(s: Mapping[str, Any]) -> int:
        d, cur = 0, s
        while cur.get("parent_id") is not None and cur["parent_id"] in by_id:
            cur = by_id[cur["parent_id"]]
            d += 1
            if d > 32:
                break
        return d

    label_w = max(len("  " * depth(s) + s["name"]) for s in closed) + 2
    lines = [f"trace spans {t_lo:.6f}s .. {t_hi:.6f}s ({scale:.6f}s)"]
    for s in closed:
        lo = int((s["t_start"] - t_lo) / scale * width)
        hi = max(lo + 1, int((s["t_end"] - t_lo) / scale * width))
        bar = " " * lo + "#" * (hi - lo)
        label = ("  " * depth(s) + s["name"]).ljust(label_w)
        lines.append(f"{label}|{bar.ljust(width)}| {s['t_end'] - s['t_start']:.6f}s")
    return "\n".join(lines)
