"""End-to-end observability: tracing, metrics, and live telemetry.

Switched on with ``SessionConfig(observability=True)``. One
:class:`Observability` object per session bundles the
:class:`~repro.obs.trace.Tracer` (request-to-round span trees, worker
sub-spans shipped back over the wire) and the
:class:`~repro.obs.metrics.MetricsRegistry` (labeled counters / gauges
/ histograms) that every layer writes to. The
:class:`~repro.obs.exporter.TelemetryServer` serves both live
(``/metrics`` Prometheus text, ``/metrics.json``, ``/trace/<id>``,
``/healthz``) and the ``repro obs`` CLI renders dumps or polls a live
endpoint. With the knob off nothing here is instantiated — reports and
wire frames are byte-identical to an untraced build.
"""

from __future__ import annotations

import itertools
import json
from typing import IO, Any

from .audit import (
    GENESIS,
    AuditLog,
    ChainError,
    RoundCommitment,
    digest_array,
    diff_chains,
    load_jsonl,
    record_hash,
    verify_chain,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    snapshot_from_values,
)
from .trace import Span, Tracer

__all__ = [
    "GENESIS",
    "LATENCY_BUCKETS",
    "AuditLog",
    "ChainError",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "Observability",
    "RoundCommitment",
    "Span",
    "Tracer",
    "diff_chains",
    "digest_array",
    "load_jsonl",
    "record_hash",
    "snapshot_from_values",
    "verify_chain",
]


class Observability:
    """Per-session bundle of tracer + metrics registry."""

    def __init__(self, *, max_traces: int = 4096) -> None:
        self.tracer = Tracer(max_traces=max_traces)
        self.registry = MetricsRegistry()
        #: the session's :class:`AuditLog` when *both* observability
        #: and audit are armed — feeds the live ``/audit`` endpoints
        self.audit: AuditLog | None = None
        self._round_seq = itertools.count()
        self._rounds_total = self.registry.counter(
            "backend_rounds_total", "rounds dispatched, by backend"
        )
        self._broadcast_elements = self.registry.counter(
            "backend_broadcast_elements_total",
            "field elements broadcast to the fleet, by backend",
        )

    def next_round_trace_id(self) -> str:
        """Fresh ``round-<n>`` trace id for one round's span tree."""
        return f"round-{next(self._round_seq)}"

    def on_dispatch(self, backend_name: str, job: Any, n_participants: int) -> None:
        """Uniform per-backend dispatch hook (all five backends)."""
        self._rounds_total.inc(backend=backend_name)
        try:
            elements = job.broadcast_elements()
        except Exception:
            elements = 0
        self._broadcast_elements.inc(float(elements), backend=backend_name)
        self.registry.gauge(
            "backend_round_participants", "participants in the latest round"
        ).set(n_participants, backend=backend_name)

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return {"metrics": self.registry.snapshot(), "traces": self.tracer.dump()}

    def dump(self, fp: IO[str]) -> None:
        json.dump(self.snapshot(), fp)

    def dump_path(self, path: str) -> None:
        with open(path, "w") as fp:
            self.dump(fp)
