"""Unified metrics registry: labeled counters, gauges and histograms.

One registry instance is the single source of numbers for a session:
``SessionStats`` mirrors its tallies here, the gateway's window
accounting (:meth:`repro.control.signals.WindowSignals.from_registry`)
reads counter deltas and window-exact histogram drains from it, and the
telemetry endpoint renders it as Prometheus text or a JSON snapshot.

Design constraints, in order:

* **Cheap when hot.** ``Counter.inc`` / ``Histogram.observe`` are a
  dict lookup plus a float add under a lock — no string formatting, no
  allocation on the steady path.
* **Exact where reports need exactness.** The repo's byte-parity
  guarantees (``ServeReport``/``WindowSignals`` unchanged by the
  refactor) mean bucketed approximations are not enough: histograms
  created with ``track_window=True`` additionally retain the raw values
  observed since the last :meth:`Histogram.drain_window`, so per-window
  percentiles/minima are computed from the same floats the old private
  tallies saw.
* **Mergeable.** All histograms of a metric share one fixed bucket
  ladder, so snapshots from different reports/processes add
  bucket-wise (:meth:`HistogramSnapshot.merge`).
"""

from __future__ import annotations

import json
import math
import re
import threading
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "snapshot_from_values",
]

#: Default log-spaced bucket upper bounds (seconds): 32 us .. ~1100 s,
#: doubling each step. Fixed across the codebase so any two latency
#: histograms merge bucket-wise.
LATENCY_BUCKETS: tuple[float, ...] = tuple(32e-6 * 2.0**i for i in range(25))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


#: memo for `_label_key`: raw (k, v) item tuples -> canonical key. Label
#: sets are low-cardinality (status/tenant/family/worker), so the memo
#: turns the sort+stringify into one dict hit on the hot path; the cap
#: guards against a pathological unbounded label.
_KEY_MEMO: dict[tuple, tuple[tuple[str, str], ...]] = {}
_KEY_MEMO_CAP = 4096


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (sorted, stringified)."""
    if not labels:
        return ()
    items = tuple(labels.items())
    try:
        key = _KEY_MEMO.get(items)
    except TypeError:  # unhashable label value: skip the memo
        return tuple(sorted((k, str(v)) for k, v in labels.items()))
    if key is None:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        if len(_KEY_MEMO) < _KEY_MEMO_CAP:
            _KEY_MEMO[items] = key
    return key


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared plumbing: a name, a help string, per-label-set series."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def _check_labels(self, labels: Mapping[str, Any]) -> None:
        for k in labels:
            if not _LABEL_RE.match(k):
                raise ValueError(f"invalid label name {k!r} on metric {self.name}")


class Counter(_Metric):
    """Monotonically increasing labeled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.inc_key(_label_key(labels), amount)

    def inc_key(
        self, key: tuple[tuple[str, str], ...], amount: float = 1.0
    ) -> None:
        """Increment by pre-canonicalized label key (hot-path variant:
        callers that cache `_label_key` output skip the kwargs dict).
        Lock-free under the GIL — see :meth:`Histogram.observe_key` for
        the single-writer-per-metric discipline this relies on."""
        values = self._values
        values[key] = values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Value of one series (0.0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> Iterator[tuple[tuple[tuple[str, str], ...], float]]:
        with self._lock:
            yield from list(self._values.items())

    def render(self) -> Iterator[str]:
        for key, value in self.series():
            yield f"{self.name}{_render_labels(key)} {_fmt(value)}"

    def snapshot(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value} for key, value in self.series()
        ]


class Gauge(_Metric):
    """Labeled gauge: set to the latest value, may go up or down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Iterator[tuple[tuple[tuple[str, str], ...], float]]:
        with self._lock:
            yield from list(self._values.items())

    def render(self) -> Iterator[str]:
        for key, value in self.series():
            yield f"{self.name}{_render_labels(key)} {_fmt(value)}"

    def snapshot(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value} for key, value in self.series()
        ]


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable bucketed view of a distribution.

    ``bounds`` are inclusive upper edges; ``counts`` has
    ``len(bounds) + 1`` entries (the last is the +Inf overflow bucket).
    Snapshots with identical bounds merge bucket-wise, which is the
    mechanism behind mergeable cross-report latency histograms.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int

    def __post_init__(self) -> None:
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"need {len(self.bounds) + 1} counts for "
                f"{len(self.bounds)} bounds, got {len(self.counts)}"
            )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )

    def percentile(self, p: float) -> float:
        """Bucket-interpolated percentile estimate (p in [0, 100])."""
        if self.count == 0:
            return math.nan
        rank = p / 100.0 * self.count
        seen = 0
        lo = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if seen + n >= rank and n > 0:
                frac = (rank - seen) / n
                return lo + frac * (bound - lo)
            seen += n
            lo = bound
        return self.bounds[-1] if self.bounds else math.nan

    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def to_dict(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HistogramSnapshot":
        return cls(
            bounds=tuple(data["bounds"]),
            counts=tuple(data["counts"]),
            sum=float(data["sum"]),
            count=int(data["count"]),
        )


def snapshot_from_values(
    values: Iterable[float], bounds: Sequence[float] = LATENCY_BUCKETS
) -> HistogramSnapshot:
    """Bucket a finished value list into a mergeable snapshot."""
    bounds = tuple(bounds)
    counts = [0] * (len(bounds) + 1)
    total = 0.0
    n = 0
    for v in values:
        counts[bisect_left(bounds, v)] += 1
        total += v
        n += 1
    return HistogramSnapshot(bounds=bounds, counts=tuple(counts), sum=total, count=n)


class Histogram(_Metric):
    """Labeled histogram over a fixed bucket ladder.

    With ``track_window=True`` every observation is also appended to a
    per-series window list that :meth:`drain_window` hands back and
    clears — the registry equivalent of the gateway's old private
    "fresh outcomes since the last control tick" list, kept so window
    percentiles stay bit-exact rather than bucket-approximated.
    :meth:`set_window_tracking` can disarm the window on the fly: a
    gateway with no control loop never drains, so the appends would be
    an unbounded-memory tax on the hot path for data nobody reads.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        track_window: bool = False,
    ) -> None:
        super().__init__(name, help)
        self.bounds = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._track_window = track_window
        self._window_armed = track_window
        self._window: dict[tuple[tuple[str, str], ...], list[float]] = {}

    def set_window_tracking(self, on: bool) -> None:
        """Arm or disarm the raw-value window (``track_window``
        histograms only). Disarmed observations still land in the
        buckets; they just stop feeding :meth:`drain_window`."""
        if not self._track_window:
            raise ValueError(f"histogram {self.name} does not track windows")
        self._window_armed = bool(on)

    def observe(self, value: float, **labels: Any) -> None:
        self.observe_key(_label_key(labels), value)

    def observe_key(
        self, key: tuple[tuple[str, str], ...], value: float
    ) -> None:
        """Observe under a pre-canonicalized label key (hot path).

        Lock-free: bucket counts and sums are plain dict/list updates,
        safe under the GIL for the single-writer-per-metric discipline
        the codebase follows (each metric is fed from one thread;
        renders/snapshots read via atomic ``list()``/``dict()`` copies
        and tolerate a transiently torn count/sum pair).
        """
        value = float(value)
        idx = bisect_left(self.bounds, value)
        counts = self._counts.get(key)
        if counts is None:
            with self._lock:  # series creation is the rare, racy part
                counts = self._counts.get(key)
                if counts is None:
                    counts = self._counts[key] = [0] * (len(self.bounds) + 1)
                    self._sums.setdefault(key, 0.0)
                    self._window.setdefault(key, [])
        counts[idx] += 1
        self._sums[key] += value
        if self._window_armed:
            self._window[key].append(value)

    def drain_window(self) -> list[float]:
        """Raw values observed (across all series) since the last
        drain; clears the window. Only on ``track_window`` histograms."""
        if not self._track_window:
            raise ValueError(f"histogram {self.name} does not track windows")
        out: list[float] = []
        with self._lock:
            for key, vals in self._window.items():
                out.extend(vals)
                self._window[key] = []
        return out

    def snapshot_of(self, **labels: Any) -> HistogramSnapshot:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                return HistogramSnapshot(self.bounds, tuple([0] * (len(self.bounds) + 1)), 0.0, 0)
            return HistogramSnapshot(
                self.bounds, tuple(counts), self._sums[key], sum(counts)
            )

    def merged(self) -> HistogramSnapshot:
        """One snapshot summing every label combination."""
        out = HistogramSnapshot(self.bounds, tuple([0] * (len(self.bounds) + 1)), 0.0, 0)
        with self._lock:
            items = [(tuple(c), self._sums[k]) for k, c in self._counts.items()]
        for counts, total in items:
            out = out.merge(
                HistogramSnapshot(self.bounds, counts, total, sum(counts))
            )
        return out

    def series(self) -> Iterator[tuple[tuple[tuple[str, str], ...], HistogramSnapshot]]:
        with self._lock:
            keys = list(self._counts)
        for key in keys:
            with self._lock:
                counts = tuple(self._counts[key])
                total = self._sums[key]
            yield key, HistogramSnapshot(self.bounds, counts, total, sum(counts))

    def render(self) -> Iterator[str]:
        for key, snap in self.series():
            acc = 0
            for bound, n in zip(snap.bounds, snap.counts):
                acc += n
                le = _render_labels(key, f'le="{_fmt(bound)}"')
                yield f"{self.name}_bucket{le} {acc}"
            acc += snap.counts[-1]
            le = _render_labels(key, 'le="+Inf"')
            yield f"{self.name}_bucket{le} {acc}"
            yield f"{self.name}_sum{_render_labels(key)} {_fmt(snap.sum)}"
            yield f"{self.name}_count{_render_labels(key)} {snap.count}"

    def snapshot(self) -> list[dict[str, Any]]:
        return [
            {"labels": dict(key), **snap.to_dict()} for key, snap in self.series()
        ]


def _fmt(value: float) -> str:
    """Compact numeric rendering: integers without the trailing .0."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Named home for every metric of one session/gateway.

    ``counter``/``gauge``/``histogram`` are get-or-create (re-requesting
    a name returns the same object; re-requesting under a different
    kind raises). Collector callbacks registered with
    :meth:`register_collector` run just before every render/snapshot —
    used to pull counters that live elsewhere (the socket backends'
    wire tallies) into exported gauges without hot-path coupling.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- creation ------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        track_window: bool = False,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = Histogram(name, help, buckets=buckets, track_window=track_window)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, name: str, cls: type, help: str) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        with self._lock:
            self._collectors.append(fn)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)

    # -- export --------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        self._collect()
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: list[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-able {name: {kind, help, series}} snapshot."""
        self._collect()
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return {
            m.name: {"kind": m.kind, "help": m.help, "series": m.snapshot()}
            for m in metrics
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)
