"""Tiny asyncio HTTP telemetry endpoint.

Serves a session's :class:`~repro.obs.Observability` live:

* ``GET /healthz`` — liveness probe, ``{"status": "ok"}``;
* ``GET /metrics`` — Prometheus text exposition (v0.0.4);
* ``GET /metrics.json`` — the registry's JSON snapshot;
* ``GET /traces`` — ids of every live trace;
* ``GET /trace/<id>`` — one resolved span tree (round links spliced);
* ``GET /audit`` — the audit chain's head hash + length (the
  independent channel an auditor needs to detect a truncated tail);
* ``GET /audit/<seq>`` — one :class:`~repro.obs.audit.RoundCommitment`
  as JSON. Both 404 unless the session armed ``SessionConfig.audit``
  alongside observability.

Implemented directly on ``asyncio.start_server`` — no HTTP framework,
no new dependency; enough of HTTP/1.0 for ``curl``, Prometheus scrapes
and ``urllib``. Attach to a serving loop with
``Gateway.run_async(telemetry_port=0)`` or run standalone via
:meth:`TelemetryServer.start`.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from . import Observability

__all__ = ["TelemetryServer"]

_MAX_REQUEST = 16384
_PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_TYPE = "application/json; charset=utf-8"


class TelemetryServer:
    """One asyncio HTTP listener over one Observability bundle."""

    def __init__(
        self, obs: "Observability", host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.obs = obs
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "TelemetryServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError, ValueError):
            writer.close()
            return
        try:
            line = request.split(b"\r\n", 1)[0].decode("latin-1")
            parts = line.split()
            method, path = (parts + ["", ""])[:2]
            status, ctype, body = self._route(method, path)
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        finally:
            writer.close()

    def _route(self, method: str, path: str) -> tuple[str, str, bytes]:
        if method not in ("GET", "HEAD"):
            return self._json("405 Method Not Allowed", {"error": "GET only"})
        path = path.split("?", 1)[0]
        if path == "/healthz":
            return self._json("200 OK", {"status": "ok"})
        if path == "/metrics":
            text = self.obs.registry.render_prometheus()
            return "200 OK", _PROM_TYPE, text.encode()
        if path == "/metrics.json":
            return self._json("200 OK", self.obs.registry.snapshot())
        if path == "/traces":
            return self._json("200 OK", {"traces": list(self.obs.tracer.trace_ids())})
        if path.startswith("/trace/"):
            trace_id = path[len("/trace/"):]
            if not self.obs.tracer.has(trace_id):
                return self._json(
                    "404 Not Found", {"error": f"unknown trace {trace_id!r}"}
                )
            return self._json("200 OK", self.obs.tracer.to_dict(trace_id))
        if path == "/audit":
            audit = getattr(self.obs, "audit", None)
            if audit is None:
                return self._json(
                    "404 Not Found",
                    {"error": "auditing is not armed (SessionConfig.audit)"},
                )
            return self._json(
                "200 OK", {"head": audit.head, "length": len(audit)}
            )
        if path.startswith("/audit/"):
            audit = getattr(self.obs, "audit", None)
            if audit is None:
                return self._json(
                    "404 Not Found",
                    {"error": "auditing is not armed (SessionConfig.audit)"},
                )
            raw = path[len("/audit/"):]
            try:
                seq = int(raw)
            except ValueError:
                return self._json(
                    "404 Not Found", {"error": f"bad audit seq {raw!r}"}
                )
            if not 0 <= seq < len(audit):
                return self._json(
                    "404 Not Found",
                    {"error": f"audit seq {seq} out of range (chain has "
                              f"{len(audit)} records)"},
                )
            return self._json("200 OK", audit.records[seq].to_dict())
        return self._json("404 Not Found", {"error": f"no route {path!r}"})

    @staticmethod
    def _json(status: str, payload: Any) -> tuple[str, str, bytes]:
        return status, _JSON_TYPE, json.dumps(payload).encode()
