"""``repro obs`` / ``repro audit`` — inspect a run's telemetry.

Two sources, one renderer:

* **Dump mode** — ``repro obs dump.json``: read an
  :meth:`Observability.snapshot` JSON file (written by
  ``examples/observability_demo.py`` or ``Observability.dump_path``)
  and render per-request / per-round span timelines plus a metrics
  digest.
* **Endpoint mode** — ``repro obs --endpoint http://host:port``: poll a
  live :class:`~repro.obs.exporter.TelemetryServer`; with ``--follow N``
  it tails the run, re-rendering the newest round timeline N times.

``--trace <id>`` narrows either mode to one trace.

``repro audit`` (:func:`audit_main`) works the dumped audit chains:
``verify log.jsonl`` walks every hash link (exit 1 names the first
tampered/reordered/deleted record), ``show`` renders the commitments,
and ``diff a.jsonl b.jsonl`` reports where two chains diverge.
"""

from __future__ import annotations

import argparse
import json
import time
import urllib.error
import urllib.request
from typing import Any

from .bridge import render_timeline
from .trace import Tracer

import sys

__all__ = ["audit_main", "main"]


def _fetch(url: str) -> Any:
    with urllib.request.urlopen(url, timeout=10.0) as resp:
        return json.loads(resp.read().decode())


def _metrics_digest(metrics: dict[str, Any], limit: int = 12) -> str:
    lines = []
    for name in sorted(metrics)[:limit]:
        entry = metrics[name]
        for series in entry.get("series", [])[:4]:
            labels = series.get("labels", {})
            tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if "value" in series:
                val = f"{series['value']:g}"
            else:
                val = f"count={series.get('count', 0)} sum={series.get('sum', 0.0):g}"
            lines.append(f"  {name}{{{tag}}} {val}")
    return "\n".join(lines) if lines else "  (no metrics)"


def _render_traces(
    tracer: Tracer, trace_id: str | None, width: int, limit: int
) -> str:
    ids: list[str]
    if trace_id is not None:
        if not tracer.has(trace_id):
            return f"unknown trace {trace_id!r}; live: {list(tracer.trace_ids())[:8]}"
        ids = [trace_id]
    else:
        ids = [t for t in tracer.trace_ids() if not t.startswith("round-")][-limit:]
        if not ids:
            ids = list(tracer.trace_ids())[-limit:]
    blocks = []
    for tid in ids:
        spans = [s.to_dict() for s in tracer.resolved(tid)]
        blocks.append(f"== {tid} ==\n{render_timeline(spans, width=width)}")
    return "\n\n".join(blocks) if blocks else "(no traces)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro obs", description="render telemetry dumps or poll a live endpoint"
    )
    parser.add_argument("dump", nargs="?", help="path to an Observability snapshot JSON")
    parser.add_argument("--endpoint", help="base URL of a live telemetry server")
    parser.add_argument("--trace", help="render only this trace id")
    parser.add_argument("--width", type=int, default=64, help="timeline width (chars)")
    parser.add_argument("--limit", type=int, default=4, help="max traces to render")
    parser.add_argument(
        "--follow", type=int, default=0, metavar="N",
        help="endpoint mode: poll and re-render N more times, 1s apart",
    )
    args = parser.parse_args(argv)

    if (args.dump is None) == (args.endpoint is None):
        parser.error("pass exactly one of: a dump file, or --endpoint URL")

    if args.dump is not None:
        with open(args.dump) as fp:
            snap = json.load(fp)
        tracer = Tracer.from_dump(snap.get("traces", {}))
        print("metrics:")
        print(_metrics_digest(snap.get("metrics", {})))
        print()
        print(_render_traces(tracer, args.trace, args.width, args.limit))
        return 0

    base = args.endpoint.rstrip("/")
    for tick in range(args.follow + 1):
        if tick:
            time.sleep(1.0)
        try:
            health = _fetch(f"{base}/healthz")
            print(f"[{tick}] {base} status={health.get('status')}")
            print(_metrics_digest(_fetch(f"{base}/metrics.json")))
            if args.trace is not None:
                ids = [args.trace]
            else:
                ids = _fetch(f"{base}/traces").get("traces", [])[-args.limit:]
            for tid in ids:
                trace = _fetch(f"{base}/trace/{tid}")
                print(f"\n== {tid} ==")
                print(render_timeline(trace.get("spans", []), width=args.width))
        except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as exc:
            # dead/refused/vanished endpoint: a clear diagnosis and a
            # nonzero exit, not a traceback — follow loops see this
            # when the serving run they tail finishes or crashes
            reason = getattr(exc, "reason", None) or exc
            print(
                f"error: telemetry endpoint {base} is unreachable ({reason})",
                file=sys.stderr,
            )
            return 1
    return 0


def _render_commitment(row: dict[str, Any]) -> str:
    scheme = tuple(row.get("scheme", ()))
    attested = row.get("attested", [])
    line = (
        f"[{row.get('seq'):>4}] {row.get('family', '?'):<8} "
        f"scheme={scheme} verify_ok={row.get('verify_ok')} "
        f"accepted={list(row.get('accepted', []))} "
        f"rejected={list(row.get('rejected', []))}"
    )
    if attested:
        line += f" attested={list(attested)}"
    line += (
        f"\n       out={str(row.get('output_digest', ''))[:16]}... "
        f"prev={str(row.get('prev', ''))[:16]}... "
        f"hash={str(row.get('hash', ''))[:16]}..."
    )
    return line


def audit_main(argv: list[str] | None = None) -> int:
    from .audit import ChainError, diff_chains, load_jsonl, verify_chain

    parser = argparse.ArgumentParser(
        prog="repro audit",
        description="verify, render and diff dumped audit chains",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_verify = sub.add_parser("verify", help="walk every hash link of a chain")
    p_verify.add_argument("chain", help="path to an AuditLog JSONL dump")
    p_verify.add_argument(
        "--head", help="expected head hash from an independent channel "
        "(e.g. the live /audit endpoint) — also catches a truncated tail",
    )
    p_verify.add_argument(
        "--length", type=int, help="expected chain length (catches truncation)"
    )
    p_show = sub.add_parser("show", help="render a chain's commitments")
    p_show.add_argument("chain", help="path to an AuditLog JSONL dump")
    p_show.add_argument("--seq", type=int, help="show only this record")
    p_diff = sub.add_parser("diff", help="first divergence between two chains")
    p_diff.add_argument("chain_a")
    p_diff.add_argument("chain_b")
    args = parser.parse_args(argv)

    try:
        if args.command == "verify":
            rows = load_jsonl(args.chain)
            head = verify_chain(
                rows, expect_head=args.head, expect_length=args.length
            )
            print(f"chain OK: {len(rows)} records, head {head}")
            return 0
        if args.command == "show":
            rows = load_jsonl(args.chain)
            if args.seq is not None:
                if not 0 <= args.seq < len(rows):
                    print(
                        f"error: seq {args.seq} out of range "
                        f"(chain has {len(rows)} records)",
                        file=sys.stderr,
                    )
                    return 1
                rows = [rows[args.seq]]
            for row in rows:
                print(_render_commitment(row))
            return 0
        # diff
        a = load_jsonl(args.chain_a)
        b = load_jsonl(args.chain_b)
        differences = diff_chains(a, b)
        if not differences:
            print(f"chains identical: {len(a)} records")
            return 0
        for line in differences:
            print(line)
        return 1
    except ChainError as exc:
        print(f"chain BROKEN: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
