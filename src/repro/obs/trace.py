"""Span-based request tracing.

A *trace* is a list of spans sharing a trace id; a *span* is a named
``[t_start, t_end]`` interval with a parent pointer and an attribute
dict. Request traces are born at gateway admission (``req-<id>``) and
extended by ``Session.submit``; the per-round forest (round →
broadcast/collect/worker/verify/decode, with worker-daemon sub-spans
shipped back over the wire) is recorded **once** per round in its own
``round-<n>`` trace, and each request span that rode the round carries
a ``link`` attribute pointing at it. That keeps the hot path O(1) per
request per round; :meth:`Tracer.resolved` splices linked round trees
back under the linking span at read time, which is what the
``/trace/<id>`` endpoint and the completeness tests consume.

The write path is an **event log**: ``begin``/``end``/``add`` append
small tuples to an append-only list (span ids come eagerly from one
atomic counter) and return integer span ids; :class:`Span` objects are
materialized lazily, the first time anything *reads* the tracer. Per
recorded event the serving hot path pays one counter bump and one list
append — the bookkeeping (parent wiring, per-trace grouping, round
forests, eviction) runs at read time, off the request path. Every read
API drains the log first, so readers always see a consistent store.

Span timestamps are whatever clock the caller supplies — the backend
clock, so virtual seconds on ``sim`` and wall seconds elsewhere. The
tracer never reads a clock itself (that would break sim determinism).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["Span", "Tracer"]

#: attribute key marking a span as a pointer into another trace
LINK_ATTR = "link"

# event-log opcodes (first tuple element)
_BEGIN = 0  # (_BEGIN, sid, trace_id, name, t_start, parent_id, attrs|None)
_END = 1  # (_END, sid, t_end, attrs|None)
_ADD = 2  # (_ADD, sid, trace_id, name, t0, t1, parent_id, attrs|None)
_FOREST = 3  # (_FOREST, trace_id, forest)
_ROUND = 4  # (_ROUND, trace_id, record, worker_spans|None)
_REQ2 = 5  # (_REQ2, root_sid, child_sid, trace_id, root_name, child_name, t, root_attrs|None, child_attrs|None)
_LINKM = 6  # (_LINKM, contexts, t0, t1, link_tid, round_name)
_ENDM = 7  # (_ENDM, span_ids, t_end)

#: pending events past this size trigger an inline (amortized) drain,
#: bounding log memory on long runs that are never read mid-flight
_DRAIN_HIGH_WATER = 65536


@dataclass
class Span:
    """One timed operation. Mutable: ``t_end`` is filled at close."""

    span_id: int
    trace_id: str
    name: str
    t_start: float
    t_end: float | None = None
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.t_end is None else self.t_end - self.t_start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Thread-safe bounded in-memory span store.

    Bounded by ``max_traces``: when a new trace id arrives past the
    bound the oldest trace is evicted wholesale (requests age out in
    admission order under sustained load, never mid-trace truncation).
    Span ids come from one global counter, so ids are unique across
    traces — link resolution can splice foreign spans without remaps.

    Writes (``begin``/``end``/``add``/``record_forest``/
    ``record_round``) are cheap log appends returning integer span
    ids; reads drain the log into :class:`Span` objects first.
    CPython's GIL makes the bare appends safe from any thread; the
    lock only serializes draining.
    """

    def __init__(self, max_traces: int = 4096) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        self._ids = itertools.count(1)
        self._log: list[tuple] = []
        self._cursor = 0
        self._roots: dict[str, int] = {}  # trace id -> root span id
        self._open: dict[int, Span] = {}  # materialized, not yet ended

    # -- recording (hot path: one id bump + one list append) -----------
    def begin(
        self,
        trace_id: str,
        name: str,
        t_start: float,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id (parent handle for children)."""
        sid = next(self._ids)
        if parent_id is None and trace_id not in self._roots:
            self._roots[trace_id] = sid
        self._log.append((_BEGIN, sid, trace_id, name, t_start, parent_id, attrs or None))
        return sid

    def end(self, span: int, t_end: float, **attrs: Any) -> int:
        """Close a span by id. Ending an unknown (or evicted) id is a
        no-op; ending twice keeps the first close."""
        self._log.append((_END, span, t_end, attrs or None))
        return span

    def add(
        self,
        trace_id: str,
        name: str,
        t_start: float,
        t_end: float,
        parent_id: int | None = None,
        **attrs: Any,
    ) -> int:
        """begin + end in one call, for intervals known after the fact."""
        sid = next(self._ids)
        if parent_id is None and trace_id not in self._roots:
            self._roots[trace_id] = sid
        self._log.append(
            (_ADD, sid, trace_id, name, t_start, t_end, parent_id, attrs or None)
        )
        return sid

    def begin_request(
        self,
        trace_id: str,
        root_name: str,
        child_name: str,
        t_start: float,
        child_attrs: dict[str, Any] | None = None,
        root_attrs: dict[str, Any] | None = None,
    ) -> tuple[int | None, int]:
        """Open ``child_name`` under the trace's root in one event,
        creating the root (carrying ``root_attrs``) when the trace is
        new. Returns ``(owned_root, child_id)`` — ``owned_root`` is
        ``None`` when the root already existed (the caller doesn't
        close it). Attr dicts may be shared/memoized by the caller:
        the drain copies them before mutation."""
        root = self._roots.get(trace_id)
        if root is not None:
            child = next(self._ids)
            self._log.append(
                (_BEGIN, child, trace_id, child_name, t_start, root, child_attrs)
            )
            return None, child
        ids = self._ids
        root = next(ids)
        child = next(ids)
        self._roots[trace_id] = root
        self._log.append(
            (_REQ2, root, child, trace_id, root_name, child_name, t_start,
             root_attrs, child_attrs)
        )
        return root, child

    def link_rounds(
        self,
        contexts: Iterable[tuple[str, int, int | None]],
        t_start: float,
        t_end: float,
        link_tid: str,
        round_name: str,
    ) -> None:
        """One event for *all* of a round's riders. Per ``(trace_id,
        parent_sid, owned_root)`` context: add a closed ``round`` span
        under ``parent_sid`` linking ``link_tid``, close ``parent_sid``
        at ``t_end``, and close ``owned_root`` too when given (bare
        submissions whose root the session opened). Link-span ids are
        assigned at drain time."""
        log = self._log
        log.append((_LINKM, tuple(contexts), t_start, t_end, link_tid, round_name))
        if len(log) - self._cursor > _DRAIN_HIGH_WATER:
            self._drain()

    def end_many(self, span_ids: Iterable[int], t_end: float) -> None:
        """Close several spans at the same instant in one event (a
        dispatched batch's queue spans)."""
        self._log.append((_ENDM, tuple(span_ids), t_end))

    def record_forest(
        self, trace_id: str, forest: Iterable[Mapping[str, Any]]
    ) -> None:
        """Record a batch of closed spans whose parent pointers are
        *local indices* into the batch (``None`` = root). Span ids are
        assigned when the log drains."""
        self._log.append((_FOREST, trace_id, tuple(forest)))

    def record_round(
        self,
        trace_id: str,
        record: Any,
        worker_spans: Mapping[int, Any] | None = None,
    ) -> None:
        """Record one finalized round's span tree — the forest lowering
        (:func:`repro.obs.bridge.round_forest`) is deferred to drain
        time, so the round hot path pays one append."""
        log = self._log
        log.append((_ROUND, trace_id, record, worker_spans))
        if len(log) - self._cursor > _DRAIN_HIGH_WATER:
            self._drain()

    # -- event-log drain -----------------------------------------------
    def _materialize(
        self,
        sid: int,
        trace_id: str,
        name: str,
        t_start: float,
        t_end: float | None,
        parent_id: int | None,
        attrs: dict[str, Any] | None,
    ) -> Span:
        # copy: callers may pass shared (memoized) attr dicts, and
        # spans mutate theirs at close
        span = Span(
            span_id=sid,
            trace_id=trace_id,
            name=name,
            t_start=float(t_start),
            t_end=None if t_end is None else float(t_end),
            parent_id=parent_id,
            attrs=dict(attrs) if attrs else {},
        )
        spans = self._traces.get(trace_id)
        if spans is None:
            spans = self._traces[trace_id] = []
            while len(self._traces) > self.max_traces:
                _, evicted = self._traces.popitem(last=False)
                for old in evicted:
                    self._open.pop(old.span_id, None)
                if evicted:
                    self._roots.pop(evicted[0].trace_id, None)
        spans.append(span)
        return span

    def _drain(self) -> None:
        """Apply every pending event (idempotent, cheap when empty)."""
        from .bridge import round_forest  # deferred: bridge imports us

        with self._lock:
            log = self._log
            n = len(log)
            cursor = self._cursor
            while cursor < n:
                ev = log[cursor]
                cursor += 1
                op = ev[0]
                if op == _BEGIN:
                    _, sid, tid, name, t0, parent_id, attrs = ev
                    self._open[sid] = self._materialize(
                        sid, tid, name, t0, None, parent_id, attrs
                    )
                elif op == _END:
                    _, sid, t_end, attrs = ev
                    span = self._open.pop(sid, None)
                    if span is not None:
                        span.t_end = float(t_end)
                        if attrs:
                            span.attrs.update(attrs)
                elif op == _ADD:
                    _, sid, tid, name, t0, t1, parent_id, attrs = ev
                    self._materialize(sid, tid, name, t0, t1, parent_id, attrs)
                elif op == _REQ2:
                    _, root, child, tid, root_name, child_name, t0, attrs, cattrs = ev
                    self._open[root] = self._materialize(
                        root, tid, root_name, t0, None, None, attrs
                    )
                    self._open[child] = self._materialize(
                        child, tid, child_name, t0, None, root, cattrs
                    )
                elif op == _LINKM:
                    _, contexts, t0, t1, link_tid, rname = ev
                    t_close = float(t1)
                    for tid, parent_sid, owned_root in contexts:
                        self._materialize(
                            next(self._ids),
                            tid,
                            "round",
                            t0,
                            t1,
                            parent_sid,
                            {LINK_ATTR: link_tid, "round_name": rname},
                        )
                        for close_sid in (parent_sid, owned_root):
                            if close_sid is None:
                                continue
                            span = self._open.pop(close_sid, None)
                            if span is not None:
                                span.t_end = t_close
                elif op == _ENDM:
                    _, sids, t_end = ev
                    t_close = float(t_end)
                    for sid in sids:
                        span = self._open.pop(sid, None)
                        if span is not None:
                            span.t_end = t_close
                else:
                    if op == _ROUND:
                        _, tid, record, worker_spans = ev
                        forest: Iterable[Mapping[str, Any]] = round_forest(
                            record, worker_spans
                        )
                    else:  # _FOREST
                        _, tid, forest = ev
                    created: list[Span] = []
                    for node in forest:
                        parent_local = node.get("parent")
                        parent_id = (
                            created[parent_local].span_id
                            if parent_local is not None
                            else None
                        )
                        sid = next(self._ids)
                        if parent_id is None and tid not in self._roots:
                            self._roots[tid] = sid
                        created.append(
                            self._materialize(
                                sid,
                                tid,
                                node["name"],
                                node["t_start"],
                                node["t_end"],
                                parent_id,
                                dict(node.get("attrs") or {}),
                            )
                        )
                n = len(log)
            self._cursor = cursor
            if cursor > _DRAIN_HIGH_WATER:
                del log[:cursor]
                self._cursor = 0

    # -- reading -------------------------------------------------------
    def root_id(self, trace_id: str) -> int | None:
        """Id of the trace's root span, O(1), without draining —
        usable on the hot path (``Session.submit`` joining a
        gateway-opened trace)."""
        return self._roots.get(trace_id)

    def has(self, trace_id: str) -> bool:
        self._drain()
        with self._lock:
            return trace_id in self._traces

    def trace_ids(self) -> tuple[str, ...]:
        self._drain()
        with self._lock:
            return tuple(self._traces)

    def spans(self, trace_id: str) -> tuple[Span, ...]:
        self._drain()
        with self._lock:
            return tuple(self._traces.get(trace_id, ()))

    def root(self, trace_id: str) -> Span | None:
        for span in self.spans(trace_id):
            if span.parent_id is None:
                return span
        return None

    def resolved(self, trace_id: str) -> list[Span]:
        """Spans of ``trace_id`` with every ``link`` attribute spliced:
        the linked trace's spans are appended (copies) with their root
        re-parented under the linking span. Cycles and dangling links
        degrade gracefully (the link attr stays, nothing is spliced)."""
        out: list[Span] = []
        seen: set[str] = set()
        self._resolve_into(trace_id, None, out, seen)
        return out

    def _resolve_into(
        self,
        trace_id: str,
        parent_override: int | None,
        out: list[Span],
        seen: set[str],
    ) -> None:
        if trace_id in seen:
            return
        seen.add(trace_id)
        for span in self.spans(trace_id):
            copy = Span(
                span_id=span.span_id,
                trace_id=span.trace_id,
                name=span.name,
                t_start=span.t_start,
                t_end=span.t_end,
                parent_id=span.parent_id
                if span.parent_id is not None
                else parent_override,
                attrs=dict(span.attrs),
            )
            out.append(copy)
            target = copy.attrs.get(LINK_ATTR)
            if target is not None and self.has(target):
                self._resolve_into(target, copy.span_id, out, seen)

    def to_dict(self, trace_id: str, resolve: bool = True) -> dict[str, Any]:
        spans = self.resolved(trace_id) if resolve else list(self.spans(trace_id))
        return {
            "trace_id": trace_id,
            "spans": [s.to_dict() for s in spans],
        }

    def dump(self) -> dict[str, Any]:
        """JSON-able dump of every live trace (unresolved)."""
        return {
            tid: self.to_dict(tid, resolve=False)
            for tid in self.trace_ids()
        }

    @classmethod
    def from_dump(cls, data: Mapping[str, Any]) -> "Tracer":
        """Rebuild a tracer from :meth:`dump` output, preserving span
        ids (so link resolution keeps working offline)."""
        tracer = cls(max_traces=max(len(data), 1))
        top = 0
        for tid, trace in data.items():
            spans = tracer._traces.setdefault(tid, [])
            for s in trace.get("spans", ()):
                span = Span(
                    span_id=int(s["span_id"]),
                    trace_id=tid,
                    name=s["name"],
                    t_start=float(s["t_start"]),
                    t_end=None if s.get("t_end") is None else float(s["t_end"]),
                    parent_id=s.get("parent_id"),
                    attrs=dict(s.get("attrs", {})),
                )
                spans.append(span)
                if span.parent_id is None and tid not in tracer._roots:
                    tracer._roots[tid] = span.span_id
                top = max(top, int(s["span_id"]))
        tracer._ids = itertools.count(top + 1)
        return tracer
