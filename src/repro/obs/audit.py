"""Tamper-evident serving provenance: the hash-chained round audit log.

Every round the masters run is *verified* (Freivalds / polynomial
verification) before its decode is trusted — this module makes that
evidence durable. With ``SessionConfig.audit=True`` the session arms
every master with one shared :class:`AuditLog`, and each finalized
round appends one :class:`RoundCommitment`:

* the round's family and the scheme config ``(N_t, K_t, S, M)`` in
  effect,
* blake2b digests of the broadcast operand and the decoded output,
* the participating worker set with a per-worker digest of every
  result the master received — on the socket backends the worker
  daemons *countersign* by shipping a digest of their computed share
  in the result frame, and workers whose self-reported digest matches
  the master-side digest of the received bytes are listed as
  ``attested``,
* the verify verdicts: accepted workers, rejected workers, and the
  round's batch-verification outcome,
* the previous record's hash.

Records chain through :func:`record_hash` (canonical-JSON blake2b over
the record body, which includes ``prev``), so any mutation, reordering
or deletion anywhere in the chain breaks every later link.
:func:`verify_chain` walks a chain — in-memory or re-loaded from the
JSONL sink — and raises :class:`ChainError` naming the first offending
sequence number.

Threat model (see the README "Audit & provenance" section): the chain
is tamper-*evident*, not tamper-*proof* — the master writes it, so a
malicious master can fabricate a consistent chain. What it proves to a
tenant or auditor who trusts the master (or holds the chain head from
an independent channel, e.g. the live ``/audit`` endpoint or a
recorded trace): which workers computed a result, that Byzantine
rejections actually happened, and that no record was altered after the
fact.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import IO, Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "AuditLog",
    "ChainError",
    "GENESIS",
    "RoundCommitment",
    "digest_array",
    "diff_chains",
    "load_jsonl",
    "record_hash",
    "verify_chain",
]

#: the ``prev`` value of the first record in a chain
GENESIS = "0" * 64

#: field order of the canonical record body (hashed representation)
_BODY_FIELDS = (
    "seq",
    "family",
    "scheme",
    "operand_digest",
    "output_digest",
    "workers",
    "worker_digests",
    "attested",
    "accepted",
    "rejected",
    "verify_ok",
    "t_end",
    "prev",
)


#: canonical-JSON encoder for record bodies — sorted keys, no
#: whitespace — cached because building one per json.dumps call is
#: measurable on the audited hot path (once per round)
_CANON = json.JSONEncoder(sort_keys=True, separators=(",", ":")).encode

#: (dtype.str, shape) -> encoded digest tag; shapes repeat every round
_TAG_CACHE: dict[tuple[str, tuple[int, ...]], bytes] = {}


def digest_array(value: Any) -> str:
    """Blake2b hex digest of one array's dtype, shape and bytes — the
    unit of commitment for operands, decoded outputs and per-worker
    results. Both ends of the wire compute the identical digest for
    the identical array, which is what makes worker countersignatures
    comparable to master-side recomputation.

    This sits on the audited hot path (every result of every round),
    so wide integer arrays are hashed in a 4-byte canonical form:
    every committed array holds field elements, and exact int64
    products bound the field below ``2**31``, so the downcast is
    lossless for anything the serving stack commits. The dtype/shape
    tag still binds the digest to the original type and geometry."""
    arr = np.ascontiguousarray(value)
    data = arr
    if arr.dtype.kind in "iu" and arr.dtype.itemsize > 4:
        data = arr.astype("<i4")
    h = hashlib.blake2b(data.data, digest_size=16)
    key = (arr.dtype.str, arr.shape)
    tag = _TAG_CACHE.get(key)
    if tag is None:
        if len(_TAG_CACHE) > 1024:
            _TAG_CACHE.clear()
        tag = _TAG_CACHE[key] = f"{key[0]}{key[1]}".encode()
    h.update(tag)
    return h.hexdigest()


def record_hash(body: Mapping[str, Any]) -> str:
    """The chain hash of one record body (everything except ``hash``
    itself), over canonical JSON — sorted keys, no whitespace — so a
    dumped-and-reloaded record hashes identically."""
    payload = {k: body[k] for k in _BODY_FIELDS}
    return hashlib.blake2b(_CANON(payload).encode(), digest_size=32).hexdigest()


class ChainError(ValueError):
    """A chain failed verification. ``seq`` names the first offending
    record (its position in the chain, 0-based); ``reason`` says what
    broke there."""

    def __init__(self, seq: int, reason: str) -> None:
        super().__init__(f"audit chain broken at record {seq}: {reason}")
        self.seq = seq
        self.reason = reason


@dataclass(frozen=True)
class RoundCommitment:
    """One round's committed evidence (immutable, JSON-able).

    ``worker_digests`` pairs every worker whose result the master
    received with the digest of that result — including workers later
    *rejected* by verification, so the evidence of a Byzantine share
    survives. ``attested`` lists the subset whose daemon-countersigned
    digest matched the master-side digest (empty on in-process
    backends, which ship no frames to countersign).
    """

    seq: int
    family: str
    scheme: tuple[int, int, int, int]  # (N_t, K_t, S, M)
    operand_digest: str
    output_digest: str
    workers: tuple[int, ...]
    worker_digests: tuple[tuple[int, str], ...]
    attested: tuple[int, ...]
    accepted: tuple[int, ...]
    rejected: tuple[int, ...]
    verify_ok: bool
    t_end: float
    prev: str
    hash: str = ""

    def body(self) -> dict[str, Any]:
        """The hashed representation (everything except ``hash``)."""
        return {
            "seq": self.seq,
            "family": self.family,
            "scheme": list(self.scheme),
            "operand_digest": self.operand_digest,
            "output_digest": self.output_digest,
            "workers": list(self.workers),
            "worker_digests": [[w, d] for w, d in self.worker_digests],
            "attested": list(self.attested),
            "accepted": list(self.accepted),
            "rejected": list(self.rejected),
            "verify_ok": self.verify_ok,
            "t_end": self.t_end,
            "prev": self.prev,
        }

    def to_dict(self) -> dict[str, Any]:
        out = self.body()
        out["hash"] = self.hash
        return out

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RoundCommitment":
        return cls(
            seq=int(row["seq"]),
            family=str(row["family"]),
            scheme=tuple(int(v) for v in row["scheme"]),  # type: ignore[arg-type]
            operand_digest=str(row["operand_digest"]),
            output_digest=str(row["output_digest"]),
            workers=tuple(int(w) for w in row["workers"]),
            worker_digests=tuple(
                (int(w), str(d)) for w, d in row["worker_digests"]
            ),
            attested=tuple(int(w) for w in row["attested"]),
            accepted=tuple(int(w) for w in row["accepted"]),
            rejected=tuple(int(w) for w in row["rejected"]),
            verify_ok=bool(row["verify_ok"]),
            t_end=float(row["t_end"]),
            prev=str(row["prev"]),
            hash=str(row.get("hash", "")),
        )


class AuditLog:
    """Append-only, hash-chained log of :class:`RoundCommitment`s.

    One log per session; every armed master appends through
    :meth:`commit`, which assigns the next sequence number, links
    ``prev`` to the current head and stamps the record hash. The log
    is deliberately master-side-only state: nothing here touches the
    hot path unless the session armed auditing.
    """

    def __init__(self) -> None:
        self.records: list[RoundCommitment] = []
        self._head = GENESIS

    def __len__(self) -> int:
        return len(self.records)

    @property
    def head(self) -> str:
        """The hash of the latest record (``GENESIS`` when empty) —
        the one value an auditor needs from an independent channel to
        also detect truncation of the chain's tail."""
        return self._head

    # ------------------------------------------------------------------
    def commit(
        self,
        *,
        family: str,
        scheme: tuple[int, int, int, int],
        operand_digest: str,
        output_digest: str,
        workers: Sequence[int],
        worker_digests: Sequence[tuple[int, str]],
        attested: Sequence[int],
        accepted: Sequence[int],
        rejected: Sequence[int],
        verify_ok: bool,
        t_end: float,
    ) -> RoundCommitment:
        """Append one round's commitment and return it."""
        # one pass: normalize to JSON-able types, hash the body dict
        # directly, then freeze the record with its hash — commit runs
        # on the audited hot path, once per round, so it never builds
        # the body twice or rebuilds the frozen dataclass
        seq = len(self.records)
        scheme_l = [int(v) for v in scheme]
        workers_l = [int(w) for w in workers]
        wd_l = [[int(w), str(d)] for w, d in worker_digests]
        att_l = [int(w) for w in attested]
        acc_l = [int(w) for w in accepted]
        rej_l = [int(w) for w in rejected]
        body = {
            "seq": seq,
            "family": str(family),
            "scheme": scheme_l,
            "operand_digest": operand_digest,
            "output_digest": output_digest,
            "workers": workers_l,
            "worker_digests": wd_l,
            "attested": att_l,
            "accepted": acc_l,
            "rejected": rej_l,
            "verify_ok": bool(verify_ok),
            "t_end": float(t_end),
            "prev": self._head,
        }
        digest = hashlib.blake2b(
            _CANON(body).encode(), digest_size=32
        ).hexdigest()
        rec = RoundCommitment(
            seq=seq,
            family=body["family"],
            scheme=tuple(scheme_l),  # type: ignore[arg-type]
            operand_digest=operand_digest,
            output_digest=output_digest,
            workers=tuple(workers_l),
            worker_digests=tuple((w, d) for w, d in wd_l),
            attested=tuple(att_l),
            accepted=tuple(acc_l),
            rejected=tuple(rej_l),
            verify_ok=body["verify_ok"],
            t_end=body["t_end"],
            prev=body["prev"],
            hash=digest,
        )
        self.records.append(rec)
        self._head = digest
        return rec

    # ------------------------------------------------------------------
    def verify_chain(self) -> int:
        """Verify the in-memory chain; returns its length. Raises
        :class:`ChainError` naming the first bad record."""
        verify_chain(
            (r.to_dict() for r in self.records), expect_head=self._head
        )
        return len(self.records)

    # ------------------------------------------------------------------
    # JSONL sink
    # ------------------------------------------------------------------
    def dump(self, fp: IO[str]) -> int:
        """Write the chain as JSON Lines (one record per line);
        returns the number of records written."""
        for rec in self.records:
            fp.write(json.dumps(rec.to_dict(), sort_keys=True))
            fp.write("\n")
        return len(self.records)

    def dump_path(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as fp:
            return self.dump(fp)


def load_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a dumped chain. Unparseable lines surface as
    :class:`ChainError` with the line's position — a flipped byte that
    breaks the JSON is tampering too."""
    rows: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for i, line in enumerate(fp):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ChainError(i, f"unparseable record: {exc}") from exc
    return rows


def verify_chain(
    rows: Iterable[Mapping[str, Any]],
    *,
    expect_head: str | None = None,
    expect_length: int | None = None,
) -> str:
    """Walk a chain of record dicts and verify every link.

    Detects — and names, via :class:`ChainError.seq` — any record
    whose body does not hash to its stored ``hash`` (a tampered
    field), whose ``prev`` does not match the previous record's hash
    (a reordered, deleted or inserted record), or whose ``seq`` is out
    of sequence. ``expect_head``/``expect_length`` (e.g. from the live
    ``/audit`` endpoint or a recorded trace) additionally catch a
    truncated tail, which an internally consistent prefix cannot
    reveal on its own. Returns the verified chain's head hash.
    """
    prev = GENESIS
    count = 0
    for i, row in enumerate(rows):
        try:
            body = {k: row[k] for k in _BODY_FIELDS}
            stored = str(row["hash"])
        except (KeyError, TypeError) as exc:
            raise ChainError(i, f"missing field {exc}") from exc
        if int(row["seq"]) != i:
            raise ChainError(
                i, f"sequence number {row['seq']} at position {i}"
            )
        if str(row["prev"]) != prev:
            raise ChainError(
                i,
                f"prev hash {str(row['prev'])[:16]}... does not match the "
                f"previous record's hash {prev[:16]}...",
            )
        recomputed = record_hash(body)
        if recomputed != stored:
            raise ChainError(
                i,
                f"stored hash {stored[:16]}... does not match the record "
                f"body ({recomputed[:16]}...)",
            )
        prev = stored
        count += 1
    if expect_length is not None and count != expect_length:
        raise ChainError(
            count, f"chain has {count} records, expected {expect_length}"
        )
    if expect_head is not None and prev != expect_head:
        raise ChainError(
            max(count - 1, 0),
            f"chain head {prev[:16]}... does not match the expected head "
            f"{expect_head[:16]}... (truncated or diverged tail)",
        )
    return prev


def diff_chains(
    a: Sequence[Mapping[str, Any]], b: Sequence[Mapping[str, Any]]
) -> list[str]:
    """Human-readable differences between two chains: the first
    diverging record and any length mismatch. Records are compared
    field by field, not by stored hash — a tamperer who edits a body
    but leaves the stale ``hash`` in place still diverges. Empty list
    = identical chains."""
    out: list[str] = []
    for i in range(min(len(a), len(b))):
        keys = [
            k
            for k in (*_BODY_FIELDS, "hash")
            if a[i].get(k) != b[i].get(k)
        ]
        if keys:
            out.append(
                f"record {i}: chains diverge "
                f"(fields differing: {', '.join(keys)})"
            )
            break
    if len(a) != len(b):
        out.append(f"length: {len(a)} vs {len(b)} records")
    return out
