"""Trace capture: dump a live gateway run back into replayable form.

The serving stack can *replay* recorded traces — worker slowdowns
through :class:`~repro.runtime.latency.TraceLatency` profiles, request
traffic through :class:`~repro.serve.workload.TraceArrivals` — but
until now the traces had to come from somewhere else. The
:class:`GatewayRecorder` closes the loop: after a gateway run it reads
the :class:`~repro.serve.gateway.ServeReport` (what traffic arrived)
and the session's :class:`~repro.api.session.SessionStats` (what each
worker's latency looked like, via the round records'
``worker_latencies``) and emits a :class:`RecordedTrace` — plain,
JSON-able data in exactly the factors-on-a-base-interval format the
replay classes consume. A production incident becomes a reproducible
benchmark::

    report = gateway.run()
    trace = GatewayRecorder().capture(report, session.stats)
    path.write_text(json.dumps(trace.to_dict()))

    # later, elsewhere: replay the same arrival schedule ...
    trace = RecordedTrace.from_dict(json.loads(path.read_text()))
    generator = WorkloadGenerator(field, shape, tenants,
                                  arrivals=trace.arrival_process(), seed=7)
    # ... against workers pinned to the observed slowdowns
    profiles = trace.latency_profiles(n_workers)
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping

from repro.api.session import SessionStats
from repro.runtime.latency import DeterministicLatency, LatencyModel, TraceLatency
from repro.serve.gateway import ServeReport
from repro.serve.workload import TraceArrivals

__all__ = ["GatewayRecorder", "RecordedTrace"]

#: floor for recorded factors: TraceLatency/TraceArrivals require
#: strictly positive samples, but two requests can arrive in the same
#: instant and the fastest worker defines slowdown 1.0 exactly
_MIN_FACTOR = 1e-9


@dataclass(frozen=True)
class RecordedTrace:
    """One gateway run, reduced to replayable factors (JSON-able).

    Attributes
    ----------
    base_interval:
        Seconds that an arrival factor of 1.0 corresponds to (the
        run's mean interarrival gap unless the recorder was pinned).
    arrival_gaps:
        Interarrival gaps as multiplicative factors on
        ``base_interval``, in arrival order; the first gap is measured
        from trace t=0.
    worker_slowdowns:
        ``worker_id -> per-round slowdown factors`` (1.0 = that
        round's fastest responder), one entry per round the worker
        responded in.
    audit_head:
        Head hash of the run's audit chain when the session was
        audited (``SessionConfig.audit``), else ``None``. Pins the
        trace to the provenance of the run that produced it: a replay
        can verify its own chain re-derives the recorded commitments.
    """

    base_interval: float
    arrival_gaps: tuple[float, ...]
    worker_slowdowns: Mapping[int, tuple[float, ...]] = dc_field(default_factory=dict)
    audit_head: str | None = None

    def __post_init__(self) -> None:
        if self.base_interval <= 0:
            raise ValueError("base_interval must be positive")
        object.__setattr__(self, "arrival_gaps", tuple(float(g) for g in self.arrival_gaps))
        object.__setattr__(
            self,
            "worker_slowdowns",
            {int(w): tuple(float(f) for f in fs) for w, fs in dict(self.worker_slowdowns).items()},
        )

    # ------------------------------------------------------------------
    # replay surfaces
    # ------------------------------------------------------------------
    def arrival_process(self, start: int = 0) -> TraceArrivals:
        """The recorded traffic as a wrap-around arrival process."""
        return TraceArrivals(
            trace=TraceLatency(self.arrival_gaps, start=start),
            base_interval=self.base_interval,
        )

    def replay_arrivals(self, start: float = 0.0) -> list[float]:
        """The absolute arrival times the recorded gaps reproduce."""
        out, t = [], start
        for gap in self.arrival_gaps:
            t += gap * self.base_interval
            out.append(t)
        return out

    def latency_profiles(self, n: int, default_factor: float = 1.0) -> list[LatencyModel]:
        """Per-worker replay profiles for an ``n``-worker fleet:
        recorded workers replay their observed slowdown sequence
        (:class:`TraceLatency`); unrecorded ids get a deterministic
        ``default_factor``."""
        out: list[LatencyModel] = []
        for wid in range(n):
            factors = self.worker_slowdowns.get(wid)
            if factors:
                out.append(TraceLatency(factors))
            else:
                out.append(DeterministicLatency(factor=default_factor))
        return out

    # ------------------------------------------------------------------
    # dict round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "base_interval": self.base_interval,
            "arrival_gaps": list(self.arrival_gaps),
            "worker_slowdowns": {
                str(w): list(fs) for w, fs in sorted(self.worker_slowdowns.items())
            },
        }
        if self.audit_head is not None:
            # only audited runs carry the key: unaudited trace dumps
            # stay byte-identical to pre-audit builds
            out["audit_head"] = self.audit_head
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RecordedTrace":
        return cls(
            base_interval=float(data["base_interval"]),
            arrival_gaps=tuple(data["arrival_gaps"]),
            worker_slowdowns={
                int(w): tuple(fs)
                for w, fs in dict(data.get("worker_slowdowns", {})).items()
            },
            audit_head=data.get("audit_head"),
        )


class GatewayRecorder:
    """Reduce one gateway run to a :class:`RecordedTrace`.

    Parameters
    ----------
    base_interval:
        Pin the factor scale (seconds per 1.0 arrival factor). The
        default derives it from the run itself — the mean observed
        interarrival gap — so recorded factors hover around 1.0 and a
        replayer can rescale traffic intensity by choosing its own
        base interval.
    """

    def __init__(self, base_interval: float | None = None):
        if base_interval is not None and base_interval <= 0:
            raise ValueError("base_interval must be positive")
        self.base_interval = base_interval

    def capture(
        self, report: ServeReport, stats: SessionStats, audit: Any = None
    ) -> RecordedTrace:
        """Record the run's arrivals and per-worker slowdowns.

        Pass the session's :class:`~repro.obs.audit.AuditLog` (or the
        gateway's ``audit`` attribute) as ``audit`` to stamp the
        chain head into the trace — the provenance anchor a replay
        checks its own commitments against.

        Every request that *arrived* is recorded — served or shed; the
        shed ones are part of the traffic a replay must reproduce.
        Worker slowdowns come from the executed rounds'
        ``worker_latencies``: within each round, a worker's factor is
        its broadcast-to-arrival latency over the round's fastest
        responder (1.0 = fastest), so calibration-free wall-clock runs
        and simulated runs record comparably.
        """
        arrivals = sorted(o.arrival for o in report.outcomes)
        gaps = []
        prev = 0.0
        for t in arrivals:
            gaps.append(max(t - prev, 0.0))
            prev = t
        positive = [g for g in gaps if g > 0]
        base = self.base_interval
        if base is None:
            base = (sum(positive) / len(positive)) if positive else 1.0
        arrival_gaps = tuple(max(g / base, _MIN_FACTOR) for g in gaps)

        slowdowns: dict[int, list[float]] = {}
        for record in stats.records:
            lats = [(wid, lat) for wid, lat in record.worker_latencies if lat >= 0.0]
            if not lats:
                continue
            fastest = min(lat for _, lat in lats)
            for wid, lat in lats:
                factor = (lat / fastest) if fastest > 0 else 1.0
                slowdowns.setdefault(wid, []).append(max(factor, _MIN_FACTOR))
        return RecordedTrace(
            base_interval=base,
            arrival_gaps=arrival_gaps,
            worker_slowdowns={w: tuple(fs) for w, fs in slowdowns.items()},
            audit_head=(audit.head if audit is not None and len(audit) else None),
        )
