"""The serving gateway: multi-tenant traffic over coded computing.

Everything below the session executes *jobs*; this package serves
*requests*. It layers the missing top of the serving stack — arrival
processes, tenants, deadlines, admission control, and deadline-aware
micro-batching — on the :class:`~repro.api.session.Session` API:

    from repro.api import Session, SessionConfig
    from repro.coding import SchemeParams
    from repro.serve import (
        Gateway, GatewayConfig, OpenLoopSource, PoissonArrivals,
        TenantSpec, WorkloadGenerator,
    )

    cfg = SessionConfig(scheme=SchemeParams(n=12, k=9, s=1, m=1),
                        batch_window=64)
    with Session.create(cfg) as sess:
        sess.load(x)
        gen = WorkloadGenerator(
            sess.field, x.shape,
            tenants=[TenantSpec("free", weight=1.0, deadline_slack=0.5),
                     TenantSpec("pro", weight=3.0, deadline_slack=0.1)],
            arrivals=PoissonArrivals(rate=400.0), seed=7,
        )
        gw = Gateway(sess, OpenLoopSource(gen.generate(500)),
                     GatewayConfig(batch_policy="hybrid",
                                   policy_options={"window": 16, "safety": 1.5},
                                   tenant_weights=gen.tenant_weights))
        report = gw.run()
        print(report.summary())          # p50/p99, SLO attainment, sheds

Four modules:

:mod:`repro.serve.workload`
    Typed :class:`~repro.serve.workload.Request` objects and traffic
    generation — Poisson / bursty (Markov-modulated) / diurnal / trace
    replay arrival processes, open- and closed-loop sources, tenant
    mixes.
:mod:`repro.serve.queueing`
    Per-tenant bounded FIFOs, weighted fair dequeue (stride
    scheduling) and admission control (queue-depth and expired-request
    shedding).
:mod:`repro.serve.batcher`
    The pluggable :class:`~repro.serve.batcher.BatchPolicy` registry
    (``count`` / ``deadline`` / ``hybrid`` built in) and the
    per-family :class:`~repro.serve.batcher.MicroBatcher`.
:mod:`repro.serve.gateway`
    The event loop tying it together against sim-virtual or wall-clock
    time, and the :class:`~repro.serve.gateway.ServeReport` metrics
    surface.
:mod:`repro.serve.recorder`
    The capture side of trace replay: dump a live gateway run
    (arrivals + observed per-worker slowdowns) back into the
    ``TraceArrivals``/``TraceLatency`` format, so incidents become
    reproducible benchmarks.
"""

from repro.serve.batcher import (
    BatchPolicy,
    CountPolicy,
    DeadlinePolicy,
    HybridPolicy,
    MicroBatcher,
    PendingBatch,
    batch_policy_names,
    make_batch_policy,
    register_batch_policy,
)
from repro.serve.gateway import Gateway, GatewayConfig, RequestOutcome, ServeReport
from repro.serve.queueing import FairQueue, TenantStats
from repro.serve.recorder import GatewayRecorder, RecordedTrace
from repro.serve.workload import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedLoopSource,
    DiurnalArrivals,
    OpenLoopSource,
    PoissonArrivals,
    Request,
    TenantSpec,
    TraceArrivals,
    WorkloadGenerator,
)

__all__ = [
    "ArrivalProcess",
    "BatchPolicy",
    "BurstyArrivals",
    "ClosedLoopSource",
    "CountPolicy",
    "DeadlinePolicy",
    "DiurnalArrivals",
    "FairQueue",
    "Gateway",
    "GatewayConfig",
    "GatewayRecorder",
    "HybridPolicy",
    "MicroBatcher",
    "OpenLoopSource",
    "PendingBatch",
    "PoissonArrivals",
    "RecordedTrace",
    "Request",
    "RequestOutcome",
    "ServeReport",
    "TenantSpec",
    "TenantStats",
    "TraceArrivals",
    "WorkloadGenerator",
    "batch_policy_names",
    "make_batch_policy",
    "register_batch_policy",
]
