"""Multi-tenant admission control and weighted fair dequeue.

The gateway admits every arriving request into a per-tenant bounded
FIFO. Admission control sheds two classes of request up front — the
overload protection half of the serving story:

* **queue-full** — the tenant's FIFO is at ``depth`` (the tenant is
  submitting faster than its fair share drains; unbounded queues just
  convert overload into unbounded latency);
* **already-expired** — the request's deadline has passed before it
  could even be queued (or before it reached the head of the queue:
  dequeue re-checks, so a request that aged out while waiting is shed
  instead of wasting a round on work nobody will accept).

Dequeue order across tenants is **stride-scheduled weighted fair
queueing**: every tenant carries a virtual *pass*; each dequeue picks
the backlogged tenant with the smallest pass and advances it by
``1 / weight`` — over any backlogged interval tenant service converges
to the weight ratio, and a tenant idling never banks credit (on
re-arrival its pass is brought up to the system virtual time, the
largest pass ever charged — even across fully idle stretches).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field as dc_field
from typing import Iterable, Mapping

from repro.serve.workload import Request

__all__ = ["ADMITTED", "SHED_EXPIRED", "SHED_QUEUE_FULL", "FairQueue", "TenantStats"]

#: admission verdicts returned by :meth:`FairQueue.offer`
ADMITTED = "admitted"
SHED_QUEUE_FULL = "shed-queue-full"
SHED_EXPIRED = "shed-expired"


@dataclass
class TenantStats:
    """Per-tenant admission/shedding counters."""

    admitted: int = 0
    shed_queue_full: int = 0
    shed_expired: int = 0
    dequeued: int = 0

    @property
    def offered(self) -> int:
        return self.admitted + self.shed_queue_full + self.shed_expired


@dataclass
class _TenantQueue:
    weight: float
    fifo: deque[Request] = dc_field(default_factory=deque)
    pass_value: float = 0.0
    stats: TenantStats = dc_field(default_factory=TenantStats)


class FairQueue:
    """Bounded per-tenant FIFOs with stride-scheduled fair dequeue.

    Parameters
    ----------
    depth:
        Per-tenant queue bound; offers beyond it are shed.
    weights:
        ``tenant -> weight`` for the fair dequeue (and unknown tenants
        get ``default_weight``). Higher weight = proportionally more
        dequeues while backlogged.
    default_weight:
        Weight for tenants absent from ``weights``.
    """

    def __init__(
        self,
        depth: int = 64,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        weights = dict(weights or {})
        if any(w <= 0 for w in weights.values()):
            raise ValueError("tenant weights must be positive")
        self.depth = depth
        self._weights = weights
        self._default_weight = default_weight
        self._tenants: dict[str, _TenantQueue] = {}
        self._shed: list[tuple[Request, str]] = []
        #: system virtual time: the largest pass ever charged. A tenant
        #: (re)joining the backlog starts here, so idling — even
        #: through a fully idle system — never banks credit.
        self._vtime = 0.0

    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> _TenantQueue:
        tq = self._tenants.get(name)
        if tq is None:
            tq = _TenantQueue(weight=self._weights.get(name, self._default_weight))
            self._tenants[name] = tq
        return tq

    # ------------------------------------------------------------------
    def offer(self, request: Request, now: float) -> str:
        """Admit ``request`` or shed it; returns the admission verdict
        (:data:`ADMITTED` / :data:`SHED_QUEUE_FULL` /
        :data:`SHED_EXPIRED`). Shed requests are also queued up for
        :meth:`take_shed` so the gateway can record their outcomes."""
        tq = self._tenant(request.tenant)
        if request.expired(now):
            tq.stats.shed_expired += 1
            self._shed.append((request, SHED_EXPIRED))
            return SHED_EXPIRED
        if len(tq.fifo) >= self.depth:
            tq.stats.shed_queue_full += 1
            self._shed.append((request, SHED_QUEUE_FULL))
            return SHED_QUEUE_FULL
        if not tq.fifo:
            # an idle tenant must not bank credit: rejoin at the
            # system virtual time
            tq.pass_value = max(tq.pass_value, self._vtime)
        tq.fifo.append(request)
        tq.stats.admitted += 1
        return ADMITTED

    def pop(self, now: float) -> Request | None:
        """Dequeue the next request in weighted-fair order, shedding
        any that expired while queued (recorded for
        :meth:`take_shed`). ``None`` = every queue is empty."""
        while True:
            backlogged = [(t.pass_value, name) for name, t in self._tenants.items() if t.fifo]
            if not backlogged:
                return None
            _, name = min(backlogged)
            tq = self._tenants[name]
            request = tq.fifo.popleft()
            if request.expired(now):
                tq.stats.shed_expired += 1
                self._shed.append((request, SHED_EXPIRED))
                continue
            tq.pass_value += 1.0 / tq.weight
            self._vtime = max(self._vtime, tq.pass_value)
            tq.stats.dequeued += 1
            return request

    def take_shed(self) -> list[tuple[Request, str]]:
        """Drain the (request, verdict) pairs shed since the last call."""
        out, self._shed = self._shed, []
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(t.fifo) for t in self._tenants.values())

    def depth_of(self, tenant: str) -> int:
        tq = self._tenants.get(tenant)
        return len(tq.fifo) if tq else 0

    def tenants(self) -> Iterable[str]:
        return self._tenants.keys()

    def stats(self) -> dict[str, TenantStats]:
        """Per-tenant admission counters (live objects)."""
        return {name: t.stats for name, t in self._tenants.items()}

    @property
    def total_shed_queue_full(self) -> int:
        return sum(t.stats.shed_queue_full for t in self._tenants.values())

    @property
    def total_shed_expired(self) -> int:
        return sum(t.stats.shed_expired for t in self._tenants.values())
