"""Deadline-aware micro-batching policies and the per-family batcher.

PR 2's session already coalesces same-family jobs into one broadcast
round, but its trigger is purely count-based (``batch_window`` fills).
A serving gateway needs the *when* to be a policy: waiting longer
coalesces more requests per round (amortizing broadcast, straggler
exposure, verification and decode), but waiting too long blows the
earliest deadline in the batch. This module makes that trade-off
pluggable:

* :class:`BatchPolicy` — maps a :class:`PendingBatch` to the absolute
  backend-clock time at which it *must* dispatch (``-inf`` = overdue,
  dispatch now; ``+inf`` = no pressure, wait for more traffic).
* the **policy registry** (:func:`register_batch_policy` /
  :func:`make_batch_policy`) with three built-ins:

  - ``"count"`` — dispatch when the batch reaches ``window`` requests
    (PR 2's trigger, generalized);
  - ``"deadline"`` — dispatch when the earliest deadline's slack is
    about to fall below ``safety ×`` the estimated round time (live
    estimate from :meth:`repro.api.session.Session.estimate_round_time`:
    cost-model prior blended with observed round durations);
  - ``"hybrid"`` — whichever of the two fires first.

* :class:`MicroBatcher` — holds at most one open batch per encoded
  family and surfaces the next due time, so the gateway's event loop
  can sleep exactly until either a new arrival or a batch deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dc_field
from typing import Callable, Protocol, runtime_checkable

from repro.serve.workload import Request

__all__ = [
    "BatchPolicy",
    "CountPolicy",
    "DeadlinePolicy",
    "HybridPolicy",
    "MicroBatcher",
    "PendingBatch",
    "batch_policy_names",
    "make_batch_policy",
    "register_batch_policy",
]

#: (session family key, batch width) -> estimated round seconds
RoundTimeEstimator = Callable[[str, int], float]


@dataclass
class PendingBatch:
    """Requests accumulated for one encoded family, awaiting dispatch."""

    family: str  # session family key: "fwd" | "bwd" | "gram"
    opened_at: float
    requests: list[Request] = dc_field(default_factory=list)

    @property
    def width(self) -> int:
        return len(self.requests)

    @property
    def earliest_deadline(self) -> float:
        return min((r.deadline for r in self.requests), default=math.inf)

    def add(self, request: Request) -> None:
        self.requests.append(request)


@runtime_checkable
class BatchPolicy(Protocol):
    """When must a pending batch dispatch?"""

    def due_at(self, batch: PendingBatch, estimator: RoundTimeEstimator) -> float:
        """Absolute backend-clock time by which ``batch`` must
        dispatch. ``-inf`` = overdue (dispatch immediately); ``+inf``
        = no pressure (dispatch only on drain or a later trigger)."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class CountPolicy:
    """Dispatch when the batch reaches ``window`` requests — the
    count-based trigger of ``SessionConfig.batch_window``, generalized
    into the policy registry. ``window=1`` is the *serial gateway*:
    every request dispatches as its own round the moment it is popped."""

    window: int = 8

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    def due_at(self, batch: PendingBatch, estimator: RoundTimeEstimator) -> float:
        return -math.inf if batch.width >= self.window else math.inf


@dataclass(frozen=True)
class DeadlinePolicy:
    """Dispatch when the earliest deadline's slack runs out.

    A batch must be in flight ``safety × estimate_round_time(family,
    width)`` before its earliest absolute deadline — the estimator
    blends the cost-model prior with live observed round times, and
    ``safety`` absorbs what the estimate cannot see (stragglers,
    pipeline queueing). Deadline-free batches (all ``math.inf``) feel
    no pressure from this policy.
    """

    safety: float = 1.5

    def __post_init__(self):
        if self.safety <= 0:
            raise ValueError(f"safety must be positive, got {self.safety}")

    def due_at(self, batch: PendingBatch, estimator: RoundTimeEstimator) -> float:
        deadline = batch.earliest_deadline
        if not math.isfinite(deadline):
            return math.inf
        est = estimator(batch.family, batch.width)
        return deadline - self.safety * est


@dataclass(frozen=True)
class HybridPolicy:
    """``count`` OR ``deadline`` OR a linger timeout — whichever fires
    first: fill up to ``window`` requests, unless an SLO forces an
    earlier dispatch, and never hold a batch open longer than
    ``linger`` seconds. The linger cap is what keeps tail latency flat
    through calm stretches: without it a generous deadline lets the
    deadline component batch right up to the SLO boundary, turning
    slack into latency even when no more traffic is coming."""

    window: int = 8
    safety: float = 1.5
    linger: float = math.inf

    def __post_init__(self):
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.safety <= 0:
            raise ValueError(f"safety must be positive, got {self.safety}")
        if self.linger <= 0:
            raise ValueError(f"linger must be positive, got {self.linger}")

    def due_at(self, batch: PendingBatch, estimator: RoundTimeEstimator) -> float:
        if batch.width >= self.window:
            return -math.inf
        due = batch.opened_at + self.linger
        deadline = batch.earliest_deadline
        if math.isfinite(deadline):
            due = min(due, deadline - self.safety * estimator(batch.family, batch.width))
        return due


# ----------------------------------------------------------------------
# policy registry
# ----------------------------------------------------------------------
_POLICIES: dict[str, Callable[..., BatchPolicy]] = {}


def register_batch_policy(
    name: str, factory: Callable[..., BatchPolicy], *, overwrite: bool = False
) -> None:
    """Bind ``name`` to a policy factory (``factory(**options) ->
    BatchPolicy``). Raises on duplicates unless ``overwrite=True`` —
    same contract as the backend/master registries."""
    if not name or not isinstance(name, str):
        raise ValueError(f"policy name must be a non-empty string, got {name!r}")
    if name in _POLICIES and not overwrite:
        raise ValueError(
            f"batch policy {name!r} is already registered (pass overwrite=True to re-bind)"
        )
    _POLICIES[name] = factory


def make_batch_policy(name: str, **options) -> BatchPolicy:
    """Instantiate a registered policy by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown batch policy {name!r}; registered: {batch_policy_names()}"
        ) from None
    return factory(**options)


def batch_policy_names() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


register_batch_policy("count", CountPolicy)
register_batch_policy("deadline", DeadlinePolicy)
register_batch_policy("hybrid", HybridPolicy)


# ----------------------------------------------------------------------
class MicroBatcher:
    """One open batch per encoded family, dispatched by policy.

    The gateway adds fair-dequeued requests; :meth:`next_due` is the
    earliest time any open batch must dispatch (the event loop's timer),
    and :meth:`take_due` pops the batches whose time has come. A batch
    reaching ``max_batch`` is due unconditionally — the hard cap that
    keeps one round's broadcast bounded regardless of policy.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        estimator: RoundTimeEstimator,
        max_batch: int = 32,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.policy = policy
        self.estimator = estimator
        self.max_batch = max_batch
        self._open: dict[str, PendingBatch] = {}

    # ------------------------------------------------------------------
    def _due_at(self, batch: PendingBatch) -> float:
        if batch.width >= self.max_batch:
            return -math.inf
        return self.policy.due_at(batch, self.estimator)

    def add(self, family: str, request: Request, now: float) -> None:
        batch = self._open.get(family)
        if batch is None:
            batch = self._open[family] = PendingBatch(family=family, opened_at=now)
        batch.add(request)

    def due_now(self, family: str, now: float) -> bool:
        """Whether the family's open batch must dispatch at ``now``
        (policy fired, or the ``max_batch`` cap was reached)."""
        batch = self._open.get(family)
        return batch is not None and self._due_at(batch) <= now

    def pop_family(self, family: str) -> PendingBatch | None:
        """Force the family's open batch out (window pressure)."""
        return self._open.pop(family, None)

    def next_due(self) -> float:
        """Earliest dispatch obligation over all open batches."""
        return min((self._due_at(b) for b in self._open.values()), default=math.inf)

    def take_due(self, now: float) -> list[PendingBatch]:
        """Pop every batch due at or before ``now``."""
        due = [fam for fam, b in self._open.items() if self._due_at(b) <= now]
        return [self._open.pop(fam) for fam in due]

    def drain(self) -> list[PendingBatch]:
        """Pop everything (arrivals exhausted — no reason to wait)."""
        out = list(self._open.values())
        self._open.clear()
        return out

    @property
    def pending(self) -> int:
        """Requests currently held in open batches."""
        return sum(b.width for b in self._open.values())

    def open_families(self) -> tuple[str, ...]:
        return tuple(sorted(self._open))
