"""The serving gateway: traffic in, verified results + a ServeReport out.

:class:`Gateway` turns a :class:`~repro.api.session.Session` into a
traffic-driven service. One event loop drives the whole pipeline

    generate → admit (fair queues, shedding) → micro-batch → submit →
    resolve

against the backend clock — *virtual* time on the simulator (the loop
advances the clock to the next arrival or batch deadline, and round
execution advances it through broadcast/verify/decode costs exactly as
in the experiments), *wall* time on the threaded/process backends
(``advance_to`` only floors the bookkeeping clock, so a recorded
arrival schedule replays as-fast-as-possible).

Every request terminates in exactly one :class:`RequestOutcome` —
``served`` (with dispatch/completion times and latency) or shed
(``shed-queue-full`` at admission, ``shed-expired`` at admission,
dequeue or dispatch) — and the run returns a :class:`ServeReport`:
latency percentiles (p50/p95/p99), SLO attainment, shed counts,
throughput, per-tenant breakdowns and a Jain fairness index, all
JSON-able for the benchmark/CI artifact path. Decoded result vectors
are kept on :attr:`Gateway.results` (by request id) so parity tests
can check byte-identical service against unbatched execution.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.api.session import JobHandle, Session
from repro.control.signals import (
    WindowSignals,
    outcome_recorder,
    set_window_tracking,
)
from repro.obs.metrics import HistogramSnapshot, snapshot_from_values
from repro.serve.batcher import MicroBatcher, PendingBatch, make_batch_policy
from repro.serve.queueing import SHED_EXPIRED, FairQueue
from repro.serve.workload import Request

__all__ = ["Gateway", "GatewayConfig", "RequestOutcome", "ServeReport", "TrafficSource"]

#: outcome statuses
SERVED = "served"


@runtime_checkable
class TrafficSource(Protocol):
    """What the gateway needs from a traffic generator: the initial
    arrival schedule, plus a closed-loop feedback hook invoked once
    per *terminal* outcome — served or shed — so a client whose
    request was dropped still paces its next one."""

    def initial(self) -> list[Request]:
        ...  # pragma: no cover

    def on_complete(self, request: Request, now: float) -> Request | None:
        ...  # pragma: no cover


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway policy knobs (the session's own config governs the
    coded-computing side).

    Attributes
    ----------
    batch_policy:
        Registered policy name (``"count" | "deadline" | "hybrid"``
        built in; see :mod:`repro.serve.batcher`).
    policy_options:
        Keyword arguments for the policy factory (e.g. ``{"window": 16,
        "safety": 1.5}``).
    max_batch:
        Hard cap on requests per dispatched round; effectively also
        capped by the session's ``batch_window`` (the gateway never
        submits more than one auto-flush worth of jobs per round).
    queue_depth:
        Per-tenant admission bound; offers beyond it are shed.
    tenant_weights:
        Fair-dequeue weights (unknown tenants get 1.0).
    """

    batch_policy: str = "hybrid"
    policy_options: Mapping[str, Any] = dc_field(default_factory=dict)
    max_batch: int = 32
    queue_depth: int = 64
    tenant_weights: Mapping[str, float] = dc_field(default_factory=dict)

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        object.__setattr__(self, "policy_options", dict(self.policy_options))
        object.__setattr__(self, "tenant_weights", dict(self.tenant_weights))


@dataclass(frozen=True)
class RequestOutcome:
    """Terminal accounting for one request."""

    request_id: int
    tenant: str
    family: str
    arrival: float
    deadline: float
    status: str  # "served" | "shed-queue-full" | "shed-expired"
    dispatched: float | None = None
    completed: float | None = None
    latency: float | None = None
    #: None when the request carried no (finite) deadline
    slo_met: bool | None = None
    #: sequence number of the audit-chain commitment backing this
    #: request's round (``SessionConfig.audit`` on); ``None`` — and
    #: absent from :meth:`to_dict` — otherwise
    audit_seq: int | None = None

    def to_dict(self) -> dict[str, Any]:
        def clean(x: float | None) -> float | None:
            if x is None or (isinstance(x, float) and not math.isfinite(x)):
                return None
            return float(x)

        out = {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "family": self.family,
            "arrival": clean(self.arrival),
            "deadline": clean(self.deadline),
            "status": self.status,
            "dispatched": clean(self.dispatched),
            "completed": clean(self.completed),
            "latency": clean(self.latency),
            "slo_met": self.slo_met,
        }
        if self.audit_seq is not None:
            # only audited runs carry the key: unaudited report rows
            # stay byte-identical to pre-audit builds
            out["audit_seq"] = self.audit_seq
        return out


@dataclass(frozen=True)
class ServeReport:
    """Aggregate service quality of one gateway run (JSON-able)."""

    outcomes: tuple[RequestOutcome, ...]
    t_start: float
    t_end: float
    tenant_weights: Mapping[str, float] = dc_field(default_factory=dict)
    rounds_executed: int = 0
    batching_factor: float = 0.0
    pipeline_occupancy: float = 0.0

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def served(self) -> tuple[RequestOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == SERVED)

    @property
    def shed_queue_full(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "shed-queue-full")

    @property
    def shed_expired(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "shed-expired")

    @property
    def shed(self) -> int:
        return self.total - len(self.served)

    def latencies(self) -> np.ndarray:
        return np.array([o.latency for o in self.served], dtype=float)

    def latency_histogram(self) -> HistogramSnapshot:
        """Served latencies on the shared fixed bucket ladder — two
        reports' histograms merge losslessly
        (:meth:`~repro.obs.metrics.HistogramSnapshot.merge`)."""
        return snapshot_from_values(self.latencies().tolist())

    def tenant_latency_histograms(self) -> dict[str, HistogramSnapshot]:
        """Per-tenant served-latency histograms (same ladder)."""
        out: dict[str, HistogramSnapshot] = {}
        for tenant in sorted({o.tenant for o in self.served}):
            out[tenant] = snapshot_from_values(
                [o.latency for o in self.served if o.tenant == tenant]
            )
        return out

    def latency_percentile(self, p: float) -> float:
        lat = self.latencies()
        if lat.size == 0:
            return math.nan
        return float(np.percentile(lat, p))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    @property
    def slo_attainment(self) -> float:
        """Fraction of deadline-carrying requests served within their
        deadline (sheds count against; 1.0 when nothing carried one)."""
        with_slo = [o for o in self.outcomes if math.isfinite(o.deadline)]
        if not with_slo:
            return 1.0
        return sum(1 for o in with_slo if o.slo_met) / len(with_slo)

    @property
    def throughput(self) -> float:
        """Served requests per backend-clock second."""
        if self.duration <= 0:
            return 0.0
        return len(self.served) / self.duration

    # ------------------------------------------------------------------
    def tenant_summary(self) -> dict[str, dict[str, float]]:
        """Per-tenant served/shed counts and mean/p99 latency."""
        out: dict[str, dict[str, float]] = {}
        for tenant in sorted({o.tenant for o in self.outcomes}):
            mine = [o for o in self.outcomes if o.tenant == tenant]
            served = [o for o in mine if o.status == SERVED]
            lat = np.array([o.latency for o in served], dtype=float)
            out[tenant] = {
                "submitted": len(mine),
                "served": len(served),
                "shed": len(mine) - len(served),
                "mean_latency": float(lat.mean()) if lat.size else math.nan,
                "p99_latency": float(np.percentile(lat, 99)) if lat.size else math.nan,
            }
        return out

    def fairness_index(self) -> float:
        """Jain's index over per-tenant weight-normalized service
        (1.0 = perfectly weight-proportional; 1/n = one tenant took
        everything)."""
        shares = []
        for tenant, row in self.tenant_summary().items():
            weight = float(self.tenant_weights.get(tenant, 1.0))
            shares.append(row["served"] / weight)
        if not shares or all(s == 0 for s in shares):
            return 1.0
        x = np.array(shares, dtype=float)
        return float(x.sum() ** 2 / (x.size * (x**2).sum()))

    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, float]:
        """Headline scalars (the benchmark/CI surface)."""
        return {
            "total": float(self.total),
            "served": float(len(self.served)),
            "shed_queue_full": float(self.shed_queue_full),
            "shed_expired": float(self.shed_expired),
            "p50_latency": self.p50,
            "p95_latency": self.p95,
            "p99_latency": self.p99,
            "slo_attainment": self.slo_attainment,
            "throughput": self.throughput,
            "fairness_index": self.fairness_index(),
            "duration": self.duration,
            "rounds_executed": float(self.rounds_executed),
            "batching_factor": self.batching_factor,
            "pipeline_occupancy": self.pipeline_occupancy,
        }

    def to_dict(self, include_histograms: bool = False) -> dict[str, Any]:
        def clean(v: float) -> float | None:
            return None if isinstance(v, float) and not math.isfinite(v) else v

        out = {
            "metrics": {k: clean(v) for k, v in self.metrics().items()},
            "tenants": {
                t: {k: clean(v) for k, v in row.items()}
                for t, row in self.tenant_summary().items()
            },
            "requests": [o.to_dict() for o in self.outcomes],
        }
        if include_histograms:
            # opt-in so the default serialization stays byte-identical
            out["histograms"] = {
                "latency": self.latency_histogram().to_dict(),
                "tenants": {
                    t: h.to_dict()
                    for t, h in self.tenant_latency_histograms().items()
                },
            }
        return out

    def summary(self) -> str:
        return (
            f"{len(self.served)}/{self.total} served "
            f"({self.shed_expired} expired, {self.shed_queue_full} queue-full shed) "
            f"in {self.duration:.4f}s; p50 {self.p50:.4f}s p99 {self.p99:.4f}s, "
            f"SLO attainment {self.slo_attainment:.1%}, "
            f"fairness {self.fairness_index():.3f}, "
            f"{self.rounds_executed} rounds (batching x{self.batching_factor:.2f})"
        )


# ----------------------------------------------------------------------
class Gateway:
    """Drive a traffic source through a session; collect a ServeReport.

    The gateway owns the serving policy (admission, fairness,
    micro-batching) and *borrows* the session — callers construct and
    close the session (typically as a context manager) and must have
    called ``session.load(x)`` before :meth:`run` if the traffic
    contains matvec/gramian requests.
    """

    def __init__(
        self,
        session: Session,
        source: TrafficSource,
        config: GatewayConfig | None = None,
        *,
        control_interval: float | None = None,
        controller: Any = None,
    ):
        self.session = session
        self.source = source
        self.config = config or GatewayConfig()
        if controller is not None and control_interval is None:
            raise ValueError(
                "a controller needs control_interval (the window length in "
                "trace seconds) to receive windows"
            )
        if control_interval is not None and control_interval <= 0:
            raise ValueError(
                f"control_interval must be > 0, got {control_interval}"
            )
        #: window length (trace seconds) for control-plane telemetry;
        #: None disables windowing entirely (zero-overhead default)
        self.control_interval = control_interval
        #: anything exposing on_window(WindowSignals) — typically a
        #: repro.control.controller.FleetController
        self.controller = controller
        #: one WindowSignals per closed control window, in order
        self.window_history: list[WindowSignals] = []
        self._fresh_outcomes: list[RequestOutcome] = []
        self._next_window = (
            control_interval if control_interval is not None else math.inf
        )
        self._window_index = 0
        self._records_mark = 0
        self._adapt_mark = 0
        policy = make_batch_policy(
            self.config.batch_policy, **self.config.policy_options
        )
        # never out-batch the session's own auto-flush window: the
        # gateway dispatches exactly one coalesced round per batch
        max_batch = min(self.config.max_batch, session.batch_window)
        self._batcher = MicroBatcher(
            policy, session.estimate_round_time, max_batch=max_batch
        )
        self._queue = FairQueue(
            depth=self.config.queue_depth, weights=self.config.tenant_weights
        )
        self._inflight: list[tuple[Request, JobHandle, float]] = []
        self._outcomes: dict[int, RequestOutcome] = {}
        #: decoded result vectors by request id (parity checks)
        self.results: dict[int, np.ndarray] = {}
        self._ran = False
        self._t0 = 0.0
        self._floor = 0.0
        #: the session's Observability (None unless the session config
        #: enabled it) — tracing and window accounting hang off it
        self.obs = getattr(session, "obs", None)
        self.audit = getattr(session, "audit", None)
        self._record_outcome: Any = None
        if self.obs is not None:
            # no control loop -> nobody ever drains the raw-value
            # windows; disarm them so the hot path skips the appends
            set_window_tracking(self.obs.registry, control_interval is not None)
            self._record_outcome = outcome_recorder(self.obs.registry)
        self._obs_marks: dict[Any, float] = {}
        #: request_id -> (root "request" span, "gateway.queue" span)
        self._req_spans: dict[int, list[Any]] = {}
        #: (tenant, family) -> shared root-attr dict for admission spans
        self._admit_attrs: dict[tuple[str, str], dict[str, Any]] = {}
        #: live TelemetryServer when run_async was given telemetry_port
        self.telemetry: Any = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current *trace* time: backend seconds since :meth:`run`
        started. Workload arrival/deadline timestamps count from t=0,
        but by the time the gateway runs, the backend clock has already
        paid for ``session.load`` (share distribution); rebasing keeps
        the trace aligned — the service opens its doors at trace t=0 —
        instead of silently charging every early request's latency and
        SLO budget for the setup.

        ``_floor`` carries the last :meth:`_advance` target exactly:
        ``(_t0 + t) - _t0`` can round to a hair below ``t``, and
        without the floor the event loop would re-advance to the same
        instant forever."""
        return max(self.session.now - self._t0, self._floor)

    def _advance(self, t: float) -> None:
        self.session.backend.advance_to(self._t0 + t)
        if t > self._floor:
            self._floor = t

    @staticmethod
    def _session_family(request: Request) -> str | None:
        """Map a request to the session's encoded-family key (None =
        unbatchable, dispatch alone)."""
        if request.family == "matvec":
            return "bwd" if request.transpose else "fwd"
        if request.family == "gramian":
            return "gram"
        return None  # matmul: factors pre-ship at submission, no batching

    # ------------------------------------------------------------------
    def run(self) -> ServeReport:
        """Execute the full trace; every request ends served or shed."""
        if self._ran:
            raise RuntimeError("gateway already ran; build a fresh one per trace")
        self._ran = True
        self._t0 = self.session.now  # trace t=0 (see `now`)
        self._floor = 0.0
        heap: list[tuple[float, int, Request]] = [
            (r.arrival, r.request_id, r) for r in self.source.initial()
        ]
        heapq.heapify(heap)
        while True:
            self._harvest(heap)
            self._control_tick()
            self._ingest(heap)
            self._fill(heap)
            due = self._batcher.take_due(self.now)
            if due:
                for batch in due:
                    self._dispatch(batch, heap)
                continue
            t_next = min(
                heap[0][0] if heap else math.inf, self._batcher.next_due()
            )
            if math.isfinite(t_next):
                # nothing due yet: sleep (virtually) until the next
                # arrival or the earliest batch-dispatch obligation.
                # A dispatch inside _fill may have advanced the clock
                # past t_next already — then just loop to re-ingest.
                if t_next > self.now:
                    self._advance(t_next)
                continue
            if self._batcher.pending:
                # arrivals exhausted: flush the remainder
                for batch in self._batcher.drain():
                    self._dispatch(batch, heap)
                continue
            if self._inflight:
                self.session.drain()
                self._harvest(heap)  # may spawn closed-loop arrivals
            if heap:
                continue
            break
        return self._build_report()

    async def run_async(
        self,
        *,
        telemetry_port: int | None = None,
        telemetry_host: str = "127.0.0.1",
    ) -> ServeReport:
        """Asyncio twin of :meth:`run`: the same event loop (identical
        order of admission, batching, dispatch and harvest — reports
        are byte-identical), but every session call that can block on
        the network (``flush`` inside a dispatch, the final ``drain``)
        hops to the loop's executor, so an event loop hosting this
        coroutine overlaps batching/admission bookkeeping — and any
        other tasks it runs — with the backend's network waits.

        With ``telemetry_port`` set (0 = ephemeral) and observability
        enabled on the session, a live
        :class:`~repro.obs.exporter.TelemetryServer` is attached to
        this event loop before the first request is admitted — and is
        deliberately *left running* after the trace completes (query
        ``gateway.telemetry.url``, stop via
        ``await gateway.telemetry.stop()``), so traces and metrics
        stay inspectable after the run."""
        import asyncio

        if self._ran:
            raise RuntimeError("gateway already ran; build a fresh one per trace")
        self._ran = True
        if telemetry_port is not None:
            if self.obs is None:
                raise RuntimeError(
                    "telemetry endpoint needs observability=True on the "
                    "session config"
                )
            from repro.obs.exporter import TelemetryServer

            self.telemetry = TelemetryServer(
                self.obs, host=telemetry_host, port=telemetry_port
            )
            await self.telemetry.start()
        loop = asyncio.get_running_loop()
        self._t0 = self.session.now  # trace t=0 (see `now`)
        self._floor = 0.0
        heap: list[tuple[float, int, Request]] = [
            (r.arrival, r.request_id, r) for r in self.source.initial()
        ]
        heapq.heapify(heap)
        while True:
            self._harvest(heap)
            # controller actions can block on the network (spawn +
            # re-code); keep them off the event loop
            await loop.run_in_executor(None, self._control_tick)
            self._ingest(heap)
            await self._fill_async(heap, loop)
            due = self._batcher.take_due(self.now)
            if due:
                for batch in due:
                    await loop.run_in_executor(None, self._dispatch, batch, heap)
                continue
            t_next = min(
                heap[0][0] if heap else math.inf, self._batcher.next_due()
            )
            if math.isfinite(t_next):
                if t_next > self.now:
                    self._advance(t_next)
                continue
            if self._batcher.pending:
                for batch in self._batcher.drain():
                    await loop.run_in_executor(None, self._dispatch, batch, heap)
                continue
            if self._inflight:
                await loop.run_in_executor(None, self.session.drain)
                self._harvest(heap)  # may spawn closed-loop arrivals
            if heap:
                continue
            break
        return self._build_report()

    # ------------------------------------------------------------------
    # control plane (inert unless control_interval is set)
    # ------------------------------------------------------------------
    def _control_tick(self) -> None:
        """Close every control window the clock has passed: build its
        :class:`~repro.control.signals.WindowSignals` and hand it to
        the controller (if any). Called between dispatches, so any
        controller-triggered membership change goes through a drained
        session quiesce point."""
        while self.now >= self._next_window:
            signals = self._build_window(self._next_window)
            self.window_history.append(signals)
            self._next_window += self.control_interval
            if self.controller is not None:
                self.controller.on_window(signals)

    def _build_window(self, t_end: float) -> WindowSignals:
        fresh = self._fresh_outcomes
        self._fresh_outcomes = []
        stats = self.session.stats
        byz = {
            w
            for r in stats.records[self._records_mark :]
            for w in r.rejected_workers
        }
        self._records_mark = len(stats.records)
        strag = {
            w
            for a in stats.adaptations[self._adapt_mark :]
            for w in a.observed_stragglers
        }
        self._adapt_mark = len(stats.adaptations)
        view = self.session.backend.membership()
        # only dead workers still in the coding roster are actionable
        # drift — once the master evicts them a re-code is a no-op, and
        # counting them forever would make the policy re-fire every
        # window until the daemons are restarted.
        dead = set(view.dead)
        roster = getattr(self.session.master, "active", None)
        if roster is not None:
            dead &= set(roster)
        if self.obs is not None:
            # registry-fed accounting: counter deltas + window-exact
            # histogram drains (bit-equal to the legacy path below)
            self.obs.registry.gauge(
                "gateway_queue_depth", "requests waiting at window close"
            ).set(len(self._queue))
            signals = WindowSignals.from_registry(
                self.obs.registry,
                self._obs_marks,
                window_index=self._window_index,
                t_start=t_end - self.control_interval,
                t_end=t_end,
                queue_depth=len(self._queue),
                live_workers=len(view.live),
                pending_workers=len(view.pending),
                dead_workers=len(dead),
                observed_stragglers=len(strag),
                detected_byzantine=len(byz),
            )
            self._window_index += 1
            return signals
        served = [o for o in fresh if o.status == SERVED]
        with_slo = [o for o in fresh if math.isfinite(o.deadline)]
        slo = (
            sum(1 for o in with_slo if o.slo_met) / len(with_slo)
            if with_slo
            else 1.0
        )
        lats = [o.latency for o in served if o.latency is not None]
        p99 = float(np.percentile(lats, 99.0)) if lats else math.nan
        slacks = [
            o.deadline - o.completed
            for o in served
            if math.isfinite(o.deadline) and o.completed is not None
        ]
        signals = WindowSignals(
            window_index=self._window_index,
            t_start=t_end - self.control_interval,
            t_end=t_end,
            completed=len(fresh),
            served=len(served),
            shed=len(fresh) - len(served),
            queue_depth=len(self._queue),
            slo_attainment=slo,
            p99_latency=p99,
            deadline_slack=min(slacks) if slacks else math.nan,
            live_workers=len(view.live),
            pending_workers=len(view.pending),
            dead_workers=len(dead),
            observed_stragglers=len(strag),
            detected_byzantine=len(byz),
        )
        self._window_index += 1
        return signals

    def _build_report(self) -> ServeReport:
        outcomes = tuple(
            self._outcomes[rid] for rid in sorted(self._outcomes)
        )
        stats = self.session.stats
        return ServeReport(
            outcomes=outcomes,
            t_start=0.0,
            t_end=self.now,
            tenant_weights=dict(self.config.tenant_weights),
            rounds_executed=stats.rounds_executed,
            batching_factor=stats.batching_factor,
            pipeline_occupancy=stats.pipeline_occupancy,
        )

    # ------------------------------------------------------------------
    # request tracing (inert when observability is off)
    # ------------------------------------------------------------------
    def _trace_admit(self, req: Request, now: float) -> None:
        """Open the request's trace at admission: a ``request`` root
        plus a ``gateway.queue`` child covering time spent queued.
        Spans carry *absolute* backend-clock times (``_t0 + trace``) so
        they line up with the session/round spans grafted later."""
        akey = (req.tenant, req.family)
        attrs = self._admit_attrs.get(akey)
        if attrs is None:
            attrs = self._admit_attrs[akey] = {
                "tenant": req.tenant,
                "family": req.family,
            }
        pair = self.obs.tracer.begin_request(
            f"req-{req.request_id}",
            "request",
            "gateway.queue",
            self._t0 + now,
            root_attrs=attrs,
        )
        self._req_spans[req.request_id] = list(pair)

    def _trace_dequeue(self, req: Request, now: float) -> None:
        pair = self._req_spans.get(req.request_id)
        if pair is not None and pair[1] is not None:
            self.obs.tracer.end(pair[1], self._t0 + now)
            pair[1] = None

    def _trace_dequeue_batch(self, reqs: list[Request], now: float) -> None:
        """Close every dequeued request's queue span in one event."""
        spans = self._req_spans
        ids = []
        for req in reqs:
            pair = spans.get(req.request_id)
            if pair is not None and pair[1] is not None:
                ids.append(pair[1])
                pair[1] = None
        if ids:
            self.obs.tracer.end_many(ids, self._t0 + now)

    def _trace_finish(self, req: Request, status: str, t_abs: float) -> None:
        pair = self._req_spans.pop(req.request_id, None)
        if pair is None:
            return
        root, queue_span = pair
        if queue_span is not None:  # shed straight out of the queue
            self.obs.tracer.end(queue_span, t_abs)
        self.obs.tracer.end(root, t_abs, status=status)

    # ------------------------------------------------------------------
    def _ingest(self, heap: list[tuple[float, int, Request]]) -> None:
        """Admit every arrival at or before the current clock."""
        while heap and heap[0][0] <= (now := self.now):
            _, _, req = heapq.heappop(heap)
            if self.obs is not None:
                self._trace_admit(req, now)
            self._queue.offer(req, now)
        self._note_shed(heap)

    def _fill(self, heap: list[tuple[float, int, Request]]) -> None:
        """Move fair-dequeued requests into the batcher (matmul
        dispatches alone); a family hitting the batch cap dispatches
        immediately (window pressure)."""
        while True:
            req = self._queue.pop(self.now)
            self._note_shed(heap)
            if req is None:
                return
            family = self._session_family(req)
            if family is None:
                self._dispatch_single(req, heap)
                continue
            self._batcher.add(family, req, self.now)
            if self._batcher.due_now(family, self.now):
                batch = self._batcher.pop_family(family)
                if batch is not None:
                    self._dispatch(batch, heap)

    async def _fill_async(self, heap: list[tuple[float, int, Request]], loop) -> None:
        """:meth:`_fill` with the dispatches (the calls that can block
        on the network) hopped to the executor."""
        while True:
            req = self._queue.pop(self.now)
            self._note_shed(heap)
            if req is None:
                return
            family = self._session_family(req)
            if family is None:
                await loop.run_in_executor(None, self._dispatch_single, req, heap)
                continue
            self._batcher.add(family, req, self.now)
            if self._batcher.due_now(family, self.now):
                batch = self._batcher.pop_family(family)
                if batch is not None:
                    await loop.run_in_executor(None, self._dispatch, batch, heap)

    def _dispatch(
        self, batch: PendingBatch, heap: list[tuple[float, int, Request]]
    ) -> None:
        """One coalesced round for the batch (expired stragglers shed)."""
        now = self.now
        live: list[Request] = []
        for req in batch.requests:
            if req.expired(now):
                self._finish_shed(req, SHED_EXPIRED, heap)
            else:
                live.append(req)
        if not live:
            return
        if self.obs is not None:
            self._trace_dequeue_batch(live, now)
        handles = [self.session.submit(r) for r in live]
        self.session.flush(batch.family)
        self._inflight.extend((r, h, now) for r, h in zip(live, handles))
        self._harvest(heap)

    def _dispatch_single(
        self, req: Request, heap: list[tuple[float, int, Request]]
    ) -> None:
        now = self.now
        if req.expired(now):
            self._finish_shed(req, SHED_EXPIRED, heap)
            return
        if self.obs is not None:
            self._trace_dequeue(req, now)
        handle = self.session.submit(req)
        self._inflight.append((req, handle, now))
        self._harvest(heap)

    def _harvest(self, heap: list[tuple[float, int, Request]]) -> None:
        """Record completions for every resolved handle; feed the
        closed-loop source."""
        still: list[tuple[Request, JobHandle, float]] = []
        for req, handle, t_disp in self._inflight:
            if not handle.done():
                still.append((req, handle, t_disp))
                continue
            outcome = handle.outcome()
            completed = outcome.record.t_end - self._t0  # trace time
            self.results[req.request_id] = outcome.vector
            slo = completed <= req.deadline if math.isfinite(req.deadline) else None
            done = RequestOutcome(
                request_id=req.request_id,
                tenant=req.tenant,
                family=req.family,
                arrival=req.arrival,
                deadline=req.deadline,
                status=SERVED,
                dispatched=t_disp,
                completed=completed,
                latency=completed - req.arrival,
                slo_met=slo,
                audit_seq=handle._audit_seq,
            )
            self._outcomes[req.request_id] = done
            self._fresh_outcomes.append(done)
            if self.obs is not None:
                self._trace_finish(req, SERVED, outcome.record.t_end)
                self._record_outcome(done)
            follow_up = self.source.on_complete(req, completed)
            if follow_up is not None:
                heapq.heappush(
                    heap, (follow_up.arrival, follow_up.request_id, follow_up)
                )
        self._inflight = still

    # ------------------------------------------------------------------
    def _note_shed(self, heap: list[tuple[float, int, Request]]) -> None:
        for req, verdict in self._queue.take_shed():
            self._finish_shed(req, verdict, heap)

    def _finish_shed(
        self, req: Request, status: str, heap: list[tuple[float, int, Request]]
    ) -> None:
        done = RequestOutcome(
            request_id=req.request_id,
            tenant=req.tenant,
            family=req.family,
            arrival=req.arrival,
            deadline=req.deadline,
            status=status,
            slo_met=False if math.isfinite(req.deadline) else None,
        )
        self._outcomes[req.request_id] = done
        self._fresh_outcomes.append(done)
        if self.obs is not None:
            self._trace_finish(req, status, self._t0 + self.now)
            self._record_outcome(done)
        # a shed is a terminal outcome too: a closed-loop client whose
        # request was dropped still issues its next one
        follow_up = self.source.on_complete(req, self.now)
        if follow_up is not None:
            heapq.heappush(
                heap, (follow_up.arrival, follow_up.request_id, follow_up)
            )
