"""Traffic generation for the serving gateway.

The gateway consumes typed :class:`Request` objects — tenant, coded
family, arrival time, deadline, operand payload — from a *traffic
source*. Two source shapes cover the standard load-testing regimes:

* **open loop** (:class:`OpenLoopSource`): arrivals follow a pregenerated
  schedule regardless of how fast the service drains them — the regime
  that exposes queueing collapse, which is the whole point of a serving
  harness (a closed-loop client politely slows down with the server and
  hides it).
* **closed loop** (:class:`ClosedLoopSource`): a fixed population of
  clients, each issuing its next request a think-time after its previous
  one completed — the regime of interactive sessions.

Arrival *processes* are pluggable (:class:`ArrivalProcess`): Poisson
(:class:`PoissonArrivals`), bursty Markov-modulated Poisson
(:class:`BurstyArrivals`), diurnally modulated
(:class:`DiurnalArrivals`, thinning-sampled so it is an exact
nonhomogeneous Poisson process), and recorded-trace replay
(:class:`TraceArrivals`, wrapping the runtime's
:class:`~repro.runtime.latency.TraceLatency` replay). A
:class:`WorkloadGenerator` combines one arrival process with a tenant
mix (:class:`TenantSpec`: traffic share, family mix, relative
deadlines) and materializes concrete operand payloads in the session's
field.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dc_field
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.latency import TraceLatency

__all__ = [
    "FAMILIES",
    "ArrivalProcess",
    "BurstyArrivals",
    "ClosedLoopSource",
    "DiurnalArrivals",
    "OpenLoopSource",
    "PoissonArrivals",
    "Request",
    "TenantSpec",
    "TraceArrivals",
    "WorkloadGenerator",
]

#: request families the gateway can serve
FAMILIES = ("matvec", "gramian", "matmul")


@dataclass(frozen=True)
class Request:
    """One unit of client work, as seen by the gateway.

    Attributes
    ----------
    request_id:
        Unique id (assigned by the generator; ties broken with it in
        the gateway's arrival heap).
    tenant:
        The submitting tenant — admission and fair dequeue are
        per-tenant.
    family:
        ``"matvec" | "gramian" | "matmul"``; same-family requests are
        candidates for micro-batch coalescing.
    arrival:
        Backend-clock arrival time (seconds).
    deadline:
        Absolute completion deadline; ``math.inf`` means no SLO.
    operand:
        The request payload: the matvec/gramian vector, or the matmul
        left factor.
    operand_b:
        Matmul right factor (matmul only).
    transpose:
        For matvec: serve ``X.T @ operand`` (the ``bwd`` family)
        instead of ``X @ operand``.
    """

    request_id: int
    tenant: str
    family: str
    arrival: float
    deadline: float = math.inf
    operand: np.ndarray | None = None
    operand_b: np.ndarray | None = None
    transpose: bool = False

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise ValueError(f"unknown family {self.family!r}; pick one of {FAMILIES}")
        if self.arrival < 0:
            raise ValueError(f"arrival must be >= 0, got {self.arrival}")
        if self.deadline < self.arrival:
            raise ValueError(
                f"deadline {self.deadline} precedes arrival {self.arrival}"
            )
        if self.operand is None:
            raise ValueError(f"{self.family} requests need an operand")
        if self.family == "matmul" and self.operand_b is None:
            raise ValueError("matmul requests need operand_b (the right factor)")
        if self.family != "matvec" and self.transpose:
            raise ValueError("transpose only applies to matvec requests")

    @property
    def payload_elements(self) -> int:
        """Field elements the request ships to the gateway."""
        size = int(np.asarray(self.operand).size)
        if self.operand_b is not None:
            size += int(np.asarray(self.operand_b).size)
        return size

    def slack(self, now: float) -> float:
        """Seconds until the deadline (negative = already missed)."""
        return self.deadline - now

    def expired(self, now: float) -> bool:
        return now > self.deadline


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
@runtime_checkable
class ArrivalProcess(Protocol):
    """Anything that can produce the gap to the next arrival."""

    def interarrival(self, now: float, rng: np.random.Generator) -> float:
        """Seconds from the arrival at ``now`` to the next one (>= 0)."""
        ...  # pragma: no cover


@dataclass
class PoissonArrivals:
    """Memoryless open-loop traffic at ``rate`` requests/second."""

    rate: float

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def interarrival(self, now: float, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))


@dataclass
class BurstyArrivals:
    """Two-state Markov-modulated Poisson process (calm ↔ burst).

    The state chain steps once per arrival: from calm the process
    enters a burst with probability ``p_burst``; from a burst it
    returns to calm with probability ``p_calm`` — dwell times in each
    state are geometric, giving the bursty, correlated arrival clumps
    that defeat a gateway tuned for the average rate.
    """

    calm_rate: float
    burst_rate: float
    p_burst: float = 0.05
    p_calm: float = 0.2
    _bursting: bool = dc_field(default=False, repr=False)

    def __post_init__(self):
        if self.calm_rate <= 0 or self.burst_rate <= 0:
            raise ValueError("rates must be positive")
        if not (0 <= self.p_burst <= 1 and 0 <= self.p_calm <= 1):
            raise ValueError("transition probabilities must be in [0, 1]")

    def interarrival(self, now: float, rng: np.random.Generator) -> float:
        if self._bursting:
            self._bursting = rng.random() >= self.p_calm
        else:
            self._bursting = rng.random() < self.p_burst
        rate = self.burst_rate if self._bursting else self.calm_rate
        return float(rng.exponential(1.0 / rate))


@dataclass
class DiurnalArrivals:
    """Nonhomogeneous Poisson with a sinusoidal rate profile,

    ``rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period))``,

    sampled exactly by thinning against the peak rate — the classic
    day/night load curve compressed to ``period`` seconds.
    """

    base_rate: float
    amplitude: float = 0.5
    period: float = 60.0

    def __post_init__(self):
        if self.base_rate <= 0 or self.period <= 0:
            raise ValueError("base_rate and period must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")

    def rate_at(self, t: float) -> float:
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def interarrival(self, now: float, rng: np.random.Generator) -> float:
        peak = self.base_rate * (1.0 + self.amplitude)
        t = now
        while True:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() <= self.rate_at(t) / peak:
                return t - now


@dataclass
class TraceArrivals:
    """Replay a recorded interarrival trace (wrapping around).

    ``trace`` carries the recorded gaps as multiplicative factors on
    ``base_interval`` — the same wrap-around replay the worker latency
    layer uses (:class:`~repro.runtime.latency.TraceLatency`), so one
    recorded trace can drive both worker slowdowns and traffic.
    """

    trace: TraceLatency
    base_interval: float = 1.0

    def __post_init__(self):
        if self.base_interval <= 0:
            raise ValueError("base_interval must be positive")

    def interarrival(self, now: float, rng: np.random.Generator) -> float:
        return self.trace.sample(self.base_interval, rng)


# ----------------------------------------------------------------------
# tenants and the generator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic profile.

    Attributes
    ----------
    name:
        Tenant id (also the fair-queue key).
    weight:
        Share of generated traffic *and* the tenant's fair-dequeue
        weight at the gateway.
    family_mix:
        ``family -> probability`` over :data:`FAMILIES`; must sum to 1.
    transpose_fraction:
        Fraction of this tenant's matvec requests served against the
        transposed (``bwd``) family.
    deadline_slack:
        Relative deadline (seconds after arrival); ``math.inf`` = no
        SLO for this tenant.
    """

    name: str
    weight: float = 1.0
    family_mix: Mapping[str, float] = dc_field(
        default_factory=lambda: {"matvec": 1.0}
    )
    transpose_fraction: float = 0.0
    deadline_slack: float = math.inf

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        mix = dict(self.family_mix)
        unknown = set(mix) - set(FAMILIES)
        if unknown:
            raise ValueError(f"unknown families in mix: {sorted(unknown)}")
        if any(p < 0 for p in mix.values()):
            raise ValueError(f"family_mix probabilities must be >= 0, got {mix}")
        if abs(sum(mix.values()) - 1.0) > 1e-9:
            raise ValueError(f"family_mix must sum to 1, got {sum(mix.values())}")
        if not 0.0 <= self.transpose_fraction <= 1.0:
            raise ValueError("transpose_fraction must be in [0, 1]")
        if self.deadline_slack <= 0:
            raise ValueError("deadline_slack must be positive")
        object.__setattr__(self, "family_mix", mix)


class WorkloadGenerator:
    """Materialize typed requests from an arrival process and a tenant
    mix, with operand payloads drawn in the session's field.

    Parameters
    ----------
    field:
        The session's computation field (operands are field elements).
    shape:
        ``(m, d)`` of the dataset the session serves — fixes operand
        lengths (``d`` for ``fwd`` matvec and gramian, ``m`` for
        ``bwd``).
    tenants:
        The tenant population; traffic is split by ``weight``.
    arrivals:
        The arrival process shared by all tenants.
    seed:
        Seeds one generator for arrivals, tenant/family draws and
        operand payloads — a given seed reproduces the trace exactly.
    matmul_dim:
        Side length of the square factors generated for matmul
        requests.
    """

    def __init__(
        self,
        field: PrimeField,
        shape: tuple[int, int],
        tenants: Sequence[TenantSpec],
        arrivals: ArrivalProcess,
        seed: int = 0,
        matmul_dim: int = 8,
    ):
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if matmul_dim < 1:
            raise ValueError("matmul_dim must be >= 1")
        self.field = field
        self.m, self.d = int(shape[0]), int(shape[1])
        self.tenants = tuple(tenants)
        self.arrivals = arrivals
        self.matmul_dim = matmul_dim
        self._rng = np.random.default_rng(seed)
        total = sum(t.weight for t in tenants)
        self._tenant_p = np.array([t.weight / total for t in tenants])
        self._next_id = 0

    @property
    def tenant_weights(self) -> dict[str, float]:
        """``name -> weight`` map (the gateway's fair-queue weights)."""
        return {t.name: t.weight for t in self.tenants}

    # ------------------------------------------------------------------
    def make_request(self, arrival: float, tenant: TenantSpec | None = None) -> Request:
        """Draw one request arriving at ``arrival`` (tenant drawn by
        weight unless pinned)."""
        rng = self._rng
        if tenant is None:
            tenant = self.tenants[int(rng.choice(len(self.tenants), p=self._tenant_p))]
        families = sorted(tenant.family_mix)
        probs = np.array([tenant.family_mix[f] for f in families])
        family = families[int(rng.choice(len(families), p=probs))]
        transpose = False
        operand_b = None
        if family == "matvec":
            transpose = rng.random() < tenant.transpose_fraction
            operand = self.field.random(self.m if transpose else self.d, rng)
        elif family == "gramian":
            operand = self.field.random(self.d, rng)
        else:  # matmul
            operand = self.field.random((self.matmul_dim, self.matmul_dim), rng)
            operand_b = self.field.random((self.matmul_dim, self.matmul_dim), rng)
        deadline = arrival + tenant.deadline_slack
        req = Request(
            request_id=self._next_id,
            tenant=tenant.name,
            family=family,
            arrival=arrival,
            deadline=deadline,
            operand=operand,
            operand_b=operand_b,
            transpose=transpose,
        )
        self._next_id += 1
        return req

    def generate(self, n_requests: int, start: float = 0.0) -> list[Request]:
        """An open-loop trace of ``n_requests`` requests, arrival-sorted."""
        if n_requests < 0:
            raise ValueError("n_requests must be >= 0")
        out: list[Request] = []
        t = start
        for _ in range(n_requests):
            t += self.arrivals.interarrival(t, self._rng)
            out.append(self.make_request(t))
        return out


# ----------------------------------------------------------------------
# traffic sources (the gateway-facing interface)
# ----------------------------------------------------------------------
class OpenLoopSource:
    """Open-loop traffic: a fixed arrival schedule, indifferent to how
    fast the gateway drains it."""

    def __init__(self, requests: Sequence[Request]):
        self._requests = sorted(requests, key=lambda r: (r.arrival, r.request_id))

    def initial(self) -> list[Request]:
        return list(self._requests)

    def on_complete(self, request: Request, now: float) -> Request | None:
        return None

    def __len__(self) -> int:
        return len(self._requests)


class ClosedLoopSource:
    """Closed-loop traffic: ``n_clients`` clients, each issuing its
    next request one exponential think-time after its previous one
    terminated (served *or* shed — a dropped request does not silence
    the client), ``requests_per_client`` times in total."""

    def __init__(
        self,
        generator: WorkloadGenerator,
        n_clients: int,
        think_time: float,
        requests_per_client: int = 1,
    ):
        if n_clients < 1 or requests_per_client < 1:
            raise ValueError("need at least one client and one request each")
        if think_time <= 0:
            raise ValueError("think_time must be positive")
        self._gen = generator
        self._think = think_time
        self._remaining = {c: requests_per_client - 1 for c in range(n_clients)}
        # each client is pinned to a tenant round-robin so per-tenant
        # metrics stay meaningful under the closed loop
        self._tenant_of = {
            c: generator.tenants[c % len(generator.tenants)] for c in range(n_clients)
        }
        self._client_of: dict[int, int] = {}

    def _spawn(self, client: int, t_base: float) -> Request:
        gap = float(self._gen._rng.exponential(self._think))
        req = self._gen.make_request(t_base + gap, tenant=self._tenant_of[client])
        self._client_of[req.request_id] = client
        return req

    def initial(self) -> list[Request]:
        out = [self._spawn(c, 0.0) for c in sorted(self._remaining)]
        return sorted(out, key=lambda r: (r.arrival, r.request_id))

    def on_complete(self, request: Request, now: float) -> Request | None:
        client = self._client_of.get(request.request_id)
        if client is None or self._remaining[client] <= 0:
            return None
        self._remaining[client] -= 1
        return self._spawn(client, now)
