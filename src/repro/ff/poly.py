"""Dense univariate polynomials over a prime field.

Coefficients are stored in *ascending* order (``coeffs[i]`` multiplies
``x**i``) as reduced ``int64`` residues. Degrees in this codebase are
tiny (bounded by the number of workers, a few dozen), so the simple
dense representation with ``O(n^2)`` multiplication is both adequate and
the easiest to audit. Evaluation is vectorized Horner over arrays of
points — that is the one operation on the experiment hot path
(Reed–Solomon re-evaluation during Berlekamp–Welch verification).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.ff.field import PrimeField

__all__ = ["Poly"]


class Poly:
    """An immutable polynomial over ``F_q``.

    Parameters
    ----------
    field:
        The coefficient field.
    coeffs:
        Ascending coefficients; trailing zeros are stripped. The zero
        polynomial is represented by an empty coefficient array and has
        ``degree == -1``.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PrimeField, coeffs: Iterable[int] | np.ndarray):
        self.field = field
        c = field.asarray(np.atleast_1d(np.asarray(list(coeffs) if not isinstance(coeffs, np.ndarray) else coeffs)))
        if c.ndim != 1:
            raise ValueError("coefficients must be 1-D")
        nz = np.nonzero(c)[0]
        self.coeffs = c[: nz[-1] + 1] if nz.size else c[:0]

    # ------------------------------------------------------------------
    @classmethod
    def zero(cls, field: PrimeField) -> "Poly":
        return cls(field, np.zeros(0, dtype=np.int64))

    @classmethod
    def one(cls, field: PrimeField) -> "Poly":
        return cls(field, [1])

    @classmethod
    def x(cls, field: PrimeField) -> "Poly":
        return cls(field, [0, 1])

    @classmethod
    def from_roots(cls, field: PrimeField, roots: Iterable[int]) -> "Poly":
        """Monic polynomial ``prod (x - r)`` — the error locator shape."""
        p = cls.one(field)
        for r in np.atleast_1d(field.asarray(list(roots))):
            p = p * cls(field, [(-int(r)) % field.q, 1])
        return p

    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        return int(self.coeffs.size) - 1

    def is_zero(self) -> bool:
        return self.coeffs.size == 0

    def _coerce(self, other) -> "Poly":
        if isinstance(other, Poly):
            if other.field != self.field:
                raise ValueError("polynomials over different fields")
            return other
        return Poly(self.field, [other])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.field == other.field and np.array_equal(self.coeffs, other.coeffs)

    def __hash__(self):
        return hash((self.field.q, self.coeffs.tobytes()))

    def __add__(self, other) -> "Poly":
        other = self._coerce(other)
        n = max(self.coeffs.size, other.coeffs.size)
        out = np.zeros(n, dtype=np.int64)
        out[: self.coeffs.size] = self.coeffs
        out[: other.coeffs.size] = (out[: other.coeffs.size] + other.coeffs) % self.field.q
        return Poly(self.field, out)

    def __neg__(self) -> "Poly":
        return Poly(self.field, self.field.neg(self.coeffs))

    def __sub__(self, other) -> "Poly":
        return self + (-self._coerce(other))

    def __mul__(self, other) -> "Poly":
        other = self._coerce(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.field)
        q = self.field.q
        # np.convolve accumulates products; bound the partial-sum length.
        n_terms = min(self.coeffs.size, other.coeffs.size)
        if n_terms > self.field.chunk:  # pragma: no cover - degrees are tiny here
            raise OverflowError(
                f"polynomial multiply with {n_terms} overlapping terms would "
                f"overflow int64 for q={q}"
            )
        return Poly(self.field, np.convolve(self.coeffs, other.coeffs) % q)

    def scale(self, c: int) -> "Poly":
        return Poly(self.field, self.field.mul(self.coeffs, int(c)))

    def __divmod__(self, other) -> tuple["Poly", "Poly"]:
        """Polynomial long division (quotient, remainder)."""
        other = self._coerce(other)
        if other.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        q_field = self.field.q
        rem = self.coeffs.astype(np.int64).copy()
        d = other.degree
        lead_inv = pow(int(other.coeffs[-1]), q_field - 2, q_field)
        if self.degree < d:
            return Poly.zero(self.field), Poly(self.field, rem)
        quot = np.zeros(self.degree - d + 1, dtype=np.int64)
        for i in range(self.degree - d, -1, -1):
            coef = int(rem[i + d]) * lead_inv % q_field
            quot[i] = coef
            if coef:
                rem[i : i + d + 1] = (rem[i : i + d + 1] - coef * other.coeffs) % q_field
        return Poly(self.field, quot), Poly(self.field, rem[:d] if d > 0 else rem[:0])

    def __floordiv__(self, other) -> "Poly":
        return divmod(self, other)[0]

    def __mod__(self, other) -> "Poly":
        return divmod(self, other)[1]

    def divides_exactly(self, other: "Poly") -> bool:
        """True if ``self`` divides ``other`` with zero remainder."""
        return divmod(other, self)[1].is_zero()

    # ------------------------------------------------------------------
    def __call__(self, x) -> np.ndarray | int:
        """Evaluate at scalar or array of points via vectorized Horner."""
        scalar = np.isscalar(x)
        pts = self.field.asarray(np.atleast_1d(x))
        if self.is_zero():
            out = np.zeros_like(pts)
        else:
            out = np.full_like(pts, int(self.coeffs[-1]))
            for c in self.coeffs[-2::-1]:
                out = (out * pts + int(c)) % self.field.q
        return int(out[0]) if scalar else out

    def derivative(self) -> "Poly":
        if self.degree < 1:
            return Poly.zero(self.field)
        k = np.arange(1, self.coeffs.size, dtype=np.int64)
        return Poly(self.field, self.coeffs[1:] * (k % self.field.q) % self.field.q)

    def monic(self) -> "Poly":
        if self.is_zero():
            raise ZeroDivisionError("zero polynomial has no monic form")
        return self.scale(pow(int(self.coeffs[-1]), self.field.q - 2, self.field.q))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Poly(q={self.field.q}, coeffs={self.coeffs.tolist()})"
