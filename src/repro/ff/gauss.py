"""Gaussian elimination over a prime field.

Exact linear solves mod q back two decoders: the Berlekamp–Welch
Reed–Solomon decoder (LCC's Byzantine path) and generic encoding-matrix
inversions in tests. Sizes are small (a few dozen rows — bounded by the
worker count), so the ``O(n^3)`` row-reduction below with vectorized row
updates is more than fast enough, and exactness is what matters.
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField

__all__ = [
    "SingularMatrixError",
    "gauss_solve",
    "gauss_solve_any",
    "gauss_inverse",
    "gauss_rank",
]


class SingularMatrixError(ValueError):
    """Raised when an exact solve hits a singular (sub)system."""


def _row_reduce(field: PrimeField, aug: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """In-place reduced row echelon form; returns (matrix, pivot columns).

    ``aug`` is the augmented matrix ``[A | B]``; only the first
    ``n_cols`` columns are eligible pivots — callers slice accordingly.
    """
    q = field.q
    rows, cols = aug.shape
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r == rows:
            break
        # partial pivot: any nonzero entry works in exact arithmetic
        nz = np.nonzero(aug[r:, c])[0]
        if nz.size == 0:
            continue
        p = r + int(nz[0])
        if p != r:
            aug[[r, p]] = aug[[p, r]]
        inv = pow(int(aug[r, c]), q - 2, q)
        aug[r] = aug[r] * inv % q
        mask = np.ones(rows, dtype=bool)
        mask[r] = False
        factors = aug[mask, c]
        if np.any(factors):
            aug[mask] = (aug[mask] - factors[:, None] * aug[r][None, :]) % q
        pivots.append(c)
        r += 1
    return aug, pivots


def gauss_solve(field: PrimeField, a, b) -> np.ndarray:
    """Solve ``A x = b`` exactly; ``A`` must be square and invertible.

    ``b`` may be a vector or a matrix of right-hand sides.
    """
    a = field.asarray(a)
    b_arr = field.asarray(b)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"A must be square, got {a.shape}")
    vec = b_arr.ndim == 1
    rhs = b_arr[:, None] if vec else b_arr
    if rhs.shape[0] != a.shape[0]:
        raise ValueError("dimension mismatch between A and b")
    aug = np.concatenate([a, rhs], axis=1).astype(np.int64)
    aug, pivots = _row_reduce(field, aug)
    if len(pivots) < a.shape[0] or pivots != list(range(a.shape[0])):
        raise SingularMatrixError("matrix is singular over F_q")
    x = aug[:, a.shape[1]:]
    return x[:, 0] if vec else x


def gauss_solve_any(field: PrimeField, a, b) -> np.ndarray | None:
    """Find *some* solution of a possibly under/over-determined system.

    Returns ``None`` when the system is inconsistent. Free variables are
    set to zero. This is exactly what Berlekamp–Welch needs: when fewer
    errors occurred than budgeted, its linear system is rank-deficient
    but any solution yields the correct message polynomial.
    """
    a = field.asarray(a)
    b_arr = field.asarray(b)
    if b_arr.ndim != 1:
        raise ValueError("gauss_solve_any expects a vector rhs")
    rows, cols = a.shape
    aug = np.concatenate([a, b_arr[:, None]], axis=1).astype(np.int64)
    aug, _ = _row_reduce(field, aug)
    x = np.zeros(cols, dtype=np.int64)
    for row in aug:
        nz = np.nonzero(row[:cols])[0]
        if nz.size == 0:
            if row[cols] != 0:
                return None  # 0 = nonzero -> inconsistent
            continue
        # row is normalized: leading coefficient is 1; free vars are 0,
        # so the pivot variable equals rhs minus nothing.
        x[nz[0]] = row[cols]
        # subtract contributions of later (free, zero-valued) vars: none.
    # Verify (cheap at these sizes, catches the nz[0]-after-pivot subtlety)
    if np.any((a @ x - b_arr) % field.q):
        # Need full back-substitution because non-pivot columns with
        # nonzero coefficients exist. Redo properly.
        x = np.zeros(cols, dtype=np.int64)
        pivot_rows: list[tuple[int, np.ndarray]] = []
        for row in aug:
            nz = np.nonzero(row[:cols])[0]
            if nz.size:
                pivot_rows.append((int(nz[0]), row))
        for pc, row in reversed(pivot_rows):
            acc = int(row[cols])
            tail = row[pc + 1: cols]
            nz_tail = np.nonzero(tail)[0]
            if nz_tail.size:
                acc = (acc - int(tail[nz_tail] @ x[pc + 1 + nz_tail])) % field.q
            x[pc] = acc % field.q
        if np.any((a @ x - b_arr) % field.q):
            return None
    return x


def gauss_inverse(field: PrimeField, a) -> np.ndarray:
    """Exact inverse of a square matrix over F_q."""
    a = field.asarray(a)
    n = a.shape[0]
    return gauss_solve(field, a, np.eye(n, dtype=np.int64))


def gauss_rank(field: PrimeField, a) -> int:
    """Rank of a matrix over F_q."""
    a = field.asarray(a).astype(np.int64).copy()
    _, pivots = _row_reduce(field, a)
    return len(pivots)
