"""Lagrange interpolation machinery over a prime field.

This is the mathematical heart of both codecs:

* **Encoding** (paper Eq. 12–13): evaluate the interpolation polynomial
  through ``(beta_j, X_j)`` at the worker points ``alpha_i``. That is a
  linear map given by the matrix ``L[j, i] = l_j(alpha_i)``, which
  :func:`lagrange_coeff_matrix` builds in closed form.
* **Decoding**: interpolate ``f(u(z))`` through the returned worker
  evaluations and re-evaluate at the data points ``beta_j`` — again a
  coefficient matrix, built by the same routine with source/destination
  swapped.

Everything is vectorized: one ``(n_src, n_dst)`` difference table, batch
inversions, and a couple of products. Coincident source/destination
points (the systematic-code case, where ``beta ⊂ alpha``) are handled
exactly: the basis collapses to an indicator column.
"""

from __future__ import annotations

import numpy as np

from repro.ff.arith import mod_inverse
from repro.ff.field import PrimeField

__all__ = [
    "barycentric_weights",
    "eval_lagrange_basis",
    "lagrange_coeff_matrix",
    "interpolate_eval",
]


def _check_distinct(field: PrimeField, pts: np.ndarray, name: str) -> None:
    if len(np.unique(pts)) != pts.size:
        raise ValueError(f"{name} must be distinct field points")


def barycentric_weights(field: PrimeField, xs) -> np.ndarray:
    """First-form barycentric weights ``w_j = 1 / prod_{k != j}(x_j - x_k)``."""
    xs = field.asarray(xs)
    _check_distinct(field, xs, "xs")
    diff = (xs[:, None] - xs[None, :]) % field.q
    np.fill_diagonal(diff, 1)
    prods = np.ones(xs.size, dtype=np.int64)
    for col in range(xs.size):
        prods = prods * diff[:, col] % field.q
    return mod_inverse(prods, field.q)


def eval_lagrange_basis(field: PrimeField, xs, z) -> np.ndarray:
    """Evaluate all basis polynomials ``l_j`` (built on nodes ``xs``) at
    points ``z``; returns ``B[j, i] = l_j(z_i)``.

    Exact at coincident points: if ``z_i == xs_j`` the column is the
    ``j``-th indicator.
    """
    xs = field.asarray(xs)
    z = field.asarray(np.atleast_1d(z))
    _check_distinct(field, xs, "xs")
    q = field.q
    w = barycentric_weights(field, xs)          # (n_src,)
    dz = (z[None, :] - xs[:, None]) % q          # (n_src, n_dst), z_i - x_j
    out = np.zeros((xs.size, z.size), dtype=np.int64)

    coincident = dz == 0                         # z_i equals some node
    hit_cols = np.any(coincident, axis=0)

    # Generic columns: l_j(z) = M(z) * w_j / (z - x_j)
    gen = ~hit_cols
    if np.any(gen):
        dz_g = dz[:, gen]
        m = np.ones(int(gen.sum()), dtype=np.int64)
        for j in range(xs.size):
            m = m * dz_g[j] % q                  # M(z_i) = prod_j (z_i - x_j)
        inv_dz = mod_inverse(dz_g, q)
        out[:, gen] = w[:, None] * inv_dz % q * m[None, :] % q

    # Coincident columns: exact indicator
    if np.any(hit_cols):
        idx_cols = np.nonzero(hit_cols)[0]
        for c in idx_cols:
            j = int(np.nonzero(coincident[:, c])[0][0])
            out[:, c] = 0
            out[j, c] = 1
    return out


def lagrange_coeff_matrix(field: PrimeField, src_pts, dst_pts) -> np.ndarray:
    """Matrix ``L`` with ``L[j, i] = l_j(dst_i)`` for nodes ``src``.

    For data blocks stacked as rows of a matrix ``D`` (one block per
    source point), the interpolate-then-evaluate map is ``L.T @ D``.
    """
    return eval_lagrange_basis(field, src_pts, dst_pts)


def interpolate_eval(field: PrimeField, xs, ys, z) -> np.ndarray:
    """Interpolate values ``ys`` at nodes ``xs`` and evaluate at ``z``.

    ``ys`` may be 1-D (scalar samples) or 2-D with one row per node
    (vector-valued samples, e.g. flattened coded blocks); the result has
    one row per evaluation point in the 2-D case.
    """
    ys = field.asarray(ys)
    basis = eval_lagrange_basis(field, xs, z)    # (n_src, n_dst)
    if ys.ndim == 1:
        from repro.ff.linalg import ff_matvec

        return ff_matvec(field, basis.T, ys)
    from repro.ff.linalg import ff_matmul

    return ff_matmul(field, basis.T, ys)
