"""Vandermonde matrices over a prime field.

Used for coefficient-space interpolation (recovering a polynomial's
coefficients from evaluations) and as an alternative, easy-to-audit
construction of MDS generator matrices in tests: every ``K x K``
submatrix of a ``K x N`` Vandermonde matrix on distinct points is
invertible, which is the MDS property the decoder relies on.
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.gauss import gauss_solve
from repro.ff.poly import Poly

__all__ = ["vandermonde_matrix", "vandermonde_solve"]


def vandermonde_matrix(field: PrimeField, xs, n_cols: int) -> np.ndarray:
    """Rows ``[1, x, x^2, ..., x^(n_cols-1)]`` for each point ``x``."""
    xs = field.asarray(xs)
    if xs.ndim != 1:
        raise ValueError("xs must be 1-D")
    out = np.ones((xs.size, n_cols), dtype=np.int64)
    for c in range(1, n_cols):
        out[:, c] = out[:, c - 1] * xs % field.q
    return out


def vandermonde_solve(field: PrimeField, xs, ys) -> Poly:
    """Recover the unique degree ``< len(xs)`` polynomial through the
    points ``(xs, ys)`` in coefficient form.

    Small systems only (``len(xs)`` is bounded by the worker count);
    exact Gaussian elimination is the clearest correct tool.
    """
    xs = field.asarray(xs)
    ys = field.asarray(ys)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be equal-length 1-D arrays")
    v = vandermonde_matrix(field, xs, xs.size)
    coeffs = gauss_solve(field, v, ys)
    return Poly(field, coeffs)
