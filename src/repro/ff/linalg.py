"""Overflow-safe dense linear algebra over a prime field.

NumPy ``int64`` matrix products do not saturate — they silently wrap.
The guard here is the chunking bound computed by
:class:`~repro.ff.field.PrimeField`: an inner dimension of at most
``field.chunk`` guarantees every partial accumulation stays below
``2**63 - 1``. For the default 25-bit prime that bound is 8190, which
comfortably covers the paper's GISETTE shapes (``d = 5000``) in a single
chunk; larger inner dimensions are split and reduced between chunks.

These functions are the hot path of the whole stack (worker compute,
encoding, decoding, verification all land here), so they follow the
scientific-Python optimization guidance: no Python-level loops over
matrix elements, contiguous arrays, and in-place accumulation.
"""

from __future__ import annotations

import numpy as np

from repro.ff.field import PrimeField

__all__ = ["safe_chunk_len", "ff_matmul", "ff_matvec", "ff_dot"]


def safe_chunk_len(q: int) -> int:
    """Largest inner-dimension chunk with no ``int64`` overflow risk.

    Satisfies ``chunk * (q-1)**2 + (q-1) <= 2**63 - 1`` so that the sum
    of a chunk's products plus a previously reduced accumulator fits.
    """
    return int((np.iinfo(np.int64).max - (q - 1)) // ((q - 1) ** 2))


def _check_2d(a: np.ndarray, name: str) -> None:
    if a.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {a.shape}")


def ff_matmul(field: PrimeField, a, b) -> np.ndarray:
    """``a @ b mod q`` with chunked accumulation.

    ``a`` is ``(n, k)``, ``b`` is ``(k, m)``; both are reduced first.
    """
    a = field.asarray(a)
    b = field.asarray(b)
    _check_2d(a, "a")
    _check_2d(b, "b")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dims differ: {a.shape} @ {b.shape}")
    k = a.shape[1]
    chunk = field.chunk
    if k <= chunk:
        return a @ b % field.q
    a = np.ascontiguousarray(a)
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.int64)
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        out += a[:, lo:hi] @ b[lo:hi, :]
        out %= field.q
    return out


def ff_matvec(field: PrimeField, a, x) -> np.ndarray:
    """``a @ x mod q`` for a matrix and a vector (1-D result)."""
    a = field.asarray(a)
    x = field.asarray(x)
    _check_2d(a, "a")
    if x.ndim != 1:
        raise ValueError(f"x must be 1-D, got shape {x.shape}")
    if a.shape[1] != x.shape[0]:
        raise ValueError(f"inner dims differ: {a.shape} @ {x.shape}")
    k = a.shape[1]
    chunk = field.chunk
    if k <= chunk:
        return a @ x % field.q
    out = np.zeros(a.shape[0], dtype=np.int64)
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        out += a[:, lo:hi] @ x[lo:hi]
        out %= field.q
    return out


def ff_dot(field: PrimeField, x, y) -> int:
    """Inner product of two vectors mod q (returns a Python int)."""
    x = field.asarray(x)
    y = field.asarray(y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"ff_dot needs equal-length 1-D vectors, got {x.shape}, {y.shape}")
    k = x.shape[0]
    chunk = field.chunk
    if k <= chunk:
        return int(x @ y % field.q)
    acc = 0
    for lo in range(0, k, chunk):
        hi = min(lo + chunk, k)
        acc = (acc + int(x[lo:hi] @ y[lo:hi])) % field.q
    return acc
