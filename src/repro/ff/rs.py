"""Evaluation-style Reed–Solomon codec with Berlekamp–Welch decoding.

This is the decoder the **LCC baseline** depends on (paper Sec. II): a
codeword is the vector of evaluations of a message polynomial of degree
``<= D`` at distinct public points. Correcting ``e`` Byzantine errors
requires ``D + 1 + 2e`` clean evaluations — precisely the "Byzantine
workers cost twice as much as stragglers" overhead (Eq. 1) that AVCC
removes.

Berlekamp–Welch solves, over F_q::

    Q(x_i) = y_i * E(x_i)          for every received point i,

with ``E`` the monic error locator of degree ``e`` and ``Q = P * E`` of
degree ``<= D + e``. Any solution of the linear system yields the
message polynomial ``P = Q / E`` when at most ``e`` errors occurred.
The implementation tries the largest error budget first and walks down,
so callers simply get the best decodable interpretation or a
:class:`DecodingError`.

Vector-valued symbols (each evaluation is a whole coded block) are
handled by decoding column-by-column would be wasteful; instead we run
Berlekamp–Welch on a *random linear projection* of the blocks to locate
the error positions once, then erasure-decode all columns with those
positions excluded. A projection can only mask an error with
probability ``1/q`` per Byzantine worker, the same union bound as
Freivalds verification; the experiments' field makes that ~3e-8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.gauss import gauss_solve_any
from repro.ff.lagrange import interpolate_eval
from repro.ff.linalg import ff_matvec
from repro.ff.poly import Poly
from repro.ff.vandermonde import vandermonde_matrix

__all__ = ["DecodingError", "berlekamp_welch", "ReedSolomon", "RSDecodeResult"]


class DecodingError(Exception):
    """Raised when no codeword lies within the error budget."""


def berlekamp_welch(
    field: PrimeField,
    xs,
    ys,
    msg_degree: int,
    max_errors: int | None = None,
) -> tuple[Poly, np.ndarray]:
    """Decode scalar evaluations with at most ``max_errors`` corruptions.

    Parameters
    ----------
    field, xs, ys:
        Distinct evaluation points and received (possibly corrupted)
        values.
    msg_degree:
        Upper bound ``D`` on the true message polynomial degree.
    max_errors:
        Error budget ``e``; defaults to the information-theoretic
        maximum ``(n - D - 1) // 2``.

    Returns
    -------
    (poly, error_positions):
        The decoded message polynomial and the indices (into ``xs``)
        whose received values disagree with it.

    Raises
    ------
    DecodingError
        If no polynomial of degree ``<= D`` agrees with the received
        word in at least ``n - e`` positions.
    """
    xs = field.asarray(xs)
    ys = field.asarray(ys)
    if xs.ndim != 1 or xs.shape != ys.shape:
        raise ValueError("xs and ys must be equal-length 1-D arrays")
    n = xs.size
    if msg_degree < 0:
        raise ValueError("msg_degree must be >= 0")
    if n < msg_degree + 1:
        raise DecodingError(
            f"need at least {msg_degree + 1} evaluations, got {n}"
        )
    cap = (n - msg_degree - 1) // 2
    e_budget = cap if max_errors is None else min(int(max_errors), cap)

    for e in range(e_budget, -1, -1):
        poly = _bw_attempt(field, xs, ys, msg_degree, e)
        if poly is None:
            continue
        resid = (poly(xs) - ys) % field.q
        err_pos = np.nonzero(resid)[0]
        if err_pos.size <= e:
            return poly, err_pos
    raise DecodingError(
        f"no degree-{msg_degree} polynomial within {e_budget} errors of the received word"
    )


def _bw_attempt(
    field: PrimeField, xs: np.ndarray, ys: np.ndarray, d: int, e: int
) -> Poly | None:
    """One Berlekamp–Welch linear solve for a fixed error budget ``e``."""
    q = field.q
    n = xs.size
    n_q = d + e + 1                       # unknown coefficients of Q
    # System columns: [Q_0..Q_{d+e} | E_0..E_{e-1}], E monic of degree e.
    vq = vandermonde_matrix(field, xs, n_q)
    if e > 0:
        ve = vandermonde_matrix(field, xs, e)
        lhs = np.concatenate([vq, (-(ys[:, None] * ve % q)) % q], axis=1)
        x_e = pow_col(field, xs, e)
        rhs = ys * x_e % q
    else:
        lhs = vq
        rhs = ys.copy()
    if lhs.shape[1] > n:
        return None                        # under-determined beyond hope
    sol = gauss_solve_any(field, lhs, rhs)
    if sol is None:
        return None
    q_poly = Poly(field, sol[:n_q])
    e_coeffs = np.concatenate([sol[n_q:], np.ones(1, dtype=np.int64)])
    e_poly = Poly(field, e_coeffs)
    quot, rem = divmod(q_poly, e_poly)
    if not rem.is_zero() or quot.degree > d:
        return None
    return quot


def pow_col(field: PrimeField, xs: np.ndarray, e: int) -> np.ndarray:
    """``xs ** e`` element-wise (helper exposed for tests)."""
    from repro.ff.arith import mod_pow

    return mod_pow(xs, e, field.q)


@dataclass(frozen=True)
class RSDecodeResult:
    """Outcome of a block decode.

    Attributes
    ----------
    values:
        Decoded evaluations at the requested output points, one row per
        point (2-D) or a 1-D vector for scalar symbols.
    error_positions:
        Indices into the *received* list identified as corrupted.
    """

    values: np.ndarray
    error_positions: np.ndarray


class ReedSolomon:
    """Evaluation-domain RS codec over vector symbols.

    Parameters
    ----------
    field:
        Symbol field.
    eval_points:
        The ``N`` public worker points (``alpha`` in the paper).
    msg_degree:
        Degree bound ``D`` of the underlying polynomial
        (``(K + T - 1) * deg f`` for LCC).
    """

    def __init__(self, field: PrimeField, eval_points, msg_degree: int):
        self.field = field
        self.eval_points = field.asarray(eval_points)
        if len(np.unique(self.eval_points)) != self.eval_points.size:
            raise ValueError("evaluation points must be distinct")
        self.msg_degree = int(msg_degree)
        if self.msg_degree < 0:
            raise ValueError("msg_degree must be >= 0")

    # ------------------------------------------------------------------
    def encode_poly(self, poly: Poly) -> np.ndarray:
        """Evaluate a message polynomial at every worker point."""
        if poly.degree > self.msg_degree:
            raise ValueError("message degree exceeds codec bound")
        return poly(self.eval_points)

    def decode(
        self,
        received_indices,
        received_values,
        out_points,
        max_errors: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> RSDecodeResult:
        """Error-correct and re-evaluate at ``out_points``.

        ``received_values`` rows are the (block) symbols returned by the
        workers listed in ``received_indices``. Erasures are implicit:
        any worker not listed is simply absent.
        """
        field = self.field
        idx = np.asarray(received_indices, dtype=np.int64)
        vals = field.asarray(received_values)
        if vals.ndim == 1:
            vals = vals[:, None]
            squeeze = True
        else:
            squeeze = False
        if idx.size != vals.shape[0]:
            raise ValueError("indices/values length mismatch")
        xs = self.eval_points[idx]
        if idx.size < self.msg_degree + 1:
            raise DecodingError(
                f"{idx.size} symbols cannot determine a degree-{self.msg_degree} polynomial"
            )

        slack = idx.size - (self.msg_degree + 1)
        budget = slack // 2 if max_errors is None else min(int(max_errors), slack // 2)

        if budget == 0:
            # Pure erasure decoding: interpolate through everything.
            out = interpolate_eval(field, xs, vals, field.asarray(out_points))
            result = out[:, 0] if squeeze else out
            return RSDecodeResult(result, np.zeros(0, dtype=np.int64))

        # Random projection to locate errors once for all columns.
        if rng is None:
            rng = np.random.default_rng(0xAC0DEC)
        r = field.random(vals.shape[1], rng)
        proj = ff_matvec(field, vals, r)
        _, err_pos = berlekamp_welch(field, xs, proj, self.msg_degree, budget)

        keep = np.setdiff1d(np.arange(idx.size), err_pos)
        if keep.size < self.msg_degree + 1:
            raise DecodingError("too few clean symbols after error removal")
        out = interpolate_eval(
            field, xs[keep], vals[keep], field.asarray(out_points)
        )
        result = out[:, 0] if squeeze else out
        return RSDecodeResult(result, err_pos)
