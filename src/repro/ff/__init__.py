"""Finite-field substrate for coded computing.

This package provides every piece of modular arithmetic the AVCC stack
needs, implemented with vectorized NumPy on ``int64`` and an explicit
overflow discipline: all products of two reduced residues fit in 50 bits
for the default 25-bit prime, and every accumulation (dot products,
matrix products, convolutions) is chunked so partial sums never exceed
``2**63 - 1``.

Public surface
--------------
``PrimeField``
    A prime field F_q with vectorized element ops.
``DEFAULT_PRIME``
    ``2**25 - 39``, the field the paper uses (largest 25-bit prime).
``Poly``
    Dense univariate polynomials over a ``PrimeField``.
``lagrange_coeff_matrix`` / ``interpolate_eval``
    Lagrange basis machinery used by both the MDS and LCC codecs.
``ReedSolomon``
    Evaluation-style RS codec with Berlekamp–Welch error decoding
    (the decoder LCC relies on for Byzantine tolerance).
"""

from repro.ff.arith import (
    batch_inverse,
    is_prime,
    mod_inverse,
    mod_pow,
)
from repro.ff.field import DEFAULT_PRIME, PrimeField
from repro.ff.gauss import (
    SingularMatrixError,
    gauss_inverse,
    gauss_rank,
    gauss_solve,
    gauss_solve_any,
)
from repro.ff.lagrange import (
    barycentric_weights,
    eval_lagrange_basis,
    interpolate_eval,
    lagrange_coeff_matrix,
)
from repro.ff.linalg import ff_dot, ff_matmul, ff_matvec, safe_chunk_len
from repro.ff.poly import Poly
from repro.ff.rs import DecodingError, ReedSolomon, berlekamp_welch
from repro.ff.vandermonde import vandermonde_matrix, vandermonde_solve

__all__ = [
    "DEFAULT_PRIME",
    "DecodingError",
    "Poly",
    "PrimeField",
    "ReedSolomon",
    "SingularMatrixError",
    "barycentric_weights",
    "batch_inverse",
    "berlekamp_welch",
    "eval_lagrange_basis",
    "ff_dot",
    "ff_matmul",
    "ff_matvec",
    "gauss_inverse",
    "gauss_rank",
    "gauss_solve",
    "gauss_solve_any",
    "interpolate_eval",
    "is_prime",
    "lagrange_coeff_matrix",
    "mod_inverse",
    "mod_pow",
    "safe_chunk_len",
    "vandermonde_matrix",
    "vandermonde_solve",
]
