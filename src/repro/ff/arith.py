"""Low-level modular arithmetic helpers.

All helpers operate on plain ``numpy`` ``int64`` arrays holding reduced
residues in ``[0, q)``. They are deliberately field-object-free so that
:class:`repro.ff.field.PrimeField` can build on them without circular
imports.

Overflow discipline: with ``q < 2**31`` every product of two residues is
``< 2**62`` so a single multiply never overflows ``int64``. Anything that
*accumulates* products must chunk; see :mod:`repro.ff.linalg`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_prime", "mod_pow", "mod_inverse", "batch_inverse"]

# Deterministic Miller-Rabin witnesses valid for all n < 3.3e24
# (Sorenson & Webster). Far more than needed for 31-bit moduli.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin primality test for ``n < 3.3e24``.

    Used at :class:`~repro.ff.field.PrimeField` construction time to
    reject composite moduli early (a composite modulus silently breaks
    Fermat inversion and every decoder built on it).
    """
    n = int(n)
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def mod_pow(base: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """Vectorized ``base ** exponent mod q`` by square-and-multiply.

    ``base`` is an array of reduced residues; ``exponent`` a non-negative
    Python int (typically ``q - 2`` for Fermat inversion, i.e. ~25
    squarings for the default field). Cost: ``O(log exponent)`` array
    multiplies.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative; invert first")
    base = np.asarray(base, dtype=np.int64) % q
    result = np.ones_like(base)
    e = int(exponent)
    while e:
        if e & 1:
            result = result * base % q
        e >>= 1
        if e:
            base = base * base % q
    return result


def mod_inverse(a: np.ndarray, q: int) -> np.ndarray:
    """Vectorized modular inverse via Fermat's little theorem.

    Raises :class:`ZeroDivisionError` if any element is ``0 (mod q)``.
    """
    a = np.asarray(a, dtype=np.int64) % q
    if np.any(a == 0):
        raise ZeroDivisionError("attempt to invert 0 in F_q")
    return mod_pow(a, q - 2, q)


def batch_inverse(a: np.ndarray, q: int) -> np.ndarray:
    """Invert many elements with Montgomery's trick.

    Computes prefix products, inverts the single total with one Fermat
    exponentiation, then unwinds. For 1-D inputs of length ``n`` this is
    ``2n`` scalar multiplies plus one ``mod_pow`` — faster than ``n``
    Fermat inversions when ``n`` is small and the Python-loop overhead is
    amortized by the tiny sizes the codecs use (``n ≈ N + K``). For large
    arrays prefer :func:`mod_inverse`, which is fully vectorized.
    """
    flat = np.asarray(a, dtype=np.int64).reshape(-1) % q
    if flat.size == 0:
        return flat.reshape(np.shape(a))
    if np.any(flat == 0):
        raise ZeroDivisionError("attempt to invert 0 in F_q")
    n = flat.size
    prefix = np.empty(n, dtype=np.int64)
    acc = 1
    for i in range(n):
        acc = acc * int(flat[i]) % q
        prefix[i] = acc
    inv_acc = pow(int(acc), q - 2, q)
    out = np.empty(n, dtype=np.int64)
    for i in range(n - 1, 0, -1):
        out[i] = int(prefix[i - 1]) * inv_acc % q
        inv_acc = inv_acc * int(flat[i]) % q
    out[0] = inv_acc
    return out.reshape(np.shape(a))
