"""Prime-field object: the single source of truth for modulus and dtype.

Every layer above (codecs, verifiers, masters) takes a
:class:`PrimeField` and calls its vectorized element ops instead of
spelling out ``% q`` everywhere. This keeps the overflow discipline in
one place and makes it trivial to run the whole stack over a small field
in tests (e.g. ``q = 97`` for statistical soundness checks) and over the
paper's 25-bit prime in experiments.
"""

from __future__ import annotations

import numpy as np

from repro.ff.arith import batch_inverse, is_prime, mod_inverse, mod_pow

__all__ = ["PrimeField", "DEFAULT_PRIME"]

#: The paper's field: the largest 25-bit prime, chosen so that the
#: worst-case GISETTE inner product ``d * (q-1)**2`` with ``d = 5000``
#: fits in a signed 64-bit accumulator (Sec. V, "Quantization and
#: Parameter Selection").
DEFAULT_PRIME: int = 2**25 - 39

_INT64_MAX = np.iinfo(np.int64).max


class PrimeField:
    """The finite field ``F_q`` for a prime ``q < 2**31``.

    Parameters
    ----------
    q:
        Prime modulus. The bound ``q < 2**31`` guarantees that a product
        of two reduced residues fits in ``int64`` without wrap-around.

    Attributes
    ----------
    q:
        The modulus.
    dtype:
        Always ``numpy.int64``; all element arrays use it.
    chunk:
        Largest inner-dimension length such that ``chunk`` products of
        reduced residues plus one reduced residue still fit in ``int64``.
        :mod:`repro.ff.linalg` splits accumulations at this bound.
    """

    __slots__ = ("q", "dtype", "chunk", "_half")

    def __init__(self, q: int = DEFAULT_PRIME):
        q = int(q)
        if q >= 2**31:
            raise ValueError(
                f"q={q} too large: need q < 2**31 so residue products fit int64"
            )
        if not is_prime(q):
            raise ValueError(f"q={q} is not prime")
        self.q = q
        self.dtype = np.int64
        # chunk * (q-1)^2 + (q-1) <= INT64_MAX  => safe chunked accumulation
        self.chunk = int((_INT64_MAX - (q - 1)) // ((q - 1) ** 2))
        self._half = (q - 1) // 2

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------
    def asarray(self, x) -> np.ndarray:
        """Coerce to reduced ``int64`` residues in ``[0, q)``.

        Accepts Python ints, lists, or integer arrays (possibly negative
        or unreduced). Floating inputs are rejected: quantization must be
        explicit (see :mod:`repro.ml.quantize`).
        """
        arr = np.asarray(x)
        if arr.size == 0:
            # Empty containers default to float64 in NumPy; they carry no
            # actual float data, so admit them as empty residue arrays.
            return arr.astype(np.int64)
        if arr.dtype.kind == "f":
            raise TypeError(
                "float input to PrimeField.asarray; quantize explicitly first"
            )
        if arr.dtype == object:
            # Python bignums: reduce in object space, then downcast.
            arr = np.asarray(
                [int(v) % self.q for v in arr.reshape(-1)], dtype=np.int64
            ).reshape(arr.shape)
            return arr
        return arr.astype(np.int64, copy=False) % self.q

    def zeros(self, shape) -> np.ndarray:
        return np.zeros(shape, dtype=np.int64)

    def ones(self, shape) -> np.ndarray:
        return np.ones(shape, dtype=np.int64)

    def random(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Uniform field elements. ``rng`` is always explicit (no global
        seeding) so experiments stay reproducible."""
        return rng.integers(0, self.q, size=shape, dtype=np.int64)

    def to_signed(self, x: np.ndarray) -> np.ndarray:
        """Map residues to the centered representative in
        ``[-(q-1)/2, (q-1)/2]`` — the inverse of the two's-complement
        embedding of Sec. V (values above ``(q-1)/2`` are negatives)."""
        x = self.asarray(x)
        return np.where(x > self._half, x - self.q, x)

    def from_signed(self, x) -> np.ndarray:
        """Embed signed integers as residues (negatives wrap mod q)."""
        return self.asarray(x)

    # ------------------------------------------------------------------
    # element ops (all vectorized, all return reduced residues)
    # ------------------------------------------------------------------
    def add(self, a, b) -> np.ndarray:
        return (self.asarray(a) + self.asarray(b)) % self.q

    def sub(self, a, b) -> np.ndarray:
        return (self.asarray(a) - self.asarray(b)) % self.q

    def neg(self, a) -> np.ndarray:
        return (-self.asarray(a)) % self.q

    def mul(self, a, b) -> np.ndarray:
        return self.asarray(a) * self.asarray(b) % self.q

    def pow(self, a, e: int) -> np.ndarray:
        if e < 0:
            return mod_pow(self.inv(a), -e, self.q)
        return mod_pow(self.asarray(a), e, self.q)

    def inv(self, a) -> np.ndarray:
        """Vectorized Fermat inversion; raises on zero."""
        return mod_inverse(self.asarray(a), self.q)

    def batch_inv(self, a) -> np.ndarray:
        """Montgomery batch inversion; see :func:`repro.ff.arith.batch_inverse`."""
        return batch_inverse(self.asarray(a), self.q)

    def div(self, a, b) -> np.ndarray:
        return self.mul(a, self.inv(b))

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def distinct_points(self, n: int, *, start: int = 1) -> np.ndarray:
        """Return ``n`` distinct field points ``start, start+1, ...``.

        Used for evaluation/interpolation point sets (the paper's
        ``alpha`` and ``beta`` sets); raises if the field is too small.
        """
        if n > self.q - start:
            raise ValueError(f"cannot pick {n} distinct points in F_{self.q}")
        return (np.arange(start, start + n, dtype=np.int64)) % self.q

    def __eq__(self, other) -> bool:
        return isinstance(other, PrimeField) and other.q == self.q

    def __hash__(self) -> int:
        return hash(("PrimeField", self.q))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrimeField(q={self.q})"
