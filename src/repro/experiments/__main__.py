"""Reproduce every table and figure in one go.

Usage::

    python -m repro.experiments            # everything, default scale
    python -m repro.experiments --fast     # 15-iteration smoke pass
    repro obs SNAPSHOT.json                # inspect a telemetry dump
    repro obs --endpoint URL               # poll a live gateway
    repro audit verify CHAIN.jsonl         # verify a dumped audit chain
    repro audit show CHAIN.jsonl           # render its commitments
    repro audit diff A.jsonl B.jsonl       # first divergence of two chains
"""

import sys
import time

from repro.experiments import (
    ExperimentConfig,
    FIG3_SETTINGS,
    run_fig4,
    run_fig5,
    run_table1,
)
from repro.experiments.fig4 import FIG4_SETTINGS


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "obs":
        from repro.obs.cli import main as obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "audit":
        from repro.obs.cli import audit_main

        return audit_main(argv[1:])
    iterations = 15 if "--fast" in argv else 50
    cfg = ExperimentConfig(iterations=iterations)
    t0 = time.perf_counter()

    print("=" * 72)
    print("Table I — end-to-end speedups")
    print("=" * 72)
    table1 = run_table1(cfg)
    print(table1.render())

    print()
    print("=" * 72)
    print("Fig. 3 — convergence under attack")
    print("=" * 72)
    for panel in FIG3_SETTINGS:
        print(table1.panels[panel].render())
        print()

    print("=" * 72)
    print("Fig. 4 — per-iteration cost breakdown")
    print("=" * 72)
    for panel in FIG4_SETTINGS:
        print(run_fig4(panel, cfg.with_(iterations=min(iterations, 15))).render())
        print()

    print("=" * 72)
    print("Fig. 5 — dynamic coding vs Static VCC")
    print("=" * 72)
    print(run_fig5(cfg).render())

    print(f"\nall artifacts regenerated in {time.perf_counter() - t0:.1f}s wall time")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
