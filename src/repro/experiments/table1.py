"""Table I — end-to-end speedups of AVCC over LCC and uncoded.

Metric: for each (attack, S, M) setting, take the baseline's converged
accuracy (its plateau over the final iterations, less a small
tolerance) as the target; the speedup is

    time(baseline reaches target) / time(AVCC reaches target).

This is the standard "time-to-accuracy" ratio and matches the paper's
narrative: when a baseline converges *lower* than AVCC (LCC with two
attackers, uncoded under any attack), it takes the baseline most of
its run to reach its own plateau while AVCC crosses that level early —
which is how the large 4.17x/7.64x entries arise; when accuracies tie,
the ratio reduces to the per-iteration time ratio (the ~1.1x entries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig3 import FIG3_SETTINGS, Fig3Result, run_fig3
from repro.experiments.report import format_table

__all__ = ["Table1Result", "run_table1", "speedup_over"]

#: paper's Table I, for side-by-side reporting
PAPER_TABLE1 = {
    ("reverse", 1, 2): (2.66, 5.13),
    ("reverse", 2, 1): (1.09, 3.22),
    ("constant", 1, 2): (4.17, 5.41),
    ("constant", 2, 1): (1.13, 7.64),
}


def speedup_over(result: Fig3Result, baseline: str, fraction: float = 0.95) -> float:
    """Time-to-accuracy speedup of AVCC over ``baseline`` in a panel.

    The target is ``fraction`` of the baseline's converged accuracy —
    a relative target is robust to the attack-induced oscillation of
    poisoned baselines (an absolute plateau-minus-epsilon target is
    only touched at the very end of a noisy run, which would inflate
    ratios arbitrarily).
    """
    base = result.histories[baseline]
    avcc = result.histories["avcc"]
    target = base.plateau_accuracy() * fraction
    t_base = base.time_to_accuracy(target)
    t_avcc = avcc.time_to_accuracy(target)
    if math.isinf(t_avcc):
        return 0.0  # AVCC never got there — would be a reproduction failure
    if math.isinf(t_base):
        return math.inf
    return t_base / t_avcc


@dataclass(frozen=True)
class Table1Result:
    #: (attack, s, m) -> (speedup over LCC, speedup over uncoded)
    speedups: dict[tuple[str, int, int], tuple[float, float]]
    panels: dict[str, Fig3Result]

    def render(self) -> str:
        rows = []
        for (attack, s, m), (v_lcc, v_unc) in sorted(self.speedups.items()):
            p_lcc, p_unc = PAPER_TABLE1[(attack, s, m)]
            rows.append(
                [
                    f"{attack} S={s},M={m}",
                    f"{v_lcc:.2f}x",
                    f"{p_lcc:.2f}x",
                    f"{v_unc:.2f}x",
                    f"{p_unc:.2f}x",
                ]
            )
        return format_table(
            ["Setting", "vs LCC", "(paper)", "vs uncoded", "(paper)"],
            rows,
            title="Table I: AVCC speedups (measured vs paper)",
        )


def run_table1(cfg: ExperimentConfig | None = None) -> Table1Result:
    cfg = cfg or ExperimentConfig()
    speedups = {}
    panels = {}
    for panel in FIG3_SETTINGS:
        result = run_fig3(panel, cfg)
        panels[panel] = result
        key = (result.attack, result.s, result.m)
        speedups[key] = (
            speedup_over(result, "lcc"),
            speedup_over(result, "uncoded"),
        )
    return Table1Result(speedups=speedups, panels=panels)


def main():  # pragma: no cover - CLI entry
    print(run_table1().render())


if __name__ == "__main__":  # pragma: no cover
    main()
