"""Fig. 3 — convergence performance under attack.

Four panels, each training AVCC, LCC and uncoded for 50 iterations on
the GISETTE-like workload:

* (a) reverse-value attack, ``S = 2, M = 1``
* (b) reverse-value attack, ``S = 1, M = 2``
* (c) constant attack,     ``S = 2, M = 1``
* (d) constant attack,     ``S = 1, M = 2``

The deployments mirror Sec. V exactly: LCC is designed for
``(12, 9, S=1, M=1)``; AVCC runs ``(12, 9)`` with the panel's
``S + M <= 3`` split; uncoded uses 9 of the 12 workers. The expected
shapes (Sec. VI): all methods tie on accuracy when ``M = 1`` (with
AVCC fastest); with ``M = 2`` LCC's accuracy degrades and uncoded
degrades further, while AVCC is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_training
from repro.experiments.report import format_series
from repro.ml.trainer import TrainingHistory

__all__ = ["FIG3_SETTINGS", "Fig3Result", "run_fig3"]

#: panel -> (attack kind, S, M)
FIG3_SETTINGS: dict[str, tuple[str, int, int]] = {
    "a": ("reverse", 2, 1),
    "b": ("reverse", 1, 2),
    "c": ("constant", 2, 1),
    "d": ("constant", 1, 2),
}

METHODS = ("avcc", "lcc", "uncoded")


@dataclass(frozen=True)
class Fig3Result:
    panel: str
    attack: str
    s: int
    m: int
    histories: dict[str, TrainingHistory]

    def plateau(self, method: str) -> float:
        return self.histories[method].plateau_accuracy()

    def render(self) -> str:
        lines = [
            f"Fig. 3({self.panel}): {self.attack} attack, S={self.s}, M={self.m}",
        ]
        for method in METHODS:
            h = self.histories[method]
            lines.append(
                "  "
                + format_series(f"{method:8s}", h.times, h.test_acc, points=8)
            )
            lines.append(
                f"  {method:8s} plateau={h.plateau_accuracy():.3f} "
                f"total={h.total_time:.2f}s"
            )
        return "\n".join(lines)


def run_fig3(panel: str, cfg: ExperimentConfig | None = None) -> Fig3Result:
    """Reproduce one panel of Fig. 3."""
    if panel not in FIG3_SETTINGS:
        raise ValueError(f"panel must be one of {sorted(FIG3_SETTINGS)}")
    cfg = cfg or ExperimentConfig()
    attack, s, m = FIG3_SETTINGS[panel]
    dataset = cfg.dataset()
    histories = {}
    for method in METHODS:
        history, _ = run_training(
            method, cfg, dataset, s=s, m=m, attack=attack
        )
        histories[method] = history
    return Fig3Result(panel=panel, attack=attack, s=s, m=m, histories=histories)


def main():  # pragma: no cover - CLI entry
    cfg = ExperimentConfig()
    for panel in FIG3_SETTINGS:
        print(run_fig3(panel, cfg).render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
