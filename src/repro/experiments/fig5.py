"""Fig. 5 — dynamic AVCC vs Static VCC.

The paper's exemplary scenario: start with ``(N=12, K=9, S=2, M=1)``;
at iteration 1 the system encounters **three** stragglers and **one**
Byzantine node. AVCC drops the Byzantine worker, recognizes that
``A_t = 12 − 1 − 3 − 9 = −1 < 0`` and re-encodes to
``(N=11, K=8)``, paying a one-time share-shipment cost; Static VCC
keeps ``(12, 9)`` and waits for the fastest straggler every iteration.
Over 50 iterations dynamic coding wins despite the re-encode bump
(~41 s cost vs ~54 s net saving at the paper's scale).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, make_session
from repro.experiments.report import format_table
from repro.ml import DistributedLogisticTrainer
from repro.ml.trainer import TrainingHistory
from repro.runtime import TraceRecorder

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    avcc: TrainingHistory
    static: TrainingHistory
    reencode_cost: float       # the one-time bump
    reencode_iteration: int    # when it happened
    net_saving: float          # static total - avcc total

    def render(self) -> str:
        rows = [
            ["AVCC (dynamic)", f"{self.avcc.total_time:.2f}",
             str(self.avcc.schemes[-1]), f"{self.reencode_cost:.2f}"],
            ["Static VCC", f"{self.static.total_time:.2f}",
             str(self.static.schemes[-1]), "0.00"],
        ]
        table = format_table(
            ["method", "total time (s)", "final scheme", "re-encode cost (s)"],
            rows,
            title="Fig. 5: dynamic coding vs Static VCC",
        )
        return (
            f"{table}\n"
            f"one-time re-encode at iteration {self.reencode_iteration}; "
            f"net saving {self.net_saving:.2f}s over "
            f"{self.avcc.iterations()} iterations"
        )


def run_fig5(cfg: ExperimentConfig | None = None) -> Fig5Result:
    """Run the Fig. 5 scenario for both AVCC and Static VCC."""
    cfg = cfg or ExperimentConfig()
    # The scenario needs three *heavy* stragglers (the paper's narrative:
    # the scheme "is no longer able to handle 3 stragglers"); the default
    # factor set includes a mild 1.3x worker that the latency-based
    # detector rightly ignores, so override with three genuine laggards.
    cfg = cfg.with_(straggler_factors=(8.0, 6.0, 7.0))
    dataset = cfg.dataset()

    histories = {}
    for method in ("avcc", "static_vcc"):
        with make_session(
            method,
            cfg,
            s=2,
            m=1,
            n_stragglers=3,
            n_byzantine=1,
            attack="constant",
            intermittent=False,  # persistent faults, as in the paper's scenario
        ) as session:
            session.load(dataset.x_train)
            trainer = DistributedLogisticTrainer(session, dataset, cfg.logistic_config())
            histories[method] = trainer.train(TraceRecorder())

    avcc = histories["avcc"]
    static = histories["static_vcc"]
    reencode_iter = next(
        (i for i, t in enumerate(avcc.reencode_times) if t > 0), -1
    )
    reencode_cost = sum(avcc.reencode_times)
    return Fig5Result(
        avcc=avcc,
        static=static,
        reencode_cost=reencode_cost,
        reencode_iteration=reencode_iter,
        net_saving=static.total_time - avcc.total_time,
    )


def main():  # pragma: no cover - CLI entry
    print(run_fig5().render())


if __name__ == "__main__":  # pragma: no cover
    main()
