"""Shared experiment configuration and run drivers.

All cluster/master construction goes through the session API
(:mod:`repro.api`): scenarios are described as
:class:`~repro.api.config.SessionConfig` objects (worker fault specs,
scheme, cost constants) and materialized by the name registries —
compose :func:`scenario_config` with ``config.build_workers()`` /
``resolve_backend`` / ``resolve_master`` when a test or notebook wants
the layers separately. (The pre-0.4 ``build_cluster`` /
``make_master`` shims are gone; see the README migration note.)

Calibration
-----------
The simulated cost constants are fitted to the paper's testbed regime
(13 Atom-class Minnow nodes, 1 GbE), *as the protocol actually ran
there*: per-iteration times in Fig. 4/5 imply an effective field-MAC
rate of a few hundred nanoseconds (interpreted arithmetic on Atom
cores) and an effective transfer rate of ~10 MB/s once serialization
is included (the 41 s re-encode shipment of Fig. 5 at GISETTE scale).
With those two constants fixed, every headline ratio of the paper —
uncoded ~5–7x slower than AVCC under stragglers, LCC within ~1.1x of
AVCC when only time (not accuracy) separates them, re-encoding repaid
within a few iterations — emerges from the protocol structure rather
than from per-figure tuning.

Scale
-----
Default experiment scale is (m=1200, d=600): same structure as GISETTE
(6000x5000), ~25x less arithmetic, so the benchmark suite replays all
four figures in seconds. ``ExperimentConfig(full_scale=True)`` restores
the paper's exact shape for the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.api import Session, SessionConfig, WorkerSpec
from repro.coding import SchemeParams
from repro.ff import DEFAULT_PRIME
from repro.ml import Dataset, DistributedLogisticTrainer, LogisticConfig, make_gisette_like
from repro.ml.trainer import TrainingHistory
from repro.runtime import CostModel, TraceRecorder

__all__ = [
    "ExperimentConfig",
    "SERVING_SCALE",
    "make_serving_workload",
    "make_session",
    "run_training",
    "scenario_config",
    "serving_config",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all paper experiments."""

    # workload
    m: int = 1200
    d: int = 600
    iterations: int = 50
    learning_rate: float = 0.03
    l_w: int = 8
    l_e: int = 6
    grad_clip: float = 2.0
    seed: int = 2022

    # fleet
    n_workers: int = 12
    k: int = 9
    #: heterogeneous straggler slowdowns, slowest first (the paper's
    #: "faster of the two stragglers" narrative needs distinct factors)
    straggler_factors: tuple[float, ...] = (5.0, 1.3, 4.0)
    #: per-round probability that a Byzantine worker actually attacks
    attack_probability: float = 0.7

    # calibrated cost constants (see module docstring)
    worker_sec_per_mac: float = 300e-9
    master_sec_per_mac: float = 30e-9
    bandwidth_bytes_per_s: float = 10e6
    link_latency_s: float = 1e-3

    full_scale: bool = False

    def cost_model(self) -> CostModel:
        return CostModel(**self.cost_dict())

    def cost_dict(self) -> dict[str, float]:
        """The cost constants as :class:`SessionConfig` overrides."""
        return {
            "worker_sec_per_mac": self.worker_sec_per_mac,
            "master_sec_per_mac": self.master_sec_per_mac,
            "bandwidth_bytes_per_s": self.bandwidth_bytes_per_s,
            "link_latency_s": self.link_latency_s,
        }

    def dataset(self) -> Dataset:
        if self.full_scale:
            return make_gisette_like(
                m=6000, d=5000, rng=np.random.default_rng(self.seed)
            )
        return make_gisette_like(
            m=self.m, d=self.d, rng=np.random.default_rng(self.seed)
        )

    def logistic_config(self) -> LogisticConfig:
        return LogisticConfig(
            iterations=self.iterations,
            learning_rate=self.learning_rate,
            l_w=self.l_w,
            l_e=self.l_e,
            grad_clip=self.grad_clip,
        )

    def with_(self, **changes) -> "ExperimentConfig":
        return replace(self, **changes)


_ATTACKS = ("reverse", "constant")


def _worker_specs(
    cfg: ExperimentConfig,
    n_stragglers: int,
    n_byzantine: int,
    attack: str,
    intermittent: bool,
    straggler_ids: tuple[int, ...] | None,
    byzantine_ids: tuple[int, ...] | None,
) -> tuple[WorkerSpec, ...]:
    """Fault placement for one scenario.

    Straggler and Byzantine workers sit inside the first 9 worker slots
    by default so the uncoded baseline (workers ``0..8``) is exposed to
    them, as in the paper's deployment.
    """
    n = cfg.n_workers
    if attack not in _ATTACKS:
        raise ValueError(f"unknown attack kind {attack!r} (use 'reverse' or 'constant')")
    if n_stragglers > len(cfg.straggler_factors):
        raise ValueError(
            f"need {n_stragglers} straggler factors, have {len(cfg.straggler_factors)}"
        )
    straggler_ids = straggler_ids or tuple(range(n_stragglers))
    byzantine_ids = byzantine_ids or tuple(
        range(n_stragglers, n_stragglers + n_byzantine)
    )
    if set(straggler_ids) & set(byzantine_ids):
        raise ValueError("a worker cannot be both straggler and Byzantine here")

    factors = {wid: cfg.straggler_factors[i] for i, wid in enumerate(straggler_ids)}
    attack_value = 1 if attack == "reverse" else 30_000
    probability = cfg.attack_probability if intermittent else 1.0
    specs = []
    for wid in range(n):
        if wid in byzantine_ids:
            specs.append(
                WorkerSpec(
                    straggler_factor=factors.get(wid, 1.0),
                    behavior=attack,
                    attack_value=attack_value,
                    probability=probability,
                )
            )
        else:
            specs.append(WorkerSpec(straggler_factor=factors.get(wid, 1.0)))
    return tuple(specs)


def _scheme(method: str, cfg: ExperimentConfig, s: int, m: int) -> SchemeParams:
    """The paper's deployments, by method.

    LCC always uses the paper's baseline design ``(12, 9, S=1, M=1)``
    regardless of the actual fault injection — that mismatch is the
    point of Fig. 3(b)/(d).
    """
    if method in ("avcc", "static_vcc"):
        return SchemeParams(n=cfg.n_workers, k=cfg.k, s=s, m=m)
    if method == "lcc":
        return SchemeParams(n=cfg.n_workers, k=cfg.k, s=1, m=1)
    if method == "uncoded":
        return SchemeParams(n=cfg.n_workers, k=cfg.k)
    raise ValueError(f"unknown method {method!r}")


def scenario_config(
    method: str,
    cfg: ExperimentConfig,
    *,
    s: int,
    m: int,
    n_stragglers: int | None = None,
    n_byzantine: int | None = None,
    attack: str = "reverse",
    intermittent: bool = True,
    straggler_ids: tuple[int, ...] | None = None,
    byzantine_ids: tuple[int, ...] | None = None,
    seed_offset: int = 0,
    max_inflight_rounds: int = 1,
) -> SessionConfig:
    """One scenario as a declarative :class:`SessionConfig`.

    ``s``/``m`` parameterize the deployed scheme; ``n_stragglers`` /
    ``n_byzantine`` the *actual* fault injection (defaulting to the
    scheme's design point — Fig. 5 deliberately exceeds it).

    ``max_inflight_rounds`` widens the session's pipelined round
    scheduler; the paper experiments keep the serial default (their
    two rounds per iteration are data-dependent), while the serving
    benches (``bench_pipeline.py``) widen it.
    """
    specs = _worker_specs(
        cfg,
        n_stragglers if n_stragglers is not None else s,
        n_byzantine if n_byzantine is not None else m,
        attack,
        intermittent,
        straggler_ids,
        byzantine_ids,
    )
    return SessionConfig(
        scheme=_scheme(method, cfg, s, m),
        master=method,
        backend="sim",
        prime=DEFAULT_PRIME,
        seed=cfg.seed + seed_offset,
        workers=specs,
        cost=cfg.cost_dict(),
        max_inflight_rounds=max_inflight_rounds,
    )


def make_session(method: str, cfg: ExperimentConfig, **scenario) -> Session:
    """Stand up a ready session for one scenario (shares not yet
    loaded — call ``session.load(x)``)."""
    return Session.create(scenario_config(method, cfg, **scenario))


# ----------------------------------------------------------------------
# the serving scenario (gateway traffic against the paper's fleet)
# ----------------------------------------------------------------------
#: canonical serving scale: GISETTE-like structure, small enough that
#: per-round overhead — what micro-batching amortizes — dominates
SERVING_SCALE = (240, 120)


def serving_config(
    cfg: ExperimentConfig,
    *,
    batch_window: int = 64,
    max_inflight_rounds: int = 1,
    seed_offset: int = 0,
    backend: str = "sim",
    backend_options: dict | None = None,
) -> SessionConfig:
    """The serving scenario's session: the paper's ``(12, 9, S=1,
    M=1)`` AVCC deployment at the calibrated cost constants, with one
    heavy (5x) straggler and one always-on Byzantine worker — the
    fleet every gateway variant (serial, pipelined, deadline-batched)
    is benchmarked against. ``batch_window`` is kept wide so the
    *gateway's* batch policy, not the session's count trigger, decides
    round boundaries. ``backend`` swaps the substrate (``"tcp"``
    serves the same trace over a real loopback socket fleet);
    wall-clock backends default to a small ``straggle_scale`` so the
    injected 5x straggler costs milliseconds, not seconds."""
    specs = _worker_specs(cfg, 1, 1, "reverse", False, None, None)
    if backend_options is None:
        backend_options = {} if backend == "sim" else {"straggle_scale": 0.002}
    return SessionConfig(
        scheme=SchemeParams(n=cfg.n_workers, k=cfg.k, s=1, m=1),
        master="avcc",
        backend=backend,
        prime=DEFAULT_PRIME,
        seed=cfg.seed + seed_offset,
        workers=specs,
        batch_window=batch_window,
        max_inflight_rounds=max_inflight_rounds,
        cost=cfg.cost_dict(),
        backend_options=backend_options,
    )


def make_serving_workload(
    field,
    shape: tuple[int, int] = SERVING_SCALE,
    *,
    n_requests: int = 240,
    seed: int = 7,
    calm_rate: float = 500.0,
    burst_rate: float = 2500.0,
):
    """The mixed Poisson+burst serving trace: two tenants (a patient
    ``free`` tier and a 3x-weighted ``pro`` tier with a tight SLO)
    over a Markov-modulated Poisson arrival process whose bursts
    exceed the serial gateway's capacity. Returns ``(generator,
    requests)``; the generator's :attr:`tenant_weights` feed the
    gateway's fair queue. Deterministic for a given seed, so every
    gateway variant replays the identical trace."""
    from repro.serve import BurstyArrivals, TenantSpec, WorkloadGenerator

    generator = WorkloadGenerator(
        field,
        shape,
        tenants=[
            TenantSpec(
                "free", weight=1.0, deadline_slack=0.6, transpose_fraction=0.3
            ),
            TenantSpec("pro", weight=3.0, deadline_slack=0.25),
        ],
        arrivals=BurstyArrivals(
            calm_rate=calm_rate, burst_rate=burst_rate, p_burst=0.08, p_calm=0.15
        ),
        seed=seed,
    )
    return generator, generator.generate(n_requests)


def run_training(
    method: str,
    cfg: ExperimentConfig,
    dataset: Dataset,
    *,
    s: int,
    m: int,
    attack: str = "reverse",
    intermittent: bool = True,
    straggler_ids: tuple[int, ...] | None = None,
    byzantine_ids: tuple[int, ...] | None = None,
) -> tuple[TrainingHistory, TraceRecorder]:
    """Train one method through one scenario; returns history + trace."""
    with make_session(
        method,
        cfg,
        s=s,
        m=m,
        attack=attack,
        intermittent=intermittent,
        straggler_ids=straggler_ids,
        byzantine_ids=byzantine_ids,
    ) as session:
        session.load(dataset.x_train)
        recorder = TraceRecorder()
        trainer = DistributedLogisticTrainer(session, dataset, cfg.logistic_config())
        history = trainer.train(recorder)
    return history, recorder
