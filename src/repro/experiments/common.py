"""Shared experiment configuration, cluster builders and run drivers.

Calibration
-----------
The simulated cost constants are fitted to the paper's testbed regime
(13 Atom-class Minnow nodes, 1 GbE), *as the protocol actually ran
there*: per-iteration times in Fig. 4/5 imply an effective field-MAC
rate of a few hundred nanoseconds (interpreted arithmetic on Atom
cores) and an effective transfer rate of ~10 MB/s once serialization
is included (the 41 s re-encode shipment of Fig. 5 at GISETTE scale).
With those two constants fixed, every headline ratio of the paper —
uncoded ~5–7x slower than AVCC under stragglers, LCC within ~1.1x of
AVCC when only time (not accuracy) separates them, re-encoding repaid
within a few iterations — emerges from the protocol structure rather
than from per-figure tuning.

Scale
-----
Default experiment scale is (m=1200, d=600): same structure as GISETTE
(6000x5000), ~25x less arithmetic, so the benchmark suite replays all
four figures in seconds. ``ExperimentConfig(full_scale=True)`` restores
the paper's exact shape for the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.coding import SchemeParams
from repro.core import AVCCMaster, LCCMaster, StaticVCCMaster, UncodedMaster
from repro.ff import DEFAULT_PRIME, PrimeField
from repro.ml import Dataset, DistributedLogisticTrainer, LogisticConfig, make_gisette_like
from repro.ml.trainer import TrainingHistory
from repro.runtime import (
    ConstantAttack,
    CostModel,
    Honest,
    IntermittentAttack,
    ReversedValueAttack,
    SimCluster,
    SimWorker,
    TraceRecorder,
    make_profiles,
)

__all__ = ["ExperimentConfig", "build_cluster", "make_master", "run_training"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all paper experiments."""

    # workload
    m: int = 1200
    d: int = 600
    iterations: int = 50
    learning_rate: float = 0.03
    l_w: int = 8
    l_e: int = 6
    grad_clip: float = 2.0
    seed: int = 2022

    # fleet
    n_workers: int = 12
    k: int = 9
    #: heterogeneous straggler slowdowns, slowest first (the paper's
    #: "faster of the two stragglers" narrative needs distinct factors)
    straggler_factors: tuple[float, ...] = (5.0, 1.3, 4.0)
    #: per-round probability that a Byzantine worker actually attacks
    attack_probability: float = 0.7

    # calibrated cost constants (see module docstring)
    worker_sec_per_mac: float = 300e-9
    master_sec_per_mac: float = 30e-9
    bandwidth_bytes_per_s: float = 10e6
    link_latency_s: float = 1e-3

    full_scale: bool = False

    def cost_model(self) -> CostModel:
        return CostModel(
            worker_sec_per_mac=self.worker_sec_per_mac,
            master_sec_per_mac=self.master_sec_per_mac,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            link_latency_s=self.link_latency_s,
        )

    def dataset(self) -> Dataset:
        if self.full_scale:
            return make_gisette_like(
                m=6000, d=5000, rng=np.random.default_rng(self.seed)
            )
        return make_gisette_like(
            m=self.m, d=self.d, rng=np.random.default_rng(self.seed)
        )

    def logistic_config(self) -> LogisticConfig:
        return LogisticConfig(
            iterations=self.iterations,
            learning_rate=self.learning_rate,
            l_w=self.l_w,
            l_e=self.l_e,
            grad_clip=self.grad_clip,
        )

    def with_(self, **changes) -> "ExperimentConfig":
        return replace(self, **changes)


def _attack(kind: str):
    if kind == "reverse":
        return ReversedValueAttack(c=1)
    if kind == "constant":
        return ConstantAttack(value=30_000)
    raise ValueError(f"unknown attack kind {kind!r} (use 'reverse' or 'constant')")


def build_cluster(
    cfg: ExperimentConfig,
    n_stragglers: int,
    n_byzantine: int,
    attack: str = "reverse",
    *,
    intermittent: bool = True,
    straggler_ids: tuple[int, ...] | None = None,
    byzantine_ids: tuple[int, ...] | None = None,
    seed_offset: int = 0,
) -> SimCluster:
    """Assemble the worker fleet for one scenario.

    Straggler and Byzantine workers are placed inside the first 9
    worker slots by default so the uncoded baseline (which uses workers
    ``0..8``) is exposed to them, as in the paper's deployment.
    """
    n = cfg.n_workers
    if n_stragglers > len(cfg.straggler_factors):
        raise ValueError(
            f"need {n_stragglers} straggler factors, have {len(cfg.straggler_factors)}"
        )
    straggler_ids = straggler_ids or tuple(range(n_stragglers))
    byzantine_ids = byzantine_ids or tuple(
        range(n_stragglers, n_stragglers + n_byzantine)
    )
    if set(straggler_ids) & set(byzantine_ids):
        raise ValueError("a worker cannot be both straggler and Byzantine here")

    factors = {
        wid: cfg.straggler_factors[i] for i, wid in enumerate(straggler_ids)
    }
    profiles = make_profiles(n, factors)
    behaviors = {}
    for wid in byzantine_ids:
        inner = _attack(attack)
        behaviors[wid] = (
            IntermittentAttack(inner, probability=cfg.attack_probability)
            if intermittent
            else inner
        )
    workers = [
        SimWorker(i, profile=profiles[i], behavior=behaviors.get(i, Honest()))
        for i in range(n)
    ]
    field_obj = PrimeField(DEFAULT_PRIME)
    return SimCluster(
        field_obj,
        workers,
        cost_model=cfg.cost_model(),
        rng=np.random.default_rng(cfg.seed + seed_offset),
    )


def make_master(method: str, cluster: SimCluster, cfg: ExperimentConfig, s: int, m: int):
    """Instantiate a master by name with the paper's deployments.

    LCC always uses the paper's baseline design ``(12, 9, S=1, M=1)``
    regardless of the actual fault injection — that mismatch is the
    point of Fig. 3(b)/(d).
    """
    if method == "avcc":
        return AVCCMaster(cluster, SchemeParams(n=cfg.n_workers, k=cfg.k, s=s, m=m))
    if method == "static_vcc":
        return StaticVCCMaster(cluster, SchemeParams(n=cfg.n_workers, k=cfg.k, s=s, m=m))
    if method == "lcc":
        return LCCMaster(cluster, SchemeParams(n=cfg.n_workers, k=cfg.k, s=1, m=1))
    if method == "uncoded":
        return UncodedMaster(cluster, k=cfg.k)
    raise ValueError(f"unknown method {method!r}")


def run_training(
    method: str,
    cfg: ExperimentConfig,
    dataset: Dataset,
    *,
    s: int,
    m: int,
    attack: str = "reverse",
    intermittent: bool = True,
    straggler_ids: tuple[int, ...] | None = None,
    byzantine_ids: tuple[int, ...] | None = None,
) -> tuple[TrainingHistory, TraceRecorder]:
    """Train one method through one scenario; returns history + trace."""
    cluster = build_cluster(
        cfg,
        n_stragglers=s,
        n_byzantine=m,
        attack=attack,
        intermittent=intermittent,
        straggler_ids=straggler_ids,
        byzantine_ids=byzantine_ids,
    )
    master = make_master(method, cluster, cfg, s=s, m=m)
    master.setup(dataset.x_train)
    recorder = TraceRecorder()
    trainer = DistributedLogisticTrainer(master, dataset, cfg.logistic_config())
    history = trainer.train(recorder)
    return history, recorder
