"""Fig. 4 — per-iteration cost breakdown.

Three panels, each reporting the mean per-iteration time split into the
paper's four categories (compute / communication / verification /
decoding) for AVCC, LCC and uncoded:

* (a) ``S = 0, M = 0`` — clean cluster: AVCC's verification+decoding
  shows up as (small) extra latency over the baselines;
* (b) ``S = 1, M = 2`` (reverse attack) — straggler latency dwarfs the
  verification/decoding overhead;
* (c) ``S = 2, M = 1`` (reverse attack) — same story.

The paper plots these on a log y-axis precisely because the compute
bar dominates by orders of magnitude in (b)/(c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, run_training
from repro.experiments.report import format_table

__all__ = ["FIG4_SETTINGS", "Fig4Result", "run_fig4"]

#: panel -> (S, M)
FIG4_SETTINGS: dict[str, tuple[int, int]] = {
    "a": (0, 0),
    "b": (1, 2),
    "c": (2, 1),
}

METHODS = ("avcc", "lcc", "uncoded")
CATEGORIES = ("compute", "communication", "verification", "decoding")


@dataclass(frozen=True)
class Fig4Result:
    panel: str
    s: int
    m: int
    #: method -> category -> mean seconds per iteration
    breakdown: dict[str, dict[str, float]]
    #: method -> final test accuracy (the captions of Fig. 4b/4c)
    accuracy: dict[str, float]

    def total(self, method: str) -> float:
        return sum(self.breakdown[method].values())

    def render(self) -> str:
        rows = []
        for method in METHODS:
            b = self.breakdown[method]
            rows.append(
                [method]
                + [f"{b[c] * 1e3:.3f}" for c in CATEGORIES]
                + [f"{self.total(method) * 1e3:.3f}", f"{self.accuracy[method]:.3f}"]
            )
        return format_table(
            ["method"] + [f"{c} (ms)" for c in CATEGORIES] + ["total (ms)", "test acc"],
            rows,
            title=f"Fig. 4({self.panel}): per-iteration breakdown, S={self.s}, M={self.m}",
        )


def run_fig4(panel: str, cfg: ExperimentConfig | None = None) -> Fig4Result:
    if panel not in FIG4_SETTINGS:
        raise ValueError(f"panel must be one of {sorted(FIG4_SETTINGS)}")
    cfg = cfg or ExperimentConfig()
    s, m = FIG4_SETTINGS[panel]
    dataset = cfg.dataset()
    breakdown = {}
    accuracy = {}
    for method in METHODS:
        history, recorder = run_training(
            method, cfg, dataset, s=s, m=m, attack="reverse"
        )
        breakdown[method] = recorder.mean_breakdown()
        accuracy[method] = history.plateau_accuracy()
    return Fig4Result(panel=panel, s=s, m=m, breakdown=breakdown, accuracy=accuracy)


def main():  # pragma: no cover - CLI entry
    cfg = ExperimentConfig()
    for panel in FIG4_SETTINGS:
        print(run_fig4(panel, cfg).render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
