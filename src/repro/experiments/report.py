"""Plain-text rendering helpers for the experiment harness."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Align a small table for terminal output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    label: str, times: Sequence[float], values: Sequence[float], points: int = 10
) -> str:
    """Downsample an (accuracy vs time) curve to a readable line."""
    if not times:
        return f"{label}: (empty)"
    n = len(times)
    idx = [int(i * (n - 1) / max(points - 1, 1)) for i in range(min(points, n))]
    pairs = ", ".join(f"{times[i]:.2f}s:{values[i]:.3f}" for i in idx)
    return f"{label}: {pairs}"
