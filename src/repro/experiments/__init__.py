"""Experiment harness: one module per paper table/figure.

========  =======================================================
fig3      convergence (accuracy vs time) under both attacks,
          both (S, M) splits — Fig. 3(a)–(d)
table1    end-to-end speedups of AVCC over LCC/uncoded — Table I
fig4      per-iteration cost breakdown — Fig. 4(a)–(c)
fig5      AVCC vs Static VCC with dynamic re-coding — Fig. 5
========  =======================================================

All experiments run on the deterministic simulator with the
calibration documented in :class:`ExperimentConfig` (cost constants
matched to the paper's Atom-class testbed running interpreted field
arithmetic over 1 GbE with serialization overhead).
"""

from repro.experiments.common import ExperimentConfig, run_training
from repro.experiments.fig3 import FIG3_SETTINGS, Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.report import format_table

__all__ = [
    "ExperimentConfig",
    "FIG3_SETTINGS",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Table1Result",
    "format_table",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_table1",
    "run_training",
]
