"""The pluggable execution-backend interface.

Every master in :mod:`repro.core` drives the same protocol — broadcast
an operand, let each participating worker compute over its stored
shares, consume results in arrival order, stop once its recovery
threshold is met — but *where* the worker computation runs is a
deployment decision, not a protocol one. This module pins that seam
down as one small contract so the discrete-event simulator
(:class:`~repro.runtime.cluster.SimCluster`), the thread-pool backend
(:class:`~repro.runtime.threaded.ThreadedCluster`) and the
shared-memory process backend
(:class:`~repro.runtime.process.ProcessCluster`) are interchangeable
under any master.

The contract has three parts:

* :class:`RoundJob` — a declarative, *picklable* description of one
  round (which stored payload to use, which operand to broadcast).
  Declarative jobs are what let the process backend ship work across
  address spaces; in-process backends execute them directly via
  :func:`run_job_compute`.
* :class:`RoundHandle` — the in-flight round. Iterating it yields
  :class:`Arrival` records in arrival order (each carrying its own
  timestamp); calling :meth:`RoundHandle.cancel` tells the backend to
  stop waiting on outstanding workers — this is how masters get early
  stopping once enough verified results have landed. After iteration,
  :meth:`RoundHandle.result` returns the round's full
  :class:`RoundResult` for straggler accounting.

  **Multiple rounds may be in flight at once** (the session's
  pipelined scheduler dispatches round *i+1* before finalizing round
  *i*): each handle yields exactly its own round's arrivals, and
  concurrent rounds contend for the same fleet — the simulator queues
  each worker's compute behind its outstanding rounds (busy-time
  queues), the thread pool multiplexes its workers, the process pool
  demultiplexes the shared per-worker pipes by round id.
  ``cancel()`` is idempotent and safe before or after ``result()``.
* :class:`Backend` — the substrate itself: share distribution
  (:meth:`Backend.distribute`), round dispatch
  (:meth:`Backend.dispatch_round`), worker-pool mutation for dynamic
  re-coding (:meth:`Backend.drop_workers`), and a monotonic clock
  (``now`` / ``advance_to``). On the simulator the clock is virtual
  and master-side verify/decode costs advance it; on real backends the
  clock is the wall and ``advance_to`` only keeps the bookkeeping
  monotonic.
"""

from __future__ import annotations

import math
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.ff.linalg import ff_matmul, ff_matvec
from repro.runtime.costmodel import CostModel

__all__ = [
    "Arrival",
    "Backend",
    "MembershipEvent",
    "MembershipView",
    "RoundHandle",
    "RoundJob",
    "RoundResult",
    "WallClockBackend",
    "job_macs",
    "run_job_compute",
]


@dataclass(frozen=True)
class MembershipEvent:
    """One change in the fleet roster, stamped with the backend clock.

    ``kind`` is one of ``"dead"`` (socket error / heartbeat lapse),
    ``"dropped"`` (evicted by the dynamic-coding policy or a voluntary
    scale-down), ``"rejoined"`` (a known id re-admitted after a restart)
    or ``"joined"`` (a brand-new id extended the fleet).
    """

    kind: str
    worker_id: int
    t: float


@dataclass(frozen=True)
class MembershipView:
    """A point-in-time snapshot of the fleet roster.

    ``n`` is the total id space (``0..n-1``); ``live`` the connected
    workers, ``dead``/``dropped`` the involuntary/voluntary leavers and
    ``pending`` the handshaken joiners parked until the next
    between-rounds :meth:`Backend.admit_workers` call.
    """

    n: int
    live: tuple[int, ...]
    dead: tuple[int, ...]
    dropped: tuple[int, ...]
    pending: tuple[int, ...]

    @property
    def live_count(self) -> int:
        return len(self.live)


@dataclass(frozen=True)
class Arrival:
    """One worker result as seen by the master.

    ``t_arrival`` is in backend-clock seconds (virtual for the
    simulator, wall for real backends); ``math.inf`` marks a worker
    that never responded (silent, or cancelled before finishing).
    """

    worker_id: int
    value: Any
    t_arrival: float
    compute_time: float
    comm_time: float
    #: ground truth for traces/tests only — masters must never read it
    truly_byzantine: bool


@dataclass(frozen=True)
class RoundResult:
    """All arrivals of one round, ordered by arrival time."""

    t_start: float
    broadcast_time: float
    arrivals: tuple[Arrival, ...]

    def arrived(self) -> tuple[Arrival, ...]:
        """Only the workers that ever responded."""
        return tuple(a for a in self.arrivals if math.isfinite(a.t_arrival))


@dataclass(frozen=True)
class RoundJob:
    """Declarative description of one broadcast-compute-collect round.

    Three operations cover every master in the repo:

    * ``op="matvec"`` — each worker computes ``payload[payload_key] @
      operand`` over the field; the operand is broadcast. A 2-D operand
      ``(d, B)`` is a *batch* of ``B`` vectors coalesced into one round
      (the session layer's multi-job broadcast); the worker returns the
      stacked products ``(b, B)``.
    * ``op="matmul"`` — each worker multiplies two pre-shipped factors
      ``payload[payload_key] @ payload[rhs_key]``; nothing is
      broadcast (the round is a trigger).
    * ``op="gramian"`` — the degree-2 workload: with ``S =
      payload[payload_key]`` the worker returns ``concat(S @ operand,
      S.T @ (S @ operand))``. Batched operands stack the same way
      along a trailing axis.

    Jobs carry data, not closures, so any backend — including one in a
    different address space — can execute them.
    """

    op: str = "matvec"
    payload_key: str = "share"
    operand: np.ndarray | None = None
    rhs_key: str | None = None

    def __post_init__(self):
        if self.op not in ("matvec", "matmul", "gramian"):
            raise ValueError(f"unknown round op {self.op!r}")
        if self.op in ("matvec", "gramian"):
            if self.operand is None:
                raise ValueError(f"{self.op} jobs need an operand")
            if np.asarray(self.operand).ndim not in (1, 2):
                raise ValueError(
                    f"{self.op} operand must be a vector or a (len, batch) "
                    f"matrix, got shape {np.asarray(self.operand).shape}"
                )
        if self.op == "matmul" and self.rhs_key is None:
            raise ValueError("matmul jobs need an rhs_key")

    def broadcast_elements(self) -> int:
        """Field elements the master ships to each participant."""
        return int(self.operand.size) if self.operand is not None else 0

    def batch_width(self) -> int:
        """Number of coalesced jobs this round serves (columns of a
        2-D operand; 1 for the plain vector case)."""
        if self.operand is None or self.operand.ndim == 1:
            return 1
        return int(self.operand.shape[1])


def run_job_compute(
    field: PrimeField, payload: dict[str, Any], job: RoundJob
) -> np.ndarray:
    """Execute a job's honest computation over one worker's payload."""
    if job.op == "matvec":
        if job.operand.ndim == 2:
            return ff_matmul(field, payload[job.payload_key], job.operand)
        return ff_matvec(field, payload[job.payload_key], job.operand)
    if job.op == "gramian":
        share = payload[job.payload_key]
        if job.operand.ndim == 2:
            z = ff_matmul(field, share, job.operand)
            return np.concatenate([z, ff_matmul(field, share.T, z)], axis=0)
        z = ff_matvec(field, share, job.operand)
        return np.concatenate([z, ff_matvec(field, share.T, z)])
    return ff_matmul(field, payload[job.payload_key], payload[job.rhs_key])


def job_macs(payload: dict[str, Any], job: RoundJob) -> int:
    """Multiply-accumulate count of a job at one worker (drives the
    simulator's timing; real backends just measure)."""
    if job.op == "matvec":
        return int(np.asarray(payload[job.payload_key]).size) * job.batch_width()
    if job.op == "gramian":
        return 2 * int(np.asarray(payload[job.payload_key]).size) * job.batch_width()
    a = np.asarray(payload[job.payload_key])
    b = np.asarray(payload[job.rhs_key])
    return int(a.shape[0] * a.shape[1] * b.shape[1])


class RoundHandle(ABC):
    """An in-flight round.

    Attributes
    ----------
    t_start:
        Backend-clock time the round was dispatched.
    broadcast_time:
        Seconds charged/measured for the operand broadcast. The first
        arrival cannot precede ``t_start + broadcast_time``.
    """

    t_start: float = 0.0
    broadcast_time: float = 0.0

    @abstractmethod
    def __iter__(self) -> Iterator[Arrival]:
        """Yield finite arrivals in arrival order.

        On real backends this blocks until the next worker finishes;
        iteration ends when every (non-cancelled) participant has
        arrived or the round was cancelled.
        """

    @abstractmethod
    def cancel(self) -> None:
        """Stop waiting on outstanding workers.

        Masters call this the moment their recovery threshold is met;
        results still in flight are discarded and the corresponding
        workers appear in :meth:`result` with ``t_arrival = inf``.
        Idempotent.
        """

    @abstractmethod
    def result(self) -> RoundResult:
        """The round's complete accounting, available once iteration
        has finished (or the round was cancelled)."""


class Backend(ABC):
    """An execution substrate for coded-computing masters.

    Concrete backends expose ``field`` (the computation field),
    ``cost_model`` (timing constants; real backends keep one so
    master-side verify/decode accounting stays comparable across
    substrates) and ``workers`` (the fleet, id-addressable).
    """

    field: PrimeField
    cost_model: CostModel

    #: the session's :class:`~repro.obs.Observability` bundle when
    #: ``SessionConfig.observability`` is on, ``None`` otherwise.
    #: Backends call ``obs.on_dispatch(...)`` per round; the socket
    #: clusters additionally flag traced round frames so worker
    #: daemons ship their sub-spans back.
    obs: Any = None

    #: ``True`` when the session armed auditing
    #: (``SessionConfig.audit``): the socket clusters flag round
    #: frames so worker daemons countersign results with a digest of
    #: their computed share. Inert on the in-process backends.
    attest: bool = False

    #: whether arrival timestamps are exact (virtual clock) or wall
    #: clock. Masters use the paper's latency-ratio straggler detector
    #: only on exact-timing backends; on wall-clock backends OS
    #: scheduling jitter — especially on oversubscribed machines —
    #: would masquerade as straggling and goad the adaptive policy
    #: into shrinking the code, so they observe stragglers as the
    #: workers whose results the round never used instead.
    timing_is_exact: bool = False

    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def n(self) -> int:
        """Fleet size (worker ids are ``0..n-1``)."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Monotonic backend clock in seconds."""

    @abstractmethod
    def advance_to(self, t: float) -> None:
        """Account master-side work up to time ``t``.

        The simulator moves its virtual clock; real backends only
        raise their bookkeeping floor (wall time passes by itself).
        Never moves the clock backward.
        """

    # ------------------------------------------------------------------
    @abstractmethod
    def distribute(
        self, name: str, shares: np.ndarray, participants: Sequence[int] | None = None
    ) -> float:
        """Ship share ``i`` to participant ``i`` under payload key
        ``name``; returns the seconds charged/spent."""

    @abstractmethod
    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> RoundHandle:
        """Start one round on ``participants`` (default: all).

        Non-blocking, and re-entrant: several dispatched rounds may be
        open at once, each finalized through its own handle (workers
        serve overlapping rounds in dispatch order)."""

    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        """Remove workers from the pool (dynamic re-coding dropped
        them). Backends holding per-worker resources release them;
        the default is bookkeeping-free. Dropped ids must not appear
        in later ``participants``."""

    # ------------------------------------------------------------------
    # elastic membership (no-ops on fixed-fleet backends)
    # ------------------------------------------------------------------
    def membership(self) -> MembershipView:
        """The current fleet roster. Fixed-fleet backends report every
        worker live; elastic backends (the socket clusters) report
        dead/dropped workers and handshaken joiners awaiting
        admission."""
        ids = tuple(range(self.n))
        return MembershipView(n=self.n, live=ids, dead=(), dropped=(), pending=())

    def admit_workers(self) -> tuple[int, ...]:
        """Admit every pending joiner into the roster and return the
        admitted ids. Must only be called *between* rounds (the session
        calls it from ``end_iteration`` after draining the pipeline);
        elastic backends raise if rounds are in flight. The default is
        a no-op for backends without elastic membership."""
        return ()

    def take_membership_events(self) -> tuple[MembershipEvent, ...]:
        """Drain and return the membership-change events recorded since
        the last call (empty on fixed-fleet backends)."""
        return ()

    def close(self) -> None:
        """Release backend resources (pools, processes, shared memory)."""

    # ------------------------------------------------------------------
    def _participants(self, participants: Sequence[int] | None) -> list[int]:
        if participants is None:
            return list(range(self.n))
        out = list(participants)
        if len(set(out)) != len(out):
            raise ValueError("duplicate participant ids")
        for wid in out:
            if not 0 <= wid < self.n:
                raise ValueError(f"worker id {wid} out of range")
        return out

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class WallClockBackend(Backend):
    """Shared plumbing for backends that execute for real.

    Provides the wall clock (``now`` floored by ``advance_to`` so
    master-side accounting never runs backward), the dropped-worker
    bookkeeping behind :meth:`Backend.drop_workers`, and the
    never-arrived :class:`Arrival` constructor. Subclasses call
    :meth:`_init_wall_clock` from ``__init__``.
    """

    def _init_wall_clock(self) -> None:
        self._t0 = time.perf_counter()
        self._floor = 0.0
        self._dropped: set[int] = set()
        self._membership_events: list[MembershipEvent] = []
        self._membership_lock = threading.Lock()

    @property
    def now(self) -> float:
        return max(self._floor, time.perf_counter() - self._t0)

    def advance_to(self, t: float) -> None:
        self._floor = max(self._floor, t)

    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        for wid in worker_ids:
            if int(wid) not in self._dropped:
                self._note_membership("dropped", int(wid))
        self._dropped.update(int(w) for w in worker_ids)

    def _note_membership(self, kind: str, worker_id: int) -> None:
        """Record one roster change (safe from any thread — the socket
        backends call this from their pump/loop threads)."""
        event = MembershipEvent(kind=kind, worker_id=int(worker_id), t=self.now)
        with self._membership_lock:
            self._membership_events.append(event)

    def take_membership_events(self) -> tuple[MembershipEvent, ...]:
        with self._membership_lock:
            events = tuple(self._membership_events)
            self._membership_events.clear()
        return events

    def _check_not_dropped(self, participants: Sequence[int]) -> None:
        dead = self._dropped.intersection(participants)
        if dead:
            raise ValueError(f"workers {sorted(dead)} were dropped from the pool")

    @staticmethod
    def _missing_arrival(worker_id: int, truly_byzantine: bool) -> Arrival:
        """The record of a worker that never transmitted: silent,
        crashed, errored, or cancelled before finishing."""
        return Arrival(
            worker_id=worker_id,
            value=None,
            t_arrival=math.inf,
            compute_time=0.0,
            comm_time=0.0,
            truly_byzantine=truly_byzantine,
        )
