"""A simulated worker node.

A worker is: a mutable *payload* (the coded shares the master shipped
to it), a latency profile, and a (possibly Byzantine) behaviour. The
computation itself is **real** — the master hands the worker a compute
callable and the worker runs it over its actual payload arrays — only
the elapsed time is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.byzantine import Behavior, Honest
from repro.runtime.latency import DeterministicLatency, LatencyModel

__all__ = ["SimWorker"]


@dataclass
class SimWorker:
    """One simulated node.

    Attributes
    ----------
    worker_id:
        Stable integer id (position in the code's ``alpha`` points).
    profile:
        Latency model turning nominal compute time into sampled time.
    behavior:
        Honest / attack behaviour applied to every result it sends.
    payload:
        The worker's local storage (coded shares, keyed by name).
        ``None`` values are allowed while storage is being provisioned.
    """

    worker_id: int
    profile: LatencyModel = dc_field(default_factory=DeterministicLatency)
    behavior: Behavior = dc_field(default_factory=Honest)
    payload: dict[str, Any] = dc_field(default_factory=dict)

    def store(self, **items) -> None:
        """Install data shipped by the master (e.g. coded sub-matrices)."""
        self.payload.update(items)

    def payload_elements(self) -> int:
        """Total field elements stored — drives re-encoding transfer cost."""
        total = 0
        for v in self.payload.values():
            if isinstance(v, np.ndarray):
                total += v.size
        return total

    def execute(
        self,
        compute: Callable[[dict[str, Any]], np.ndarray],
        field: PrimeField,
        rng: np.random.Generator,
    ) -> np.ndarray | None:
        """Run ``compute`` over the local payload, then apply behaviour.

        Returns what the worker transmits (``None`` for silent nodes).
        """
        honest = compute(self.payload)
        return self.behavior.corrupt(honest, field, rng)

    def sample_time(self, base_time: float, rng: np.random.Generator) -> float:
        return self.profile.sample(base_time, rng)

    @property
    def is_byzantine(self) -> bool:
        return self.behavior.is_byzantine
