"""Byzantine worker behaviours.

The paper's threat model (Sec. III-A): compromised workers have root
access and "can send arbitrary results to the main server to sabotage
the computation". The evaluation uses two concrete attacks (Sec. V):

* **Reversed value attack** — send ``-c·z`` instead of ``z`` (``c = 1``
  in the experiments). Weak: the flipped values partially cancel and
  training still limps along.
* **Constant Byzantine attack** — send a constant vector of the right
  dimension. Strong: it drags the decoded gradient far off.

Behaviours receive the honest result and return what the worker
actually transmits; they are attached per-worker so experiments can
place attackers anywhere. ``SilentFailure`` models a crashed/hung node
(it never responds — indistinguishable from an infinite straggler,
which is exactly how the master must treat it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.ff.field import PrimeField

__all__ = [
    "Behavior",
    "Honest",
    "ReversedValueAttack",
    "ConstantAttack",
    "RandomAttack",
    "SilentFailure",
]


@runtime_checkable
class Behavior(Protocol):
    """Transforms an honest result into what the worker sends."""

    #: whether the behaviour corrupts results (ground truth for traces)
    is_byzantine: bool

    def corrupt(
        self, result: np.ndarray, field: PrimeField, rng: np.random.Generator
    ) -> np.ndarray | None:
        """Return the transmitted value (``None`` = never responds)."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class Honest:
    is_byzantine: bool = False

    def corrupt(self, result, field, rng):
        return result


@dataclass(frozen=True)
class ReversedValueAttack:
    """Send ``-c * z`` (paper Sec. V, ``c = 1``)."""

    c: int = 1
    is_byzantine: bool = True

    def __post_init__(self):
        if self.c <= 0:
            raise ValueError("c must be positive (the paper requires c > 0)")

    def corrupt(self, result, field, rng):
        return field.neg(field.mul(result, self.c))


@dataclass(frozen=True)
class ConstantAttack:
    """Send a constant vector with the dimension of the true result.

    The constant is interpreted as a *signed* value and embedded in the
    field, matching an attacker who writes a fixed pattern into the
    result buffer.
    """

    value: int = 1000
    is_byzantine: bool = True

    def corrupt(self, result, field, rng):
        return field.from_signed(np.full_like(np.asarray(result), self.value))


@dataclass(frozen=True)
class RandomAttack:
    """Send uniformly random field elements (worst-case garbage)."""

    is_byzantine: bool = True

    def corrupt(self, result, field, rng):
        return field.random(np.asarray(result).shape, rng)


@dataclass(frozen=True)
class SilentFailure:
    """Crash-stop: the worker never responds. Counted as a straggler,
    not a Byzantine node — it sends nothing to verify."""

    is_byzantine: bool = False

    def corrupt(self, result, field, rng):
        return None


@dataclass(frozen=True)
class IntermittentAttack:
    """Wraps another attack and fires it per-round with probability
    ``probability``; otherwise the worker behaves honestly that round.

    This models the paper's threat: workers "can be *dynamically*
    malicious ... at any given time, some of the worker nodes can send
    arbitrary results" (Sec. III-A). It is also what makes the
    under-provisioned LCC baseline degrade gracefully instead of never
    making progress: iterations where at most ``M`` attackers fire are
    decoded cleanly, the rest are poisoned.
    """

    inner: Behavior
    probability: float = 0.4
    is_byzantine: bool = True

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not self.inner.is_byzantine:
            raise ValueError("inner behaviour must be an attack")

    def corrupt(self, result, field, rng):
        if rng.random() < self.probability:
            return self.inner.corrupt(result, field, rng)
        return result
