"""A minimal discrete-event kernel.

A binary-heap priority queue of ``(time, seq, payload)`` entries with a
monotonic sequence number for stable FIFO ordering of simultaneous
events. The cluster uses it to deliver worker arrivals in time order;
it is deliberately tiny and fully tested so higher layers can trust the
ordering semantics.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event queue with stable tie-breaking."""

    def __init__(self):
        self._heap: list[tuple[float, int, Any]] = []
        self._seq = 0

    def push(self, time: float, payload: Any) -> None:
        """Schedule ``payload`` at absolute ``time``.

        ``math.inf`` is allowed (events that never fire — silent
        workers) and will sort last; NaN is rejected because it breaks
        heap ordering silently.
        """
        t = float(time)
        if math.isnan(t):
            raise ValueError("event time cannot be NaN")
        heapq.heappush(self._heap, (t, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        t, _, payload = heapq.heappop(self._heap)
        return t, payload

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[tuple[float, Any]]:
        """Yield all events in time order, consuming the queue."""
        while self._heap:
            yield self.pop()
