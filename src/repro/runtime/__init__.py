"""Execution backends for the coded-computing masters.

This package substitutes for the paper's physical testbed (13 Minnow
nodes on DCOMP, Sec. V). The protocol code paths — encoding, worker
compute, per-worker verification, decoding, dynamic re-coding — run for
real over real field arithmetic on every backend; only *where* (and
whether) time is simulated differs. All backends implement the same
:class:`Backend` protocol, so any master runs on any of them:

``SimCluster``
    Discrete-event simulator with a calibrated :class:`CostModel` and
    per-worker latency profiles: deterministic, used by the paper
    reproductions (straggler tails, Byzantine injection, verification
    and re-encoding costs all measured on a virtual clock).
``ThreadedCluster``
    Real thread-pool execution with injected straggler sleeps; NumPy
    releases the GIL so worker kernels overlap. Real early stopping.
``ProcessCluster``
    One OS process per worker with shared-memory operand broadcast —
    worker compute escapes the GIL entirely.
``TcpCluster``
    Remote worker daemons over real sockets: a framed binary wire
    protocol with zero-copy numpy payloads, heartbeat-based
    dead-worker detection (a vanished worker surfaces as a straggler,
    never a hang), and per-round collect timeouts. The deployment
    model of the paper's testbed — workers may live on other hosts
    (``python -m repro.runtime.net.worker``).

Layout
------
``backend``     the Backend/RoundJob/RoundHandle protocol
``events``      minimal event-queue kernel
``costmodel``   seconds-per-MAC / bandwidth / RTT constants
``latency``     worker speed profiles (deterministic, shifted-exp, ...)
``byzantine``   attack behaviours (reverse-value, constant, ...)
``worker``      a worker description = payload + profile + behaviour
``cluster``     the discrete-event backend
``threaded``    the thread-pool backend
``process``     the shared-memory multiprocessing backend
``net``         the TCP socket backend (wire protocol, daemons, fleets)
``trace``       per-round/per-iteration timing records (drives Fig. 4/5)
"""

from repro.runtime.backend import (
    Arrival,
    Backend,
    RoundHandle,
    RoundJob,
    RoundResult,
    WallClockBackend,
)
from repro.runtime.byzantine import (
    Behavior,
    ConstantAttack,
    Honest,
    IntermittentAttack,
    RandomAttack,
    ReversedValueAttack,
    SilentFailure,
)
from repro.runtime.cluster import SimCluster
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventQueue
from repro.runtime.latency import (
    DeterministicLatency,
    GaussianJitterLatency,
    LatencyModel,
    ShiftedExponentialLatency,
    TraceLatency,
    make_profiles,
)
from repro.runtime.net import AsyncTcpCluster, NetTunables, TcpCluster
from repro.runtime.process import ProcessCluster
from repro.runtime.threaded import ThreadedCluster
from repro.runtime.trace import IterationRecord, RoundRecord, TraceRecorder
from repro.runtime.worker import SimWorker

__all__ = [
    "Arrival",
    "AsyncTcpCluster",
    "Backend",
    "Behavior",
    "ConstantAttack",
    "CostModel",
    "DeterministicLatency",
    "EventQueue",
    "GaussianJitterLatency",
    "Honest",
    "IntermittentAttack",
    "IterationRecord",
    "LatencyModel",
    "NetTunables",
    "ProcessCluster",
    "RandomAttack",
    "ReversedValueAttack",
    "RoundHandle",
    "RoundJob",
    "RoundRecord",
    "RoundResult",
    "ShiftedExponentialLatency",
    "TraceLatency",
    "SilentFailure",
    "SimCluster",
    "SimWorker",
    "TcpCluster",
    "ThreadedCluster",
    "TraceRecorder",
    "WallClockBackend",
    "make_profiles",
]
