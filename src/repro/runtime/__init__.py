"""Discrete-event master/worker cluster simulator.

This package substitutes for the paper's physical testbed (13 Minnow
nodes on DCOMP, Sec. V). The protocol code paths — encoding, worker
compute, per-worker verification, decoding, dynamic re-coding — run for
real over real field arithmetic; only *time* is simulated, through a
calibrated :class:`CostModel` plus per-worker latency profiles. That
preserves every phenomenon the evaluation measures (straggler tail
latency, Byzantine injection, verification/decode overhead,
re-encoding transfer costs) while making runs deterministic.

Layout
------
``events``      minimal event-queue kernel
``costmodel``   seconds-per-MAC / bandwidth / RTT constants
``latency``     worker speed profiles (deterministic, shifted-exp, ...)
``byzantine``   attack behaviours (reverse-value, constant, ...)
``worker``      a simulated worker = payload + profile + behaviour
``cluster``     the master-side round executor
``trace``       per-round/per-iteration timing records (drives Fig. 4/5)
``threaded``    optional real thread-pool backend for live demos
"""

from repro.runtime.byzantine import (
    Behavior,
    ConstantAttack,
    Honest,
    IntermittentAttack,
    RandomAttack,
    ReversedValueAttack,
    SilentFailure,
)
from repro.runtime.cluster import Arrival, RoundResult, SimCluster
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventQueue
from repro.runtime.latency import (
    DeterministicLatency,
    GaussianJitterLatency,
    LatencyModel,
    ShiftedExponentialLatency,
    make_profiles,
)
from repro.runtime.trace import IterationRecord, RoundRecord, TraceRecorder
from repro.runtime.worker import SimWorker

__all__ = [
    "Arrival",
    "Behavior",
    "ConstantAttack",
    "CostModel",
    "DeterministicLatency",
    "EventQueue",
    "GaussianJitterLatency",
    "Honest",
    "IntermittentAttack",
    "IterationRecord",
    "LatencyModel",
    "RandomAttack",
    "ReversedValueAttack",
    "RoundRecord",
    "RoundResult",
    "ShiftedExponentialLatency",
    "SilentFailure",
    "SimCluster",
    "SimWorker",
    "TraceRecorder",
    "make_profiles",
]
