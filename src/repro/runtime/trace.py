"""Execution traces: the raw material for Fig. 4 and Fig. 5.

Masters record one :class:`RoundRecord` per protocol round and one
:class:`IterationRecord` per training iteration. The recorder
aggregates them into the paper's four per-iteration cost categories
(Sec. VI, "Per Iteration Cost"):

* **compute** — worst-case worker latency the master actually waited on;
* **communication** — broadcast + result upload time on the critical path;
* **verification** — master-side Freivalds checks (AVCC only);
* **decoding** — master-side interpolation / error correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["RoundRecord", "IterationRecord", "TraceRecorder"]


@dataclass(frozen=True)
class RoundRecord:
    """Timing breakdown of one broadcast-compute-collect round."""

    iteration: int
    round_name: str
    t_start: float
    t_end: float
    compute_wait: float        # time from broadcast-done to last used arrival
    comm_time: float           # broadcast + critical-path upload
    verify_time: float         # master verification work
    decode_time: float         # master decoding work
    n_collected: int           # arrivals the master consumed
    n_verified: int            # arrivals that passed verification
    n_rejected: int            # arrivals that failed verification
    rejected_workers: tuple[int, ...] = ()
    used_workers: tuple[int, ...] = ()
    #: (worker_id, broadcast-done -> arrival latency) for every worker
    #: that responded — the per-worker slowdown observation the serving
    #: layer's trace recorder dumps back into replayable profiles
    worker_latencies: tuple[tuple[int, float], ...] = ()

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class IterationRecord:
    """One training iteration (possibly several rounds) plus any
    adaptation events that followed it."""

    iteration: int
    t_start: float
    t_end: float
    rounds: tuple[RoundRecord, ...]
    reencode_time: float = 0.0     # dynamic-coding re-distribution cost
    scheme: tuple[int, int] = (0, 0)   # (N_t, K_t) in effect

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def breakdown(self) -> dict[str, float]:
        out = {"compute": 0.0, "communication": 0.0, "verification": 0.0, "decoding": 0.0}
        for r in self.rounds:
            out["compute"] += r.compute_wait
            out["communication"] += r.comm_time
            out["verification"] += r.verify_time
            out["decoding"] += r.decode_time
        return out


class TraceRecorder:
    """Accumulates iteration records and aggregates paper-style stats."""

    def __init__(self):
        self.iterations: list[IterationRecord] = []

    def add(self, record: IterationRecord) -> None:
        self.iterations.append(record)

    # ------------------------------------------------------------------
    def total_time(self) -> float:
        if not self.iterations:
            return 0.0
        return self.iterations[-1].t_end - self.iterations[0].t_start

    def cumulative_times(self) -> list[float]:
        """End time of each iteration (Fig. 5's x-axis)."""
        return [it.t_end for it in self.iterations]

    def mean_breakdown(self) -> dict[str, float]:
        """Average per-iteration cost split (Fig. 4's bars)."""
        agg = {"compute": 0.0, "communication": 0.0, "verification": 0.0, "decoding": 0.0}
        if not self.iterations:
            return agg
        for it in self.iterations:
            for k, v in it.breakdown().items():
                agg[k] += v
        return {k: v / len(self.iterations) for k, v in agg.items()}

    def total_reencode_time(self) -> float:
        return sum(it.reencode_time for it in self.iterations)

    def rejected_by_iteration(self) -> list[set[int]]:
        return [
            set(w for r in it.rounds for w in r.rejected_workers)
            for it in self.iterations
        ]

    def schemes(self) -> list[tuple[int, int]]:
        """(N_t, K_t) trajectory — shows dynamic-coding decisions."""
        return [it.scheme for it in self.iterations]

    @staticmethod
    def merge_rounds(
        iteration: int, rounds: Iterable[RoundRecord], reencode_time: float = 0.0,
        scheme: tuple[int, int] = (0, 0),
    ) -> IterationRecord:
        rounds = tuple(rounds)
        if not rounds:
            raise ValueError("an iteration needs at least one round")
        return IterationRecord(
            iteration=iteration,
            t_start=rounds[0].t_start,
            t_end=rounds[-1].t_end + reencode_time,
            rounds=rounds,
            reencode_time=reencode_time,
            scheme=scheme,
        )
