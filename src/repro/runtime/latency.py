"""Worker latency profiles.

The paper attributes straggling to "heterogeneity in server hardware,
resource contention across shared virtual instances, IO delays, or even
hardware faults" with slowdowns "up to an order of magnitude" (Sec. I).
We model a worker's completion time as::

    time = profile.sample(base_time, rng)

where ``base_time`` is the nominal compute time from the cost model.
Profiles compose a multiplicative slowdown with an optional stochastic
tail; the experiment configs use heterogeneous straggler factors (one
heavy ~8x, one mild ~1.4x) so that "the faster of the two stragglers"
(Fig. 3a discussion) is meaningfully faster than the slower one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "LatencyModel",
    "DeterministicLatency",
    "ShiftedExponentialLatency",
    "GaussianJitterLatency",
    "TraceLatency",
    "make_profiles",
]


@runtime_checkable
class LatencyModel(Protocol):
    """Anything that can turn a nominal compute time into a sampled one."""

    def sample(self, base_time: float, rng: np.random.Generator) -> float:
        """Return the simulated completion time (>= 0)."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class DeterministicLatency:
    """Pure multiplicative slowdown — the workhorse of the experiments
    because it keeps every figure bit-reproducible.

    ``factor = 1.0`` is a nominal worker; ``factor = 8.0`` a straggler
    roughly "an order of magnitude" slower.
    """

    factor: float = 1.0

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError("factor must be positive")

    def sample(self, base_time: float, rng: np.random.Generator) -> float:
        return base_time * self.factor


@dataclass(frozen=True)
class ShiftedExponentialLatency:
    """The classic coded-computing straggler model: a deterministic
    service floor plus an exponential tail,
    ``T = factor * base * (1 + Exp(rate))``.

    ``rate`` is the tail rate in units of 1/base-time: larger rate =>
    lighter tail.
    """

    factor: float = 1.0
    rate: float = 10.0

    def __post_init__(self):
        if self.factor <= 0 or self.rate <= 0:
            raise ValueError("factor and rate must be positive")

    def sample(self, base_time: float, rng: np.random.Generator) -> float:
        return self.factor * base_time * (1.0 + rng.exponential(1.0 / self.rate))


@dataclass(frozen=True)
class GaussianJitterLatency:
    """Multiplicative slowdown with truncated Gaussian jitter
    (models OS noise on an otherwise healthy node)."""

    factor: float = 1.0
    sigma: float = 0.05

    def __post_init__(self):
        if self.factor <= 0 or self.sigma < 0:
            raise ValueError("factor must be positive and sigma non-negative")

    def sample(self, base_time: float, rng: np.random.Generator) -> float:
        jitter = max(0.0, 1.0 + rng.normal(0.0, self.sigma))
        return base_time * self.factor * jitter


class TraceLatency:
    """Replay a recorded slowdown trace, wrapping around at the end.

    ``samples`` are multiplicative slowdown factors (1.0 = nominal),
    typically captured from a real deployment's per-round slowdowns.
    Each :meth:`sample` call consumes the next factor in order, so a
    worker's latency follows the trace exactly; when the trace runs
    out it wraps back to the start. ``start`` offsets the replay
    (decorrelating workers that share one recorded trace), which keeps
    the profile fully seedable: the same ``(samples, start)`` replays
    the same sequence regardless of the rng.

    The serving layer reuses the same wrap-around replay for arrival
    traces (:class:`repro.serve.workload.TraceArrivals` scales a base
    interarrival gap by the next trace factor).
    """

    def __init__(self, samples: Sequence[float], start: int = 0):
        samples = tuple(float(s) for s in samples)
        if not samples:
            raise ValueError("trace needs at least one sample")
        if any(s <= 0 for s in samples):
            raise ValueError("trace samples must be positive slowdown factors")
        if start < 0:
            raise ValueError("start offset must be non-negative")
        self.samples = samples
        self.start = start
        self._cursor = 0

    def sample(self, base_time: float, rng: np.random.Generator) -> float:
        factor = self.samples[(self.start + self._cursor) % len(self.samples)]
        self._cursor += 1
        return base_time * factor

    def reset(self) -> None:
        """Rewind the replay to its ``start`` offset."""
        self._cursor = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceLatency({len(self.samples)} samples, start={self.start})"


def make_profiles(
    n: int,
    straggler_factors: dict[int, float] | None = None,
    default_factor: float = 1.0,
    jitter_sigma: float = 0.0,
) -> list[LatencyModel]:
    """Build ``n`` profiles, overriding specific workers as stragglers.

    Parameters
    ----------
    n:
        Number of workers.
    straggler_factors:
        Map ``worker_id -> slowdown factor``.
    default_factor:
        Factor for everyone else.
    jitter_sigma:
        If positive, all profiles get Gaussian jitter of this sigma.
    """
    straggler_factors = straggler_factors or {}
    for wid in straggler_factors:
        if not 0 <= wid < n:
            raise ValueError(f"straggler id {wid} out of range for n={n}")
    out: list[LatencyModel] = []
    for i in range(n):
        factor = straggler_factors.get(i, default_factor)
        if jitter_sigma > 0:
            out.append(GaussianJitterLatency(factor=factor, sigma=jitter_sigma))
        else:
            out.append(DeterministicLatency(factor=factor))
    return out
