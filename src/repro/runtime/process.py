"""Shared-memory multiprocessing execution backend.

The third :class:`~repro.runtime.backend.Backend`: every worker is a
real OS process, so worker computations escape the GIL entirely — this
is the backend that shows genuine multi-core scaling for the coded
matvec/matmul workloads.

Data movement mirrors the paper's testbed:

* **Shares** are shipped once per (re-)encoding over each worker's
  pipe and live in the worker process's private memory — exactly the
  "storage" phase of the protocol.
* **Operands** are broadcast once per round through POSIX shared
  memory (:class:`multiprocessing.shared_memory.SharedMemory`): the
  master writes the vector once and every worker maps the same pages,
  so broadcast cost does not scale with the fleet size.
* **Results** return over the per-worker pipe; the master consumes
  them in true arrival order via :func:`multiprocessing.connection.wait`.
  Each worker serves its pipe FIFO, so several rounds can be in
  flight at once: replies are received centrally and routed by round
  id to the owning handle (:meth:`ProcessCluster._pump`) — the
  pipelined scheduler's multi-round dispatch never loses a message to
  the wrong handle.

Early stopping: workers cannot be interrupted mid-computation from
outside, so ``cancel`` makes the *master* stop waiting — outstanding
workers report into their pipe whenever they finish and those stale
results are dropped (and their shared-memory segments reclaimed) the
next time the pipes are pumped. A cancelled round therefore never
blocks on a straggler's sleep.

Fault containment: a worker whose computation raises reports the
error and is recorded as never having arrived; a worker whose
*process* dies (OOM, kill) is detected by the broken pipe, marked
dead, and treated as permanently silent from then on — later rounds
degrade instead of crashing the master. If every worker in a round
fails, the round raises, since that means the job, not the fleet, is
broken.

Worker processes apply the same latency/Byzantine model as the other
backends: the deterministic straggler factor becomes a real
``time.sleep`` and the behaviour corrupts the honest result before it
is "transmitted" (pickled into the pipe).
"""

from __future__ import annotations

import math
import multiprocessing
import time
from multiprocessing.connection import Connection, wait as connection_wait
from multiprocessing.shared_memory import SharedMemory
from typing import Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.backend import (
    Arrival,
    RoundHandle,
    RoundJob,
    RoundResult,
    WallClockBackend,
    run_job_compute,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.worker import SimWorker

__all__ = ["ProcessCluster", "ProcessRoundHandle"]


def _worker_main(
    conn: Connection,
    worker_id: int,
    q_modulus: int,
    behavior,
    factor: float,
    straggle_scale: float,
) -> None:
    """Child-process main loop: store shares, serve rounds, stop."""
    field = PrimeField(q_modulus)
    rng = np.random.default_rng(worker_id)
    payload: dict[str, np.ndarray] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "store":
            _, name, arr = msg
            payload[name] = arr
        elif kind == "round":
            _, rid, op, payload_key, rhs_key, shm_name, shape, dtype_str = msg
            value, err, t_c0 = None, None, time.perf_counter()
            try:
                operand = None
                if shm_name is not None:
                    shm = SharedMemory(name=shm_name)
                    try:
                        operand = np.ndarray(
                            shape, dtype=np.dtype(dtype_str), buffer=shm.buf
                        ).copy()
                    finally:
                        shm.close()
                job = RoundJob(
                    op=op, payload_key=payload_key, operand=operand, rhs_key=rhs_key
                )
                if factor > 1.0:
                    time.sleep((factor - 1.0) * straggle_scale)
                t_c0 = time.perf_counter()
                honest = run_job_compute(field, payload, job)
                value = behavior.corrupt(honest, field, rng)
            except Exception as exc:  # crash-stop: report, stay alive
                value, err = None, repr(exc)
            done = time.perf_counter()
            try:
                # perf_counter is CLOCK_MONOTONIC: system-wide on the
                # POSIX platforms this backend targets, so the child's
                # completion stamp is directly comparable to the
                # master's clock (no pipe/verify latency baked in)
                conn.send(("result", rid, value, done - t_c0, done, err))
            except (BrokenPipeError, OSError):
                break
        elif kind == "stop":
            break
    conn.close()


class ProcessRoundHandle(RoundHandle):
    """One in-flight multi-process round.

    Several rounds may be in flight at once (the pipelined scheduler),
    and every worker pipe carries replies for *all* of them in FIFO
    order — so replies are received centrally by the cluster's pump
    (:meth:`ProcessCluster._pump`) and routed by round id to the right
    handle's inbox. Iterating a handle drains its inbox, pumping the
    pipes whenever the inbox runs dry, and yields results in true
    arrival order. Replies for rounds that are no longer registered
    (cancelled) are dropped after shared-memory bookkeeping.
    """

    def __init__(self, cluster: "ProcessCluster", rid: int, participants: list[int]):
        self._cluster = cluster
        self._rid = rid
        self._participants = participants
        self._received: dict[int, Arrival] = {}
        self._inbox: list[Arrival] = []  # finite arrivals not yet yielded
        #: worker_id -> error reported by its computation (repr string)
        self.worker_errors: dict[int, str] = {}
        self._cancelled = False
        self.t_start = cluster.now
        self.broadcast_time = cluster._last_broadcast_time
        # workers already known dead never got the job: record them now
        self._outstanding = set()
        for wid in participants:
            if wid in cluster._dead:
                self._received[wid] = self._missing(wid)
            else:
                self._outstanding.add(wid)
        cluster._handles[rid] = self

    # ------------------------------------------------------------------
    # delivery callbacks (invoked by the cluster's pump)
    # ------------------------------------------------------------------
    def _deliver(self, wid: int, value, ct: float, done_pc: float, err) -> None:
        """A reply for this round landed; record it and queue finite
        results for iteration."""
        if wid not in self._outstanding:
            return
        self._outstanding.discard(wid)
        if err is not None:
            self.worker_errors[wid] = err
        if value is None:
            self._received[wid] = self._missing(wid)
            return
        a = Arrival(
            worker_id=wid,
            value=value,
            t_arrival=max(
                done_pc - self._cluster._t0,
                self.t_start + self.broadcast_time,
            ),
            compute_time=ct,
            comm_time=0.0,
            truly_byzantine=self._cluster.workers[wid].is_byzantine,
        )
        self._received[wid] = a
        self._inbox.append(a)

    def _worker_died(self, wid: int) -> None:
        if wid in self._outstanding:
            self._outstanding.discard(wid)
            self._received[wid] = self._missing(wid)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Arrival]:
        cluster = self._cluster
        any_finite = False
        while not self._cancelled:
            if self._inbox:
                any_finite = True
                yield self._inbox.pop(0)
                continue
            if not self._outstanding:
                break
            cluster._pump(self._outstanding)
        if (
            not self._cancelled
            and not any_finite
            and not self._inbox
            and len(self.worker_errors) == len(self._participants)
        ):
            # every worker failed: a malformed job, not node failures.
            # Deregister first — this raise may propagate out of a
            # blocking caller that never reaches cancel()/result(),
            # and a zombie registration would leak in the cluster.
            self._cluster._handles.pop(self._rid, None)
            wid, err = next(iter(self.worker_errors.items()))
            raise RuntimeError(
                f"all {len(self._participants)} workers failed this round "
                f"(first error, worker {wid}: {err})"
            )

    def _missing(self, wid: int) -> Arrival:
        return self._cluster._missing_arrival(
            wid, self._cluster.workers[wid].is_byzantine
        )

    def cancel(self) -> None:
        """Stop waiting; late replies are dropped (after shared-memory
        bookkeeping) whenever the cluster next pumps the pipes.
        Idempotent, and safe after :meth:`result`."""
        self._cancelled = True
        self._cluster._handles.pop(self._rid, None)

    def result(self) -> RoundResult:
        for wid in self._outstanding:
            self._received.setdefault(wid, self._missing(wid))
        self._cluster._handles.pop(self._rid, None)
        ordered = sorted(self._received.values(), key=lambda a: a.t_arrival)
        return RoundResult(
            t_start=self.t_start,
            broadcast_time=self.broadcast_time,
            arrivals=tuple(ordered),
        )


class ProcessCluster(WallClockBackend):
    """Process-pool backend with shared-memory operand broadcast.

    Parameters mirror :class:`~repro.runtime.threaded.ThreadedCluster`;
    worker behaviours and straggler factors are shipped to the child
    processes at spawn time, so the same fleet description runs on
    every backend.
    """

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        rng: np.random.Generator | None = None,
        straggle_scale: float = 0.05,
        cost_model: CostModel | None = None,
    ):
        ids = [w.worker_id for w in workers]
        if sorted(ids) != list(range(len(workers))):
            raise ValueError("worker ids must be exactly 0..n-1")
        self.field = field
        self.workers = list(sorted(workers, key=lambda w: w.worker_id))
        self.rng = rng or np.random.default_rng(0)
        self.straggle_scale = straggle_scale
        self.cost_model = cost_model or CostModel()
        self._init_wall_clock()
        self._rid = 0
        self._last_broadcast_time = 0.0
        #: rid -> [SharedMemory, set of workers that have not replied]
        self._pending_shm: dict[int, list] = {}
        #: workers whose process crashed — permanently silent
        self._dead: set[int] = set()
        #: rid -> live (registered) round handle; replies are routed
        #: here so concurrent in-flight rounds never steal each other's
        #: messages off the shared per-worker pipes
        self._handles: dict[int, ProcessRoundHandle] = {}

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        # Start the shared-memory resource tracker *before* forking, so
        # all children inherit it; otherwise every child lazily spawns
        # its own tracker on first attach and warns at shutdown about
        # segments the master already unlinked.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is best-effort
            pass
        self._conns: dict[int, Connection] = {}
        self._procs: dict[int, multiprocessing.Process] = {}
        for w in self.workers:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    w.worker_id,
                    field.q,
                    w.behavior,
                    float(getattr(w.profile, "factor", 1.0)),
                    straggle_scale,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns[w.worker_id] = parent_conn
            self._procs[w.worker_id] = proc

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    def _note_reply(self, rid: int, wid: int) -> None:
        """A worker answered round ``rid``; free its shared-memory
        segment once every participant has replied."""
        entry = self._pending_shm.get(rid)
        if entry is None:
            return
        shm, waiting = entry
        waiting.discard(wid)
        if not waiting:
            shm.close()
            shm.unlink()
            del self._pending_shm[rid]

    def _mark_dead(self, wid: int) -> None:
        """A worker process crashed: reclaim its resources and treat
        it as permanently silent (rounds keep running without it)."""
        if wid in self._dead:
            return
        self._dead.add(wid)
        for entry in self._pending_shm.values():
            entry[1].discard(wid)
        for handle in list(self._handles.values()):
            handle._worker_died(wid)
        self._gc_pending_shm()
        self._reap_worker(wid)

    def _pump(self, want: Sequence[int]) -> None:
        """Receive one batch of worker replies and route each to the
        handle that owns its round id.

        ``want`` names the workers the caller is blocked on; their
        pipes are the wait set. A worker's pipe carries its replies in
        round-dispatch order, so a reply that surfaces here may belong
        to an *earlier* in-flight round — it is delivered to that
        round's handle (or dropped, after shared-memory bookkeeping,
        if its round was cancelled/finalized).
        """
        conns = {self._conns[wid]: wid for wid in want if wid not in self._dead}
        if not conns:
            return
        for conn in connection_wait(list(conns)):
            wid = conns[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):  # worker process died
                self._mark_dead(wid)
                continue
            _, rid, value, ct, done_pc, err = msg
            self._note_reply(rid, wid)
            target = self._handles.get(rid)
            if target is not None:
                target._deliver(wid, value, ct, done_pc, err)

    # ------------------------------------------------------------------
    def distribute(self, name: str, shares: np.ndarray, participants=None) -> float:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        if len(participants) > shares.shape[0]:
            raise ValueError("fewer shares than participants")
        t0 = time.perf_counter()
        for slot, wid in enumerate(participants):
            if wid in self._dead:
                continue  # permanently silent; shares would be lost
            try:
                self._conns[wid].send(("store", name, np.asarray(shares[slot])))
            except (BrokenPipeError, OSError):
                self._mark_dead(wid)
        return time.perf_counter() - t0

    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> ProcessRoundHandle:
        participants = self._participants(participants)
        self._check_not_dropped(participants)
        if self.obs is not None:
            self.obs.on_dispatch("process", job, len(participants))
        self._rid += 1
        rid = self._rid
        live = [wid for wid in participants if wid not in self._dead]

        t_b0 = time.perf_counter()
        shm_name, shape, dtype_str = None, None, None
        if job.operand is not None and live:
            operand = np.ascontiguousarray(job.operand)
            shm = SharedMemory(create=True, size=max(1, operand.nbytes))
            np.ndarray(operand.shape, dtype=operand.dtype, buffer=shm.buf)[...] = operand
            shm_name, shape, dtype_str = shm.name, operand.shape, operand.dtype.str
            self._pending_shm[rid] = [shm, set(live)]
        for wid in live:
            try:
                self._conns[wid].send(
                    ("round", rid, job.op, job.payload_key, job.rhs_key,
                     shm_name, shape, dtype_str)
                )
            except (BrokenPipeError, OSError):
                self._mark_dead(wid)
        self._last_broadcast_time = time.perf_counter() - t_b0
        return ProcessRoundHandle(self, rid, participants)

    # ------------------------------------------------------------------
    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        """Terminate the dropped workers' processes and reclaim their
        pipes — the dynamic-coding path releases real resources here."""
        fresh = [int(w) for w in worker_ids if int(w) not in self._dropped]
        super().drop_workers(fresh)
        for wid in fresh:
            for entry in self._pending_shm.values():
                entry[1].discard(wid)
            if wid not in self._dead:
                self._stop_worker(wid)
        self._gc_pending_shm()

    def _gc_pending_shm(self) -> None:
        for rid in [r for r, (_, waiting) in self._pending_shm.items() if not waiting]:
            shm, _ = self._pending_shm.pop(rid)
            shm.close()
            shm.unlink()

    def _stop_worker(self, wid: int) -> None:
        conn = self._conns.get(wid)
        if conn is not None:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        self._reap_worker(wid)

    def _reap_worker(self, wid: int, timeout: float = 0.2) -> None:
        proc = self._procs.get(wid)
        if proc is not None:
            proc.join(timeout)
            if proc.is_alive():  # stuck in a straggler sleep: kill it
                proc.terminate()
                proc.join(timeout)
        conn = self._conns.get(wid)
        if conn is not None:
            conn.close()

    def close(self) -> None:
        for wid in list(self._procs):
            if wid not in self._dropped and wid not in self._dead:
                self._stop_worker(wid)
        for shm, _ in self._pending_shm.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._pending_shm.clear()
