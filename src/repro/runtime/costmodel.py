"""Timing constants for the simulated cluster.

Calibrated to the paper's testbed regime (Sec. V): quad-core Intel
Atom-class workers, 1 GbE links, a trusted main server of the same
class. Only *relative* magnitudes matter for reproducing the figures'
shapes (compute ≫ verification per check; communication comparable to
compute for GISETTE-sized blocks; straggler latency dominating
everything), but the defaults are chosen so absolute numbers land in
the same tens-of-seconds-per-50-iterations ballpark as the paper.

All methods return simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Deterministic cost model shared by master and workers.

    Attributes
    ----------
    worker_sec_per_mac:
        Seconds per multiply-accumulate on a (non-straggling) worker.
        ~3 ns ≈ an Atom core doing int64 MACs without SIMD heroics.
    master_sec_per_mac:
        Master-side rate for verification and decoding arithmetic.
    bytes_per_element:
        Wire size of one field element (int64 on the testbed).
    bandwidth_bytes_per_s:
        Link bandwidth; 1 GbE ≈ 125 MB/s.
    link_latency_s:
        One-way message latency (per message, not per element).
    """

    worker_sec_per_mac: float = 3.0e-9
    master_sec_per_mac: float = 3.0e-9
    bytes_per_element: int = 8
    bandwidth_bytes_per_s: float = 125.0e6
    link_latency_s: float = 0.5e-3

    def __post_init__(self):
        if min(
            self.worker_sec_per_mac,
            self.master_sec_per_mac,
            self.bandwidth_bytes_per_s,
        ) <= 0:
            raise ValueError("rates must be positive")
        if self.link_latency_s < 0 or self.bytes_per_element <= 0:
            raise ValueError("invalid latency or element size")

    # ------------------------------------------------------------------
    def worker_compute_time(self, macs: int, speed_factor: float = 1.0) -> float:
        """Base compute time of ``macs`` multiply-accumulates at a worker
        running at ``1/speed_factor`` of nominal speed."""
        if macs < 0:
            raise ValueError("macs must be non-negative")
        if speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        return macs * self.worker_sec_per_mac * speed_factor

    def master_compute_time(self, macs: int) -> float:
        if macs < 0:
            raise ValueError("macs must be non-negative")
        return macs * self.master_sec_per_mac

    def transfer_time(self, n_elements: int) -> float:
        """One message of ``n_elements`` field elements over one link."""
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        return self.link_latency_s + (
            n_elements * self.bytes_per_element / self.bandwidth_bytes_per_s
        )
