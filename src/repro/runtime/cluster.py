"""The discrete-event execution backend (master-side round executor).

One *round* = broadcast an operand, let every participating worker
compute over its stored shares, collect results in arrival order. The
masters in :mod:`repro.core` consume the ordered arrival stream and add
their own verification/decoding costs on top.

Timing of worker ``i`` for a round starting at ``t0``::

    t_arrival_i = t0 + transfer(broadcast)            # master -> worker
                 + profile_i(macs_i * sec_per_mac)    # local compute
                 + transfer(result_i)                 # worker -> master

Silent workers never arrive (``t = inf``). Results of Byzantine
workers are corrupted *before* transmission — the master sees only the
transmitted bytes, exactly like the real system.

:class:`SimCluster` implements the :class:`~repro.runtime.backend.Backend`
protocol, so any master runs on it interchangeably with the real
thread-pool and process backends. Because the simulator computes every
arrival up front, cancellation is free and the full arrival schedule
(including workers the master never waited for) stays observable —
which is what the straggler detector uses.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.backend import (
    Arrival,
    Backend,
    RoundHandle,
    RoundJob,
    RoundResult,
    job_macs,
    run_job_compute,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventQueue
from repro.runtime.worker import SimWorker

__all__ = ["Arrival", "RoundResult", "SimCluster", "SimRoundHandle"]


class SimRoundHandle(RoundHandle):
    """A completed simulated round wrapped in the in-flight interface.

    The simulator resolves all arrivals at dispatch time, so iteration
    never blocks and :meth:`cancel` is pure bookkeeping — the master
    simply stops consuming. :meth:`result` intentionally keeps the
    *full* schedule (what every worker would have delivered), which the
    masters' straggler accounting relies on.
    """

    def __init__(self, rr: RoundResult):
        self._rr = rr
        self.t_start = rr.t_start
        self.broadcast_time = rr.broadcast_time

    def __iter__(self) -> Iterator[Arrival]:
        return iter(self._rr.arrived())

    def cancel(self) -> None:
        pass

    def result(self) -> RoundResult:
        return self._rr


class SimCluster(Backend):
    """A master plus ``n`` simulated workers sharing one virtual clock.

    Timestamps are exact (virtual clock), so masters may apply the
    latency-ratio straggler detector to them.

    Parameters
    ----------
    field:
        Computation field.
    workers:
        The worker fleet (ids must be ``0..n-1``).
    cost_model:
        Timing constants.
    rng:
        Single generator for all stochastic elements (latency jitter,
        attack randomness) — runs are reproducible given the seed.
    """

    timing_is_exact = True

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        cost_model: CostModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        ids = [w.worker_id for w in workers]
        if sorted(ids) != list(range(len(workers))):
            raise ValueError("worker ids must be exactly 0..n-1")
        self.field = field
        self.workers = list(sorted(workers, key=lambda w: w.worker_id))
        self.cost_model = cost_model or CostModel()
        self.rng = rng or np.random.default_rng(0)
        self._now = 0.0
        self._dropped: set[int] = set()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.workers)

    def worker(self, worker_id: int) -> SimWorker:
        return self.workers[worker_id]

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the virtual clock forward (never backward)."""
        if t < self._now - 1e-12:
            raise ValueError(f"clock cannot run backward: {t} < {self._now}")
        self._now = max(self._now, t)

    def elapse(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._now += dt

    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        """Bookkeeping only: simulated workers cost nothing to keep,
        but dropped ids are remembered for introspection."""
        self._dropped.update(int(w) for w in worker_ids)

    # ------------------------------------------------------------------
    def distribute(self, name: str, shares: np.ndarray, participants=None) -> float:
        """Ship share ``i`` to worker ``i`` (sequentially from the
        master's NIC, as in the testbed) and charge the transfer time.

        Returns the time spent; also advances the clock.
        """
        participants = self._participants(participants)
        if len(participants) > shares.shape[0]:
            raise ValueError("fewer shares than participants")
        total = 0.0
        for slot, wid in enumerate(participants):
            share = shares[slot]
            self.workers[wid].store(**{name: share})
            total += self.cost_model.transfer_time(int(np.asarray(share).size))
        self._now += total
        return total

    # ------------------------------------------------------------------
    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> SimRoundHandle:
        """Backend-protocol entry point: resolve the whole round on the
        virtual clock and hand back its (pre-computed) arrival stream."""
        rr = self.run_round(
            compute=lambda p, _j=job: run_job_compute(self.field, p, _j),
            macs=lambda p, _j=job: job_macs(p, _j),
            broadcast_elements=job.broadcast_elements(),
            participants=participants,
        )
        return SimRoundHandle(rr)

    def run_round(
        self,
        compute: Callable[[dict[str, Any]], np.ndarray],
        macs: Callable[[dict[str, Any]], int],
        broadcast_elements: int,
        participants: Sequence[int] | None = None,
    ) -> RoundResult:
        """Execute one broadcast-compute-collect round.

        Parameters
        ----------
        compute:
            Maps a worker's payload to its (honest) result array.
        macs:
            Multiply-accumulate count of that computation, for timing.
        broadcast_elements:
            Elements broadcast from master to every worker (the operand
            vector) — master pays one transfer per participant.
        participants:
            Worker ids taking part (default: all).

        The round's arrivals are returned sorted by arrival time; the
        clock is *not* advanced past the broadcast — masters advance it
        to whenever they stop waiting (they may not need the last
        stragglers).
        """
        participants = self._participants(participants)
        t0 = self._now
        bcast = self.cost_model.transfer_time(int(broadcast_elements))
        t_ready = t0 + bcast  # master broadcasts; all workers start then

        queue = EventQueue()
        for wid in participants:
            w = self.workers[wid]
            value = w.execute(compute, self.field, self.rng)
            base = self.cost_model.worker_compute_time(int(macs(w.payload)))
            ct = w.sample_time(base, self.rng)
            if value is None:
                queue.push(math.inf, (wid, None, ct, 0.0))
                continue
            up = self.cost_model.transfer_time(int(np.asarray(value).size))
            queue.push(t_ready + ct + up, (wid, value, ct, up))

        arrivals = []
        for t, (wid, value, ct, up) in queue.drain():
            arrivals.append(
                Arrival(
                    worker_id=wid,
                    value=value,
                    t_arrival=t,
                    compute_time=ct,
                    comm_time=up,
                    truly_byzantine=self.workers[wid].is_byzantine,
                )
            )
        self._now = t_ready
        return RoundResult(t_start=t0, broadcast_time=bcast, arrivals=tuple(arrivals))
