"""The discrete-event execution backend (master-side round executor).

One *round* = broadcast an operand, let every participating worker
compute over its stored shares, collect results in arrival order. The
masters in :mod:`repro.core` consume the ordered arrival stream and add
their own verification/decoding costs on top.

Timing of worker ``i`` for a round starting at ``t0``::

    t_arrival_i = t0 + transfer(broadcast)            # master -> worker
                 + profile_i(macs_i * sec_per_mac)    # local compute
                 + transfer(result_i)                 # worker -> master

Silent workers never arrive (``t = inf``). Results of Byzantine
workers are corrupted *before* transmission — the master sees only the
transmitted bytes, exactly like the real system.

:class:`SimCluster` implements the :class:`~repro.runtime.backend.Backend`
protocol, so any master runs on it interchangeably with the real
thread-pool and process backends. Because the simulator computes every
arrival up front, cancellation is free and the full arrival schedule
(including workers the master never waited for) stays observable —
which is what the straggler detector uses.

Concurrent rounds (the pipelined scheduler) contend through
**per-worker busy-time queues**: while a dispatched round is neither
cancelled nor finalized, each of its workers is busy until its compute
for that round completes, and a later round's compute at that worker
starts only afterwards. Retiring a round (cancel or ``result()``)
abandons its unconsumed tail work, releasing the workers — on the
strictly serial path every round is retired before the next dispatch,
so the timing is identical to the pre-pipelining simulator.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.ff.field import PrimeField
from repro.runtime.backend import (
    Arrival,
    Backend,
    RoundHandle,
    RoundJob,
    RoundResult,
    job_macs,
    run_job_compute,
)
from repro.runtime.costmodel import CostModel
from repro.runtime.events import EventQueue
from repro.runtime.worker import SimWorker

__all__ = ["Arrival", "RoundResult", "SimCluster", "SimRoundHandle"]


class SimRoundHandle(RoundHandle):
    """A completed simulated round wrapped in the in-flight interface.

    The simulator resolves all arrivals at dispatch time, so iteration
    never blocks and :meth:`cancel` is pure bookkeeping — the master
    simply stops consuming. :meth:`result` intentionally keeps the
    *full* schedule (what every worker would have delivered), which the
    masters' straggler accounting relies on.

    While the handle is neither cancelled nor finalized it counts as
    *outstanding*: rounds dispatched in the meantime contend with its
    workers' compute schedules (see
    :meth:`SimCluster.dispatch_round`). Both :meth:`cancel` and
    :meth:`result` retire the round — cancelled work is abandoned, so
    later dispatches see the workers free again. Both are idempotent
    and safe in any order.
    """

    def __init__(self, rr: RoundResult, cluster: "SimCluster | None" = None, key: int = -1):
        self._rr = rr
        self._cluster = cluster
        self._key = key
        self.t_start = rr.t_start
        self.broadcast_time = rr.broadcast_time

    def _retire(self) -> None:
        if self._cluster is not None:
            self._cluster._retire_round(self._key)

    def __iter__(self) -> Iterator[Arrival]:
        return iter(self._rr.arrived())

    def cancel(self) -> None:
        self._retire()

    def result(self) -> RoundResult:
        self._retire()
        return self._rr


class SimCluster(Backend):
    """A master plus ``n`` simulated workers sharing one virtual clock.

    Timestamps are exact (virtual clock), so masters may apply the
    latency-ratio straggler detector to them.

    Parameters
    ----------
    field:
        Computation field.
    workers:
        The worker fleet (ids must be ``0..n-1``).
    cost_model:
        Timing constants.
    rng:
        Single generator for all stochastic elements (latency jitter,
        attack randomness) — runs are reproducible given the seed.
    """

    timing_is_exact = True

    def __init__(
        self,
        field: PrimeField,
        workers: Sequence[SimWorker],
        cost_model: CostModel | None = None,
        rng: np.random.Generator | None = None,
    ):
        ids = [w.worker_id for w in workers]
        if sorted(ids) != list(range(len(workers))):
            raise ValueError("worker ids must be exactly 0..n-1")
        self.field = field
        self.workers = list(sorted(workers, key=lambda w: w.worker_id))
        self.cost_model = cost_model or CostModel()
        self.rng = rng or np.random.default_rng(0)
        self._now = 0.0
        self._dropped: set[int] = set()
        #: outstanding rounds' per-worker compute-finish times
        #: (round key -> {worker_id: t_compute_done}); new dispatches
        #: queue each worker behind these — concurrent rounds contend
        self._inflight: dict[int, dict[int, float]] = {}
        self._round_seq = 0

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.workers)

    def worker(self, worker_id: int) -> SimWorker:
        return self.workers[worker_id]

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the virtual clock forward (never backward)."""
        if t < self._now - 1e-12:
            raise ValueError(f"clock cannot run backward: {t} < {self._now}")
        self._now = max(self._now, t)

    def elapse(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._now += dt

    def drop_workers(self, worker_ids: Sequence[int]) -> None:
        """Bookkeeping only: simulated workers cost nothing to keep,
        but dropped ids are remembered for introspection."""
        self._dropped.update(int(w) for w in worker_ids)

    # ------------------------------------------------------------------
    def distribute(self, name: str, shares: np.ndarray, participants=None) -> float:
        """Ship share ``i`` to worker ``i`` (sequentially from the
        master's NIC, as in the testbed) and charge the transfer time.

        Returns the time spent; also advances the clock.
        """
        participants = self._participants(participants)
        if len(participants) > shares.shape[0]:
            raise ValueError("fewer shares than participants")
        total = 0.0
        for slot, wid in enumerate(participants):
            share = shares[slot]
            self.workers[wid].store(**{name: share})
            total += self.cost_model.transfer_time(int(np.asarray(share).size))
        self._now += total
        return total

    # ------------------------------------------------------------------
    def dispatch_round(
        self, job: RoundJob, participants: Sequence[int] | None = None
    ) -> SimRoundHandle:
        """Backend-protocol entry point: resolve the whole round on the
        virtual clock and hand back its (pre-computed) arrival stream.

        Rounds may overlap: until an earlier handle is cancelled or
        finalized (``result()``), its workers are *busy* — a worker
        serves rounds in dispatch order, so this round's compute at
        worker ``i`` starts only once ``i`` finished every outstanding
        earlier round (the per-worker busy-time queue). On the strictly
        serial path every handle is finalized before the next dispatch,
        so no contention arises and timing is identical to the
        pre-pipelining simulator.
        """
        if self.obs is not None:
            self.obs.on_dispatch(
                "sim", job, len(self._participants(participants))
            )
        busy = self._worker_busy_until()
        rr = self.run_round(
            compute=lambda p, _j=job: run_job_compute(self.field, p, _j),
            macs=lambda p, _j=job: job_macs(p, _j),
            broadcast_elements=job.broadcast_elements(),
            participants=participants,
            worker_busy_until=busy,
        )
        self._round_seq += 1
        key = self._round_seq
        self._inflight[key] = {
            a.worker_id: a.t_arrival - a.comm_time
            for a in rr.arrivals
            if math.isfinite(a.t_arrival)
        }
        return SimRoundHandle(rr, cluster=self, key=key)

    def _worker_busy_until(self) -> dict[int, float]:
        """Per-worker earliest free time implied by outstanding rounds."""
        busy: dict[int, float] = {}
        for finishes in self._inflight.values():
            for wid, t in finishes.items():
                if t > busy.get(wid, 0.0):
                    busy[wid] = t
        return busy

    def _retire_round(self, key: int) -> None:
        """A round was cancelled or finalized: its unconsumed tail work
        is abandoned (as a real cancellation aborts workers), so the
        workers stop contending for later dispatches. Idempotent."""
        self._inflight.pop(key, None)

    def outstanding_rounds(self) -> int:
        """Dispatched rounds not yet cancelled/finalized (telemetry)."""
        return len(self._inflight)

    def run_round(
        self,
        compute: Callable[[dict[str, Any]], np.ndarray],
        macs: Callable[[dict[str, Any]], int],
        broadcast_elements: int,
        participants: Sequence[int] | None = None,
        worker_busy_until: dict[int, float] | None = None,
    ) -> RoundResult:
        """Execute one broadcast-compute-collect round.

        Parameters
        ----------
        compute:
            Maps a worker's payload to its (honest) result array.
        macs:
            Multiply-accumulate count of that computation, for timing.
        broadcast_elements:
            Elements broadcast from master to every worker (the operand
            vector) — master pays one transfer per participant.
        participants:
            Worker ids taking part (default: all).
        worker_busy_until:
            Optional per-worker earliest start times (absolute clock
            seconds) from rounds still occupying them; a worker starts
            computing at the later of the broadcast end and its busy
            horizon. Default: everyone starts at broadcast end.

        The round's arrivals are returned sorted by arrival time; the
        clock is *not* advanced past the broadcast — masters advance it
        to whenever they stop waiting (they may not need the last
        stragglers).
        """
        participants = self._participants(participants)
        busy = worker_busy_until or {}
        t0 = self._now
        bcast = self.cost_model.transfer_time(int(broadcast_elements))
        t_ready = t0 + bcast  # master broadcasts; all workers start then

        queue = EventQueue()
        for wid in participants:
            w = self.workers[wid]
            value = w.execute(compute, self.field, self.rng)
            base = self.cost_model.worker_compute_time(int(macs(w.payload)))
            ct = w.sample_time(base, self.rng)
            t_begin = max(t_ready, busy.get(wid, 0.0))
            if value is None:
                queue.push(math.inf, (wid, None, ct, 0.0))
                continue
            up = self.cost_model.transfer_time(int(np.asarray(value).size))
            queue.push(t_begin + ct + up, (wid, value, ct, up))

        arrivals = []
        for t, (wid, value, ct, up) in queue.drain():
            arrivals.append(
                Arrival(
                    worker_id=wid,
                    value=value,
                    t_arrival=t,
                    compute_time=ct,
                    comm_time=up,
                    truly_byzantine=self.workers[wid].is_byzantine,
                )
            )
        self._now = t_ready
        return RoundResult(t_start=t0, broadcast_time=bcast, arrivals=tuple(arrivals))
