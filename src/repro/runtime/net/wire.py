"""The length-prefixed binary wire protocol of the TCP backend.

Every master↔worker exchange travels as one *frame*::

    preamble (12 bytes, big-endian):
        magic   2s   b"AV"
        version B    PROTOCOL_VERSION
        kind    B    message kind code (see MSG_CODES)
        crc32   I    CRC-32 of the payload
        length  I    payload length in bytes
    payload:
        header_len  u32
        header      header_len bytes of UTF-8 JSON (the message fields,
                    plus "_arrays": [[dtype, shape, nbytes], ...])
        buffers     the raw array bytes, concatenated in header order

Array payloads (coded shares, broadcast operands, worker results) are
**not** copied into an intermediate serialization: the sender writes
each array's buffer straight to the socket after the JSON header
(:func:`send_frame` hands the kernel a list of memoryviews), and the
receiver reconstructs arrays as zero-copy views over the received
payload (:func:`decode_payload` via ``np.frombuffer``) using the
dtype/shape descriptors from the header.

Integrity and compatibility are checked on every frame: a wrong magic,
an unknown protocol version, a truncated payload, a CRC mismatch, an
oversized length or a malformed header all raise :class:`WireError`
with a message naming what was wrong — a corrupted or non-protocol
peer can never be silently misread as data.

Message kinds
-------------
``hello``          worker → master: ``{worker_id, protocol, pid}``
``config``         master → worker: ``{q, straggle_scale, factor,
                   behavior, seed}`` — the fleet description the other
                   backends apply in-process, shipped over the wire
``store``          master → worker: ``{name}`` + one share array
``round``          master → worker: ``{rid, op, payload_key, rhs_key}``
                   (+ the broadcast operand, when the op has one);
                   carries ``attest: true`` when the session armed
                   auditing, asking the daemon to countersign
``result``         worker → master: ``{rid, worker_id, compute_time,
                   ok, err}`` (+ the result array when ``ok``); on an
                   attested round the daemon adds ``digest``, the
                   blake2b digest of the shipped result — the worker's
                   countersignature for the round's audit commitment
``cancel``         master → worker: ``{rid}`` — skip this round if it
                   is still queued
``heartbeat`` / ``heartbeat_ack``: ``{seq}`` liveness probes
``shutdown``       master → worker: drain and exit
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Any, Mapping, Sequence

import numpy as np

from repro.runtime.byzantine import (
    Behavior,
    ConstantAttack,
    Honest,
    IntermittentAttack,
    RandomAttack,
    ReversedValueAttack,
    SilentFailure,
)

__all__ = [
    "MSG_CODES",
    "PROTOCOL_VERSION",
    "WireCounters",
    "WireError",
    "behavior_from_dict",
    "behavior_to_dict",
    "check_hello",
    "decode_payload",
    "encode_frame",
    "read_frame",
    "read_frame_async",
    "send_frame",
    "send_parts",
]


class WireCounters:
    """Wire-level tallies for one socket cluster.

    Plain attributes bumped inline by the frame read/send paths (a few
    integer adds per frame — cheap enough to keep unconditionally), so
    the counts are truthful whether or not observability is on; the
    session only *surfaces* them (``summary()``, the metrics registry)
    when it is.
    """

    __slots__ = ("bytes_in", "bytes_out", "frames_in", "frames_out",
                 "crc_rejects", "hb_rtt")

    def __init__(self) -> None:
        self.bytes_in = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.frames_out = 0
        self.crc_rejects = 0
        #: worker id -> latest heartbeat round-trip time (seconds)
        self.hb_rtt: dict[int, float] = {}

    def note_in(self, nbytes: int) -> None:
        self.frames_in += 1
        self.bytes_in += nbytes

    def note_out(self, nbytes: int) -> None:
        self.frames_out += 1
        self.bytes_out += nbytes

    def collect_into(self, registry: Any, backend: str) -> None:
        """Mirror the tallies into a metrics registry (exporter pull)."""
        g = registry.gauge("wire_bytes_total", "bytes on the wire, by direction")
        g.set(self.bytes_in, backend=backend, direction="in")
        g.set(self.bytes_out, backend=backend, direction="out")
        f = registry.gauge("wire_frames_total", "frames on the wire, by direction")
        f.set(self.frames_in, backend=backend, direction="in")
        f.set(self.frames_out, backend=backend, direction="out")
        registry.gauge(
            "wire_crc_rejects_total", "frames dropped on checksum mismatch"
        ).set(self.crc_rejects, backend=backend)
        rtt = registry.gauge(
            "wire_heartbeat_rtt_seconds", "latest heartbeat round-trip, per worker"
        )
        for wid, value in list(self.hb_rtt.items()):
            rtt.set(value, backend=backend, worker=wid)

MAGIC = b"AV"
#: bumped 1 → 2 when the result frame gained the attestation ``digest``
#: field: the hello-level negotiation (:func:`check_hello`) turns away
#: daemons from either side of the bump with an error naming both
#: versions, instead of admitting a fleet that cannot countersign.
PROTOCOL_VERSION = 2
#: preamble: magic, version, kind code, payload crc32, payload length
_PREAMBLE = struct.Struct(">2sBBII")
_HEADER_LEN = struct.Struct(">I")
#: hard upper bound on one frame's payload (a corrupt length field must
#: not make the receiver try to allocate the universe)
MAX_PAYLOAD = 1 << 31

MSG_CODES = {
    "hello": 1,
    "config": 2,
    "store": 3,
    "round": 4,
    "result": 5,
    "cancel": 6,
    "heartbeat": 7,
    "heartbeat_ack": 8,
    "shutdown": 9,
}
_CODE_NAMES = {code: name for name, code in MSG_CODES.items()}


class WireError(RuntimeError):
    """A malformed, truncated or incompatible frame."""


def check_hello(fields: Mapping[str, Any]) -> int:
    """Validate a ``hello`` frame's negotiated protocol version and
    worker id; returns the id.

    The frame preamble's version byte already guards against a peer
    speaking a different *framing*; the hello's ``protocol`` field is
    the application-level negotiation on top of it — a daemon built
    against a different protocol revision frames its hello correctly
    but must still be turned away, with an error naming both versions,
    instead of being admitted and failing mid-round.
    """
    try:
        wid = int(fields["worker_id"])
    except (KeyError, TypeError, ValueError):
        raise WireError(
            f"hello carries no usable worker_id: {fields.get('worker_id')!r}"
        ) from None
    if wid < 0:
        raise WireError(f"hello worker_id must be >= 0, got {wid}")
    peer = fields.get("protocol")
    if peer != PROTOCOL_VERSION:
        raise WireError(
            f"hello protocol version mismatch: worker {wid} speaks "
            f"{peer!r}, this master speaks {PROTOCOL_VERSION} — "
            "rejecting the registration"
        )
    return wid


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _array_parts(arrays: Sequence[np.ndarray]) -> tuple[list[dict], list[memoryview]]:
    descs, bufs = [], []
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        descs.append(
            {"dtype": arr.dtype.str, "shape": list(arr.shape), "nbytes": arr.nbytes}
        )
        bufs.append(arr.data.cast("B"))
    return descs, bufs


def encode_frame(
    kind: str, fields: Mapping[str, Any], arrays: Sequence[np.ndarray] = ()
) -> list[bytes | memoryview]:
    """Encode one frame as a list of buffers (preamble+header first,
    then each array's raw bytes — ready for a scatter-gather send).
    ``b"".join(...)`` the result to get the frame as one bytes object.
    """
    try:
        code = MSG_CODES[kind]
    except KeyError:
        raise WireError(f"unknown message kind {kind!r}") from None
    descs, bufs = _array_parts(arrays)
    header = dict(fields)
    header["_arrays"] = descs
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    head = _HEADER_LEN.pack(len(header_bytes)) + header_bytes
    length = len(head) + sum(b.nbytes for b in bufs)
    if length > MAX_PAYLOAD:
        raise WireError(f"frame payload of {length} bytes exceeds MAX_PAYLOAD")
    crc = zlib.crc32(head)
    for buf in bufs:
        crc = zlib.crc32(buf, crc)
    preamble = _PREAMBLE.pack(MAGIC, PROTOCOL_VERSION, code, crc, length)
    return [preamble + head, *bufs]


def send_frame(
    sock: socket.socket,
    kind: str,
    fields: Mapping[str, Any],
    arrays: Sequence[np.ndarray] = (),
    lock: Any = None,
    counters: WireCounters | None = None,
) -> None:
    """Write one frame to ``sock`` (scatter-gather; arrays are never
    copied into an intermediate buffer). ``lock`` serializes writers
    when more than one thread sends on the same socket."""
    send_parts(sock, encode_frame(kind, fields, arrays), lock=lock, counters=counters)


def send_parts(
    sock: socket.socket,
    parts: list[bytes | memoryview],
    lock: Any = None,
    counters: WireCounters | None = None,
) -> None:
    """Write one pre-encoded frame (broadcasts encode once, send to
    many). ``lock`` serializes concurrent writers on one socket."""
    if lock is not None:
        with lock:
            _send_parts(sock, parts)
    else:
        _send_parts(sock, parts)
    if counters is not None:
        counters.note_out(
            sum(p.nbytes if isinstance(p, memoryview) else len(p) for p in parts)
        )


def _send_parts(sock: socket.socket, parts: list[bytes | memoryview]) -> None:
    if hasattr(sock, "sendmsg"):
        total = sum(
            p.nbytes if isinstance(p, memoryview) else len(p) for p in parts
        )
        sent = sock.sendmsg(parts)
        if sent == total:
            return
        # short gather-write: resume at the offset, still zero-copy —
        # skip fully-sent parts and sendall the remaining views
        for part in parts:
            view = part if isinstance(part, memoryview) else memoryview(part)
            n = view.nbytes
            if sent >= n:
                sent -= n
                continue
            sock.sendall(view[sent:] if sent else view)
            sent = 0
        return
    for part in parts:  # pragma: no cover - no-sendmsg fallback
        sock.sendall(part)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> memoryview:
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        r = sock.recv_into(view[got:])
        if r == 0:
            raise WireError(
                f"connection closed mid-frame ({got} of {n} bytes received)"
            )
        got += r
    return view


def decode_payload(code: int, payload: memoryview) -> tuple[str, dict, list[np.ndarray]]:
    """Decode one validated payload into ``(kind, fields, arrays)``.

    Arrays are zero-copy views over ``payload``; callers that keep an
    array beyond the frame's lifetime own the backing buffer through
    the array itself (numpy holds the reference).
    """
    kind = _CODE_NAMES.get(code)
    if kind is None:
        raise WireError(f"unknown message code {code}")
    if len(payload) < _HEADER_LEN.size:
        raise WireError(f"frame payload of {len(payload)} bytes is too short")
    (header_len,) = _HEADER_LEN.unpack_from(payload)
    end = _HEADER_LEN.size + header_len
    if end > len(payload):
        raise WireError(
            f"header length {header_len} exceeds payload of {len(payload)} bytes"
        )
    try:
        header = json.loads(bytes(payload[_HEADER_LEN.size:end]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed frame header: {exc}") from None
    if not isinstance(header, dict) or "_arrays" not in header:
        raise WireError("frame header is not an object with an '_arrays' entry")
    descs = header.pop("_arrays")
    arrays = []
    offset = end
    for desc in descs:
        try:
            dtype = np.dtype(desc["dtype"])
            shape = tuple(int(s) for s in desc["shape"])
            nbytes = int(desc["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WireError(f"malformed array descriptor {desc!r}: {exc}") from None
        if offset + nbytes > len(payload):
            raise WireError(
                f"array of {nbytes} bytes overruns payload of {len(payload)} bytes"
            )
        try:
            arrays.append(
                np.frombuffer(payload[offset:offset + nbytes], dtype=dtype).reshape(shape)
            )
        except ValueError as exc:
            raise WireError(f"array descriptor {desc!r} does not decode: {exc}") from None
        offset += nbytes
    if offset != len(payload):
        raise WireError(
            f"{len(payload) - offset} trailing bytes after the declared arrays"
        )
    return kind, header, arrays


def read_frame(
    sock: socket.socket, counters: WireCounters | None = None
) -> tuple[str, dict, list[np.ndarray]]:
    """Read exactly one frame; raises :class:`WireError` on anything
    that is not a well-formed, checksummed protocol frame."""
    pre = _recv_exact(sock, _PREAMBLE.size)
    magic, version, code, crc, length = _PREAMBLE.unpack(pre)
    if magic != MAGIC:
        raise WireError(f"bad magic {bytes(magic)!r} (not an AVCC protocol peer?)")
    if version != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD:
        raise WireError(f"declared payload of {length} bytes exceeds MAX_PAYLOAD")
    payload = _recv_exact(sock, length)
    if counters is not None:
        counters.note_in(_PREAMBLE.size + length)
    if zlib.crc32(payload) != crc:
        if counters is not None:
            counters.crc_rejects += 1
        raise WireError("payload checksum mismatch (corrupted frame)")
    return decode_payload(code, payload)


async def read_frame_async(
    reader, counters: WireCounters | None = None
) -> tuple[str, dict, list[np.ndarray]]:
    """Async twin of :func:`read_frame` over an ``asyncio.StreamReader``.

    Same validation, same :class:`WireError` surface; a peer that
    closes mid-frame raises ``asyncio.IncompleteReadError`` (callers
    treat it like EOF, exactly as the sync reader's closed-mid-frame
    error).
    """
    pre = await reader.readexactly(_PREAMBLE.size)
    magic, version, code, crc, length = _PREAMBLE.unpack(pre)
    if magic != MAGIC:
        raise WireError(f"bad magic {bytes(magic)!r} (not an AVCC protocol peer?)")
    if version != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    if length > MAX_PAYLOAD:
        raise WireError(f"declared payload of {length} bytes exceeds MAX_PAYLOAD")
    payload = memoryview(await reader.readexactly(length))
    if counters is not None:
        counters.note_in(_PREAMBLE.size + length)
    if zlib.crc32(payload) != crc:
        if counters is not None:
            counters.crc_rejects += 1
        raise WireError("payload checksum mismatch (corrupted frame)")
    return decode_payload(code, payload)


# ----------------------------------------------------------------------
# behaviour descriptions (the CONFIG message's fault-injection half)
# ----------------------------------------------------------------------
def behavior_to_dict(behavior: Behavior) -> dict[str, Any]:
    """Describe a built-in behaviour as plain JSON-able data, so the
    master can ship the same fleet description the in-process backends
    apply directly. Custom behaviours cannot travel (they are code,
    and the wire carries data): raise with a pointer to the daemon's
    own injection flags."""
    probability = 1.0
    if isinstance(behavior, IntermittentAttack):
        probability = behavior.probability
        behavior = behavior.inner
    if isinstance(behavior, Honest):
        return {"kind": "honest"}
    if isinstance(behavior, ReversedValueAttack):
        return {"kind": "reverse", "value": behavior.c, "probability": probability}
    if isinstance(behavior, ConstantAttack):
        return {"kind": "constant", "value": behavior.value, "probability": probability}
    if isinstance(behavior, RandomAttack):
        return {"kind": "random", "probability": probability}
    if isinstance(behavior, SilentFailure):
        return {"kind": "silent"}
    raise ValueError(
        f"behaviour {type(behavior).__name__} is not wire-serializable; the tcp "
        "backend ships only the built-in behaviours — start the worker daemon "
        "with its own --behavior flag for custom injection"
    )


def behavior_from_dict(desc: Mapping[str, Any]) -> Behavior:
    """Inverse of :func:`behavior_to_dict` (worker side)."""
    kind = desc.get("kind", "honest")
    probability = float(desc.get("probability", 1.0))
    if kind == "honest":
        return Honest()
    if kind == "silent":
        return SilentFailure()
    if kind == "reverse":
        inner: Behavior = ReversedValueAttack(c=int(desc.get("value", 1)))
    elif kind == "constant":
        inner = ConstantAttack(value=int(desc.get("value", 1000)))
    elif kind == "random":
        inner = RandomAttack()
    else:
        raise WireError(f"unknown behaviour kind {kind!r} in config")
    if probability < 1.0:
        return IntermittentAttack(inner, probability=probability)
    return inner
